# selftest.es -- a test suite for es, written in es.
#
# Run with:  es testdata/selftest.es      (or via TestEsSelfTest in Go)
#
# assert-eq takes two program fragments and compares their rich return
# values — lists flatten across argument binding, so fragments are the
# natural way to pass two lists to one function.  Failures throw; the
# summary at the end reports the count.

checks =

fn assert label cond {
	checks = $checks x
	if {!$cond} {
		throw error assertion failed: $label
	}
}

fn assert-eq label wantf gotf {
	checks = $checks x
	let (want = <>{$wantf}; got = <>{$gotf}) {
		if {!~ $#want $#got} {
			throw error $label: want $#want values, got $#got
		}
		for (w = $want; g = $got) {
			if {!~ $w $g} {
				throw error $label: want $w got $g
			}
		}
	}
}

# ---- lists and words ----
x = a b c
assert-eq 'list value' {result a b c} {result $x}
assert-eq 'count' {result 3} {result $#x}
assert-eq 'subscript' {result b} {result $x(2)}
assert-eq 'subscript list' {result c a} {result $x(3 1)}
assert-eq 'concat distributes' {result a-z b-z c-z} {result $x^-z}
assert-eq 'pairwise concat' {result ax by} {result (a b)^(x y)}
y = x
assert-eq 'double deref' {result a b c} {result $$y}
assert-eq 'flatten' {result a:b:c} {result <>{%flatten : $x}}
assert-eq 'fsplit' {result p q r} {result <>{%fsplit / p/q/r}}

# ---- functions and binding ----
fn rev3 a b c {result $c $b $a}
assert-eq 'leftover args' {result 3 4 5 2 1} {rev3 1 2 3 4 5}
assert-eq 'null params vanish' {result 1} {rev3 1}
fn counted {result $#*}
assert-eq 'star binding' {result 4} {counted a b c d}

let (n = lexical) {
	fn get-n {result $n}
	fn set-n v {n = $v}
}
assert-eq 'closure capture' {result lexical} {get-n}
set-n changed
assert-eq 'shared lexical mutation' {result changed} {get-n}
assert 'lexical does not leak' {~ $#n 0}

g = global
fn read-g {result $g}
local (g = shadowed) {
	assert-eq 'dynamic binding seen' {result shadowed} {read-g}
}
assert-eq 'dynamic binding restored' {result global} {read-g}

# ---- rich returns and higher-order functions ----
fn cons a d { return @ f { $f $a $d } }
fn car p { $p @ a d { return $a } }
fn cdr p { $p @ a d { return $d } }
lst = <>{cons 1 <>{cons 2 <>{cons 3 nil}}}
assert-eq 'car' {result 1} {car $lst}
assert-eq 'cadr' {result 2} {car <>{cdr $lst}}

fn compose f g { return @ x { $f <>{$g $x} } }
fn inc n {return $n^i}
fn wrap s {return '<'^$s^'>'}
both = <>{compose wrap inc}
assert-eq 'compose' {result '<vi>'} {$both v}

fn map f list {
	if {~ $#list 0} {
		result
	} {
		let (head = $list(1)) {
			result <>{$f $head} <>{map $f $list(2 3 4 5 6 7 8 9)}
		}
	}
}
assert-eq 'map' {result ai bi ci} {map inc a b c}

# ---- exceptions ----
caught = no
catch @ e msg {
	caught = $e $msg
} {
	throw flavour grape soda
}
assert-eq 'catch sees args' {result flavour grape soda} {result $caught}

tries =
junk = <>{catch @ e {
	if {~ $#tries 3} {result done} {throw retry}
} {
	tries = $tries x
	throw error once more
}}
assert-eq 'retry reruns body' {result 3} {result $#tries}

fn thrower {throw error deliberate}
fn relay {thrower; result not-reached}
assert-eq 'exceptions unwind calls' {result deliberate} {catch @ e msg {result $msg} {relay}}

assert-eq 'break carries values' {result early} {for (i = a b c) {break early}}

# ---- settors ----
log =
set-observed = @ {
	log = $log $*
	return $*
}
observed = one
observed = two three
assert-eq 'settor log' {result one two three} {result $log}
assert-eq 'settor value' {result two three} {result $observed}

# ---- spoofing ----
made =
let (create = $fn-%create) {
	fn %create fd file cmd {
		made = $made $file
		$create $fd $file $cmd
	}
}
echo data > selftest-scratch.a
echo data > selftest-scratch.b
assert-eq 'create spoof saw both' {result selftest-scratch.a selftest-scratch.b} {result $made}
rm -f selftest-scratch.a selftest-scratch.b

# ---- pipes and builtins ----
assert-eq 'pipe' {result BANANA} {result `{echo banana | tr a-z A-Z}}
assert-eq 'three stage' {result 2} {result `{{echo b; echo a; echo b} | sort -u | wc -l}}
assert-eq 'backquote split' {result one two} {result `{echo one two}}
assert-eq 'redirect round trip' {result saved data} {
	echo saved data > selftest-scratch.c
	result `{cat selftest-scratch.c}
}
rm -f selftest-scratch.c

# ---- truth ----
assert 'zero is true' {result 0}
assert 'empty is true' {result}
assert 'one is false' {! result 1}
assert 'and' {%and {result 0} {result 0}}
assert 'or picks truth' {%or {result 1} {result 0}}
assert 'not' {! false}
assert 'match star' {~ abcdef abc*}
assert 'match class' {~ q [a-z]}
assert 'quoted star is literal' {! ~ abc 'abc*'}

# ---- the environment encoding, observed from inside ----
fn probe {result 0}
assert-eq 'whatis encodes' {result '@ * {result 0}'} {
	result <>{%flatten ' ' `{whatis probe}}
}
let (cap = seen) fn capturing {echo $cap}
assert-eq 'closure header' {result '%closure(cap=seen)@ * {echo $cap}'} {
	result <>{%flatten ' ' `{whatis capturing}}
}

# ---- released-es extensions ----
assert-eq 'flatten sugar' {result 'a b c'} {result $^x}
assert-eq 'extract star' {result main} {~~ main.c *.c}
assert-eq 'extract two' {result left right} {~~ left-right *-*}
assert 'extract no match is false' {! ~~ main.go *.c}
assert-eq 'herestring' {result FED} {result `{tr a-z A-Z <<< fed}}
assert-eq 'heredoc' {result ONE TWO} {result `{tr a-z A-Z << HDOC
one
two
HDOC
}}
assert 'pid is set' {!~ $#pid 0}

echo selftest: $#checks checks passed
result 0
