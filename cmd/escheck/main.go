// escheck statically analyzes es scripts without running them: undefined
// variable references, unresolved %hook / $&primitive references, dead
// code, structural lint, and a per-script effect summary.
//
//	escheck [-json] [-sev error|warning|info] [-effects] [-prelude] [file ...]
//
// With no files, escheck reads a script from standard input.  Exit status
// is 1 when any error-severity diagnostic is reported, 0 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	es "es"
	"es/internal/analysis"
	"es/internal/prim"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics and effects as JSON")
	sevFlag := flag.String("sev", "info", "minimum severity to print: info, warning, or error")
	effects := flag.Bool("effects", false, "print the effect summary after diagnostics")
	prelude := flag.Bool("prelude", false, "also analyze the embedded start-up prelude")
	flag.Parse()

	minSev, ok := parseSev(*sevFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "escheck: bad -sev %q (want info, warning, or error)\n", *sevFlag)
		os.Exit(2)
	}

	// A throwaway shell supplies the registry snapshot: primitives,
	// builtins, and every prelude-defined variable and %hook binding.
	sh, err := es.New(es.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "escheck: %v\n", err)
		os.Exit(2)
	}
	env := analysis.EnvFromInterp(sh.Interp())

	type target struct {
		name string
		src  string
	}
	var targets []target
	if *prelude {
		targets = append(targets, target{"<prelude>", prim.InitialES()})
	}
	if flag.NArg() == 0 && !*prelude {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "escheck: %v\n", err)
			os.Exit(2)
		}
		targets = append(targets, target{"<stdin>", string(src)})
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "escheck: %v\n", err)
			os.Exit(2)
		}
		targets = append(targets, target{path, string(src)})
	}

	exit := 0
	for _, t := range targets {
		res := analysis.Analyze(t.src, analysis.Options{File: t.name, Env: env})
		if res.Errors() > 0 {
			exit = 1
		}
		if *jsonOut {
			out := struct {
				File string `json:"file"`
				analysis.Result
			}{t.name, res}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(out)
			continue
		}
		for _, d := range res.Filter(minSev) {
			fmt.Println(d.String())
		}
		if *effects && !res.Effects.Empty() {
			fmt.Printf("%s: effects: categories=%v hooks=%v prims=%v external=%v\n",
				t.name, res.Effects.Categories, res.Effects.Hooks,
				res.Effects.Prims, res.Effects.External)
		}
	}
	os.Exit(exit)
}

func parseSev(s string) (analysis.Severity, bool) {
	switch s {
	case "info", "i":
		return analysis.SevInfo, true
	case "warning", "warn", "w":
		return analysis.SevWarning, true
	case "error", "err", "e":
		return analysis.SevError, true
	}
	return 0, false
}
