// Command esvet lints the interpreter's own Go sources for primitive
// hygiene: every $&primitive registered with RegisterPrim must have a
// documented handler function and a binding in the embedded prelude
// (initial.es), unless the registration carries an esvet:ok comment.
// It is run by scripts/check.sh alongside go vet.
//
// Usage:
//
//	esvet [package-dir ...]
//
// With no arguments it checks ./internal/prim.  Exit status 1 if any
// problem is found.
package main

import (
	"fmt"
	"os"

	"es/internal/lint"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"./internal/prim"}
	}
	status := 0
	for _, dir := range dirs {
		probs, err := lint.CheckPrims(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esvet:", err)
			status = 1
			continue
		}
		for _, p := range probs {
			fmt.Println(p)
			status = 1
		}
	}
	os.Exit(status)
}
