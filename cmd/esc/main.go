// Command esc is the esd client: it submits one command to a running es
// evaluation daemon and relays the result.
//
// Usage:
//
//	esc [-socket path] [-deadline ms] 'command ...'
//	esc -stats
//
// The command's captured stdout and stderr are replayed to esc's own
// streams; the exit status follows the es convention (0 for a true
// result, the numeric value for a small-integer result, 1 otherwise).
// An uncaught exception — including `signal deadline` when the request
// overran -deadline — is reported on stderr with exit status 1.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"

	"es/internal/server"
)

func main() {
	os.Exit(run())
}

func defaultSocket() string {
	if s := os.Getenv("ESD_SOCKET"); s != "" {
		return s
	}
	if dir := os.Getenv("XDG_RUNTIME_DIR"); dir != "" {
		return dir + "/esd.sock"
	}
	return fmt.Sprintf("/tmp/esd-%d.sock", os.Getuid())
}

func run() int {
	var (
		socket     = flag.String("socket", defaultSocket(), "esd unix socket `path` (or $ESD_SOCKET)")
		deadlineMS = flag.Int64("deadline", 0, "per-request deadline in `ms` (0 = server default)")
		stats      = flag.Bool("stats", false, "print server statistics and exit")
	)
	flag.Parse()
	if !*stats && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: esc [-socket path] [-deadline ms] 'command ...' | esc -stats")
		return 2
	}

	conn, err := net.Dial("unix", *socket)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esc:", err)
		return 1
	}
	defer conn.Close()
	fr, fw := server.NewClientConn(conn)

	req := &server.Frame{ID: 1}
	if *stats {
		req.Type = "stats"
	} else {
		req.Type = "eval"
		req.Src = strings.Join(flag.Args(), " ")
		req.DeadlineMS = *deadlineMS
	}
	if err := fw.Write(req); err != nil {
		fmt.Fprintln(os.Stderr, "esc:", err)
		return 1
	}

	for {
		f, err := fr.Read()
		if err != nil {
			fmt.Fprintln(os.Stderr, "esc:", err)
			return 1
		}
		switch f.Type {
		case "result":
			os.Stdout.WriteString(f.Stdout)
			os.Stderr.WriteString(f.Stderr)
			return statusOf(f)
		case "error":
			os.Stdout.WriteString(f.Stdout)
			os.Stderr.WriteString(f.Stderr)
			fmt.Fprintln(os.Stderr, "esc: uncaught exception:", strings.Join(f.Exception, " "))
			return 1
		case "stats":
			for _, w := range f.Stats {
				fmt.Println(w)
			}
			return 0
		case "bye":
			fmt.Fprintln(os.Stderr, "esc: server closed the session:", f.Reason)
			return 1
		}
	}
}

// statusOf maps a result frame to an exit status the way cmd/es maps a
// top-level result: true is 0, a single small integer is itself, anything
// else is 1.
func statusOf(f *server.Frame) int {
	if f.True {
		return 0
	}
	if len(f.Value) == 1 {
		if n, err := strconv.Atoi(f.Value[0]); err == nil && n >= 0 && n < 256 {
			return n
		}
	}
	return 1
}
