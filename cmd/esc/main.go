// Command esc is the esd client: it submits one command to a running es
// evaluation daemon and relays the result.
//
// Usage:
//
//	esc [-socket path | -addr host:port] [-deadline ms] 'command ...'
//	esc -stats
//	esc -check 'command ...'
//	esc [-restore file] [-migrate socket] [-snap file] ['command ...']
//
// -addr dials the daemon over TCP instead of the unix socket; -tls wraps
// that connection in TLS (-tls-ca pins a PEM CA bundle, -tls-skip-verify
// disables verification for lab setups).  -tenant names the session's
// quota bucket via a hello handshake before any other frame.  -retry
// bounds connect attempts with exponential backoff (50ms doubling to
// 1s), so scripted runs don't flake on daemon startup.
//
// The command's captured stdout and stderr are replayed to esc's own
// streams; the exit status follows the es convention (0 for a true
// result, the numeric value for a small-integer result, 1 otherwise).
// An uncaught exception — including `signal deadline` when the request
// overran -deadline — is reported on stderr with exit status 1.
//
// The session-image flags compose in a fixed order on one connection,
// regardless of where they appear on the command line: -restore loads a
// saved image into the fresh session first, -migrate then moves the
// session to another daemon's socket, the command (if any) runs next,
// and -snap checkpoints the final state to a file last.  So `esc
// -restore s.esimg 'work'` resumes a checkpoint, `esc -snap s.esimg
// 'setup'` runs setup and then saves the result, and `esc -restore
// s.esimg -migrate /run/esd2.sock -snap s.esimg 'work'` does all three
// across two daemons.
//
// With -check the command is statically analyzed by the daemon (against
// the session's own hook and primitive registries) instead of being run:
// diagnostics print one per line, the effect categories follow, and the
// exit status is 1 if the script carries static errors.
package main

import (
	"crypto/tls"
	"crypto/x509"
	"encoding/base64"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"es/internal/server"
)

func main() {
	os.Exit(run())
}

func defaultSocket() string {
	if s := os.Getenv("ESD_SOCKET"); s != "" {
		return s
	}
	if dir := os.Getenv("XDG_RUNTIME_DIR"); dir != "" {
		return dir + "/esd.sock"
	}
	return fmt.Sprintf("/tmp/esd-%d.sock", os.Getuid())
}

func run() int {
	var (
		socket      = flag.String("socket", defaultSocket(), "esd unix socket `path` (or $ESD_SOCKET)")
		addr        = flag.String("addr", "", "dial the daemon over TCP at `host:port` instead of the unix socket")
		useTLS      = flag.Bool("tls", false, "wrap the -addr connection in TLS")
		tlsCA       = flag.String("tls-ca", "", "PEM CA bundle `file` to verify the daemon against")
		tlsSkip     = flag.Bool("tls-skip-verify", false, "skip TLS certificate verification")
		tenant      = flag.String("tenant", "", "declare this session's quota `tenant` via a hello handshake")
		retry       = flag.Int("retry", 3, "connect `attempts` with exponential backoff")
		deadlineMS  = flag.Int64("deadline", 0, "per-request deadline in `ms` (0 = server default)")
		stats       = flag.Bool("stats", false, "print server statistics and exit")
		checkOnly   = flag.Bool("check", false, "statically analyze the command on the daemon instead of running it")
		snapFile    = flag.String("snap", "", "checkpoint the session image to `file` after the command")
		restoreFile = flag.String("restore", "", "load the session image from `file` before the command")
		migrateSock = flag.String("migrate", "", "move the session to the daemon at `socket` before the command")
	)
	flag.Parse()
	if !*stats && flag.NArg() == 0 && *snapFile == "" && *restoreFile == "" && *migrateSock == "" {
		fmt.Fprintln(os.Stderr, "usage: esc [-socket path | -addr host:port] [-deadline ms] [-restore file] [-migrate socket] [-snap file] ['command ...'] | esc -stats")
		return 2
	}

	conn, err := dialDaemon(*socket, *addr, *useTLS, *tlsCA, *tlsSkip, *retry)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esc:", err)
		return 1
	}
	defer conn.Close()
	fr, fw := server.NewClientConn(conn)

	// roundTrip submits one frame and returns the daemon's answer.
	id := int64(0)
	roundTrip := func(req *server.Frame) (*server.Frame, error) {
		id++
		req.ID = id
		if err := fw.Write(req); err != nil {
			return nil, err
		}
		f, err := fr.Read()
		if err != nil {
			return nil, err
		}
		if f.Type == "bye" {
			return nil, fmt.Errorf("server closed the session: %s", f.Reason)
		}
		if f.Type == "error" && req.Type != "eval" {
			return nil, fmt.Errorf("%s: %s", req.Type, strings.Join(f.Exception, " "))
		}
		return f, nil
	}

	// Tenancy is declared before anything else runs, so every frame on
	// this connection is accounted (and quota-checked) under the tenant.
	if *tenant != "" {
		if _, err := roundTrip(&server.Frame{Type: "hello", Tenant: *tenant}); err != nil {
			fmt.Fprintln(os.Stderr, "esc:", err)
			return 1
		}
	}

	if *stats {
		f, err := roundTrip(&server.Frame{Type: "stats"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "esc:", err)
			return 1
		}
		for _, w := range f.Stats {
			fmt.Println(w)
		}
		return 0
	}

	// The image operations compose in a fixed order: restore the saved
	// state first, migrate the (possibly restored) session next, run the
	// command on whichever daemon now owns it, snap the final state last.
	if *restoreFile != "" {
		data, err := os.ReadFile(*restoreFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esc:", err)
			return 1
		}
		if _, err := roundTrip(&server.Frame{Type: "restore",
			Image: base64.StdEncoding.EncodeToString(data)}); err != nil {
			fmt.Fprintln(os.Stderr, "esc:", err)
			return 1
		}
	}
	if *migrateSock != "" {
		if _, err := roundTrip(&server.Frame{Type: "migrate", Socket: *migrateSock}); err != nil {
			fmt.Fprintln(os.Stderr, "esc:", err)
			return 1
		}
	}
	status := 0
	if *checkOnly {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "esc: -check needs a command")
			return 2
		}
		f, err := roundTrip(&server.Frame{Type: "check",
			Src: strings.Join(flag.Args(), " ")})
		if err != nil {
			fmt.Fprintln(os.Stderr, "esc:", err)
			return 1
		}
		for _, d := range f.Diags {
			fmt.Println(d)
		}
		if len(f.Effects) > 0 {
			fmt.Println("effects:", strings.Join(f.Effects, " "))
		}
		if !f.True {
			return 1
		}
		return 0
	}
	if flag.NArg() > 0 {
		f, err := roundTrip(&server.Frame{Type: "eval",
			Src: strings.Join(flag.Args(), " "), DeadlineMS: *deadlineMS})
		if err != nil {
			fmt.Fprintln(os.Stderr, "esc:", err)
			return 1
		}
		os.Stdout.WriteString(f.Stdout)
		os.Stderr.WriteString(f.Stderr)
		if f.Type == "error" {
			fmt.Fprintln(os.Stderr, "esc: uncaught exception:", strings.Join(f.Exception, " "))
			status = 1
		} else {
			status = statusOf(f)
		}
	}
	if *snapFile != "" {
		f, err := roundTrip(&server.Frame{Type: "snap"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "esc:", err)
			return 1
		}
		data, err := base64.StdEncoding.DecodeString(f.Image)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esc: snap:", err)
			return 1
		}
		if err := os.WriteFile(*snapFile, data, 0o600); err != nil {
			fmt.Fprintln(os.Stderr, "esc:", err)
			return 1
		}
	}
	return status
}

// dialDaemon connects over the unix socket, or over TCP (optionally
// TLS-wrapped) when addr is set, retrying failed connects with bounded
// exponential backoff so load-harness and soak runs don't flake on
// daemon startup.
func dialDaemon(socket, addr string, useTLS bool, caFile string, skipVerify bool, attempts int) (net.Conn, error) {
	network, target := "unix", socket
	if addr != "" {
		network, target = "tcp", addr
	}
	var tcfg *tls.Config
	if useTLS {
		if network != "tcp" {
			return nil, fmt.Errorf("-tls needs -addr")
		}
		tcfg = &tls.Config{InsecureSkipVerify: skipVerify, MinVersion: tls.VersionTLS12}
		if host, _, err := net.SplitHostPort(addr); err == nil {
			tcfg.ServerName = host
		}
		if caFile != "" {
			pem, err := os.ReadFile(caFile)
			if err != nil {
				return nil, err
			}
			pool := x509.NewCertPool()
			if !pool.AppendCertsFromPEM(pem) {
				return nil, fmt.Errorf("%s: no certificates found", caFile)
			}
			tcfg.RootCAs = pool
		}
	}
	if attempts < 1 {
		attempts = 1
	}
	backoff := 50 * time.Millisecond
	var err error
	for k := 0; k < attempts; k++ {
		if k > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		var conn net.Conn
		if conn, err = net.Dial(network, target); err != nil {
			continue
		}
		if tcfg == nil {
			return conn, nil
		}
		tc := tls.Client(conn, tcfg)
		if err = tc.Handshake(); err != nil {
			conn.Close()
			continue
		}
		return tc, nil
	}
	return nil, err
}

// statusOf maps a result frame to an exit status the way cmd/es maps a
// top-level result: true is 0, a single small integer is itself, anything
// else is 1.
func statusOf(f *server.Frame) int {
	if f.True {
		return 0
	}
	if len(f.Value) == 1 {
		if n, err := strconv.Atoi(f.Value[0]); err == nil && n >= 0 && n < 256 {
			return n
		}
	}
	return 1
}
