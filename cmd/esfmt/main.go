// Command esfmt formats es scripts in a canonical style: one command per
// line, tab-indented brace bodies, normalized quoting.  Like gofmt, it
// guarantees the output parses to the same program.
//
// Usage:
//
//	esfmt [-w] [-d] [file ...]
//
// With no files, esfmt reads standard input and writes standard output.
// -w rewrites files in place; -d prints whether each file would change
// (exit status 1 if any would) without writing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"es/internal/syntax"
)

func main() {
	var (
		write = flag.Bool("w", false, "write result back to the source file")
		diff  = flag.Bool("d", false, "report files whose formatting would change")
	)
	flag.Parse()

	if flag.NArg() == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal("stdin: %v", err)
		}
		out, err := format(string(src))
		if err != nil {
			fatal("stdin: %v", err)
		}
		os.Stdout.WriteString(out)
		return
	}

	changed := false
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal("%v", err)
		}
		out, err := format(string(src))
		if err != nil {
			fatal("%s: %v", path, err)
		}
		switch {
		case *diff:
			if out != string(src) {
				fmt.Println(path)
				changed = true
			}
		case *write:
			if out != string(src) {
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					fatal("%v", err)
				}
			}
		default:
			os.Stdout.WriteString(out)
		}
	}
	if changed {
		os.Exit(1)
	}
}

// format parses and pretty-prints src, verifying the round trip: if the
// formatted output does not parse back to the same program, the original
// is returned with an error rather than corrupting the script.
func format(src string) (string, error) {
	blk, err := syntax.Parse(src)
	if err != nil {
		return "", err
	}
	out := syntax.Pretty(blk)
	reparsed, err := syntax.Parse(out)
	if err != nil {
		return "", fmt.Errorf("internal error: formatted output does not parse: %v", err)
	}
	if syntax.UnparseBody(reparsed) != syntax.UnparseBody(blk) {
		return "", fmt.Errorf("internal error: formatting changed the program")
	}
	return out, nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "esfmt: "+format+"\n", args...)
	os.Exit(2)
}
