// Command esd is the es evaluation daemon: it serves concurrent es
// sessions over a unix-domain socket — and, with the fleet front end
// enabled, over TCP and TLS — with a newline-delimited JSON protocol
// (see internal/server and internal/frontend).
//
// Usage:
//
//	esd [-socket path] [-tcp addr] [-tls addr -tls-cert f -tls-key f]
//	    [-accepts n] [-window n] [-max-p99 ms] [-max-queue n] [-retry-after ms]
//	    [-quota tenant=sessions:inflight:deadline_ms]...
//	    [-template image] [-pool n] [-max n] [-deadline ms] [-vet]
//	    [-addr-file path] [-drain-timeout s] [-quiet]
//
// Each session owns one interpreter spawned from a warm template (shell
// state, including function definitions, arrives through esd's own
// environment, exactly as for es itself).  With -template, the warm pool
// is instead pre-baked from a session image (written by `snapshot` or an
// esc snap frame): every session starts with that image's variables,
// functions, and spoofed hooks already installed.  A per-request deadline —
// the frame's deadline_ms, or -deadline as the default — surfaces inside
// the script as the catchable exception `signal deadline`.  With -vet,
// every eval frame passes static analysis before admission: a script with
// static errors is answered with an error frame and never evaluated.
//
// -tcp and -tls add listeners next to the unix socket (":0" picks a free
// port; -addr-file writes the bound addresses as `tcp=addr` / `tls=addr`
// lines for scripts to pick up).  -window caps the per-session pipeline
// window a hello frame can be granted.  -max-p99 and -max-queue arm the
// admission controller: evals arriving while the sliding-window p99 or
// the dispatch-queue depth is over its ceiling are answered with a
// retryable `signal overload` error frame carrying retry_after_ms.
// -quota sets one tenant's ceilings (0 means unlimited), e.g.
// `-quota acme=100:16:5000` — 100 sessions, 16 in-flight evals, 5s
// deadline ceiling.
//
// SIGTERM or SIGINT triggers a graceful drain: stop accepting on every
// listener, answer every request already accepted, say bye, exit 0.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"es"
	"es/internal/core"
	"es/internal/frontend"
	"es/internal/image"
	"es/internal/server"
)

func main() {
	os.Exit(run())
}

// defaultSocket puts the socket in the user's runtime dir when the
// platform provides one, /tmp otherwise.
func defaultSocket() string {
	if dir := os.Getenv("XDG_RUNTIME_DIR"); dir != "" {
		return dir + "/esd.sock"
	}
	return fmt.Sprintf("/tmp/esd-%d.sock", os.Getuid())
}

// quotaFlag accumulates repeated -quota tenant=sessions:inflight:deadline_ms.
type quotaFlag map[string]server.TenantQuota

func (q quotaFlag) String() string { return fmt.Sprintf("%v", map[string]server.TenantQuota(q)) }

func (q quotaFlag) Set(s string) error {
	name, spec, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want tenant=sessions:inflight:deadline_ms, got %q", s)
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want tenant=sessions:inflight:deadline_ms, got %q", s)
	}
	var n [3]int
	for k, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return fmt.Errorf("bad quota field %q in %q", p, s)
		}
		n[k] = v
	}
	q[name] = server.TenantQuota{
		MaxSessions:     n[0],
		MaxInFlight:     n[1],
		DeadlineCeiling: time.Duration(n[2]) * time.Millisecond,
	}
	return nil
}

func run() int {
	quotas := quotaFlag{}
	var (
		socket       = flag.String("socket", defaultSocket(), "unix socket `path` to serve on")
		tcpAddr      = flag.String("tcp", "", "also serve plaintext TCP on `addr` (\":0\" picks a port)")
		tlsAddr      = flag.String("tls", "", "also serve TLS on `addr`")
		tlsCert      = flag.String("tls-cert", "", "PEM certificate `file` for -tls")
		tlsKey       = flag.String("tls-key", "", "PEM private key `file` for -tls")
		accepts      = flag.Int("accepts", 2, "parallel accept goroutines per TCP/TLS listener")
		maxWindow    = flag.Int("window", 32, "max per-session pipeline window grantable by hello")
		maxP99       = flag.Int("max-p99", 0, "shed evals while the sliding-window p99 exceeds this many `ms` (0 = off)")
		maxQueue     = flag.Int("max-queue", 0, "shed evals while this many are queued but not running (0 = off)")
		retryAfter   = flag.Int64("retry-after", 100, "retry_after_ms hint stamped on shed frames")
		addrFile     = flag.String("addr-file", "", "write bound tcp=/tls= addresses to `path` (for \":0\" ports)")
		templateImg  = flag.String("template", "", "session `image` to pre-bake pool interpreters from")
		poolSize     = flag.Int("pool", 4, "warm pre-spawned interpreters")
		maxConc      = flag.Int("max", runtime.GOMAXPROCS(0), "max concurrent evaluations")
		deadlineMS   = flag.Int("deadline", 0, "default per-request deadline in `ms` (0 = none)")
		vet          = flag.Bool("vet", false, "statically analyze every eval and reject scripts with errors before running them")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful drain may take")
		quiet        = flag.Bool("quiet", false, "suppress lifecycle logging")
	)
	flag.Var(quotas, "quota", "tenant quota as `tenant=sessions:inflight:deadline_ms` (repeatable, 0 = unlimited)")
	flag.Parse()

	// The template interpreter: primitives, coreutils, initial.es and the
	// process environment, initialized once; sessions are stamped out of
	// it with Spawn, so none of that work repeats per connection.
	template, err := es.New(es.Options{
		Stdout:  io.Discard,
		Stderr:  io.Discard,
		Environ: os.Environ(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "esd: startup:", err)
		return 1
	}

	newSession := func() (*core.Interp, error) {
		return template.Interp().Spawn(), nil
	}
	if *templateImg != "" {
		img, err := image.ReadFile(*templateImg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esd: template:", err)
			return 1
		}
		newSession = server.NewSessionFromImage(template.Interp(), img)
	}

	logf := func(string, ...any) {}
	if !*quiet {
		logger := log.New(os.Stderr, "", log.LstdFlags)
		logf = logger.Printf
	}
	fe, err := frontend.New(frontend.Config{
		Server: server.Config{
			Socket:          *socket,
			PoolSize:        *poolSize,
			MaxConcurrent:   *maxConc,
			MaxWindow:       *maxWindow,
			DefaultDeadline: time.Duration(*deadlineMS) * time.Millisecond,
			Vet:             *vet,
			Tenants:         quotas,
			NewSession:      newSession,
			Logf:            logf,
		},
		TCP:          *tcpAddr,
		TLS:          *tlsAddr,
		CertFile:     *tlsCert,
		KeyFile:      *tlsKey,
		Accepts:      *accepts,
		P99Ceiling:   time.Duration(*maxP99) * time.Millisecond,
		QueueCeiling: *maxQueue,
		RetryAfterMS: *retryAfter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "esd:", err)
		return 1
	}
	if err := fe.Listen(); err != nil {
		fmt.Fprintln(os.Stderr, "esd:", err)
		return 1
	}
	defer os.Remove(*socket)
	if *addrFile != "" {
		var lines string
		if a := fe.TCPAddr(); a != "" {
			lines += "tcp=" + a + "\n"
		}
		if a := fe.TLSAddr(); a != "" {
			lines += "tls=" + a + "\n"
		}
		if err := os.WriteFile(*addrFile, []byte(lines), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "esd:", err)
			return 1
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	drainErr := make(chan error, 1)
	go func() {
		<-sig
		drainErr <- fe.Drain(*drainTimeout)
	}()

	if err := fe.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "esd: serve:", err)
		return 1
	}
	// Serve returns nil only when draining; wait for the drain verdict.
	if err := <-drainErr; err != nil {
		fmt.Fprintln(os.Stderr, "esd:", err)
		return 1
	}
	return 0
}
