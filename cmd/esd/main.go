// Command esd is the es evaluation daemon: it serves concurrent es
// sessions over a unix-domain socket with a newline-delimited JSON
// protocol (see internal/server).
//
// Usage:
//
//	esd [-socket path] [-template image] [-pool n] [-max n] [-deadline ms] [-vet] [-drain-timeout s] [-quiet]
//
// Each session owns one interpreter spawned from a warm template (shell
// state, including function definitions, arrives through esd's own
// environment, exactly as for es itself).  With -template, the warm pool
// is instead pre-baked from a session image (written by `snapshot` or an
// esc snap frame): every session starts with that image's variables,
// functions, and spoofed hooks already installed.  A per-request deadline —
// the frame's deadline_ms, or -deadline as the default — surfaces inside
// the script as the catchable exception `signal deadline`.  With -vet,
// every eval frame passes static analysis before admission: a script with
// static errors is answered with an error frame and never evaluated.
// SIGTERM or SIGINT triggers a graceful drain: stop accepting, answer
// every request already accepted, say bye, exit 0.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"es"
	"es/internal/core"
	"es/internal/image"
	"es/internal/server"
)

func main() {
	os.Exit(run())
}

// defaultSocket puts the socket in the user's runtime dir when the
// platform provides one, /tmp otherwise.
func defaultSocket() string {
	if dir := os.Getenv("XDG_RUNTIME_DIR"); dir != "" {
		return dir + "/esd.sock"
	}
	return fmt.Sprintf("/tmp/esd-%d.sock", os.Getuid())
}

func run() int {
	var (
		socket       = flag.String("socket", defaultSocket(), "unix socket `path` to serve on")
		templateImg  = flag.String("template", "", "session `image` to pre-bake pool interpreters from")
		poolSize     = flag.Int("pool", 4, "warm pre-spawned interpreters")
		maxConc      = flag.Int("max", runtime.GOMAXPROCS(0), "max concurrent evaluations")
		deadlineMS   = flag.Int("deadline", 0, "default per-request deadline in `ms` (0 = none)")
		vet          = flag.Bool("vet", false, "statically analyze every eval and reject scripts with errors before running them")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful drain may take")
		quiet        = flag.Bool("quiet", false, "suppress lifecycle logging")
	)
	flag.Parse()

	// The template interpreter: primitives, coreutils, initial.es and the
	// process environment, initialized once; sessions are stamped out of
	// it with Spawn, so none of that work repeats per connection.
	template, err := es.New(es.Options{
		Stdout:  io.Discard,
		Stderr:  io.Discard,
		Environ: os.Environ(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "esd: startup:", err)
		return 1
	}

	newSession := func() (*core.Interp, error) {
		return template.Interp().Spawn(), nil
	}
	if *templateImg != "" {
		img, err := image.ReadFile(*templateImg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esd: template:", err)
			return 1
		}
		newSession = server.NewSessionFromImage(template.Interp(), img)
	}

	logf := func(string, ...any) {}
	if !*quiet {
		logger := log.New(os.Stderr, "", log.LstdFlags)
		logf = logger.Printf
	}
	srv, err := server.New(server.Config{
		Socket:          *socket,
		PoolSize:        *poolSize,
		MaxConcurrent:   *maxConc,
		DefaultDeadline: time.Duration(*deadlineMS) * time.Millisecond,
		Vet:             *vet,
		NewSession:      newSession,
		Logf:            logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "esd:", err)
		return 1
	}
	if err := srv.Listen(); err != nil {
		fmt.Fprintln(os.Stderr, "esd:", err)
		return 1
	}
	defer os.Remove(*socket)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	drainErr := make(chan error, 1)
	go func() {
		<-sig
		drainErr <- srv.Drain(*drainTimeout)
	}()

	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "esd: serve:", err)
		return 1
	}
	// Serve returns nil only when draining; wait for the drain verdict.
	if err := <-drainErr; err != nil {
		fmt.Fprintln(os.Stderr, "esd:", err)
		return 1
	}
	return 0
}
