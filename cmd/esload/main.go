// Command esload is the esd load harness: it drives a running daemon
// with thousands of sessions of mixed workloads over unix, TCP, or TLS,
// and reports throughput and client-observed latency quantiles.
//
// Usage:
//
//	esload [-socket path | -addr host:port [-tls ...]] [-sessions n]
//	       [-evals n] [-window w] [-tenant t] [-mix micro|deadline|snap|mixed]
//	       [-deadline ms] [-name label] [-quiet]
//
// Each session is one connection worker.  With -window > 1 (or -tenant)
// the worker opens with a hello handshake and keeps up to the granted
// window of evals in flight — the in-session pipelining path; replies are
// matched by frame id.  Mixes:
//
//	micro     cheap evals (`result 1`), the round-trip floor
//	deadline  deadline-bound spins: `while {} {}` under -deadline ms,
//	          each request costing exactly its deadline — the knob for
//	          driving a daemon into overload
//	snap      snapshot/restore churn: snap, then restore the same image
//	mixed     4 micro : 1 deadline : 1 snap
//
// Shed requests (`signal overload` / `signal quota` error frames) are
// counted separately from failures and excluded from the latency
// quantiles, so the reported p99 is that of admitted requests — the
// number an admission ceiling is supposed to protect.
//
// The one-line machine summary on stdout is shaped like a `go test`
// benchmark line (`esload/<name> <requests> <ns_per_op> ns/op ...`) so
// scripts/bench_server.sh can fold runs into BENCH_server.json next to
// the in-process benchmarks; the human summary goes to stderr.
package main

import (
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"es/internal/server"
)

func main() {
	os.Exit(run())
}

func defaultSocket() string {
	if s := os.Getenv("ESD_SOCKET"); s != "" {
		return s
	}
	if dir := os.Getenv("XDG_RUNTIME_DIR"); dir != "" {
		return dir + "/esd.sock"
	}
	return fmt.Sprintf("/tmp/esd-%d.sock", os.Getuid())
}

// tally is one worker's outcome, merged after the run.
type tally struct {
	lat      []time.Duration // admitted, answered requests
	requests int
	errors   int // transport failures and unexpected error frames
	sheds    int // signal overload / signal quota refusals
	timeouts int // signal deadline (expected under the deadline mix)
}

type loadCfg struct {
	network, target string
	tlsCfg          *tls.Config
	evals           int
	window          int
	tenant          string
	mix             string
	deadlineMS      int64
}

func run() int {
	var (
		socket     = flag.String("socket", defaultSocket(), "esd unix socket `path` (or $ESD_SOCKET)")
		addr       = flag.String("addr", "", "dial over TCP at `host:port` instead of the unix socket")
		useTLS     = flag.Bool("tls", false, "wrap the -addr connection in TLS")
		tlsCA      = flag.String("tls-ca", "", "PEM CA bundle `file` to verify the daemon against")
		tlsSkip    = flag.Bool("tls-skip-verify", false, "skip TLS certificate verification")
		sessions   = flag.Int("sessions", 50, "concurrent sessions")
		evals      = flag.Int("evals", 20, "requests per session")
		window     = flag.Int("window", 1, "pipeline window per session (>1 sends a hello)")
		tenant     = flag.String("tenant", "", "declare sessions under this quota `tenant`")
		mix        = flag.String("mix", "micro", "workload `mix`: micro, deadline, snap, or mixed")
		deadlineMS = flag.Int64("deadline", 20, "deadline in `ms` for deadline-bound requests")
		name       = flag.String("name", "", "label for the summary line (default transport_mix_wN)")
		quiet      = flag.Bool("quiet", false, "suppress the human summary on stderr")
	)
	flag.Parse()

	cfg := loadCfg{
		network: "unix", target: *socket,
		evals: *evals, window: *window, tenant: *tenant,
		mix: *mix, deadlineMS: *deadlineMS,
	}
	if *addr != "" {
		cfg.network, cfg.target = "tcp", *addr
	}
	if *useTLS {
		cfg.tlsCfg = &tls.Config{InsecureSkipVerify: *tlsSkip, MinVersion: tls.VersionTLS12}
		if host, _, err := net.SplitHostPort(*addr); err == nil {
			cfg.tlsCfg.ServerName = host
		}
		if *tlsCA != "" {
			pem, err := os.ReadFile(*tlsCA)
			if err != nil {
				fmt.Fprintln(os.Stderr, "esload:", err)
				return 1
			}
			pool := x509.NewCertPool()
			if !pool.AppendCertsFromPEM(pem) {
				fmt.Fprintln(os.Stderr, "esload: "+*tlsCA+": no certificates found")
				return 1
			}
			cfg.tlsCfg.RootCAs = pool
		}
	}
	if cfg.window < 1 {
		cfg.window = 1
	}
	switch cfg.mix {
	case "micro", "deadline", "snap", "mixed":
	default:
		fmt.Fprintf(os.Stderr, "esload: unknown mix %q\n", cfg.mix)
		return 2
	}
	label := *name
	if label == "" {
		transport := cfg.network
		if cfg.tlsCfg != nil {
			transport = "tls"
		}
		label = fmt.Sprintf("%s_%s_w%d", transport, cfg.mix, cfg.window)
	}

	tallies := make([]tally, *sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; k < *sessions; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			tallies[k] = worker(cfg)
		}(k)
	}
	wg.Wait()
	wall := time.Since(start)

	var all tally
	for _, t := range tallies {
		all.lat = append(all.lat, t.lat...)
		all.requests += t.requests
		all.errors += t.errors
		all.sheds += t.sheds
		all.timeouts += t.timeouts
	}
	if all.requests == 0 {
		fmt.Fprintln(os.Stderr, "esload: no requests completed")
		return 1
	}
	sort.Slice(all.lat, func(i, j int) bool { return all.lat[i] < all.lat[j] })
	q := func(p float64) time.Duration {
		if len(all.lat) == 0 {
			return 0
		}
		k := int(p*float64(len(all.lat))) - 1
		if k < 0 {
			k = 0
		}
		return all.lat[k]
	}
	nsPerOp := wall.Nanoseconds() / int64(all.requests)
	// The machine line: go-bench shaped so bench_server.sh's scraper can
	// fold it into BENCH_server.json next to the in-process benchmarks.
	fmt.Printf("esload/%s \t%8d\t%12d ns/op\t%12.1f req/s\t%d p99_us\n",
		label, all.requests, nsPerOp,
		float64(all.requests)/wall.Seconds(), q(0.99).Microseconds())
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"esload %s: %d sessions x %d requests over %s in %v\n"+
				"  throughput %.1f req/s   admitted p50 %v  p95 %v  p99 %v  max %v\n"+
				"  sheds %d  deadline-hits %d  errors %d\n",
			label, *sessions, *evals, cfg.network, wall.Round(time.Millisecond),
			float64(all.requests)/wall.Seconds(),
			q(0.50), q(0.95), q(0.99), q(1),
			all.sheds, all.timeouts, all.errors)
	}
	if all.errors > 0 {
		return 1
	}
	return 0
}

// dial connects one worker, with a short fixed retry so a mass of
// workers starting before the daemon's listener settles doesn't skew
// the run with connect failures.
func dial(cfg loadCfg) (net.Conn, error) {
	var err error
	for k := 0; k < 3; k++ {
		if k > 0 {
			time.Sleep(time.Duration(k) * 100 * time.Millisecond)
		}
		var conn net.Conn
		if conn, err = net.Dial(cfg.network, cfg.target); err != nil {
			continue
		}
		if cfg.tlsCfg == nil {
			return conn, nil
		}
		tc := tls.Client(conn, cfg.tlsCfg)
		if err = tc.Handshake(); err != nil {
			conn.Close()
			continue
		}
		return tc, nil
	}
	return nil, err
}

// worker drives one session to completion: hello if pipelining or
// tenancy is wanted, then cfg.evals requests with up to `window` in
// flight, replies matched by id.
func worker(cfg loadCfg) (t tally) {
	conn, err := dial(cfg)
	if err != nil {
		t.errors++
		return t
	}
	defer conn.Close()
	fr, fw := server.NewClientConn(conn)

	window := cfg.window
	if window > 1 || cfg.tenant != "" {
		if err := fw.Write(&server.Frame{Type: "hello", Window: window, Tenant: cfg.tenant}); err != nil {
			t.errors++
			return t
		}
		f, err := fr.Read()
		if err != nil || f.Type != "hello" {
			// A quota-refused tenant gets an error frame and a bye; count
			// the session as shed, not failed.
			if err == nil && f.Type == "error" && isShed(f) {
				t.sheds++
			} else {
				t.errors++
			}
			return t
		}
		if f.Window > 0 && f.Window < window {
			window = f.Window
		}
	}

	// Snapshot churn needs the previous reply's image, so it runs its
	// request pairs serially regardless of window.
	if cfg.mix == "snap" {
		for n := 0; n < cfg.evals; n++ {
			if !snapRestore(fr, fw, &t) {
				return t
			}
		}
		fw.Write(&server.Frame{Type: "bye"})
		return t
	}

	inflight := make(map[int64]time.Time, window)
	sent, recvd := 0, 0
	var image string // last snap image, for the mixed mix's snap element
	for recvd < cfg.evals {
		for sent < cfg.evals && len(inflight) < window {
			id := int64(sent + 1)
			f := requestFor(cfg, sent, image)
			f.ID = id
			if err := fw.Write(f); err != nil {
				t.errors++
				return t
			}
			inflight[id] = time.Now()
			sent++
		}
		f, err := fr.Read()
		if err != nil {
			t.errors++
			return t
		}
		if f.Type == "bye" {
			return t
		}
		start, tracked := inflight[f.ID]
		if tracked {
			delete(inflight, f.ID)
		}
		recvd++
		t.requests++
		switch {
		case f.Type == "result" || f.Type == "snap" || f.Type == "restore":
			if f.Type == "snap" {
				image = f.Image
			}
			if tracked {
				t.lat = append(t.lat, time.Since(start))
			}
		case f.Type == "error" && isShed(f):
			t.sheds++
		case f.Type == "error" && isDeadline(f):
			t.timeouts++
			if tracked {
				t.lat = append(t.lat, time.Since(start))
			}
		default:
			t.errors++
		}
	}
	fw.Write(&server.Frame{Type: "bye"})
	return t
}

// requestFor builds the n-th request of a session under the given mix.
func requestFor(cfg loadCfg, n int, image string) *server.Frame {
	kind := cfg.mix
	if kind == "mixed" {
		switch n % 6 {
		case 3:
			kind = "deadline"
		case 5:
			if image != "" {
				return &server.Frame{Type: "restore", Image: image}
			}
			return &server.Frame{Type: "snap"}
		default:
			kind = "micro"
		}
	}
	switch kind {
	case "deadline":
		return &server.Frame{Type: "eval", Src: "while {} {}", DeadlineMS: cfg.deadlineMS}
	default:
		return &server.Frame{Type: "eval", Src: fmt.Sprintf("result %d", n)}
	}
}

// snapRestore runs one serial snap+restore pair, timing each round trip.
func snapRestore(fr *server.FrameReader, fw *server.FrameWriter, t *tally) bool {
	roundTrip := func(req *server.Frame) *server.Frame {
		start := time.Now()
		if err := fw.Write(req); err != nil {
			t.errors++
			return nil
		}
		f, err := fr.Read()
		if err != nil || f.Type == "error" || f.Type == "bye" {
			t.errors++
			return nil
		}
		t.requests++
		t.lat = append(t.lat, time.Since(start))
		return f
	}
	snap := roundTrip(&server.Frame{Type: "snap"})
	if snap == nil {
		return false
	}
	return roundTrip(&server.Frame{Type: "restore", Image: snap.Image}) != nil
}

func isShed(f *server.Frame) bool {
	return len(f.Exception) >= 2 && f.Exception[0] == "signal" &&
		(f.Exception[1] == "overload" || f.Exception[1] == "quota")
}

func isDeadline(f *server.Frame) bool {
	return strings.Join(f.Exception, " ") == "signal deadline"
}
