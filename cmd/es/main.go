// Command es is the shell: an extensible command interpreter with
// first-class functions, lexical scoping, exceptions and rich return
// values, reproducing Haahr & Rakitzis, "Es: A shell with higher-order
// functions" (Winter USENIX 1993).
//
// Usage:
//
//	es [-c command] [-v] [-no-tco] [-nocompile] [file [args ...]]
//
// With no command or file, es runs interactively, driving the
// %interactive-loop hook (which is itself written in es and can be
// redefined).  Shell state — including function definitions — arrives
// through the environment, so no configuration file is read at startup.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"es"
	"es/internal/analysis"
	"es/internal/core"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		command    = flag.String("c", "", "execute `command` and exit")
		version    = flag.Bool("v", false, "print version and exit")
		noTCO      = flag.Bool("no-tco", false, "disable tail-call elimination")
		noCompile  = flag.Bool("nocompile", false, "evaluate with the tree walker instead of the bytecode engine")
		parseOnly  = flag.Bool("n", false, "parse input but do not execute it")
		checkOnly  = flag.Bool("check", false, "statically analyze input but do not execute it")
		protected  = flag.Bool("p", false, "protected: do not import function definitions from the environment")
		cacheStats = flag.Bool("cachestats", false, "report native cache hit/miss counters on exit")
	)
	flag.Parse()

	if *parseOnly {
		return checkSyntax(*command, flag.Args())
	}
	if *checkOnly {
		return checkStatic(*command, flag.Args())
	}

	environ := os.Environ()
	if *protected {
		environ = stripFunctions(environ)
	}
	sh, err := es.New(es.Options{
		Stdin:       os.Stdin,
		Stdout:      os.Stdout,
		Stderr:      os.Stderr,
		Environ:     environ,
		NoTailCalls: *noTCO,
		NoCompile:   *noCompile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "es: startup:", err)
		return 1
	}

	// Interactive exit(2) semantics, like the C implementation.
	sh.Interp().ExitFunc = os.Exit

	if *cacheStats {
		// Printed on the way out (not reached if the shell leaves via
		// $&exit, which calls exit(2) directly).
		defer printCacheStats(sh)
	}

	if *version {
		res, _ := sh.Run("version")
		fmt.Println(res.Flatten(" "))
		return 0
	}

	// SIGINT becomes the signal exception at the next command boundary;
	// the interactive loop reports it and continues.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT)
	go func() {
		for range sig {
			sh.Interp().Interrupt()
		}
	}()

	switch {
	case *command != "":
		return report(sh.Run(*command))
	case flag.NArg() > 0:
		return report(sh.RunFile(flag.Arg(0), flag.Args()[1:]...))
	default:
		return report(sh.Interactive(lineReader{bufio.NewReader(os.Stdin)}))
	}
}

// printCacheStats reports the native dispatch caches (path, parse,
// compile, decode, glob) to standard error, one line per cache.
func printCacheStats(sh *es.Shell) {
	fmt.Fprintln(os.Stderr, "es: native cache statistics:")
	for _, s := range sh.Interp().CacheStats() {
		fmt.Fprintf(os.Stderr, "  %s\n", s)
	}
}

// report converts a result or uncaught exception into a process exit
// status, which is all UNIX lets a shell return: "rich return values ...
// cannot be returned from shell scripts or other external programs,
// because the exit/wait interface only supports passing small integers."
func report(res es.List, err error) int {
	if err != nil {
		if exc, ok := err.(*es.Exception); ok && exc.Name() == "exit" {
			return statusOf(exc.Args[1:])
		}
		fmt.Fprintln(os.Stderr, "es: uncaught exception:", err)
		return 1
	}
	return statusOf(res)
}

func statusOf(res es.List) int {
	if res.True() {
		return 0
	}
	if len(res) == 1 {
		if n, err := strconv.Atoi(res[0].String()); err == nil && n >= 0 && n < 256 {
			return n
		}
	}
	return 1
}

// checkSyntax implements -n: parse the command, files, or stdin and
// report errors without executing anything.
func checkSyntax(command string, files []string) int {
	check := func(label, src string) int {
		if _, err := core.ParseCommand(src); err != nil {
			fmt.Fprintf(os.Stderr, "es: %s: %v\n", label, err)
			return 1
		}
		return 0
	}
	switch {
	case command != "":
		return check("-c", command)
	case len(files) > 0:
		status := 0
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				fmt.Fprintln(os.Stderr, "es:", err)
				status = 1
				continue
			}
			if check(f, string(src)) != 0 {
				status = 1
			}
		}
		return status
	default:
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "es:", err)
			return 1
		}
		return check("stdin", string(src))
	}
}

// checkStatic implements -check: run the static analyzer (escheck's
// engine) over the command, files, or stdin, resolving hooks, primitives
// and variables against a freshly initialized shell, and report
// diagnostics without executing anything.
func checkStatic(command string, files []string) int {
	sh, err := es.New(es.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "es: startup:", err)
		return 1
	}
	env := analysis.EnvFromInterp(sh.Interp())
	check := func(label, src string) int {
		res := analysis.Analyze(src, analysis.Options{File: label, Env: env})
		for _, d := range res.Diags {
			fmt.Fprintln(os.Stderr, d.String())
		}
		if res.Errors() > 0 {
			return 1
		}
		return 0
	}
	switch {
	case command != "":
		return check("-c", command)
	case len(files) > 0:
		status := 0
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				fmt.Fprintln(os.Stderr, "es:", err)
				status = 1
				continue
			}
			if check(f, string(src)) != 0 {
				status = 1
			}
		}
		return status
	default:
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "es:", err)
			return 1
		}
		return check("stdin", string(src))
	}
}

// stripFunctions implements -p: fn- and set- definitions inherited from
// the environment are dropped, so a hostile environment cannot redefine
// shell services ("protected" mode, as in the C implementation).
func stripFunctions(environ []string) []string {
	out := environ[:0]
	for _, kv := range environ {
		if strings.HasPrefix(kv, "fn-") || strings.HasPrefix(kv, "set-") {
			continue
		}
		out = append(out, kv)
	}
	return out
}

// lineReader adapts buffered stdin to the %parse protocol.
type lineReader struct {
	r *bufio.Reader
}

func (l lineReader) ReadLine() (string, error) {
	line, err := l.r.ReadString('\n')
	if err != nil {
		if err == io.EOF && line != "" {
			return line, nil
		}
		return "", err
	}
	return line[:len(line)-1], nil
}
