// Command esdump shows what the es front end does to a program: the
// token stream, the surface parse, and — most importantly — the rewritten
// core form, which demonstrates the paper's claim that "es's shell syntax
// is just a front for calls on built-in functions":
//
//	$ esdump -core 'ls > /tmp/foo'
//	%create 1 /tmp/foo {ls}
//
// Usage:
//
//	esdump [-tokens] [-surface] [-core] [command | -]
//	esdump -image file.esimg
//
// With no stage flags, all three are printed.  "-" (or no argument) reads
// the program from standard input.  -image instead pretty-prints a
// session image (written by `snapshot` or esc -snap): header, sections,
// and each captured variable with its marks.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"es/internal/core"
	"es/internal/image"
	"es/internal/syntax"
)

func main() {
	var (
		tokens  = flag.Bool("tokens", false, "print the token stream")
		surface = flag.Bool("surface", false, "print the surface parse")
		coreF   = flag.Bool("core", false, "print the rewritten core form")
		imageF  = flag.String("image", "", "pretty-print the session image at `file` instead")
	)
	flag.Parse()
	if *imageF != "" {
		if err := dumpImage(*imageF); err != nil {
			fmt.Fprintln(os.Stderr, "esdump:", err)
			os.Exit(1)
		}
		return
	}
	all := !*tokens && !*surface && !*coreF

	src := ""
	if flag.NArg() == 0 || flag.Arg(0) == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esdump:", err)
			os.Exit(1)
		}
		src = string(data)
	} else {
		src = flag.Arg(0)
	}

	if all || *tokens {
		if all {
			fmt.Println("tokens:")
		}
		toks, err := syntax.Lex(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esdump:", err)
			os.Exit(1)
		}
		for _, t := range toks {
			if t.Kind == syntax.EOF {
				break
			}
			fmt.Printf("  %v\n", t)
		}
	}

	blk, err := syntax.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esdump:", err)
		os.Exit(1)
	}
	if all || *surface {
		if all {
			fmt.Println("surface:")
		}
		fmt.Println(indent(all, syntax.UnparseBody(blk)))
	}
	if all || *coreF {
		if all {
			fmt.Println("core:")
		}
		fmt.Println(indent(all, syntax.UnparseBody(syntax.Rewrite(blk).(*syntax.Block))))
	}
}

func indent(yes bool, s string) string {
	if !yes {
		return s
	}
	return "  " + s
}

// dumpImage pretty-prints one session image.  Decode already verified
// the checksum, the format version, and the framing, so reaching the
// listing at all means the image is intact.
func dumpImage(path string) error {
	img, err := image.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: es session image, format %d, checksum ok\n", path, img.Format)
	if img.Es != "" {
		fmt.Printf("  es:  %s\n", img.Es)
	}
	keys := make([]string, 0, len(img.Meta))
	for k := range img.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s:  %s\n", k, img.Meta[k])
	}
	if img.Dir != "" {
		fmt.Printf("  cwd: %s\n", img.Dir)
	}
	fmt.Printf("  vars: %d\n", len(img.Vars))
	for _, v := range img.Vars {
		fmt.Printf("  %-4s %s%s\n", varFlags(v), v.Name, varValue(v))
	}
	return nil
}

func varFlags(v core.VarRecord) string {
	f := ""
	if v.NoExport {
		f += "n"
	}
	if v.Phantom {
		f += "p"
	}
	if v.Empty {
		f += "e"
	}
	if f == "" {
		f = "-"
	}
	return f
}

// varValue renders a record's value for the listing: list separators
// made visible, long values truncated — this is a summary, the bytes are
// in the file.
func varValue(v core.VarRecord) string {
	if v.Phantom {
		return ""
	}
	if v.Empty {
		return " = ()"
	}
	val := strings.ReplaceAll(v.Value, "\x01", " \x01 ")
	if len(val) > 72 {
		val = val[:72] + fmt.Sprintf("... (%d bytes)", len(v.Value))
	}
	return " = " + val
}
