// Command esdump shows what the es front end does to a program: the
// token stream, the surface parse, and — most importantly — the rewritten
// core form, which demonstrates the paper's claim that "es's shell syntax
// is just a front for calls on built-in functions":
//
//	$ esdump -core 'ls > /tmp/foo'
//	%create 1 /tmp/foo {ls}
//
// Usage:
//
//	esdump [-tokens] [-surface] [-core] [command | -]
//
// With no stage flags, all three are printed.  "-" (or no argument) reads
// the program from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"es/internal/syntax"
)

func main() {
	var (
		tokens  = flag.Bool("tokens", false, "print the token stream")
		surface = flag.Bool("surface", false, "print the surface parse")
		coreF   = flag.Bool("core", false, "print the rewritten core form")
	)
	flag.Parse()
	all := !*tokens && !*surface && !*coreF

	src := ""
	if flag.NArg() == 0 || flag.Arg(0) == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esdump:", err)
			os.Exit(1)
		}
		src = string(data)
	} else {
		src = flag.Arg(0)
	}

	if all || *tokens {
		if all {
			fmt.Println("tokens:")
		}
		toks, err := syntax.Lex(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esdump:", err)
			os.Exit(1)
		}
		for _, t := range toks {
			if t.Kind == syntax.EOF {
				break
			}
			fmt.Printf("  %v\n", t)
		}
	}

	blk, err := syntax.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esdump:", err)
		os.Exit(1)
	}
	if all || *surface {
		if all {
			fmt.Println("surface:")
		}
		fmt.Println(indent(all, syntax.UnparseBody(blk)))
	}
	if all || *coreF {
		if all {
			fmt.Println("core:")
		}
		fmt.Println(indent(all, syntax.UnparseBody(syntax.Rewrite(blk).(*syntax.Block))))
	}
}

func indent(yes bool, s string) string {
	if !yes {
		return s
	}
	return "  " + s
}
