package es

// Differential testing of the two evaluation engines: every program is
// run through the compiled bytecode engine and the tree walker, and the
// two must agree on output, result, and exception shape.  The fuzz
// target extends the same check to arbitrary inputs (seeded with the
// syntax fuzzer's corpus shapes), with externals disabled so generated
// programs cannot launch processes.

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// diffOutcome is one engine's observable behaviour for a program.
type diffOutcome struct {
	output string
	result string
	errMsg string
}

const diffDeadlineReason = "difftest-deadline"

// runEngine evaluates src on one engine, hermetically: no externals, a
// private working directory, deterministic stand-ins for the
// counter-reporting primitives, and a deadline so `forever {}` inputs
// terminate.
func runEngine(t *testing.T, src, dir string, nocompile bool, deadline time.Duration) diffOutcome {
	t.Helper()
	var buf bytes.Buffer
	sh, err := New(Options{Stdout: &buf, Stderr: &buf, NoCompile: nocompile, Dir: dir})
	if err != nil {
		t.Fatalf("startup: %v", err)
	}
	sh.Interp().NoExternals = true
	// These report process-global or wall-clock state that legitimately
	// differs between two runs; pin them so they cannot cause spurious
	// mismatches (dispatch itself is still exercised).
	for _, name := range []string{"time", "cachestats", "serverstats"} {
		sh.RegisterPrim(name, func(i *Interp, ctx *Ctx, args List) (List, error) {
			return StrList("stubbed"), nil
		})
	}
	done := make(chan struct{})
	timer := time.AfterFunc(deadline, func() { close(done) })
	defer timer.Stop()
	sh.Interp().SetCancel(done, diffDeadlineReason)
	res, rerr := sh.Run(src)
	o := diffOutcome{output: buf.String()}
	if rerr != nil {
		o.errMsg = rerr.Error()
	} else {
		o.result = res.Flatten(" \x00 ")
	}
	// Each engine runs in its own private directory; scrub the path so
	// error messages and echoed filenames compare equal.
	o.output = strings.ReplaceAll(o.output, dir, "<dir>")
	o.result = strings.ReplaceAll(o.result, dir, "<dir>")
	o.errMsg = strings.ReplaceAll(o.errMsg, dir, "<dir>")
	return o
}

// diffCompare runs src on both engines and fails on any observable
// divergence.  It reports whether the comparison was performed (false
// when a deadline fired, where the engines may legitimately stop at
// different points).
func diffCompare(t *testing.T, src string, deadline time.Duration) bool {
	t.Helper()
	compiled := runEngine(t, src, t.TempDir(), false, deadline)
	walked := runEngine(t, src, t.TempDir(), true, deadline)
	if strings.Contains(compiled.errMsg, diffDeadlineReason) ||
		strings.Contains(walked.errMsg, diffDeadlineReason) {
		return false
	}
	if compiled != walked {
		t.Errorf("engines disagree on %q:\n compiled: %+v\n   walker: %+v", src, compiled, walked)
	}
	return true
}

// TestDifferentialEngines pins engine agreement over a battery of
// programs covering every opcode, the word-evaluation fast paths, and
// the exception machinery.
func TestDifferentialEngines(t *testing.T) {
	programs := []string{
		// constants, grouping, sequencing
		"result a b c",
		"{result a; result b}",
		"; ; ",
		"{}",
		// assignment and variables
		"x = 1 2 3; echo $x; echo $#x; echo $x(2); echo $^x",
		"x = a b; y = $x $x; echo $#y",
		"x = (a b); echo $x(2 1)",
		"x = ; echo $#x",
		"echo $nosuchvar; echo $#nosuchvar",
		"x = val; n = x; echo $$n",
		// concatenation (and its failure shape)
		"echo a^b; x = 1 2; echo p$x; echo $x^s",
		"x = 1 2; y = 3 4 5; echo $x^$y",
		"echo ()^a",
		// let / local / for
		"let (x = 1) {let (y = 2) {echo $x $y}}",
		"x = outer; let (x = inner) {echo $x}; echo $x",
		"x = outer; local (x = inner) {echo $x}; echo $x",
		"for (i = a b c) echo $i",
		"for (i = 1 2; j = x) echo $i $j",
		"for (i = ) echo $i",
		// match and extraction
		"~ foo f*; echo $0",
		"if {~ foo f*} {echo yes} {echo no}",
		"if {~ foo b*} {echo yes} {echo no}",
		"~~ foo.c *.c",
		"echo <={~~ hello.txt *.*}",
		"if {~ () ()} {echo empty-true}",
		"x = abc; ~ $x a*; echo matched $0",
		// not
		"! result 0",
		"! {result a}",
		"!",
		// closures, functions, higher-order use
		"fn greet who {echo hello, $who}; greet world",
		"f = @ x {result $x $x}; $f dup",
		"fn apply cmd args {for (i = $args) $cmd $i}; apply @ x {echo got $x} 1 2",
		"fn outer {fn-inner = @ {result nested}; inner}; outer",
		// tail recursion through the trampoline
		"fn count n {if {~ $n 0} {result done} {count <={%count-down $n}}}; fn-%count-down = @ n {result 0}; count 5",
		// exceptions
		"throw error src boom",
		"catch @ e args {echo caught $e $args} {throw error here oops}",
		"catch @ e {result rescued} {nosuchcommand}",
		"fn f {return early; echo unreached}; f",
		"for (i = 1 2 3) {if {~ $i 2} {break}; echo $i}",
		// substitutions
		"echo `{result a b}",
		"echo pre`{result mid}post",
		"echo <={result rich values}",
		"x = <={result one}; echo $x",
		// primitives, direct and spoofed
		"$&result direct",
		"echo <={$&count a b c}",
		"$&nosuchprim",
		"fn-%pathsearch = @ name {throw error %pathsearch spoofed $name}; catch @ e args {echo $args} {definitely-not-a-command}",
		// quoting and glob-free wildcards against an empty directory
		"echo 'a b'; echo a*z; echo '*'",
		"echo [abc]x?",
		// fsplit / flatten style library words
		"echo <={%fsplit : a:b:c}",
		// settors
		"set-watched = @ {echo set to $*; result $*}; watched = v1; echo $watched",
		// local with settor interplay
		"set-v = @ {result $*}; v = init; local (v = tmp) {echo $v}; echo $v",
		// deep word shapes
		"echo (a (b c) d)",
		"x = (1 2 3); echo $x(3)$x(1)",
		"echo $#; echo $0",
		// eval / dot-ish
		"eval 'echo evaluated'",
		"x = 'echo nested'; eval $x",
		// whatis / var
		"fn probe {result p}; echo <={%whatis probe}",
		"var x",
		// here-strings and redirection shells (hermetic: files in tmpdir)
		"echo data > f; cat f",
		"echo one > f; echo two >> f; cat f",
		"cat < /dev/null",
		// subscript error shape
		"x = a b; echo $x(bad)",
		// bad concatenation error shape through dynamic path
		"y = 1 2; z = 3 4 5; echo $y^$z",
		// externals disabled error shape (deterministic in both engines)
		"/bin/definitely-not-here",
		"nosuchcmd arg",
	}
	for _, src := range programs {
		if !diffCompare(t, src, 5*time.Second) {
			t.Logf("deadline hit, skipped: %q", src)
		}
	}
}

// FuzzDifferentialEval: both engines must agree on anything the parser
// accepts.  Hermetic: no externals, private tmpdirs, deadline-bounded.
func FuzzDifferentialEval(f *testing.F) {
	seeds := []string{
		"fn apply cmd args {for (i = $args) $cmd $i}",
		"let (x = a; y = b) {echo $x $y}",
		"catch @ e msg {throw $e} {result body}",
		"echo $#x $$y $^z",
		"x = ({result a} 'q w' $v(1 2) pre$mid.suf)",
		"~ $subj a* [b-d]? 'lit'",
		"x = 1 2; echo $x^s",
		"echo `{result a b} <={result c}",
		"throw error x y; echo unreached",
		"for (i = 1 2 3) {if {~ $i 2} {break done}; echo $i}",
		"$&result a; $&nosuchprim; $&count 1 2",
		"! {~ a b}",
		"local (x = 1) {let (y = $x) {result $y}}",
		"a ^^ b",
		"fn-%x = $&result; %x hooked",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1024 {
			t.Skip("oversized input")
		}
		diffCompare(t, src, 2*time.Second)
	})
}
