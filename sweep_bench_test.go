package es

// Parameter sweeps backing the experiment index: how Figure 1's profiling
// overhead scales with pipeline length, and how Figure 2's caching win
// scales with $path length.

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"es/internal/core"
)

// BenchmarkFig1ByElements sweeps pipeline length with and without the
// timing spoof.
func BenchmarkFig1ByElements(b *testing.B) {
	for _, elems := range []int{2, 4, 8} {
		pipeline := "echo seed"
		for k := 1; k < elems; k++ {
			pipeline += " | cat"
		}
		for _, spoofed := range []bool{false, true} {
			name := fmt.Sprintf("elems=%d/spoof=%v", elems, spoofed)
			b.Run(name, func(b *testing.B) {
				sh, err := New(Options{Stdout: io.Discard, Stderr: io.Discard})
				if err != nil {
					b.Fatal(err)
				}
				if spoofed {
					if _, err := sh.Run(pipeSpoof); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, err := sh.Run(pipeline); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig2ByPathLength sweeps the number of directories on $path:
// cold lookups grow linearly, cached lookups stay flat — the crossover
// the Figure 2 spoof exists for.
func BenchmarkFig2ByPathLength(b *testing.B) {
	for _, ndirs := range []int{8, 32, 128} {
		for _, cached := range []bool{false, true} {
			name := fmt.Sprintf("dirs=%d/cached=%v", ndirs, cached)
			b.Run(name, func(b *testing.B) {
				sh := pathBenchShell(b, ndirs)
				if cached {
					benchRun(b, sh, "whatis benchtool >[1=]")
				}
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					benchRun(b, sh, "whatis benchtool >[1=]")
					if !cached {
						b.StopTimer()
						benchRun(b, sh, "recache")
						b.StartTimer()
					}
				}
			})
		}
	}
}

// BenchmarkNativePathByLength sweeps $path length for the NATIVE
// pathsearch memo (no es-level spoof): cold lookups grow with the number
// of directories, cached lookups stay flat — the same crossover as
// Figure 2, now built into $&pathsearch.
func BenchmarkNativePathByLength(b *testing.B) {
	for _, ndirs := range []int{8, 32, 128} {
		for _, cached := range []bool{false, true} {
			name := fmt.Sprintf("dirs=%d/cached=%v", ndirs, cached)
			b.Run(name, func(b *testing.B) {
				sh := nativePathShell(b, ndirs)
				benchRun(b, sh, "whatis benchtool >[1=]")
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if !cached {
						b.StopTimer()
						benchRun(b, sh, "recache")
						b.StartTimer()
					}
					benchRun(b, sh, "whatis benchtool >[1=]")
				}
			})
		}
	}
}

// BenchmarkTailCallByDepth shows the stack behaviour: with the trampoline
// the per-iteration cost stays flat; without it each level adds Go stack.
func BenchmarkTailCallByDepth(b *testing.B) {
	for _, depth := range []int{100, 400, 1600} {
		for _, tco := range []bool{true, false} {
			name := fmt.Sprintf("depth=%d/tco=%v", depth, tco)
			b.Run(name, func(b *testing.B) {
				sh := tcoShell(b, !tco, depth)
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					benchRun(b, sh, "drain $big")
				}
			})
		}
	}
}

// BenchmarkEnvDecode measures lazy vs eager decoding of an inherited
// environment (the startup mechanism of E5).
func BenchmarkEnvDecode(b *testing.B) {
	parent, err := New(Options{Stdout: io.Discard, Stderr: io.Discard})
	if err != nil {
		b.Fatal(err)
	}
	var defs strings.Builder
	for k := 0; k < 32; k++ {
		fmt.Fprintf(&defs, "let (c%d = v%d) fn imported%d x {echo $c%d $x}\n", k, k, k, k)
	}
	if _, err := parent.Run(defs.String()); err != nil {
		b.Fatal(err)
	}
	env := parent.Interp().ExportEnv()

	b.Run("import-lazy", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			sh, err := New(Options{Environ: env})
			if err != nil {
				b.Fatal(err)
			}
			_ = sh
		}
	})
	b.Run("import-and-touch-all", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			sh, err := New(Options{Environ: env})
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < 32; k++ {
				sh.Get(fmt.Sprintf("fn-imported%d", k))
			}
		}
	})
	// The same workload with the process-wide decode memo dropped each
	// round: the before/after pair for the native decode cache.
	b.Run("import-and-touch-all-cold", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			core.FlushDecodeCache()
			sh, err := New(Options{Environ: env})
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < 32; k++ {
				sh.Get(fmt.Sprintf("fn-imported%d", k))
			}
		}
	})
}
