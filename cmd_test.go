package es

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	dumpBinOnce sync.Once
	dumpBinPath string
	dumpBinErr  error
)

func buildEsdump(t *testing.T) string {
	t.Helper()
	dumpBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "esdumpbin")
		if err != nil {
			dumpBinErr = err
			return
		}
		dumpBinPath = filepath.Join(dir, "esdump")
		cmd := exec.Command("go", "build", "-o", dumpBinPath, "./cmd/esdump")
		cmd.Dir = mustGetwd()
		if out, err := cmd.CombinedOutput(); err != nil {
			dumpBinErr = err
			t.Logf("go build: %s", out)
		}
	})
	if dumpBinErr != nil {
		t.Skipf("cannot build esdump: %v", dumpBinErr)
	}
	return dumpBinPath
}

func TestEsdumpCoreForms(t *testing.T) {
	bin := buildEsdump(t)
	tests := []struct{ src, want string }{
		{"ls > /tmp/foo", "%create 1 /tmp/foo {ls}\n"},
		{"a | b | c", "%pipe {a} 1 0 {b} 1 0 {c}\n"},
		{"a && b || c", "%or {%and {a} {b}} {c}\n"},
		{"sleep 9 &", "%background {sleep 9}\n"},
		{"fn d {date}", "fn-d = {date}\n"},
	}
	for _, tt := range tests {
		out, err := exec.Command(bin, "-core", tt.src).Output()
		if err != nil {
			t.Fatalf("esdump -core %q: %v", tt.src, err)
		}
		if string(out) != tt.want {
			t.Errorf("esdump -core %q = %q, want %q", tt.src, out, tt.want)
		}
	}
}

func TestEsdumpAllStagesAndStdin(t *testing.T) {
	bin := buildEsdump(t)
	cmd := exec.Command(bin)
	cmd.Stdin = strings.NewReader("echo hi > f\n")
	out, err := cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{"tokens:", "surface:", "core:", "echo hi > f", "%create 1 f {echo hi}"} {
		if !strings.Contains(s, want) {
			t.Errorf("esdump output missing %q:\n%s", want, s)
		}
	}
}

func TestEsdumpParseError(t *testing.T) {
	bin := buildEsdump(t)
	var stderr bytes.Buffer
	cmd := exec.Command(bin, "-core", "{unclosed")
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Fatal("esdump should fail on a parse error")
	}
	if !strings.Contains(stderr.String(), "expected") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestEsBinaryVersionAndTco(t *testing.T) {
	bin := buildEs(t)
	out, err := exec.Command(bin, "-v").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "es-go") {
		t.Errorf("-v = %q", out)
	}
	// -no-tco still runs shallow programs.
	out, err = exec.Command(bin, "-no-tco", "-c", "echo ok").Output()
	if err != nil || string(out) != "ok\n" {
		t.Errorf("-no-tco: %q, %v", out, err)
	}
}

// The es binary reports uncaught exceptions on stderr with status 1.
func TestEsBinaryUncaughtException(t *testing.T) {
	bin := buildEs(t)
	var stderr bytes.Buffer
	cmd := exec.Command(bin, "-c", "throw grue darkness")
	cmd.Stderr = &stderr
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("status: %v", err)
	}
	if !strings.Contains(stderr.String(), "uncaught exception: grue darkness") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

var (
	fmtBinOnce sync.Once
	fmtBinPath string
	fmtBinErr  error
)

func buildEsfmt(t *testing.T) string {
	t.Helper()
	fmtBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "esfmtbin")
		if err != nil {
			fmtBinErr = err
			return
		}
		fmtBinPath = filepath.Join(dir, "esfmt")
		cmd := exec.Command("go", "build", "-o", fmtBinPath, "./cmd/esfmt")
		cmd.Dir = mustGetwd()
		if out, err := cmd.CombinedOutput(); err != nil {
			fmtBinErr = err
			t.Logf("go build: %s", out)
		}
	})
	if fmtBinErr != nil {
		t.Skipf("cannot build esfmt: %v", fmtBinErr)
	}
	return fmtBinPath
}

// esfmt formats the paper's trace function exactly as the paper typesets
// it.
func TestEsfmtTraceGolden(t *testing.T) {
	bin := buildEsfmt(t)
	cmd := exec.Command(bin)
	cmd.Stdin = strings.NewReader(
		"fn trace functions {for (func = $functions) let (old = $(fn-$func)) fn $func args {echo calling $func $args; $old $args}}\n")
	out, err := cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	want := `fn trace functions {
	for (func = $functions)
		let (old = $(fn-$func))
			fn $func args {
				echo calling $func $args
				$old $args
			}
}
`
	if string(out) != want {
		t.Errorf("esfmt output:\n%s\nwant:\n%s", out, want)
	}
}

// esfmt -w is idempotent and preserves program meaning on every shipped
// script.
func TestEsfmtShippedScripts(t *testing.T) {
	bin := buildEsfmt(t)
	wd := mustGetwd()
	files, _ := filepath.Glob(filepath.Join(wd, "lib", "*.es"))
	files = append(files, filepath.Join(wd, "testdata", "selftest.es"))
	for _, f := range files {
		out1, err := exec.Command(bin, f).Output()
		if err != nil {
			t.Errorf("esfmt %s: %v", f, err)
			continue
		}
		// Idempotence: formatting the formatted output changes nothing.
		cmd := exec.Command(bin)
		cmd.Stdin = strings.NewReader(string(out1))
		out2, err := cmd.Output()
		if err != nil {
			t.Errorf("esfmt reformat %s: %v", f, err)
			continue
		}
		if string(out1) != string(out2) {
			t.Errorf("esfmt not idempotent on %s", f)
		}
	}
}

func TestEsfmtRejectsBadInput(t *testing.T) {
	bin := buildEsfmt(t)
	cmd := exec.Command(bin)
	cmd.Stdin = strings.NewReader("{unclosed\n")
	if err := cmd.Run(); err == nil {
		t.Error("esfmt should fail on a parse error")
	}
}

func TestEsParseOnly(t *testing.T) {
	bin := buildEs(t)
	if err := exec.Command(bin, "-n", "-c", "fn f {ok}").Run(); err != nil {
		t.Errorf("-n of valid program: %v", err)
	}
	if err := exec.Command(bin, "-n", "-c", "{unclosed").Run(); err == nil {
		t.Error("-n of invalid program should fail")
	}
	// -n never executes: no output, no side effects.
	out, err := exec.Command(bin, "-n", "-c", "echo should-not-run").Output()
	if err != nil || len(out) != 0 {
		t.Errorf("-n executed: %q %v", out, err)
	}
	// Files and stdin.
	dir := t.TempDir()
	good := filepath.Join(dir, "good.es")
	os.WriteFile(good, []byte("echo hi\n"), 0o644)
	bad := filepath.Join(dir, "bad.es")
	os.WriteFile(bad, []byte("'unterminated\n"), 0o644)
	if err := exec.Command(bin, "-n", good).Run(); err != nil {
		t.Errorf("-n good file: %v", err)
	}
	if err := exec.Command(bin, "-n", good, bad).Run(); err == nil {
		t.Error("-n with a bad file should fail")
	}
	cmd := exec.Command(bin, "-n")
	cmd.Stdin = strings.NewReader("a | b\n")
	if err := cmd.Run(); err != nil {
		t.Errorf("-n stdin: %v", err)
	}
}

func TestEsProtectedMode(t *testing.T) {
	bin := buildEs(t)
	hostile := append(os.Environ(),
		"fn-echo=@ * {$&echo HIJACKED}",
		"set-x=@ {$&echo settor-hijack; return $*}")
	run := func(protected bool) string {
		args := []string{"-c", "echo safe?; x = v"}
		if protected {
			args = append([]string{"-p"}, args...)
		}
		cmd := exec.Command(bin, args...)
		cmd.Env = hostile
		out, _ := cmd.CombinedOutput()
		return string(out)
	}
	unprotected := run(false)
	if !strings.Contains(unprotected, "HIJACKED") || !strings.Contains(unprotected, "settor-hijack") {
		t.Errorf("environment functions should apply without -p: %q", unprotected)
	}
	protected := run(true)
	if strings.Contains(protected, "HIJACKED") || strings.Contains(protected, "hijack") {
		t.Errorf("-p did not strip inherited functions: %q", protected)
	}
	if !strings.Contains(protected, "safe?") {
		t.Errorf("-p broke normal operation: %q", protected)
	}
}
