package es

// The benchmark harness: one benchmark (or benchmark pair) per experiment
// in EXPERIMENTS.md, regenerating every figure and quantified claim of
// the paper's evaluation.  Run with:
//
//	go test -bench=. -benchmem .
//
// E1 — Figure 1: the %pipe profiling spoof (vs. the unspoofed pipeline).
// E2 — Figure 2: %pathsearch caching, cold vs. cached lookups.
// E3 — Figure 3: interactive-loop turns.
// E4 — GC: collector overhead replaying the live interpreter's
//      allocation profile (the "roughly 4%" claim).
// E5 — environment functions: startup with state in the environment vs.
//      sourcing an rc file.
// E7 — future work implemented: tail-call elimination ablation.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"es/internal/analysis"
	"es/internal/core"
	"es/internal/frontend"
	"es/internal/gc"
	"es/internal/image"
	"es/internal/server"
)

func benchShell(b *testing.B) *Shell {
	b.Helper()
	sh, err := New(Options{Stdout: io.Discard, Stderr: io.Discard})
	if err != nil {
		b.Fatal(err)
	}
	return sh
}

func benchRun(b *testing.B, sh *Shell, src string) List {
	b.Helper()
	res, err := sh.Run(src)
	if err != nil {
		b.Fatalf("%s: %v", src, err)
	}
	return res
}

// ---- E1: Figure 1 ----

// BenchmarkFig1PipeProfile runs the paper's word-frequency pipeline with
// the %pipe timing spoof installed.
func BenchmarkFig1PipeProfile(b *testing.B) {
	sh := benchShell(b)
	benchRun(b, sh, pipeSpoof)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, wordFreqPipeline)
	}
}

// BenchmarkFig1PipeBaseline is the same pipeline without the spoof; the
// difference is the cost of profiling through the hook mechanism.
func BenchmarkFig1PipeBaseline(b *testing.B) {
	sh := benchShell(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, wordFreqPipeline)
	}
}

// ---- E2: Figure 2 ----

// nativePathShell builds a shell whose $path is ndirs directories with
// benchtool in the last one — native dispatch only, no es-level spoof.
func nativePathShell(b *testing.B, ndirs int) *Shell {
	b.Helper()
	sh := benchShell(b)
	root := b.TempDir()
	dirs := make([]string, ndirs)
	for k := range dirs {
		dirs[k] = filepath.Join(root, fmt.Sprintf("bin%03d", k))
		if err := os.MkdirAll(dirs[k], 0o755); err != nil {
			b.Fatal(err)
		}
	}
	tool := filepath.Join(dirs[ndirs-1], "benchtool")
	if err := os.WriteFile(tool, []byte("#!/bin/true\n"), 0o755); err != nil {
		b.Fatal(err)
	}
	if err := sh.Set("path", dirs...); err != nil {
		b.Fatal(err)
	}
	return sh
}

func pathBenchShell(b *testing.B, ndirs int) *Shell {
	b.Helper()
	sh := nativePathShell(b, ndirs)
	benchRun(b, sh, pathCacheSpoof)
	return sh
}

// BenchmarkFig2PathSearchCold measures lookups that walk all of $path
// (the cache is dropped each iteration, as recache does).
func BenchmarkFig2PathSearchCold(b *testing.B) {
	sh := pathBenchShell(b, 32)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, "whatis benchtool >[1=]")
		benchRun(b, sh, "recache")
	}
}

// BenchmarkFig2PathSearchCached measures lookups answered by the fn-
// variable the Figure 2 spoof installed.
func BenchmarkFig2PathSearchCached(b *testing.B) {
	sh := pathBenchShell(b, 32)
	benchRun(b, sh, "whatis benchtool >[1=]") // warm the cache
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, "whatis benchtool >[1=]")
	}
}

// ---- native dispatch caches ----

// BenchmarkNativePathSearchCold measures uncached native dispatch: every
// lookup walks all of $path because $&recache drops the memo each round.
func BenchmarkNativePathSearchCold(b *testing.B) {
	sh := nativePathShell(b, 32)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, "whatis benchtool >[1=]")
		b.StopTimer()
		benchRun(b, sh, "recache")
		b.StartTimer()
	}
}

// BenchmarkNativePathSearchCached measures the same lookup served by the
// native pathsearch memo inside $&pathsearch — the Figure 2 win without
// any es-level spoof.
func BenchmarkNativePathSearchCached(b *testing.B) {
	sh := nativePathShell(b, 32)
	benchRun(b, sh, "whatis benchtool >[1=]") // warm the native cache
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, "whatis benchtool >[1=]")
	}
}

// BenchmarkParseCold measures parsing with the memo flushed each
// iteration; BenchmarkParse (below) now reports the cached cost.
func BenchmarkParseCold(b *testing.B) {
	src := "fn apply cmd args {for (i = $args) $cmd $i}; a | b > f && c"
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		core.FlushParseCache()
		if _, err := core.ParseCommand(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlobMatchLoop exercises the compiled-glob cache the way shell
// loops do: one pattern matched against many subjects, repeatedly.
func BenchmarkGlobMatchLoop(b *testing.B) {
	sh := benchShell(b)
	benchRun(b, sh, "files = a.c b.c c.h d.c e.go f.c g.h h.c")
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, "for (f = $files) ~ $f *.[ch]")
	}
}

// ---- E3: Figure 3 ----

type benchReader struct {
	line string
	n    int
}

func (r *benchReader) ReadLine() (string, error) {
	if r.n <= 0 {
		return "", io.EOF
	}
	r.n--
	return r.line, nil
}

// BenchmarkFig3ReplTurn measures one full interactive-loop turn — prompt,
// %parse, evaluate — through the es-coded Figure 3 loop.
func BenchmarkFig3ReplTurn(b *testing.B) {
	sh := benchShell(b)
	b.ResetTimer()
	b.StopTimer()
	// Feed b.N commands through one Interactive session.
	r := &benchReader{line: "x = <>{%flatten / a b}", n: b.N}
	b.StartTimer()
	if _, err := sh.Interactive(r); err != nil {
		b.Fatal(err)
	}
}

// ---- E4: GC ----

// shellProfile derives a per-command allocation profile from a real,
// instrumented interpreter run (the paper's observations made concrete).
func shellProfile(b *testing.B) (gc.CommandProfile, time.Duration) {
	b.Helper()
	sh := benchShell(b)
	sh.Interp().Alloc.Trace = true
	workload := `
for (k = 1 2 3 4 5 6 7 8 9 10) {
	x = one two three $k
	y = $x $x
	let (z = $y^suffix) {
		s = <>{%flatten : $z}
	}
	if {~ $k 5} {marker = reached $k}
}
` + wordFreqPipeline
	start := time.Now()
	if _, err := sh.Run(workload); err != nil {
		b.Fatal(err)
	}
	wall := time.Since(start)
	a := sh.Interp().Alloc
	cmds := a.Commands
	if cmds == 0 {
		cmds = 1
	}
	p := gc.CommandProfile{
		Terms:    int(a.Terms / cmds),
		Conses:   int(a.Lists / cmds),
		Closures: int(a.Closures/cmds) + 1,
		Bindings: int(a.Bindings/cmds) + 1,
		Retained: 2,
		StrLen:   12,
		EnvSize:  64,
	}
	return p, wall / time.Duration(cmds)
}

// BenchmarkGCReplay measures raw collector throughput on the live-derived
// profile; the reported gc-frac metric is collection time as a fraction
// of the real shell's per-command runtime — the paper's 4% measurement.
func BenchmarkGCReplay(b *testing.B) {
	profile, perCmd := shellProfile(b)
	h := gc.NewHeap(4096)
	b.ResetTimer()
	stats := gc.Replay(h, profile, b.N)
	b.StopTimer()
	if b.N > 0 {
		gcPerCmd := time.Duration(int64(stats.GCTime) / int64(b.N))
		b.ReportMetric(float64(gcPerCmd)/float64(perCmd)*100, "gc-frac-%")
		b.ReportMetric(float64(stats.Collections)/float64(b.N)*1000, "collections/1000cmd")
	}
}

// BenchmarkGCCollect measures a single collection over a live set of the
// size the replayed shell retains.
func BenchmarkGCCollect(b *testing.B) {
	h := gc.NewHeap(8192)
	env := gc.Nil
	h.AddRoot(&env)
	for k := 0; k < 512; k++ {
		v := h.String("value-string")
		h.AddRoot(&v)
		env = h.Binding("var", v, env)
		h.RemoveRoot(&v)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		h.Collect()
	}
	b.ReportMetric(float64(h.Stats().LiveAfterGC), "live-objects")
}

// BenchmarkGCDebugMode shows the cost of the collect-at-every-allocation
// debugging collector.
func BenchmarkGCDebugMode(b *testing.B) {
	h := gc.NewHeap(512)
	h.Debug = true
	keep := gc.Nil
	h.AddRoot(&keep)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		keep = h.Cons(h.String("x"), gc.Nil)
	}
}

// ---- E5: startup ----

// startupDefs is shell state a user might accumulate: 24 function
// definitions with captured bindings.
func startupDefs() string {
	var sb strings.Builder
	for k := 0; k < 24; k++ {
		fmt.Fprintf(&sb, "let (v%d = val%d) fn helper%d a {echo $v%d $a}\n", k, k, k, k)
	}
	return sb.String()
}

// BenchmarkStartupEnv starts a shell whose state arrives through the
// environment, as es does: no configuration file is read.
func BenchmarkStartupEnv(b *testing.B) {
	parent := benchShell(b)
	benchRun(b, parent, startupDefs())
	env := parent.Interp().ExportEnv()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		sh, err := New(Options{Environ: env})
		if err != nil {
			b.Fatal(err)
		}
		_ = sh
	}
}

// BenchmarkStartupRcFile starts a shell the traditional way: reading and
// evaluating an rc file with the same definitions.
func BenchmarkStartupRcFile(b *testing.B) {
	rc := filepath.Join(b.TempDir(), "esrc")
	if err := os.WriteFile(rc, []byte(startupDefs()), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		sh, err := New(Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sh.RunFile(rc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStartupBare is the floor: initial.es only.
func BenchmarkStartupBare(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := New(Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E7: tail calls ----

const drainDef = `
fn drain head tail {
	if {~ $#head 0} {result done} {drain $tail}
}`

func tcoShell(b *testing.B, disable bool, n int) *Shell {
	b.Helper()
	sh, err := New(Options{Stdout: io.Discard, Stderr: io.Discard, NoTailCalls: disable})
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]string, n)
	for k := range vals {
		vals[k] = "x"
	}
	sh.Interp().SetVarRaw("big", core.StrList(vals...))
	benchRun(b, sh, drainDef)
	return sh
}

// BenchmarkTailCallOpt drains a 400-element list by tail recursion with
// the trampoline on (constant evaluation stack).
func BenchmarkTailCallOpt(b *testing.B) {
	sh := tcoShell(b, false, 400)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, "drain $big")
	}
}

// BenchmarkTailCallNaive is the ablation: the same recursion with nested
// Go frames, the C implementation's behaviour the paper calls an
// "implementation deficiency which we hope to remedy".
func BenchmarkTailCallNaive(b *testing.B) {
	sh := tcoShell(b, true, 400)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, "drain $big")
	}
}

// ---- microbenchmarks ----

func BenchmarkParse(b *testing.B) {
	src := "fn apply cmd args {for (i = $args) $cmd $i}; a | b > f && c"
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := core.ParseCommand(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalSimple(b *testing.B) {
	sh := benchShell(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, "result a b c")
	}
}

func BenchmarkApplyFunction(b *testing.B) {
	sh := benchShell(b)
	benchRun(b, sh, "fn f a b {result $b $a}")
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, "f one two")
	}
}

func BenchmarkPipeBuiltins(b *testing.B) {
	sh := benchShell(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		benchRun(b, sh, "echo data | cat")
	}
}

func BenchmarkEnvExport(b *testing.B) {
	sh := benchShell(b)
	benchRun(b, sh, startupDefs())
	i := sh.Interp()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if len(i.ExportEnv()) == 0 {
			b.Fatal("empty env")
		}
	}
}

func BenchmarkForkClone(b *testing.B) {
	sh := benchShell(b)
	benchRun(b, sh, startupDefs())
	i := sh.Interp()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if i.Fork() == nil {
			b.Fatal("fork failed")
		}
	}
}

// ---- the bytecode engine: compiled vs tree-walking evaluation ----

// benchEnginePair runs one workload on both evaluation engines as
// sub-benchmarks, so the compile step's win (or any regression) reads
// directly off `go test -bench EngineEval`.  Parse and compile caches
// are warmed before timing: the pair isolates steady-state evaluation,
// which is where the engines differ.
func benchEnginePair(b *testing.B, setup, src string) {
	b.Helper()
	for _, mode := range []struct {
		name      string
		nocompile bool
	}{{"compiled", false}, {"walker", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sh, err := New(Options{Stdout: io.Discard, Stderr: io.Discard, NoCompile: mode.nocompile})
			if err != nil {
				b.Fatal(err)
			}
			if setup != "" {
				benchRun(b, sh, setup)
			}
			benchRun(b, sh, src)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				benchRun(b, sh, src)
			}
		})
	}
}

// BenchmarkEngineEvalSimple: the smallest command — primitive dispatch
// plus constant-word materialization.
func BenchmarkEngineEvalSimple(b *testing.B) {
	benchEnginePair(b, "", "result a b c")
}

// BenchmarkEngineEvalCall: function application through fn- lookup and
// the trampoline.
func BenchmarkEngineEvalCall(b *testing.B) {
	benchEnginePair(b, "fn f a b {result $b $a}", "f one two")
}

// BenchmarkEngineEvalWords: word evaluation — splicing, subscripts,
// concatenation, counting — the type-switch-heaviest walker path.
func BenchmarkEngineEvalWords(b *testing.B) {
	benchEnginePair(b,
		"x = alpha beta gamma delta",
		"y = $x $x(2) pre^$x(1)^post $#x; result $#y")
}

// BenchmarkEngineEvalLoop: a match loop over a list — pre-compiled
// static patterns against per-iteration bindings.
func BenchmarkEngineEvalLoop(b *testing.B) {
	benchEnginePair(b,
		"files = a.c b.c c.h d.c e.go f.c g.h h.c",
		"for (f = $files) ~ $f *.[ch]")
}

// BenchmarkEngineEvalScope: let/local dynamic extents and settor-free
// assignment.
func BenchmarkEngineEvalScope(b *testing.B) {
	benchEnginePair(b, "",
		"let (a = 1) {local (b = 2) {c = $a $b; result $c}}")
}

// ---- serving layer: esd over a unix socket ----

// benchServer starts an in-process evaluation server backed by a warm
// template, exactly as cmd/esd wires it.
func benchServer(b *testing.B) string {
	b.Helper()
	template := benchShell(b)
	sock := filepath.Join(b.TempDir(), "esd.sock")
	srv, err := server.New(server.Config{
		Socket:   sock,
		PoolSize: 8,
		NewSession: func() (*core.Interp, error) {
			return template.Interp().Spawn(), nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	b.Cleanup(func() {
		if err := srv.Drain(10 * time.Second); err != nil {
			b.Error(err)
		}
	})
	return sock
}

func benchServerEval(b *testing.B, fr *server.FrameReader, fw *server.FrameWriter, n int64) {
	if err := fw.Write(&server.Frame{Type: "eval", ID: n, Src: "result 0"}); err != nil {
		b.Fatal(err)
	}
	f, err := fr.Read()
	if err != nil {
		b.Fatal(err)
	}
	if f.Type != "result" || !f.True {
		b.Fatalf("reply = %+v", f)
	}
}

// BenchmarkServerEval measures one request round-trip through the full
// serving stack — frame codec, mailbox, semaphore, interpreter, metrics —
// for a single client and for concurrent clients (one session each).
func BenchmarkServerEval(b *testing.B) {
	b.Run("sequential", func(b *testing.B) {
		sock := benchServer(b)
		conn, err := net.Dial("unix", sock)
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		fr, fw := server.NewClientConn(conn)
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			benchServerEval(b, fr, fw, int64(n))
		}
	})
	b.Run("parallel", func(b *testing.B) {
		sock := benchServer(b)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			conn, err := net.Dial("unix", sock)
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			fr, fw := server.NewClientConn(conn)
			var n int64
			for pb.Next() {
				n++
				benchServerEval(b, fr, fw, n)
			}
		})
	})
}

// benchTCPServer starts a frontend with a TCP listener next to the unix
// socket and returns the bound TCP address.
func benchTCPServer(b *testing.B) string {
	b.Helper()
	template := benchShell(b)
	fe, err := frontend.New(frontend.Config{
		Server: server.Config{
			Socket:   filepath.Join(b.TempDir(), "esd.sock"),
			PoolSize: 8,
			NewSession: func() (*core.Interp, error) {
				return template.Interp().Spawn(), nil
			},
		},
		TCP: "127.0.0.1:0",
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := fe.Listen(); err != nil {
		b.Fatal(err)
	}
	go fe.Serve()
	b.Cleanup(func() {
		if err := fe.Drain(10 * time.Second); err != nil {
			b.Error(err)
		}
	})
	return fe.TCPAddr()
}

// BenchmarkServerEvalTCP is the round-trip over the TCP front end, serial
// (one request in flight, paying a network RTT per eval) against
// pipelined (a hello-negotiated window keeps the connection full, so the
// RTT is amortized across the window).
func BenchmarkServerEvalTCP(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		addr := benchTCPServer(b)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		fr, fw := server.NewClientConn(conn)
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			benchServerEval(b, fr, fw, int64(n))
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		addr := benchTCPServer(b)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		fr, fw := server.NewClientConn(conn)
		if err := fw.Write(&server.Frame{Type: "hello", Window: 16}); err != nil {
			b.Fatal(err)
		}
		if f, err := fr.Read(); err != nil || f.Type != "hello" || f.Window < 2 {
			b.Fatalf("hello = %+v, %v", f, err)
		}
		b.ResetTimer()
		// The writer floods evals; the server's window plus TCP
		// backpressure bound how far it runs ahead of the reads.
		go func() {
			for n := 0; n < b.N; n++ {
				if err := fw.Write(&server.Frame{Type: "eval", ID: int64(n), Src: "result 0"}); err != nil {
					return
				}
			}
		}()
		for n := 0; n < b.N; n++ {
			f, err := fr.Read()
			if err != nil {
				b.Fatal(err)
			}
			if f.Type != "result" || !f.True {
				b.Fatalf("reply = %+v", f)
			}
		}
	})
}

// BenchmarkServerSessionSpawn is the warm-pool rationale: the cost of
// stamping one session interpreter out of the initialized template.
func BenchmarkServerSessionSpawn(b *testing.B) {
	template := benchShell(b)
	i := template.Interp()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if i.Spawn() == nil {
			b.Fatal("spawn failed")
		}
	}
}

// benchImage captures a session image carrying a realistic amount of
// user state, for the pre-baked-pool benchmarks.
func benchImage(b *testing.B) *image.Image {
	loaded := benchShell(b)
	src := "fn work x {result $x $x}; fn-%pathsearch = @ n {result /spoof/$n}\n"
	for k := 0; k < 16; k++ {
		src += fmt.Sprintf("state%d = one two three four\n", k)
	}
	if _, err := loaded.Run(src); err != nil {
		b.Fatal(err)
	}
	return image.Capture(loaded.Interp(), nil)
}

// BenchmarkServerSessionFromImage is the pre-baked pool: the image is
// restored once onto a template and sessions are stamped out with Spawn.
// The point of pre-baking is that this tracks BenchmarkServerSessionSpawn
// rather than BenchmarkServerSessionRestore — the restore cost is paid
// once, not per session.
func BenchmarkServerSessionFromImage(b *testing.B) {
	template := benchShell(b)
	newSession := server.NewSessionFromImage(template.Interp(), benchImage(b))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s, err := newSession()
		if err != nil || s == nil {
			b.Fatal("session from image failed")
		}
	}
}

// BenchmarkServerSessionRestore is the alternative pre-baking replaces:
// restoring the image onto every session individually.
func BenchmarkServerSessionRestore(b *testing.B) {
	template := benchShell(b)
	img := benchImage(b)
	i := template.Interp()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s := i.Spawn()
		img.Restore(s)
	}
}

// ---- static analysis: the escheck pass ----

// BenchmarkAnalyze measures one full analysis pass — parse, reference
// and hook resolution, structure lint, effect summary — over a
// representative script, with the registry environment prebuilt the way
// every production surface (escheck, esd -vet, $&analyze) holds it.
func BenchmarkAnalyze(b *testing.B) {
	sh := benchShell(b)
	env := analysis.EnvFromInterp(sh.Interp())
	src := `
fn count-matches pat files {
	let (n = 0) {
		for (f = $files) {
			if {~ $f $pat} {n = <>{%count $n $n}}
		}
		result $n
	}
}
fn %pathsearch name {
	if {~ $name benchtool} {result /opt/bin/benchtool} {$&pathsearch $name}
}
files = a.c b.c c.h d.go
matches = <>{count-matches *.[ch] $files}
echo found $matches | wc
`
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res := analysis.Analyze(src, analysis.Options{Env: env})
		if res.Errors() != 0 {
			b.Fatalf("unexpected errors: %+v", res.Diags)
		}
	}
}

var _ = bytes.MinRead
