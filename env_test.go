package es

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestEnvClosureRoundTrip is E5 in-process: a closure with captured
// lexical bindings survives export to environment strings and re-import
// by a fresh interpreter.
func TestEnvClosureRoundTrip(t *testing.T) {
	sh1, out1, _ := newTestShell(t)
	runOut(t, sh1, out1, "let (a=b) fn foo {echo $a}")
	runOut(t, sh1, out1, "fn greet who {echo hello, $who}")
	runOut(t, sh1, out1, "colors = red green blue")

	env := sh1.Interp().ExportEnv()

	var out2 bytes.Buffer
	sh2, err := New(Options{Stdout: &out2, Environ: env})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh2.Run("foo"); err != nil {
		t.Fatalf("foo in child: %v", err)
	}
	if _, err := sh2.Run("greet world"); err != nil {
		t.Fatalf("greet in child: %v", err)
	}
	if got := out2.String(); got != "b\nhello, world\n" {
		t.Errorf("child output = %q", got)
	}
	if got := sh2.Get("colors").Flatten(","); got != "red,green,blue" {
		t.Errorf("colors = %q", got)
	}
}

// Settor functions pass through the environment too.
func TestEnvSettorRoundTrip(t *testing.T) {
	sh1, out1, _ := newTestShell(t)
	runOut(t, sh1, out1, "set-z = @ {echo settor ran; return $*}")
	env := sh1.Interp().ExportEnv()

	var out2 bytes.Buffer
	sh2, err := New(Options{Stdout: &out2, Environ: env})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh2.Run("z = 1"); err != nil {
		t.Fatal(err)
	}
	if out2.String() != "settor ran\n" {
		t.Errorf("settor output = %q", out2.String())
	}
}

// The path/PATH aliasing works on imported environments: a conventional
// colon-separated PATH becomes the es list path.
func TestEnvPathAliasing(t *testing.T) {
	var out bytes.Buffer
	sh, err := New(Options{Stdout: &out, Environ: []string{"PATH=/bin:/usr/bin:/opt/x"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.Get("path").Flatten(","); got != "/bin,/usr/bin,/opt/x" {
		t.Errorf("path = %q", got)
	}
	// And the other way: assigning path updates PATH.
	if _, err := sh.Run("path = /a /b"); err != nil {
		t.Fatal(err)
	}
	if got := sh.Get("PATH").Flatten(""); got != "/a:/b" {
		t.Errorf("PATH = %q", got)
	}
	if got := sh.Get("path").Flatten(","); got != "/a,/b" {
		t.Errorf("path after assign = %q", got)
	}
}

// Multi-word values cross the environment with the \001 separator.
func TestEnvListSeparator(t *testing.T) {
	sh1, out1, _ := newTestShell(t)
	runOut(t, sh1, out1, "words = alpha 'two words' gamma")
	env := sh1.Interp().ExportEnv()
	found := false
	for _, kv := range env {
		if strings.HasPrefix(kv, "words=") {
			found = true
			if kv != "words=alpha\x01two words\x01gamma" {
				t.Errorf("encoded = %q", kv)
			}
		}
	}
	if !found {
		t.Fatal("words not exported")
	}
	sh2, err := New(Options{Environ: env})
	if err != nil {
		t.Fatal(err)
	}
	v := sh2.Get("words")
	if len(v) != 3 || v[1].String() != "two words" {
		t.Errorf("imported words = %v", v)
	}
}

var (
	esBinOnce sync.Once
	esBinPath string
	esBinErr  error
)

// buildEs builds the real es binary once per test run.
func buildEs(t *testing.T) string {
	t.Helper()
	esBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "esbin")
		if err != nil {
			esBinErr = err
			return
		}
		esBinPath = filepath.Join(dir, "es")
		cmd := exec.Command("go", "build", "-o", esBinPath, "./cmd/es")
		cmd.Dir = mustGetwd()
		if out, err := cmd.CombinedOutput(); err != nil {
			esBinErr = err
			t.Logf("go build: %s", out)
		}
	})
	if esBinErr != nil {
		t.Skipf("cannot build es binary: %v", esBinErr)
	}
	return esBinPath
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}

// TestSubshellInheritsFunctions is E5 with real processes: the parent
// shell defines functions, then runs the real es binary as an external
// command; the child receives fn- definitions through the environment —
// no configuration file involved — exactly the paper's mechanism that
// makes "shell startup very quick".
func TestSubshellInheritsFunctions(t *testing.T) {
	bin := buildEs(t)
	sh, out, errw := newTestShell(t)
	runOut(t, sh, out, "fn greet who {echo hello, $who}")
	runOut(t, sh, out, "let (sep = ::) fn wrap x {echo $sep $x $sep}")
	got := runOut(t, sh, out, bin+" -c 'greet world; wrap mid'")
	if got != "hello, world\n:: mid ::\n" {
		t.Errorf("child output = %q (stderr: %q)", got, errw.String())
	}
}

// A spoofed hook inherited through the environment changes the child's
// behaviour too: the noclobber %create spoof survives the process
// boundary.
func TestSubshellInheritsSpoof(t *testing.T) {
	bin := buildEs(t)
	sh, out, errw := newTestShell(t)
	dir := t.TempDir()
	runOut(t, sh, out, "cd "+dir)
	runOut(t, sh, out, `
let (create = $fn-%create)
fn %create fd file cmd {
	if {test -f $file} {
		throw error $file exists
	} {
		$create $fd $file $cmd
	}
}`)
	runOut(t, sh, out, "echo v1 > guarded")
	// The child es inherits fn-%create; its redirection refuses to
	// clobber.
	out.Reset()
	res, err := sh.Run(bin + " -c 'echo v2 > guarded'")
	if err != nil {
		t.Fatalf("child run: %v", err)
	}
	if res.True() {
		t.Errorf("child should have failed (stderr %q)", errw.String())
	}
	if !strings.Contains(errw.String(), "guarded exists") {
		t.Errorf("stderr = %q", errw.String())
	}
	data, _ := os.ReadFile(filepath.Join(dir, "guarded"))
	if string(data) != "v1\n" {
		t.Errorf("guarded clobbered: %q", data)
	}
}

// The es binary works end to end: -c, scripts, stdin REPL, exit status.
func TestEsBinaryBasics(t *testing.T) {
	bin := buildEs(t)

	outB, err := exec.Command(bin, "-c", "echo one | tr a-z A-Z").Output()
	if err != nil {
		t.Fatalf("-c: %v", err)
	}
	if string(outB) != "ONE\n" {
		t.Errorf("-c output = %q", outB)
	}

	// Script file with arguments in $*.
	dir := t.TempDir()
	script := filepath.Join(dir, "s.es")
	if err := os.WriteFile(script, []byte("echo script got $*\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	outB, err = exec.Command(bin, script, "a", "b").Output()
	if err != nil {
		t.Fatalf("script: %v", err)
	}
	if string(outB) != "script got a b\n" {
		t.Errorf("script output = %q", outB)
	}

	// Interactive from stdin; exit status via exit.
	cmd := exec.Command(bin)
	cmd.Stdin = strings.NewReader("echo interactive\nexit 7\n")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	err = cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 7 {
		t.Fatalf("exit status: %v", err)
	}
	if stdout.String() != "interactive\n" {
		t.Errorf("stdout = %q", stdout.String())
	}

	// Failing status propagates.
	err = exec.Command(bin, "-c", "false").Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Errorf("false status: %v", err)
	}
}
