package es

// Tests for the paper's "Interactions with Unix" section: flattening for
// external programs, descriptor plumbing, signals, and the exit/wait
// status squeeze.

import (
	"strings"
	"testing"

	"es/internal/core"
)

// "In es, once a construct is surrounded by braces, it can be stored or
// passed to a program with no fear of mangling": a fragment handed to an
// external program arrives as its unparsed source, one argv entry.
func TestFragmentsPassUnmangledToPrograms(t *testing.T) {
	sh, out, _ := newTestShell(t)
	// A builtin registered like an external: it reports its raw argv.
	sh.RegisterBuiltin("argv-probe", func(i *Interp, ctx *Ctx, argv []string) int {
		for _, a := range argv[1:] {
			ctx.Stdout().Write([]byte("[" + a + "]\n"))
		}
		return 0
	})
	got := runOut(t, sh, out, "argv-probe {ls | wc} plain @ x {echo $x}")
	want := "[{%pipe {ls} 1 0 {wc}}]\n[plain]\n[@ x {echo $x}]\n"
	if got != want {
		t.Errorf("argv = %q, want %q", got, want)
	}
}

// Pipes on non-standard descriptors: |[2] connects stderr to the next
// element's stdin.
func TestPipeStderr(t *testing.T) {
	sh, out, _ := newTestShell(t)
	got := runOut(t, sh, out, "{echo to-stdout; echo to-stderr >[1=2]} |[2] tr a-z A-Z")
	if !strings.Contains(got, "TO-STDERR") {
		t.Errorf("stderr pipe = %q", got)
	}
	if !strings.Contains(got, "to-stdout") || strings.Contains(got, "TO-STDOUT") {
		t.Errorf("stdout leaked into the pipe: %q", got)
	}
}

// Pipeline state isolation: assignments in pipeline elements do not leak
// (every element runs in a subshell, as in the C implementation).
func TestPipelineElementIsolation(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "leak = before; {leak = inside; echo x} | cat")
	if got := sh.Get("leak").Flatten(""); got != "before" {
		t.Errorf("pipeline leaked assignment: %q", got)
	}
}

// Exceptions cannot propagate out of a pipeline element; "a message is
// printed ... and a false exit status is returned."
func TestPipelineExceptionContained(t *testing.T) {
	sh, out, errw := newTestShell(t)
	res, err := sh.Run("{throw error inside-pipe} | cat")
	_ = out
	if err != nil {
		t.Fatalf("exception escaped the pipeline: %v", err)
	}
	if !strings.Contains(errw.String(), "inside-pipe") {
		t.Errorf("exception not reported: %q", errw.String())
	}
	_ = res
}

// Signals surface as the signal exception; the Figure 3 loop reports and
// resumes.
func TestSignalInInteractiveLoop(t *testing.T) {
	sh, out, errw := newTestShell(t)
	// The interrupt arrives while the second command runs: its output is
	// discarded (as ^C discards the in-flight command), the loop reports
	// the signal and resumes with the third.
	lines := []string{"echo before", "echo never-printed", "echo after"}
	r := &interruptingReader{lines: lines, interp: sh.Interp()}
	res, err := sh.Interactive(r)
	if err != nil {
		t.Fatalf("Interactive: %v", err)
	}
	if out.String() != "before\nafter\n" {
		t.Errorf("stdout = %q, want before/after only", out.String())
	}
	if !strings.Contains(errw.String(), "uncaught exception: signal sigint") {
		t.Errorf("signal not reported: %q", errw.String())
	}
	_ = res
}

// interruptingReader raises a SIGINT-equivalent between the first and
// second command.
type interruptingReader struct {
	lines  []string
	pos    int
	interp *core.Interp
}

func (r *interruptingReader) ReadLine() (string, error) {
	if r.pos == 1 {
		r.interp.Interrupt()
	}
	if r.pos >= len(r.lines) {
		return "", errEOF{}
	}
	l := r.lines[r.pos]
	r.pos++
	return l, nil
}

type errEOF struct{}

func (errEOF) Error() string { return "EOF" }

// The %prompt hook is user-redefinable (paper: "provided for the user to
// redefine, and by default does nothing").
func TestPromptHookSpoof(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "fn %prompt {echo PROMPT-HOOK}")
	out.Reset()
	if _, err := sh.Interactive(&scriptReader{lines: []string{"echo cmd"}}); err != nil {
		t.Fatal(err)
	}
	want := "PROMPT-HOOK\ncmd\nPROMPT-HOOK\n"
	if out.String() != want {
		t.Errorf("prompt hook transcript = %q, want %q", out.String(), want)
	}
}

// Redirection failures are error exceptions with the system message.
func TestRedirectionErrors(t *testing.T) {
	sh, _, _ := newTestShell(t)
	_, err := sh.Run("echo x > /nonexistent-dir-zz/file")
	if !IsException(err, "error") {
		t.Errorf("create error = %v", err)
	}
	_, err = sh.Run("cat < /nonexistent-file-zz")
	if !IsException(err, "error") {
		t.Errorf("open error = %v", err)
	}
	// Bad descriptor numbers are rejected by the primitives.
	_, err = sh.Run("%create x f {cmd}")
	if !IsException(err, "error") {
		t.Errorf("bad fd = %v", err)
	}
}

// Background jobs: apid, wait, and result delivery through the job table.
func TestBackgroundPipelineOfBuiltins(t *testing.T) {
	sh, out, _ := newTestShell(t)
	// No buffer resets until the job has been waited for: the background
	// pipeline owns the output streams until then.
	if _, err := sh.Run("{echo bg | tr a-z A-Z} &"); err != nil {
		t.Fatal(err)
	}
	apid := sh.Get("apid").Flatten("")
	if _, err := sh.Run("wait " + apid + "; echo done"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "done") || !strings.Contains(got, "BG") {
		t.Errorf("background transcript = %q", got)
	}
}
