package es

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// libShell builds a shell with the repository's lib/ scripts reachable.
func libShell(t *testing.T) (*Shell, *strings.Builder, *strings.Builder) {
	t.Helper()
	var out, errw strings.Builder
	sh, err := New(Options{Stdout: &out, Stderr: &errw})
	if err != nil {
		t.Fatal(err)
	}
	return sh, &out, &errw
}

func source(t *testing.T, sh *Shell, lib string) {
	t.Helper()
	wd, _ := os.Getwd()
	if _, err := sh.Run(". " + filepath.Join(wd, "lib", lib)); err != nil {
		t.Fatalf("source %s: %v", lib, err)
	}
}

func TestLibTrace(t *testing.T) {
	sh, out, _ := libShell(t)
	source(t, sh, "trace.es")
	if _, err := sh.Run("fn greet who {echo hi $who}; trace greet; greet tester"); err != nil {
		t.Fatal(err)
	}
	want := "calling greet tester\nhi tester\n"
	if out.String() != want {
		t.Errorf("traced output = %q, want %q", out.String(), want)
	}
}

func TestLibNoclobber(t *testing.T) {
	sh, _, _ := libShell(t)
	dir := t.TempDir()
	if _, err := sh.Run("cd " + dir); err != nil {
		t.Fatal(err)
	}
	source(t, sh, "noclobber.es")
	if _, err := sh.Run("echo v1 > f"); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Run("echo v2 > f"); err == nil {
		t.Fatal("noclobber did not refuse")
	}
	data, _ := os.ReadFile(filepath.Join(dir, "f"))
	if string(data) != "v1\n" {
		t.Errorf("f = %q", data)
	}
}

func TestLibPathcache(t *testing.T) {
	sh, _, _ := libShell(t)
	dir := t.TempDir()
	tool := filepath.Join(dir, "cachedtool")
	if err := os.WriteFile(tool, []byte("#!/bin/true\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	sh.Set("path", dir)
	source(t, sh, "pathcache.es")
	if _, err := sh.Run("whatis cachedtool >[1=]"); err != nil {
		t.Fatal(err)
	}
	if got := sh.Get("fn-cachedtool").Flatten(""); got != tool {
		t.Errorf("fn-cachedtool = %q", got)
	}
	if _, err := sh.Run("recache"); err != nil {
		t.Fatal(err)
	}
	if got := sh.Get("fn-cachedtool"); len(got) != 0 {
		t.Errorf("cache not dropped: %v", got)
	}
}

func TestLibProfile(t *testing.T) {
	sh, out, errw := libShell(t)
	source(t, sh, "profile.es")
	if _, err := sh.Run("echo data | cat"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "data\n" {
		t.Errorf("pipeline output = %q", out.String())
	}
	if strings.Count(errw.String(), "\n") != 2 {
		t.Errorf("want 2 timing lines, got %q", errw.String())
	}
}

func TestLibWatch(t *testing.T) {
	sh, out, _ := libShell(t)
	source(t, sh, "watch.es")
	if _, err := sh.Run("watch v; v = one two"); err != nil {
		t.Fatal(err)
	}
	want := "old v =\nnew v = one two\n"
	if out.String() != want {
		t.Errorf("watch output = %q, want %q", out.String(), want)
	}
	// unwatch removes the settor.
	out.Reset()
	if _, err := sh.Run("unwatch v; v = three"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "" {
		t.Errorf("unwatch left settor active: %q", out.String())
	}
}

func TestLibAutoload(t *testing.T) {
	sh, out, _ := libShell(t)
	autolib := t.TempDir()
	script := "fn lazily-loaded {echo loaded on demand}\n"
	if err := os.WriteFile(filepath.Join(autolib, "lazily-loaded.es"), []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	sh.Set("autolib", autolib)
	sh.Set("path") // nothing on the real path
	source(t, sh, "autoload.es")
	if _, err := sh.Run("lazily-loaded"); err != nil {
		t.Fatalf("autoload failed: %v", err)
	}
	if out.String() != "loaded on demand\n" {
		t.Errorf("autoloaded output = %q", out.String())
	}
	// Unknown commands still fail.
	if _, err := sh.Run("never-defined-anywhere"); err == nil {
		t.Error("missing command should still throw")
	}
}

func TestLibMkcd(t *testing.T) {
	sh, _, _ := libShell(t)
	root := t.TempDir()
	sh.Run("cd " + root)
	source(t, sh, "mkcd.es")
	sh.Set("cd-create-silently", "1")
	if _, err := sh.Run("cd brand/new/dir"); err != nil {
		t.Fatalf("mkcd: %v", err)
	}
	want := filepath.Join(root, "brand/new/dir")
	if sh.Interp().Dir() != want {
		t.Errorf("dir = %q, want %q", sh.Interp().Dir(), want)
	}
	// Existing directories keep working.
	if _, err := sh.Run("cd " + root); err != nil {
		t.Fatal(err)
	}
}

func TestLibList(t *testing.T) {
	sh, sout, _ := libShell(t)
	source(t, sh, "list.es")
	out := func() string { s := sout.String(); sout.Reset(); return s }
	run := func(src string) string {
		sout.Reset()
		if _, err := sh.Run(src); err != nil {
			t.Fatalf("Run(%q): %v", src, err)
		}
		return out()
	}
	tests := []struct{ src, want string }{
		{"echo <>{map @ x {result $x$x} a b c}", "aa bb cc\n"},
		{"echo <>{map @ x {result '<'$x'>'} solo}", "<solo>\n"},
		{"echo <>{filter @ x {~ $x [aeiou]} q a z e}", "a e\n"},
		{"echo <>{foldl @ acc x {result $acc$x} '' 1 2 3}", "123\n"},
		{"echo <>{reverse 1 2 3}", "3 2 1\n"},
		{"echo <>{iota 4}", "1 2 3 4\n"},
		{"echo <>{zip-with @ a b {result $a^-^$b} {result 1 2} {result x y}}", "1-x 2-y\n"},
	}
	for _, tt := range tests {
		if got := run(tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
	boolTests := []struct {
		src  string
		want bool
	}{
		{"member b a b c", true},
		{"member q a b c", false},
		{"all @ x {~ $x [0-9]} 1 2 3", true},
		{"all @ x {~ $x [0-9]} 1 x 3", false},
		{"any @ x {~ $x x} 1 x 3", true},
		{"any @ x {~ $x x} 1 2 3", false},
	}
	for _, tt := range boolTests {
		res, err := sh.Run(tt.src)
		if err != nil {
			t.Errorf("%q: %v", tt.src, err)
			continue
		}
		if res.True() != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, res.True(), tt.want)
		}
	}
	// Composition with closures from other lib functions.
	if got := run("echo <>{map @ x {result $x} <>{filter @ x {! ~ $x b} a b c}}"); got != "a c\n" {
		t.Errorf("compose = %q", got)
	}
}
