// Pipeprofile reproduces Figure 1 of the paper: timing each element of a
// pipeline by spoofing %pipe, "along the lines of the pipeline profiler
// suggested by Jon Bentley".
//
// It runs the paper's word-frequency pipeline over a bundled corpus; the
// six most frequent words appear on stdout and one timing line per
// pipeline element on stderr, in the paper's `2r 0.3u 0.2s cat paper9`
// format.
//
// Run with: go run ./examples/pipeprofile [file]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"es"
)

const pipeSpoof = `
let (pipe = $fn-%pipe) {
	fn %pipe first out in rest {
		if {~ $#out 0} {
			time $first
		} {
			$pipe {time $first} $out $in {%pipe $rest}
		}
	}
}`

func main() {
	corpus := filepath.Join("testdata", "paper.txt")
	if len(os.Args) > 1 {
		corpus = os.Args[1]
	}
	if _, err := os.Stat(corpus); err != nil {
		log.Fatalf("corpus %s: %v (run from the repository root)", corpus, err)
	}

	sh, err := es.New(es.Options{Stdout: os.Stdout, Stderr: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sh.Run(pipeSpoof); err != nil {
		log.Fatal(err)
	}

	fmt.Println("word frequencies (stdout) and per-element timings (stderr):")
	pipeline := fmt.Sprintf(
		`cat %s | tr -cs a-zA-Z0-9 '\012' | sort | uniq -c | sort -nr | sed 6q`,
		corpus)
	if _, err := sh.Run(pipeline); err != nil {
		log.Fatal(err)
	}
}
