// Pathcache reproduces Figure 2 of the paper: caching the full pathnames
// of executables by spoofing %pathsearch.  "Es does not provide this
// functionality in the shell, but it can easily be added by any user who
// wants it."
//
// The program builds a synthetic $path of N mostly-empty directories with
// the target binary in the last one, then measures lookups before and
// after the cache warms, and demonstrates recache.
//
// Run with: go run ./examples/pathcache [ndirs]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"es"
)

const pathCacheSpoof = `
let (search = $fn-%pathsearch) {
	fn %pathsearch prog {
		let (file = <>{$search $prog}) {
			if {~ $#file 1 && ~ $file /*} {
				path-cache = $path-cache $prog
				fn-$prog = $file
			}
			return $file
		}
	}
}
fn recache {
	for (i = $path-cache)
		fn-$i =
	path-cache =
}`

func main() {
	ndirs := 64
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil {
			ndirs = n
		}
	}

	root, err := os.MkdirTemp("", "pathcache")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	dirs := make([]string, ndirs)
	for k := range dirs {
		dirs[k] = filepath.Join(root, fmt.Sprintf("bin%03d", k))
		if err := os.MkdirAll(dirs[k], 0o755); err != nil {
			log.Fatal(err)
		}
	}
	target := filepath.Join(dirs[ndirs-1], "mytool")
	if err := os.WriteFile(target, []byte("#!/bin/true\n"), 0o755); err != nil {
		log.Fatal(err)
	}

	sh, err := es.New(es.Options{Stdout: os.Stdout, Stderr: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}
	if err := sh.Set("path", dirs...); err != nil {
		log.Fatal(err)
	}
	if _, err := sh.Run(pathCacheSpoof); err != nil {
		log.Fatal(err)
	}

	// whatis resolves a name exactly like command dispatch: through the
	// fn- cache when it is warm, through the (spoofed) %pathsearch hook
	// when it is cold.
	lookup := func() time.Duration {
		start := time.Now()
		if _, err := sh.Run("whatis mytool >[1=]"); err != nil {
			log.Fatal(err)
		}
		return time.Since(start)
	}

	cold := lookup()
	warm := lookup()
	fmt.Printf("path of %d directories, target in the last\n", ndirs)
	fmt.Printf("cold lookup (walks $path):     %v\n", cold)
	fmt.Printf("cached lookup (fn- variable):  %v\n", warm)
	fmt.Printf("cache contents: path-cache = %v\n", sh.Get("path-cache").Strings())
	fmt.Printf("fn-mytool = %v\n", sh.Get("fn-mytool").Strings())

	if _, err := sh.Run("recache"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recache: path-cache = %v, fn-mytool = %v\n",
		sh.Get("path-cache").Strings(), sh.Get("fn-mytool").Strings())
	recold := lookup()
	fmt.Printf("post-recache lookup (cold again): %v\n", recold)
}
