// Gcreport reproduces the paper's garbage-collection measurements: it
// replays shell allocation profiles through the copying collector and
// reports the fraction of running time spent collecting (the paper:
// "roughly 4% of the running time of the shell"), collection counts, and
// live-data stability across workloads.
//
// Run with: go run ./examples/gcreport [commands]
package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"es/internal/gc"
)

func main() {
	commands := 20000
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil {
			commands = n
		}
	}

	profiles := []struct {
		name string
		p    gc.CommandProfile
		heap int
	}{
		{"interactive (default)", gc.DefaultProfile, 4096},
		{"loop-heavy (obs. 2)", loopProfile(), 4096},
		{"big environment", bigEnvProfile(), 8192},
		{"tight heap", gc.DefaultProfile, gc.MinHeap},
	}

	fmt.Printf("replaying %d command cycles per profile\n\n", commands)
	fmt.Printf("%-24s %10s %8s %8s %10s %10s %8s\n",
		"profile", "allocated", "GCs", "grows", "live", "GC time", "GC frac")
	for _, pr := range profiles {
		h := gc.NewHeap(pr.heap)
		start := time.Now()
		stats := gc.Replay(h, pr.p, commands)
		wall := time.Since(start)
		frac := float64(stats.GCTime) / float64(wall) * 100
		fmt.Printf("%-24s %10d %8d %8d %10d %10v %7.1f%%\n",
			pr.name, stats.Allocated, stats.Collections, stats.Grows,
			stats.LiveAfterGC, stats.GCTime.Round(time.Microsecond), frac)
	}

	fmt.Println("\ndebug collector (collect at every allocation, old space poisoned):")
	h := gc.NewHeap(512)
	h.Debug = true
	start := time.Now()
	stats := gc.Replay(h, gc.DefaultProfile, commands/100)
	fmt.Printf("%-24s %10d %8d collections in %v\n",
		"debug mode", stats.Allocated, stats.Collections,
		time.Since(start).Round(time.Millisecond))
	fmt.Println("\nthe paper reports collection taking roughly 4% of shell runtime;")
	fmt.Println("see EXPERIMENTS.md (E4) for the calibrated comparison.")
}

func loopProfile() gc.CommandProfile {
	p := gc.DefaultProfile
	p.LoopDepth = 16
	return p
}

func bigEnvProfile() gc.CommandProfile {
	p := gc.DefaultProfile
	p.EnvSize = 1024
	return p
}
