// Spoofing walks through the paper's "Spoofing" section: every shell
// service is a %-hook over an unoverridable $&-primitive, so redirection,
// cd, path search and even the REPL can be replaced from the shell.
//
// Run with: go run ./examples/spoofing
package main

import (
	"fmt"
	"log"
	"os"

	"es"
)

func main() {
	sh, err := es.New(es.Options{Stdout: os.Stdout, Stderr: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}
	must := func(src string) {
		if _, err := sh.Run(src); err != nil {
			log.Fatalf("%s: %v", src, err)
		}
	}

	dir, err := os.MkdirTemp("", "spoofing")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	must("cd " + dir)

	os.Stdout.WriteString("-- what the rewriter does: ls > file IS %create 1 file {ls} --\n")
	must(`%create 1 via-hook {echo written through the hook}`)
	must(`cat via-hook`)

	os.Stdout.WriteString("\n-- noclobber: spoofing %create (the paper's example) --\n")
	must(`
let (create = $fn-%create)
fn %create fd file cmd {
	if {test -f $file} {
		throw error $file exists
	} {
		$create $fd $file $cmd
	}
}`)
	must(`echo first version > precious`)
	if _, err := sh.Run(`echo second version > precious`); err != nil {
		fmt.Println("redirection refused:", err)
	}
	must(`cat precious`)

	fmt.Println("\n-- tracing calls by wrapping fn- variables --")
	must(`
fn trace functions {
	for (func = $functions)
		let (old = $(fn-$func))
			fn $func args {
				echo calling $func $args
				$old $args
			}
}
fn greet who {echo hello, $who}
trace greet
greet world`)

	os.Stdout.WriteString("\n-- counting pipeline elements by spoofing %pipe --\n")
	must(`
pipeline-elements = 0
let (pipe = $fn-%pipe) {
	fn %pipe args {
		pipeline-elements = <>{$&count $pipeline-elements x}
		$pipe $args
	}
}
echo spoofed pipes still work | tr a-z A-Z | cat`)
	fmt.Printf("elements seen by the spoof: %s\n",
		sh.Get("pipeline-elements").Flatten(" "))

	fmt.Println("\n-- the primitive remains reachable: $&create bypasses the hook --")
	must(`$&create 1 clobber-me {echo one}`)
	must(`$&create 1 clobber-me {echo two}`)
	must(`cat clobber-me`)
}
