// Embedding demonstrates the paper's future-work item — "a 'library'
// version of es which could be used stand-alone as a shell or linked in
// other programs" — by using es as the scripting language of a toy build
// tool: Go registers domain primitives, and the "build file" is an es
// script that composes them with shell functions, closures and
// exceptions.
//
// Run with: go run ./examples/embedding
package main

import (
	"fmt"
	"log"
	"os"

	"es"
)

// The build file: ordinary es.  Targets are closures; `needs` recurses
// through the dependency graph; a failure anywhere aborts via the
// exception machinery.
const buildScript = `
fn target name body {
	fn-target-$name = $body
}
fn needs targets {
	for (t = $targets) {
		build $t
	}
}
fn build name {
	if {~ $#(built-$name) 0} {
		built-$name = yes
		let (body = $(fn-target-$name)) {
			if {~ $#body 0} {
				throw error no rule to make target $name
			}
			echo '==' building $name
			$body
		}
	}
}

target lib {
	compile src/lib.go
}
target app {
	needs lib
	compile src/app.go
	link app lib
}
target test {
	needs app
	run-tests app
}
`

func main() {
	sh, err := es.New(es.Options{Stdout: os.Stdout, Stderr: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}

	// Domain primitives provided by the host program.  They are
	// $&-primitives: visible to the script, impossible to redefine.
	step := func(verb string) es.PrimFunc {
		return func(i *es.Interp, ctx *es.Ctx, args es.List) (es.List, error) {
			fmt.Fprintf(ctx.Stdout(), "   [go] %s %s\n", verb, args.Flatten(" "))
			return es.StrList("0"), nil
		}
	}
	sh.RegisterPrim("compile", step("compiling"))
	sh.RegisterPrim("link", step("linking"))
	sh.RegisterPrim("run-tests", step("testing"))
	// Make them callable by bare name.
	for _, n := range []string{"compile", "link", "run-tests"} {
		if _, err := sh.Run("fn-" + n + " = $&" + n); err != nil {
			log.Fatal(err)
		}
	}

	if _, err := sh.Run(buildScript); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- build test (pulls in app, which pulls in lib) --")
	if _, err := sh.Run("build test"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- building again: everything cached --")
	if _, err := sh.Run("build test"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- missing target raises an es exception Go can inspect --")
	_, err = sh.Run("build deploy")
	if exc, ok := err.(*es.Exception); ok {
		fmt.Printf("   [go] caught exception %q: %s\n", exc.Name(), exc.Error())
	} else {
		log.Fatalf("expected exception, got %v", err)
	}
}
