// Quickstart: embed the es shell in a Go program and exercise the
// paper's headline features — functions as values, lexical scoping, rich
// return values, and exceptions.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"es"
)

func main() {
	sh, err := es.New(es.Options{Stdout: os.Stdout, Stderr: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}

	must := func(src string) es.List {
		res, err := sh.Run(src)
		if err != nil {
			log.Fatalf("%s: %v", src, err)
		}
		return res
	}

	fmt.Println("-- shell functions and higher-order apply --")
	must(`fn apply cmd args {for (i = $args) $cmd $i}`)
	must(`apply echo testing 1.. 2.. 3..`)
	must(`apply @ i {echo [$i]} a b`)

	fmt.Println("-- program fragments are values --")
	must(`silly-command = {echo hi}`)
	must(`$silly-command`)
	must(`mixed = {echo first} hello, {echo third} world`)
	must(`echo $mixed(2) $mixed(4)`)

	fmt.Println("-- lexical scoping and closures --")
	must(`let (h=hello; w=world) {hi = {echo $h, $w}}`)
	must(`$hi`)

	fmt.Println("-- rich return values --")
	must(`fn pair {return first second}`)
	must(`echo got: <>{pair}`)
	res := must(`result these cross the Go boundary {as a closure}`)
	fmt.Printf("from Go: %d terms, last is closure: %v\n",
		len(res), res[len(res)-1].IsClosure())

	fmt.Println("-- exceptions --")
	must(`
fn safe-div a b {
	if {~ $b 0} {throw error division by zero}
	result ` + "`" + `{expr $a / $b}
}
catch @ e msg {
	echo caught: $msg
} {
	echo 10/2 '=' <>{safe-div 10 2}
	echo 10/0 '=' <>{safe-div 10 0}
}`)

	fmt.Println("-- pipes between builtins --")
	must(`echo es is a shell with higher-order functions | tr a-z A-Z`)
}
