// Webhooks embeds es as the configuration and handler language of an
// HTTP server: routes are es closures, so operators script behaviour —
// including spoofing and exceptions — without recompiling the host.
//
// It starts a server on a local port, exercises it with three requests,
// and shuts down; run with: go run ./examples/webhooks
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"

	"es"
)

// The "site configuration" is an es script.  route registers a closure
// per path; handlers write the response body to stdout, set headers via
// the $&header primitive, and signal HTTP errors by throwing.
const siteConfig = `
fn route path handler {
	fn-route-$path = $handler
}

hits =

route /hello @ method path {
	echo hello from es, you did a $method on $path
}

route /counter @ {
	hits = $hits x
	echo $#hits requests so far
}

route /teapot @ {
	$&header Status 418
	echo short and stout
}

# Errors anywhere become HTTP 500s with the exception text.
route /broken @ {
	throw error this route is broken on purpose
}

fn dispatch path method {
	if {~ $#(fn-route-$path) 0} {
		throw no-route $path
	}
	$(fn-route-$path) $method $path
}
`

// esHandler adapts an es closure to http.Handler.
type esHandler struct {
	mu sync.Mutex // one interpreter, serialized requests
	sh *es.Shell
}

func (h *esHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	defer h.mu.Unlock()

	status := http.StatusOK
	h.sh.RegisterPrim("header", func(i *es.Interp, ctx *es.Ctx, args es.List) (es.List, error) {
		if len(args) == 2 && args[0].String() == "Status" {
			fmt.Sscanf(args[1].String(), "%d", &status)
			return es.StrList("0"), nil
		}
		if len(args) == 2 {
			w.Header().Set(args[0].String(), args[1].String())
			return es.StrList("0"), nil
		}
		return nil, fmt.Errorf("usage: $&header name value")
	})

	var body strings.Builder
	h.sh.Interp().SetVarRaw("http-out", nil)
	// Route dispatch happens in es: the dispatch function finds the
	// handler closure or throws no-route.
	src := fmt.Sprintf("dispatch %s %s", r.URL.Path, r.Method)
	res, err := h.runCapturing(&body, src)
	switch {
	case es.IsException(err, "no-route"):
		http.NotFound(w, r)
		return
	case err != nil:
		http.Error(w, "es exception: "+err.Error(), http.StatusInternalServerError)
		return
	case !res.True():
		status = http.StatusInternalServerError
	}
	w.WriteHeader(status)
	io.WriteString(w, body.String())
}

// runCapturing temporarily routes the shell's stdout into buf.
func (h *esHandler) runCapturing(buf *strings.Builder, src string) (es.List, error) {
	ctx := h.sh.Context().WithIO(h.sh.Context().IO.WithFD(1, buf))
	return h.sh.Interp().RunString(ctx, src)
}

func main() {
	sh, err := es.New(es.Options{Stderr: io.Discard})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sh.Run(siteConfig); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: &esHandler{sh: sh}}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Println("es-scripted server on", base)

	get := func(path string) {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("GET %-9s -> %d %q\n", path, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	get("/hello")
	get("/counter")
	get("/counter")
	get("/teapot")
	get("/broken")
	get("/missing")
	srv.Close()
}
