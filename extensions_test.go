package es

// Tests for the released-es extensions layered on the paper's language:
// $^var flattening and <<< herestrings.

import (
	"strings"
	"testing"
)

func TestFlatVar(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "xs = a b c")
	res, err := sh.Run("result $^xs")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].String() != "a b c" {
		t.Errorf("$^xs = %v", res)
	}
	// One word even as a command argument.
	if got := runOut(t, sh, out, "echo <>{$&count $^xs}"); got != "1\n" {
		t.Errorf("count of $^xs = %q", got)
	}
	// Flattening a null variable yields null, not an empty string.
	res, err = sh.Run("result $^undefined-zz")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("$^undefined = %v", res)
	}
}

func TestFlatVarUnparse(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "fn flatfn {echo $^args}")
	got := runOut(t, sh, out, "whatis flatfn")
	if got != "@ * {echo $^args}\n" {
		t.Errorf("whatis = %q", got)
	}
}

func TestHerestring(t *testing.T) {
	sh, out, _ := newTestShell(t)
	got := runOut(t, sh, out, "tr a-z A-Z <<< 'hello there'")
	if got != "HELLO THERE\n" {
		t.Errorf("herestring = %q", got)
	}
	// Combined with variables and flattening.
	runOut(t, sh, out, "words = one two three")
	got = runOut(t, sh, out, "wc -w <<< $^words")
	if strings.TrimSpace(got) != "3" {
		t.Errorf("herestring wc = %q", got)
	}
	// The rewrite form is a spoofable hook.
	got = runOut(t, sh, out, `
let (here = $fn-%here) {
	fn %here fd text cmd {
		$here $fd UPPER-SPOOFED $cmd
	}
}
cat <<< original`)
	if got != "UPPER-SPOOFED\n" {
		t.Errorf("spoofed %%here = %q", got)
	}
}

func TestHerestringRewrite(t *testing.T) {
	sh, out, _ := newTestShell(t)
	// %here is reachable directly, like every primitive.
	got := runOut(t, sh, out, "%here 0 direct-input {cat}")
	if got != "direct-input\n" {
		t.Errorf("%%here direct = %q", got)
	}
}

func TestHeredoc(t *testing.T) {
	sh, out, _ := newTestShell(t)
	got := runOut(t, sh, out, "tr a-z A-Z << EOF\nline one\nline two\nEOF\necho after")
	if got != "LINE ONE\nLINE TWO\nafter\n" {
		t.Errorf("heredoc = %q", got)
	}
	// The body is literal: no substitution.
	got = runOut(t, sh, out, "x = expanded; cat << END\n$x stays raw\nEND")
	if got != "$x stays raw\n" {
		t.Errorf("heredoc body = %q", got)
	}
	// Empty body.
	got = runOut(t, sh, out, "wc -l << E\nE")
	if strings.TrimSpace(got) != "1" { // the synthetic trailing newline
		t.Errorf("empty heredoc wc = %q", got)
	}
	// Unterminated heredocs are incomplete (REPL continuation).
	_, err := sh.Run("cat << EOF\nno terminator")
	if err == nil {
		t.Fatal("unterminated heredoc should fail")
	}
	// Commands after the heredoc on the same line still parse.
	got = runOut(t, sh, out, "cat << A | tr a-z A-Z\nbody here\nA")
	if got != "BODY HERE\n" {
		t.Errorf("heredoc in pipeline = %q", got)
	}
}

func TestPidAndScriptName(t *testing.T) {
	sh, out, _ := newTestShell(t)
	pid := sh.Get("pid").Flatten("")
	if pid == "" || pid == "0" {
		t.Errorf("pid = %q", pid)
	}
	dir := t.TempDir()
	path := dir + "/named.es"
	if err := writeFile(path, "echo running $0 with $*"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if _, err := sh.RunFile(path, "a1"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "running "+path+" with a1\n" {
		t.Errorf("$0 transcript = %q", out.String())
	}
}

// ~~ extracts what the wildcards matched (released-es extension).
func TestMatchExtract(t *testing.T) {
	sh, _, _ := newTestShell(t)
	tests := []struct{ src, want string }{
		{"result <>{~~ main.c *.c}", "main"},
		{"result <>{~~ left-right *-*}", "left right"},
		{"result <>{~~ v7 v[0-9]}", "7"},
		{"result <>{~~ exact exact}", ""},
		{"result <>{~~ (nope main.go) *.go}", "main"},
	}
	for _, tt := range tests {
		res, err := sh.Run(tt.src)
		if err != nil {
			t.Errorf("%q: %v", tt.src, err)
			continue
		}
		if res.Flatten(" ") != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, res.Flatten(" "), tt.want)
		}
	}
	// No match is false.
	res, err := sh.Run("~~ main.go *.c")
	if err != nil || res.True() {
		t.Errorf("no-match extract = %v, %v", res, err)
	}
	// Quoted wildcards are literal in ~~ too.
	res, err = sh.Run("~~ star '*'")
	if err != nil || res.True() {
		t.Errorf("literal extract matched: %v", res)
	}
}
