package es_test

import (
	"fmt"
	"os"

	"es"
)

// The basics: define a shell function and call it.
func Example() {
	sh, err := es.New(es.Options{Stdout: os.Stdout})
	if err != nil {
		panic(err)
	}
	sh.Run("fn greet who {echo hello, $who}")
	sh.Run("greet world")
	// Output:
	// hello, world
}

// Program fragments are first-class values: store one in a variable,
// pass it around, run it later.
func ExampleShell_Run_fragments() {
	sh, _ := es.New(es.Options{Stdout: os.Stdout})
	sh.Run("task = {echo deferred work}")
	sh.Run("fn run-later t {echo running...; $t}")
	sh.Run("run-later $task")
	// Output:
	// running...
	// deferred work
}

// Rich return values cross the Go boundary as Lists of Terms.
func ExampleShell_Run_richReturn() {
	sh, _ := es.New(es.Options{})
	sh.Run("fn pair {return first {echo a closure}}")
	res, _ := sh.Run("result <>{pair}")
	fmt.Println(len(res), res[0].String(), res[1].IsClosure())
	// Output:
	// 2 first true
}

// Spoofing: redefine a shell service from the shell language.
func ExampleShell_Run_spoofing() {
	sh, _ := es.New(es.Options{Stdout: os.Stdout})
	sh.Run(`
let (echo = $fn-echo)
fn echo {
	$echo '>>' $*
}`)
	sh.Run("echo spoofed output")
	// Output:
	// >> spoofed output
}

// Uncaught es exceptions surface as *es.Exception errors.
func ExampleShell_Run_exceptions() {
	sh, _ := es.New(es.Options{})
	_, err := sh.Run("throw error something went wrong")
	if exc, ok := err.(*es.Exception); ok {
		fmt.Println(exc.Name(), "|", exc.Error())
	}
	// Output:
	// error | error something went wrong
}

// Go code extends the language with new primitives.
func ExampleShell_RegisterPrim() {
	sh, _ := es.New(es.Options{Stdout: os.Stdout})
	sh.RegisterPrim("reverse", func(i *es.Interp, ctx *es.Ctx, args es.List) (es.List, error) {
		out := make(es.List, len(args))
		for k, t := range args {
			out[len(args)-1-k] = t
		}
		return out, nil
	})
	sh.Run("echo <>{$&reverse a b c}")
	// Output:
	// c b a
}

// Get and Set bridge Go and shell state; Set runs settor functions.
func ExampleShell_Set() {
	sh, _ := es.New(es.Options{Stdout: os.Stdout})
	sh.Run("set-level = @ {echo level changed to $*; return $*}")
	sh.Set("level", "high")
	fmt.Println(sh.Get("level").Flatten(" "))
	// Output:
	// level changed to high
	// high
}
