package es

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestShellRunResult(t *testing.T) {
	sh, _, _ := newTestShell(t)
	res, err := sh.Run("result a b c")
	if err != nil {
		t.Fatal(err)
	}
	if res.Flatten(" ") != "a b c" {
		t.Errorf("res = %v", res)
	}
}

func TestShellGetSet(t *testing.T) {
	sh, _, _ := newTestShell(t)
	if err := sh.Set("greeting", "hello", "world"); err != nil {
		t.Fatal(err)
	}
	if got := sh.Get("greeting").Flatten(","); got != "hello,world" {
		t.Errorf("greeting = %q", got)
	}
	// Set runs settors, like any assignment.
	if _, err := sh.Run("set-observed = @ {return transformed}"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Set("observed", "raw"); err != nil {
		t.Fatal(err)
	}
	if got := sh.Get("observed").Flatten(""); got != "transformed" {
		t.Errorf("settor through Set: %q", got)
	}
}

func TestShellRegisterPrim(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.RegisterPrim("host-add", func(i *Interp, ctx *Ctx, args List) (List, error) {
		total := 0
		for _, a := range args {
			n := 0
			for _, ch := range a.String() {
				n = n*10 + int(ch-'0')
			}
			total += n
		}
		return StrList(itoa(total)), nil
	})
	got := runOut(t, sh, out, "echo <>{$&host-add 20 22}")
	if got != "42\n" {
		t.Errorf("custom prim = %q", got)
	}
	// And it can be hooked by name like any service.
	got = runOut(t, sh, out, "fn-add = $&host-add; echo <>{add 1 2 3}")
	if got != "6\n" {
		t.Errorf("hooked prim = %q", got)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestShellRegisterBuiltin(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.RegisterBuiltin("shout", func(i *Interp, ctx *Ctx, argv []string) int {
		ctx.Stdout().Write([]byte(strings.ToUpper(strings.Join(argv[1:], " ")) + "\n"))
		return 0
	})
	got := runOut(t, sh, out, "shout hello there")
	if got != "HELLO THERE\n" {
		t.Errorf("builtin = %q", got)
	}
	// fn- definitions shadow builtins.
	got = runOut(t, sh, out, "fn shout {echo quiet}; shout hello")
	if got != "quiet\n" {
		t.Errorf("shadowing = %q", got)
	}
}

func TestShellRunFileArgs(t *testing.T) {
	sh, out, _ := newTestShell(t)
	dir := t.TempDir()
	path := dir + "/script.es"
	if err := writeFile(path, "echo args: $*; echo count: $#*"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if _, err := sh.RunFile(path, "x", "y"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "args: x y\ncount: 2\n" {
		t.Errorf("script output = %q", out.String())
	}
}

func TestShellErrorsAreExceptions(t *testing.T) {
	sh, _, _ := newTestShell(t)
	_, err := sh.Run("throw kaboom with args")
	exc, ok := err.(*Exception)
	if !ok {
		t.Fatalf("err = %T", err)
	}
	if exc.Name() != "kaboom" || len(exc.Args) != 3 {
		t.Errorf("exc = %v", exc)
	}
	if !IsException(err, "kaboom") || IsException(err, "error") {
		t.Error("IsException broken")
	}
	// Parse errors become error exceptions too.
	_, err = sh.Run("{unclosed")
	if !IsException(err, "error") {
		t.Errorf("parse error = %v", err)
	}
}

// Blocks in command position are grouping: transparent to return, no
// rebinding of $*.  (Regression: a block boundary must not swallow
// return, or the autoload spoof and Figure 3 both break.)
func TestShellBlockGrouping(t *testing.T) {
	sh, out, _ := newTestShell(t)
	got := runOut(t, sh, out, `
fn f {
	{ { return deep } }
	echo unreachable
}
echo <>{f}`)
	if got != "deep\n" {
		t.Errorf("return through blocks = %q", got)
	}
	got = runOut(t, sh, out, "fn g a b { {echo inner sees $*} }; g 1 2")
	if got != "inner sees 1 2\n" {
		t.Errorf("block $* = %q", got)
	}
	// But a block with arguments is an application with fresh $*.
	got = runOut(t, sh, out, "fn h a { {echo args $*} x y }; h 1")
	if got != "args x y\n" {
		t.Errorf("applied block $* = %q", got)
	}
}

func TestShellDefaultIO(t *testing.T) {
	// A shell with zero options works and discards output.
	sh, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Run("echo into the void"); err != nil {
		t.Fatal(err)
	}
	// Reading stdin hits immediate EOF.
	if _, err := sh.Run("read"); !IsException(err, "eof") {
		t.Errorf("read = %v", err)
	}
}

func TestShellNoCoreutils(t *testing.T) {
	var out bytes.Buffer
	sh, err := New(Options{Stdout: &out, NoCoreutils: true})
	if err != nil {
		t.Fatal(err)
	}
	sh.Set("path") // and nothing external either
	if _, err := sh.Run("cat"); err == nil {
		t.Error("cat should be unavailable without coreutils")
	}
	// Primitives still work.
	if _, err := sh.Run("echo fine"); err != nil {
		t.Errorf("echo: %v", err)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestShellOptionsDir(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	sh, err := New(Options{Stdout: &out, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Interp().Dir() != dir {
		t.Errorf("Dir = %q", sh.Interp().Dir())
	}
	if _, err := sh.Run("pwd"); err != nil {
		t.Fatal(err)
	}
	if out.String() != dir+"\n" {
		t.Errorf("pwd = %q", out.String())
	}
}
