package es

import (
	"bytes"
	"strings"
	"testing"
)

// newTestShell builds a shell with captured output.
func newTestShell(t *testing.T) (*Shell, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	var out, errw bytes.Buffer
	sh, err := New(Options{Stdout: &out, Stderr: &errw})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sh, &out, &errw
}

// runOut runs src and returns stdout, failing the test on error.
func runOut(t *testing.T, sh *Shell, out *bytes.Buffer, src string) string {
	t.Helper()
	out.Reset()
	if _, err := sh.Run(src); err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return out.String()
}

func TestPaperSimpleCommands(t *testing.T) {
	sh, out, _ := newTestShell(t)
	got := runOut(t, sh, out, "echo hello, world")
	if got != "hello, world\n" {
		t.Errorf("echo: %q", got)
	}
}

// "This function takes a command cmd and arguments args and applies the
// command to each argument in turn."
func TestPaperApply(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "fn apply cmd args {for (i = $args) $cmd $i}")
	got := runOut(t, sh, out, "apply echo testing 1.. 2.. 3..")
	want := "testing\n1..\n2..\n3..\n"
	if got != want {
		t.Errorf("apply = %q, want %q", got, want)
	}
}

// "es assigns arguments to parameters one-to-one, and any leftovers are
// assigned to the last parameter."
func TestPaperRev3(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "fn rev3 a b c {echo $c $b $a}")
	if got := runOut(t, sh, out, "rev3 1 2 3 4 5"); got != "3 4 5 2 1\n" {
		t.Errorf("rev3 1 2 3 4 5 = %q", got)
	}
	// "If there are fewer arguments than parameters, es leaves the
	// leftover parameters null."
	if got := runOut(t, sh, out, "rev3 1"); got != "1\n" {
		t.Errorf("rev3 1 = %q", got)
	}
}

// Inline lambdas as arguments: apply @ i {...} /tmp /usr/tmp.
func TestPaperInlineLambda(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "fn apply cmd args {for (i = $args) $cmd $i}")
	got := runOut(t, sh, out, "apply @ i {echo visiting $i} /tmp /usr/tmp")
	want := "visiting /tmp\nvisiting /usr/tmp\n"
	if got != want {
		t.Errorf("apply lambda = %q, want %q", got, want)
	}
}

// "these two es commands are entirely equivalent":
// fn echon args {echo -n $args}  /  fn-echon = @ args {echo -n $args}
func TestPaperFnIsAssignment(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "fn echon args {echo -n $args}")
	a := runOut(t, sh, out, "echon x y")
	runOut(t, sh, out, "fn-echon = @ args {echo -n $args}")
	b := runOut(t, sh, out, "echon x y")
	if a != "x y" || b != "x y" {
		t.Errorf("echon: %q / %q", a, b)
	}
}

// "it is always possible to execute the contents of any variable by
// dereferencing it explicitly with a dollar sign."
func TestPaperSillyCommand(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "silly-command = {echo hi}")
	if got := runOut(t, sh, out, "$silly-command"); got != "hi\n" {
		t.Errorf("$silly-command = %q", got)
	}
}

// Variables can mix program fragments and strings; subscripting with
// $mixed(2), and running $mixed(1) as a command.
func TestPaperMixedVariable(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "mixed = {echo first} hello, {echo third} world")
	if got := runOut(t, sh, out, "echo $mixed(2) $mixed(4)"); got != "hello, world\n" {
		t.Errorf("subscripts = %q", got)
	}
	if got := runOut(t, sh, out, "$mixed(1)"); got != "first\n" {
		t.Errorf("$mixed(1) = %q", got)
	}
}

// Lexical binding with let; closures capture enclosing values.
func TestPaperLetCapture(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "let (h=hello; w=world) {hi = {echo $h, $w}}")
	if got := runOut(t, sh, out, "$hi"); got != "hello, world\n" {
		t.Errorf("$hi = %q", got)
	}
}

// The paper's lexical-vs-dynamic binding demonstration.
func TestPaperLexicalVsDynamic(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "x = foo")
	got := runOut(t, sh, out, "let (x = bar) {echo $x; fn lexical {echo $x}}")
	if got != "bar\n" {
		t.Errorf("let echo = %q", got)
	}
	if got := runOut(t, sh, out, "lexical"); got != "bar\n" {
		t.Errorf("lexical = %q", got)
	}
	got = runOut(t, sh, out, "local (x = baz) {echo $x; fn dynamic {echo $x}}")
	if got != "baz\n" {
		t.Errorf("local echo = %q", got)
	}
	if got := runOut(t, sh, out, "dynamic"); got != "foo\n" {
		t.Errorf("dynamic = %q", got)
	}
}

// Settor variables: the paper's watch function.
func TestPaperWatchSettor(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, `
fn watch vars {
	for (var = $vars) {
		set-$var = @ {
			echo old $var '=' $$var
			echo new $var '=' $*
			return $*
		}
	}
}`)
	runOut(t, sh, out, "watch x")
	got := runOut(t, sh, out, "x=foo bar")
	if got != "old x =\nnew x = foo bar\n" {
		t.Errorf("first assignment = %q", got)
	}
	got = runOut(t, sh, out, "x=fubar")
	if got != "old x = foo bar\nnew x = fubar\n" {
		t.Errorf("second assignment = %q", got)
	}
}

// Rich return values: return any object, accessed with <>{...}.
func TestPaperRichReturn(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "fn hello-world {return 'hello, world'}")
	if got := runOut(t, sh, out, "echo <>{hello-world}"); got != "hello, world\n" {
		t.Errorf("<>{hello-world} = %q", got)
	}
	// The modern spelling is accepted too.
	if got := runOut(t, sh, out, "echo <={hello-world}"); got != "hello, world\n" {
		t.Errorf("<={hello-world} = %q", got)
	}
}

// Hierarchical lists from closures: cons, car, cdr.
func TestPaperConsCarCdr(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, `
fn cons a d {
	return @ f { $f $a $d }
}
fn car p { $p @ a d { return $a } }
fn cdr p { $p @ a d { return $d } }`)
	got := runOut(t, sh, out, "echo <>{car <>{cdr <>{cons 1 <>{cons 2 <>{cons 3 nil}}}}}")
	if got != "2\n" {
		t.Errorf("car(cdr(list)) = %q, want 2", got)
	}
}

// echo-nl and the trace spoof: "The trace function redefines all the
// functions which are named on its command line."
func TestPaperTrace(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, `
fn echo-nl head tail {
	if {!~ $#head 0} {
		echo $head
		echo-nl $tail
	}
}`)
	if got := runOut(t, sh, out, "echo-nl a b c"); got != "a\nb\nc\n" {
		t.Errorf("echo-nl = %q", got)
	}
	runOut(t, sh, out, `
fn trace functions {
	for (func = $functions)
		let (old = $(fn-$func))
			fn $func args {
				echo calling $func $args
				$old $args
			}
}`)
	runOut(t, sh, out, "trace echo-nl")
	got := runOut(t, sh, out, "echo-nl a b c")
	want := "calling echo-nl a b c\na\ncalling echo-nl b c\nb\ncalling echo-nl c\nc\ncalling echo-nl\n"
	if got != want {
		t.Errorf("traced echo-nl = %q, want %q", got, want)
	}
}

// Exceptions: throw and catch, the in function, and error interception.
func TestPaperThrowCatch(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, `
fn in dir cmd {
	if {~ $#dir 0} {
		throw error 'usage: in dir cmd'
	}
	catch @ e msg {
		if {~ $e error} {
			echo caught: $msg
		} {
			throw $e $msg
		}
	} {
		cd $dir
		$cmd
	}
}`)
	// Missing argument throws the usage error; uncaught it surfaces as a
	// Go error.
	out.Reset()
	_, err := sh.Run("in")
	if err == nil || !IsException(err, "error") {
		t.Fatalf("in with no args: err = %v", err)
	}
	if !strings.Contains(err.Error(), "usage: in dir cmd") {
		t.Errorf("error message = %q", err.Error())
	}
	// A bad directory's chdir error is caught by the handler.
	got := runOut(t, sh, out, "in /nonexistent-dir-xyz {echo never}")
	if !strings.Contains(got, "caught: chdir /nonexistent-dir-xyz") {
		t.Errorf("caught message = %q", got)
	}
	// A good directory runs the fragment there.
	got = runOut(t, sh, out, "in / {pwd}")
	if got != "/\n" {
		t.Errorf("in / pwd = %q", got)
	}
	// cd in the function does not leak when caught... (es subshell
	// semantics are exercised in fork tests; cd here does persist since
	// in runs in-process, as the paper's first version also did).
}

// catch + retry re-runs the body.
func TestPaperRetry(t *testing.T) {
	sh, out, _ := newTestShell(t)
	got := runOut(t, sh, out, `
n = ''
catch @ e msg {
	if {~ $n xxx} {echo done} {throw retry}
} {
	n = $n^x
	echo body $n
	throw error again
}`)
	want := "body x\nbody xx\nbody xxx\ndone\n"
	if got != want {
		t.Errorf("retry transcript = %q, want %q", got, want)
	}
}

// The spoof of %create: the C-shell's noclobber option.
func TestPaperNoclobberSpoof(t *testing.T) {
	sh, out, _ := newTestShell(t)
	dir := t.TempDir()
	runOut(t, sh, out, "cd "+dir)
	runOut(t, sh, out, `
let (create = $fn-%create)
fn %create fd file cmd {
	if {test -f $file} {
		throw error $file exists
	} {
		$create $fd $file $cmd
	}
}`)
	runOut(t, sh, out, "echo first > foo")
	if got := runOut(t, sh, out, "cat foo"); got != "first\n" {
		t.Errorf("foo = %q", got)
	}
	out.Reset()
	_, err := sh.Run("echo second > foo")
	if err == nil || !IsException(err, "error") || !strings.Contains(err.Error(), "foo exists") {
		t.Fatalf("noclobber: err = %v", err)
	}
	if got := runOut(t, sh, out, "cat foo"); got != "first\n" {
		t.Errorf("foo after noclobber = %q", got)
	}
}

// whatis shows the environment encoding with captured lexical bindings:
// %closure(a=b)@ * {echo $a}.
func TestPaperWhatisClosure(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "let (a=b) fn foo {echo $a}")
	got := runOut(t, sh, out, "whatis foo")
	if got != "%closure(a=b)@ * {echo $a}\n" {
		t.Errorf("whatis foo = %q, want %q", got, "%closure(a=b)@ * {echo $a}\n")
	}
	if g := runOut(t, sh, out, "foo"); g != "b\n" {
		t.Errorf("foo = %q", g)
	}
}

// Pipes between shell functions and builtins.
func TestPaperPipeline(t *testing.T) {
	sh, out, _ := newTestShell(t)
	got := runOut(t, sh, out, "echo banana | tr a-z A-Z")
	if got != "BANANA\n" {
		t.Errorf("pipe = %q", got)
	}
	got = runOut(t, sh, out, "{echo c; echo a; echo b} | sort | head -2")
	if got != "a\nb\n" {
		t.Errorf("pipe chain = %q", got)
	}
}

// >[1=2] duplicates stderr onto stdout.
func TestPaperDupRedirection(t *testing.T) {
	sh, out, errw := newTestShell(t)
	runOut(t, sh, out, "echo oops >[1=2]")
	if out.Len() != 0 || errw.String() != "oops\n" {
		t.Errorf("dup: out=%q err=%q", out.String(), errw.String())
	}
}

// The ! and ~ commands.
func TestPaperNotAndMatch(t *testing.T) {
	sh, _, _ := newTestShell(t)
	for src, want := range map[string]bool{
		"~ foo foo":    true,
		"~ foo bar":    false,
		"~ foo f*":     true,
		"~ foo 'f*'":   false,
		"! ~ foo bar":  true,
		"~ (a b c) b":  true,
		"~ (a b c) d":  false,
		"~ foo [fg]oo": true,
		"!~ $#undef 0": false,
		"~ /tmp /*":    true,
	} {
		res, err := sh.Run(src)
		if err != nil {
			t.Errorf("Run(%q): %v", src, err)
			continue
		}
		if res.True() != want {
			t.Errorf("%q = %v, want %v", src, res.True(), want)
		}
	}
}
