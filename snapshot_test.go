package es

// Shell-level tests for the session-image primitives: snapshot writes
// the definable state to a single file, restore replaces this session's
// state with it.  Spoofed hooks, noexport marks, and function captures
// all travel; $pid does not.

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestSnapshotRestorePrimitives(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sess.esimg")

	a, aout, _ := newTestShell(t)
	runOut(t, a, aout, "greeting = hello world")
	runOut(t, a, aout, "secret = hunter2; noexport secret")
	runOut(t, a, aout, "fn counter n {result <>{%count 1 2 3} $n}")
	runOut(t, a, aout, "let (salt = xyz) fn seasoned {echo $salt $greeting}")
	runOut(t, a, aout, "fn %pathsearch name {result /spoofed/$name}")
	runOut(t, a, aout, "snapshot "+path)

	b, bout, _ := newTestShell(t)
	if got := runOut(t, b, bout, "restore "+path+"; echo $greeting"); got != "hello world\n" {
		t.Errorf("greeting after restore = %q", got)
	}
	if got := runOut(t, b, bout, "seasoned"); got != "xyz hello world\n" {
		t.Errorf("captured binding after restore = %q", got)
	}
	if got := runOut(t, b, bout, "counter two"); got != "" {
		t.Errorf("counter wrote output: %q", got)
	}
	if got := runOut(t, b, bout, "whatis %pathsearch"); got != "@ name {result /spoofed/$name}\n" {
		t.Errorf("spoofed hook after restore = %q", got)
	}
	// The spoof actually governs command dispatch in the restored shell.
	if got := runOut(t, b, bout, "echo <>{%pathsearch vi}"); got != "/spoofed/vi\n" {
		t.Errorf("spoofed pathsearch result = %q", got)
	}
	// The noexport mark survived: secret is visible but not exported.
	if got := runOut(t, b, bout, "echo $secret"); got != "hunter2\n" {
		t.Errorf("secret after restore = %q", got)
	}
	env := strings.Join(b.Interp().ExportEnv(), "\n")
	if strings.Contains(env, "secret") {
		t.Errorf("secret leaked into environment after restore")
	}
	// $pid was re-stamped, not copied: both shells are this process.
	apid := runOut(t, a, aout, "echo $pid")
	if got := runOut(t, b, bout, "echo $pid"); got != apid {
		t.Errorf("pid after restore = %q, want %q", got, apid)
	}

	// The hooks are spoofable: a %snapshot wrapper sees the write.
	runOut(t, b, bout, `let (snap = $fn-%snapshot) fn %snapshot file {echo saving $file; $snap $file}`)
	if got := runOut(t, b, bout, "snapshot "+path+"2"); !strings.HasPrefix(got, "saving ") {
		t.Errorf("spoofed %%snapshot not consulted: %q", got)
	}
}

func TestRestoreRejectsBadImage(t *testing.T) {
	sh, _, _ := newTestShell(t)
	path := filepath.Join(t.TempDir(), "bad.esimg")
	if _, err := sh.Run("echo junk > " + path + "; restore " + path); err == nil ||
		!strings.Contains(err.Error(), "restore") {
		t.Errorf("restore of junk accepted (err = %v)", err)
	}
	if _, err := sh.Run("restore " + path + ".missing"); err == nil {
		t.Errorf("restore of missing file accepted")
	}
}
