# Verification tiers: `make check` is the tier-1 floor (build + tests);
# `make race` adds vet, the race detector, and the esd server soak;
# `make bench` runs the dispatch-cache benchmarks that guard the native
# cache speedups; `make bench-server` regenerates the serving baseline.

.PHONY: check race soak bench bench-server build

build:
	go build ./...

check:
	scripts/check.sh

race:
	scripts/check.sh -race

soak:
	sh scripts/soak.sh

bench:
	go test -run=NONE -bench='NativePath|ParseCold|GlobMatch|EnvDecode|AllocUnderLiveRoots' -benchtime=200ms . ./internal/gc ./internal/glob

bench-server:
	sh scripts/bench_server.sh
