# Verification tiers: `make check` is the tier-1 floor (build + tests);
# `make race` adds vet and the race detector; `make bench` runs the
# dispatch-cache benchmarks that guard the native cache speedups.

.PHONY: check race bench build

build:
	go build ./...

check:
	scripts/check.sh

race:
	scripts/check.sh -race

bench:
	go test -run=NONE -bench='NativePath|ParseCold|GlobMatch|EnvDecode|AllocUnderLiveRoots' -benchtime=200ms . ./internal/gc ./internal/glob
