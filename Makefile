# Verification tiers: `make check` is the tier-1 floor (build + tests);
# `make race` adds vet, the race detector, the tree-walker engine suite,
# the serving bench gate, and the esd server soak; `make bench` runs the
# dispatch-cache benchmarks that guard the native cache speedups;
# `make bench-server` regenerates the serving baseline and
# `make bench-check` gates against it (>25% ns/op regression fails).

.PHONY: check race soak bench bench-server bench-check build

build:
	go build ./...

check:
	scripts/check.sh

race:
	scripts/check.sh -race

soak:
	sh scripts/soak.sh

bench:
	go test -run=NONE -bench='NativePath|ParseCold|GlobMatch|EnvDecode|AllocUnderLiveRoots' -benchtime=200ms . ./internal/gc ./internal/glob

bench-server:
	sh scripts/bench_server.sh

bench-check:
	sh scripts/bench_server.sh -check
