package coreutils

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"es/internal/core"
)

func registerFs(i *core.Interp) {
	i.RegisterBuiltin("ls", wrap("ls", builtinLs))
	i.RegisterBuiltin("test", wrap("test", builtinTest))
	i.RegisterBuiltin("[", wrap("[", builtinTestBracket))
	i.RegisterBuiltin("mkdir", wrap("mkdir", builtinMkdir))
	i.RegisterBuiltin("rm", wrap("rm", builtinRm))
	i.RegisterBuiltin("touch", wrap("touch", builtinTouch))
	i.RegisterBuiltin("pwd", wrap("pwd", builtinPwd))
	i.RegisterBuiltin("basename", wrap("basename", builtinBasename))
	i.RegisterBuiltin("dirname", wrap("dirname", builtinDirname))
	i.RegisterBuiltin("cp", wrap("cp", builtinCp))
	i.RegisterBuiltin("mv", wrap("mv", builtinMv))
}

func builtinLs(c *ctxio, args []string) int {
	long, all := false, false
	var paths []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") && len(a) > 1 {
			for _, f := range a[1:] {
				switch f {
				case 'l':
					long = true
				case 'a':
					all = true
				case '1':
					// one per line is already the default
				default:
					return c.errorf("unsupported flag -%c", f)
				}
			}
		} else {
			paths = append(paths, a)
		}
	}
	if len(paths) == 0 {
		paths = []string{"."}
	}
	status := 0
	printEntry := func(name string, fi os.FileInfo) {
		if long && fi != nil {
			fmt.Fprintf(c.out, "%s %8d %s\n", fi.Mode(), fi.Size(), name)
		} else {
			c.out.WriteString(name)
			c.out.WriteByte('\n')
		}
	}
	for _, p := range paths {
		full := c.resolve(p)
		fi, err := os.Stat(full)
		if err != nil {
			status = c.errorf("%s: No such file or directory", p)
			continue
		}
		if !fi.IsDir() {
			printEntry(p, fi)
			continue
		}
		entries, err := os.ReadDir(full)
		if err != nil {
			status = c.errorf("%s: %v", p, err)
			continue
		}
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			if !all && strings.HasPrefix(e.Name(), ".") {
				continue
			}
			names = append(names, e.Name())
		}
		sort.Strings(names)
		for _, n := range names {
			var info os.FileInfo
			if long {
				info, _ = os.Stat(filepath.Join(full, n))
			}
			printEntry(n, info)
		}
	}
	return status
}

func builtinTestBracket(c *ctxio, args []string) int {
	if len(args) == 0 || args[len(args)-1] != "]" {
		return c.errorf("missing ']'")
	}
	return builtinTest(c, args[:len(args)-1])
}

// builtinTest implements the test(1) subset used by shell scripts (and
// the paper's noclobber %create spoof: test -f file).
func builtinTest(c *ctxio, args []string) int {
	ok, err := evalTest(c, args)
	if err != "" {
		return c.errorf("%s", err)
	}
	if ok {
		return 0
	}
	return 1
}

func evalTest(c *ctxio, args []string) (bool, string) {
	switch len(args) {
	case 0:
		return false, ""
	case 1:
		return args[0] != "", ""
	case 2:
		path := c.resolve(args[1])
		fi, statErr := os.Stat(path)
		switch args[0] {
		case "!":
			ok, err := evalTest(c, args[1:])
			return !ok, err
		case "-e":
			return statErr == nil, ""
		case "-f":
			return statErr == nil && fi.Mode().IsRegular(), ""
		case "-d":
			return statErr == nil && fi.IsDir(), ""
		case "-x":
			return statErr == nil && fi.Mode()&0o111 != 0, ""
		case "-s":
			return statErr == nil && fi.Size() > 0, ""
		case "-r":
			f, err := os.Open(path)
			if err == nil {
				f.Close()
			}
			return err == nil, ""
		case "-w":
			f, err := os.OpenFile(path, os.O_WRONLY, 0)
			if err == nil {
				f.Close()
			}
			return err == nil, ""
		case "-n":
			return args[1] != "", ""
		case "-z":
			return args[1] == "", ""
		}
		return false, "unsupported unary operator " + args[0]
	case 3:
		a, op, b := args[0], args[1], args[2]
		switch op {
		case "=", "==":
			return a == b, ""
		case "!=":
			return a != b, ""
		case "-eq", "-ne", "-lt", "-le", "-gt", "-ge":
			na, err1 := atoiStrict(a)
			nb, err2 := atoiStrict(b)
			if err1 != nil || err2 != nil {
				return false, "integer expression expected"
			}
			switch op {
			case "-eq":
				return na == nb, ""
			case "-ne":
				return na != nb, ""
			case "-lt":
				return na < nb, ""
			case "-le":
				return na <= nb, ""
			case "-gt":
				return na > nb, ""
			case "-ge":
				return na >= nb, ""
			}
		}
		return false, "unsupported operator " + op
	default:
		if args[0] == "!" {
			ok, err := evalTest(c, args[1:])
			return !ok, err
		}
		return false, "too many arguments"
	}
}

func atoiStrict(s string) (int, error) {
	var n int
	_, err := fmt.Sscanf(s, "%d", &n)
	return n, err
}

func builtinMkdir(c *ctxio, args []string) int {
	parents := false
	var dirs []string
	for _, a := range args {
		if a == "-p" {
			parents = true
		} else {
			dirs = append(dirs, a)
		}
	}
	if len(dirs) == 0 {
		return c.errorf("missing operand")
	}
	status := 0
	for _, d := range dirs {
		var err error
		if parents {
			err = os.MkdirAll(c.resolve(d), 0o777)
		} else {
			err = os.Mkdir(c.resolve(d), 0o777)
		}
		if err != nil {
			status = c.errorf("%s: %v", d, err)
		}
	}
	return status
}

func builtinRm(c *ctxio, args []string) int {
	force, recursive := false, false
	var paths []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") && len(a) > 1 {
			for _, f := range a[1:] {
				switch f {
				case 'f':
					force = true
				case 'r', 'R':
					recursive = true
				default:
					return c.errorf("unsupported flag -%c", f)
				}
			}
		} else {
			paths = append(paths, a)
		}
	}
	status := 0
	for _, p := range paths {
		full := c.resolve(p)
		var err error
		if recursive {
			err = os.RemoveAll(full)
		} else {
			err = os.Remove(full)
		}
		if err != nil && !force {
			status = c.errorf("%s: %v", p, err)
		}
	}
	return status
}

func builtinTouch(c *ctxio, args []string) int {
	status := 0
	for _, p := range args {
		f, err := os.OpenFile(c.resolve(p), os.O_WRONLY|os.O_CREATE, 0o666)
		if err != nil {
			status = c.errorf("%s: %v", p, err)
			continue
		}
		f.Close()
	}
	return status
}

func builtinPwd(c *ctxio, args []string) int {
	c.out.WriteString(c.i.Dir())
	c.out.WriteByte('\n')
	return 0
}

func builtinBasename(c *ctxio, args []string) int {
	if len(args) == 0 {
		return c.errorf("missing operand")
	}
	b := filepath.Base(args[0])
	if len(args) > 1 {
		b = strings.TrimSuffix(b, args[1])
	}
	c.out.WriteString(b)
	c.out.WriteByte('\n')
	return 0
}

func builtinDirname(c *ctxio, args []string) int {
	if len(args) == 0 {
		return c.errorf("missing operand")
	}
	c.out.WriteString(filepath.Dir(args[0]))
	c.out.WriteByte('\n')
	return 0
}

func builtinCp(c *ctxio, args []string) int {
	if len(args) != 2 {
		return c.errorf("usage: cp src dst")
	}
	data, err := os.ReadFile(c.resolve(args[0]))
	if err != nil {
		return c.errorf("%v", err)
	}
	dst := c.resolve(args[1])
	if fi, err := os.Stat(dst); err == nil && fi.IsDir() {
		dst = filepath.Join(dst, filepath.Base(args[0]))
	}
	if err := os.WriteFile(dst, data, 0o666); err != nil {
		return c.errorf("%v", err)
	}
	return 0
}

func builtinMv(c *ctxio, args []string) int {
	if len(args) != 2 {
		return c.errorf("usage: mv src dst")
	}
	dst := c.resolve(args[1])
	if fi, err := os.Stat(dst); err == nil && fi.IsDir() {
		dst = filepath.Join(dst, filepath.Base(args[0]))
	}
	if err := os.Rename(c.resolve(args[0]), dst); err != nil {
		return c.errorf("%v", err)
	}
	return 0
}
