package coreutils

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"es/internal/core"
)

// runTool invokes a builtin directly with the given stdin and returns
// (stdout, status).
func runTool(t *testing.T, i *core.Interp, stdin string, argv ...string) (string, int) {
	t.Helper()
	fn := i.Builtin(argv[0])
	if fn == nil {
		t.Fatalf("builtin %q not registered", argv[0])
	}
	var out, errw bytes.Buffer
	ctx := &core.Ctx{IO: core.NewIOTable(strings.NewReader(stdin), &out, &errw)}
	status := fn(i, ctx, argv)
	if errw.Len() > 0 {
		t.Logf("%v stderr: %s", argv, errw.String())
	}
	return out.String(), status
}

func newI(t *testing.T) *core.Interp {
	t.Helper()
	i := core.New()
	Register(i)
	return i
}

func TestNamesAllRegistered(t *testing.T) {
	i := newI(t)
	for _, n := range Names() {
		if i.Builtin(n) == nil {
			t.Errorf("Names lists %q but it is not registered", n)
		}
	}
}

func TestCat(t *testing.T) {
	i := newI(t)
	if got, st := runTool(t, i, "line1\nline2\n", "cat"); got != "line1\nline2\n" || st != 0 {
		t.Errorf("cat stdin = %q, %d", got, st)
	}
	dir := t.TempDir()
	f := filepath.Join(dir, "f")
	os.WriteFile(f, []byte("data"), 0o644)
	if got, st := runTool(t, i, "", "cat", f); got != "data" || st != 0 {
		t.Errorf("cat file = %q, %d", got, st)
	}
	if _, st := runTool(t, i, "", "cat", "/missing-file-zz"); st == 0 {
		t.Error("cat missing file should fail")
	}
	// Relative paths resolve against the interpreter's directory.
	i.SetDir(dir)
	if got, _ := runTool(t, i, "", "cat", "f"); got != "data" {
		t.Errorf("cat relative = %q", got)
	}
}

func TestTr(t *testing.T) {
	i := newI(t)
	tests := []struct {
		argv  []string
		stdin string
		want  string
	}{
		{[]string{"tr", "a-z", "A-Z"}, "hello", "HELLO"},
		{[]string{"tr", "abc", "xyz"}, "aabbcc", "xxyyzz"},
		{[]string{"tr", "-d", "aeiou"}, "education", "dctn"},
		{[]string{"tr", "-s", "l"}, "hello all", "helo al"},
		// The paper's pipeline: complement+squeeze into newlines.
		{[]string{"tr", "-cs", "a-zA-Z0-9", `\012`}, "one, two; three\n", "one\ntwo\nthree\n"},
		{[]string{"tr", `\n`, " "}, "a\nb\n", "a b "},
	}
	for _, tt := range tests {
		got, st := runTool(t, i, tt.stdin, tt.argv...)
		if got != tt.want || st != 0 {
			t.Errorf("%v < %q = %q (%d), want %q", tt.argv, tt.stdin, got, st, tt.want)
		}
	}
}

func TestSort(t *testing.T) {
	i := newI(t)
	in := "banana\napple\ncherry\napple\n"
	if got, _ := runTool(t, i, in, "sort"); got != "apple\napple\nbanana\ncherry\n" {
		t.Errorf("sort = %q", got)
	}
	if got, _ := runTool(t, i, in, "sort", "-r"); got != "cherry\nbanana\napple\napple\n" {
		t.Errorf("sort -r = %q", got)
	}
	if got, _ := runTool(t, i, in, "sort", "-u"); got != "apple\nbanana\ncherry\n" {
		t.Errorf("sort -u = %q", got)
	}
	nums := "10\n9\n100\n"
	if got, _ := runTool(t, i, nums, "sort", "-n"); got != "9\n10\n100\n" {
		t.Errorf("sort -n = %q", got)
	}
	if got, _ := runTool(t, i, nums, "sort", "-nr"); got != "100\n10\n9\n" {
		t.Errorf("sort -nr = %q", got)
	}
	// Numeric sort on uniq -c style columns.
	counts := "      2 bb\n     10 aa\n      1 cc\n"
	if got, _ := runTool(t, i, counts, "sort", "-nr"); !strings.HasPrefix(got, "     10 aa") {
		t.Errorf("sort -nr counts = %q", got)
	}
}

func TestUniq(t *testing.T) {
	i := newI(t)
	in := "a\na\nb\na\n"
	if got, _ := runTool(t, i, in, "uniq"); got != "a\nb\na\n" {
		t.Errorf("uniq = %q", got)
	}
	got, _ := runTool(t, i, in, "uniq", "-c")
	want := "      2 a\n      1 b\n      1 a\n"
	if got != want {
		t.Errorf("uniq -c = %q, want %q", got, want)
	}
}

func TestSed(t *testing.T) {
	i := newI(t)
	in := "one\ntwo\nthree\nfour\n"
	if got, _ := runTool(t, i, in, "sed", "2q"); got != "one\ntwo\n" {
		t.Errorf("sed 2q = %q", got)
	}
	if got, _ := runTool(t, i, in, "sed", "q"); got != "one\n" {
		t.Errorf("sed q = %q", got)
	}
	if got, _ := runTool(t, i, "aaa\n", "sed", "s/a/b/"); got != "baa\n" {
		t.Errorf("sed s = %q", got)
	}
	if got, _ := runTool(t, i, "aaa\n", "sed", "s/a/b/g"); got != "bbb\n" {
		t.Errorf("sed s g = %q", got)
	}
	if got, _ := runTool(t, i, in, "sed", "/t/d"); got != "one\nfour\n" {
		t.Errorf("sed /t/d = %q", got)
	}
	if _, st := runTool(t, i, in, "sed", "y/abc/xyz/"); st == 0 {
		t.Error("unsupported sed script should fail")
	}
}

func TestGrep(t *testing.T) {
	i := newI(t)
	in := "alpha\nbeta\ngamma\n"
	if got, st := runTool(t, i, in, "grep", "a$"); got != "alpha\nbeta\ngamma\n" || st != 0 {
		t.Errorf("grep a$ = %q, %d", got, st)
	}
	if got, st := runTool(t, i, in, "grep", "^b"); got != "beta\n" || st != 0 {
		t.Errorf("grep ^b = %q, %d", got, st)
	}
	if _, st := runTool(t, i, in, "grep", "zz"); st != 1 {
		t.Errorf("grep no match status = %d", st)
	}
	if got, _ := runTool(t, i, in, "grep", "-v", "a"); got != "" {
		t.Errorf("grep -v a = %q", got)
	}
	if got, _ := runTool(t, i, in, "grep", "-c", "a"); got != "3\n" {
		t.Errorf("grep -c = %q", got)
	}
	if got, _ := runTool(t, i, in, "grep", "-i", "ALPHA"); got != "alpha\n" {
		t.Errorf("grep -i = %q", got)
	}
}

func TestHeadTail(t *testing.T) {
	i := newI(t)
	var b strings.Builder
	for k := 1; k <= 20; k++ {
		b.WriteString(strings.Repeat("x", 0))
		b.WriteString("line")
		b.WriteByte(byte('0' + k%10))
		b.WriteByte('\n')
	}
	in := b.String()
	got, _ := runTool(t, i, in, "head", "-3")
	if got != "line1\nline2\nline3\n" {
		t.Errorf("head -3 = %q", got)
	}
	got, _ = runTool(t, i, in, "head", "-n", "2")
	if got != "line1\nline2\n" {
		t.Errorf("head -n 2 = %q", got)
	}
	got, _ = runTool(t, i, in, "tail", "-2")
	if got != "line9\nline0\n" {
		t.Errorf("tail -2 = %q", got)
	}
	// default 10
	got, _ = runTool(t, i, in, "head")
	if strings.Count(got, "\n") != 10 {
		t.Errorf("head default = %q", got)
	}
}

func TestWc(t *testing.T) {
	i := newI(t)
	got, _ := runTool(t, i, "one two\nthree\n", "wc")
	f := strings.Fields(got)
	if len(f) != 3 || f[0] != "2" || f[1] != "3" || f[2] != "14" {
		t.Errorf("wc = %q", got)
	}
	got, _ = runTool(t, i, "a b c\n", "wc", "-w")
	if strings.TrimSpace(got) != "3" {
		t.Errorf("wc -w = %q", got)
	}
	got, _ = runTool(t, i, "a\nb\n", "wc", "-l")
	if strings.TrimSpace(got) != "2" {
		t.Errorf("wc -l = %q", got)
	}
}

func TestTestBuiltin(t *testing.T) {
	i := newI(t)
	dir := t.TempDir()
	file := filepath.Join(dir, "plain")
	os.WriteFile(file, []byte("data"), 0o644)
	exe := filepath.Join(dir, "exe")
	os.WriteFile(exe, []byte("#!/bin/sh\n"), 0o755)

	tests := []struct {
		argv []string
		want int
	}{
		{[]string{"test", "-f", file}, 0},
		{[]string{"test", "-f", dir}, 1},
		{[]string{"test", "-d", dir}, 0},
		{[]string{"test", "-d", file}, 1},
		{[]string{"test", "-e", file}, 0},
		{[]string{"test", "-e", filepath.Join(dir, "nope")}, 1},
		{[]string{"test", "-x", exe}, 0},
		{[]string{"test", "-x", file}, 1},
		{[]string{"test", "-s", file}, 0},
		{[]string{"test", "-n", "x"}, 0},
		{[]string{"test", "-n", ""}, 1},
		{[]string{"test", "-z", ""}, 0},
		{[]string{"test", "a", "=", "a"}, 0},
		{[]string{"test", "a", "=", "b"}, 1},
		{[]string{"test", "a", "!=", "b"}, 0},
		{[]string{"test", "2", "-lt", "10"}, 0},
		{[]string{"test", "10", "-lt", "2"}, 1},
		{[]string{"test", "5", "-ge", "5"}, 0},
		{[]string{"test", "!", "-f", file}, 1},
		{[]string{"test", "nonempty"}, 0},
		{[]string{"test", ""}, 1},
		{[]string{"test"}, 1},
		{[]string{"[", "a", "=", "a", "]"}, 0},
		{[]string{"[", "a", "=", "a"}, 1}, // missing ]
	}
	for _, tt := range tests {
		if _, st := runTool(t, i, "", tt.argv...); st != tt.want {
			t.Errorf("%v = %d, want %d", tt.argv, st, tt.want)
		}
	}
}

func TestLs(t *testing.T) {
	i := newI(t)
	dir := t.TempDir()
	for _, f := range []string{"b", "a", ".hidden"} {
		os.WriteFile(filepath.Join(dir, f), nil, 0o644)
	}
	os.Mkdir(filepath.Join(dir, "sub"), 0o755)
	got, st := runTool(t, i, "", "ls", dir)
	if st != 0 || got != "a\nb\nsub\n" {
		t.Errorf("ls = %q, %d", got, st)
	}
	got, _ = runTool(t, i, "", "ls", "-a", dir)
	if got != ".hidden\na\nb\nsub\n" {
		t.Errorf("ls -a = %q", got)
	}
	if _, st := runTool(t, i, "", "ls", "/no/such/dir"); st == 0 {
		t.Error("ls missing dir should fail")
	}
	// ls of the interpreter's working directory by default.
	i.SetDir(dir)
	got, _ = runTool(t, i, "", "ls")
	if got != "a\nb\nsub\n" {
		t.Errorf("ls cwd = %q", got)
	}
}

func TestMkdirRmTouch(t *testing.T) {
	i := newI(t)
	dir := t.TempDir()
	i.SetDir(dir)
	if _, st := runTool(t, i, "", "mkdir", "d1"); st != 0 {
		t.Fatal("mkdir failed")
	}
	if _, st := runTool(t, i, "", "mkdir", "-p", "d2/nested/deep"); st != 0 {
		t.Fatal("mkdir -p failed")
	}
	if _, st := runTool(t, i, "", "touch", "d1/file"); st != 0 {
		t.Fatal("touch failed")
	}
	if fi, err := os.Stat(filepath.Join(dir, "d1/file")); err != nil || fi.IsDir() {
		t.Fatal("touched file missing")
	}
	if _, st := runTool(t, i, "", "rm", "d1/file"); st != 0 {
		t.Fatal("rm failed")
	}
	if _, st := runTool(t, i, "", "rm", "d1/file"); st == 0 {
		t.Error("rm of missing file should fail")
	}
	if _, st := runTool(t, i, "", "rm", "-f", "d1/file"); st != 0 {
		t.Error("rm -f of missing file should succeed")
	}
	if _, st := runTool(t, i, "", "rm", "-r", "d2"); st != 0 {
		t.Error("rm -r failed")
	}
	if _, err := os.Stat(filepath.Join(dir, "d2")); err == nil {
		t.Error("rm -r left directory")
	}
}

func TestPwdBasenameDirname(t *testing.T) {
	i := newI(t)
	dir := t.TempDir()
	i.SetDir(dir)
	if got, _ := runTool(t, i, "", "pwd"); got != dir+"\n" {
		t.Errorf("pwd = %q", got)
	}
	if got, _ := runTool(t, i, "", "basename", "/a/b/c.txt"); got != "c.txt\n" {
		t.Errorf("basename = %q", got)
	}
	if got, _ := runTool(t, i, "", "basename", "/a/b/c.txt", ".txt"); got != "c\n" {
		t.Errorf("basename suffix = %q", got)
	}
	if got, _ := runTool(t, i, "", "dirname", "/a/b/c.txt"); got != "/a/b\n" {
		t.Errorf("dirname = %q", got)
	}
}

func TestSeq(t *testing.T) {
	i := newI(t)
	if got, _ := runTool(t, i, "", "seq", "3"); got != "1\n2\n3\n" {
		t.Errorf("seq 3 = %q", got)
	}
	if got, _ := runTool(t, i, "", "seq", "2", "4"); got != "2\n3\n4\n" {
		t.Errorf("seq 2 4 = %q", got)
	}
	if got, _ := runTool(t, i, "", "seq", "10", "-5", "0"); got != "10\n5\n0\n" {
		t.Errorf("seq step = %q", got)
	}
	if _, st := runTool(t, i, "", "seq", "x"); st == 0 {
		t.Error("seq x should fail")
	}
}

func TestDate(t *testing.T) {
	i := newI(t)
	got, st := runTool(t, i, "", "date", "+%y-%m-%d")
	if st != 0 || len(strings.TrimSpace(got)) != 8 || strings.Count(got, "-") != 2 {
		t.Errorf("date +%%y-%%m-%%d = %q", got)
	}
	if got, _ := runTool(t, i, "", "date", "+literal%%"); got != "literal%\n" {
		t.Errorf("date literal = %q", got)
	}
	if _, st := runTool(t, i, "", "date", "+%Q"); st == 0 {
		t.Error("unsupported directive should fail")
	}
	if got, st := runTool(t, i, "", "date"); st != 0 || len(got) < 20 {
		t.Errorf("bare date = %q", got)
	}
}

func TestCutTeeRevTacNl(t *testing.T) {
	i := newI(t)
	if got, _ := runTool(t, i, "a:b:c\nd:e:f\n", "cut", "-d", ":", "-f", "2"); got != "b\ne\n" {
		t.Errorf("cut = %q", got)
	}
	if got, _ := runTool(t, i, "a:b:c\n", "cut", "-d:", "-f1,3"); got != "a:c\n" {
		t.Errorf("cut multi = %q", got)
	}
	if got, _ := runTool(t, i, "abc\n", "rev"); got != "cba\n" {
		t.Errorf("rev = %q", got)
	}
	if got, _ := runTool(t, i, "1\n2\n3\n", "tac"); got != "3\n2\n1\n" {
		t.Errorf("tac = %q", got)
	}
	got, _ := runTool(t, i, "x\ny\n", "nl")
	if !strings.Contains(got, "1\tx") || !strings.Contains(got, "2\ty") {
		t.Errorf("nl = %q", got)
	}
	dir := t.TempDir()
	i.SetDir(dir)
	if got, _ := runTool(t, i, "payload\n", "tee", "copy"); got != "payload\n" {
		t.Errorf("tee stdout = %q", got)
	}
	data, err := os.ReadFile(filepath.Join(dir, "copy"))
	if err != nil || string(data) != "payload\n" {
		t.Errorf("tee file = %q, %v", data, err)
	}
}

func TestCpMvCmp(t *testing.T) {
	i := newI(t)
	dir := t.TempDir()
	i.SetDir(dir)
	os.WriteFile(filepath.Join(dir, "src"), []byte("content"), 0o644)
	if _, st := runTool(t, i, "", "cp", "src", "dst"); st != 0 {
		t.Fatal("cp failed")
	}
	if _, st := runTool(t, i, "", "cmp", "src", "dst"); st != 0 {
		t.Error("cmp equal files should succeed")
	}
	os.WriteFile(filepath.Join(dir, "other"), []byte("different"), 0o644)
	if _, st := runTool(t, i, "", "cmp", "src", "other"); st == 0 {
		t.Error("cmp different files should fail")
	}
	if _, st := runTool(t, i, "", "mv", "dst", "moved"); st != 0 {
		t.Fatal("mv failed")
	}
	if _, err := os.Stat(filepath.Join(dir, "dst")); err == nil {
		t.Error("mv left source")
	}
}

func TestExpr(t *testing.T) {
	i := newI(t)
	tests := []struct {
		argv   []string
		out    string
		status int
	}{
		{[]string{"expr", "2", "+", "3"}, "5\n", 0},
		{[]string{"expr", "2", "-", "2"}, "0\n", 1},
		{[]string{"expr", "6", "*", "7"}, "42\n", 0},
		{[]string{"expr", "7", "/", "2"}, "3\n", 0},
		{[]string{"expr", "7", "%", "2"}, "1\n", 0},
		{[]string{"expr", "2", "<", "3"}, "1\n", 0},
		{[]string{"expr", "3", "<", "2"}, "0\n", 1},
		{[]string{"expr", "1", "/", "0"}, "", 1},
	}
	for _, tt := range tests {
		got, st := runTool(t, i, "", tt.argv...)
		if got != tt.out || st != tt.status {
			t.Errorf("%v = %q,%d want %q,%d", tt.argv, got, st, tt.out, tt.status)
		}
	}
}

func TestPrintf(t *testing.T) {
	i := newI(t)
	if got, _ := runTool(t, i, "", "printf", `%s-%d\n`, "x", "42"); got != "x-42\n" {
		t.Errorf("printf = %q", got)
	}
	if got, _ := runTool(t, i, "", "printf", `a\tb`); got != "a\tb" {
		t.Errorf("printf escapes = %q", got)
	}
}

func TestTrueFalseEnvYes(t *testing.T) {
	i := newI(t)
	if _, st := runTool(t, i, "", "true"); st != 0 {
		t.Error("true")
	}
	if _, st := runTool(t, i, "", "false"); st != 1 {
		t.Error("false")
	}
	i.SetVarRaw("MARKER", core.StrList("here"))
	got, _ := runTool(t, i, "", "env")
	if !strings.Contains(got, "MARKER=here") {
		t.Errorf("env = %q", got)
	}
	got, _ = runTool(t, i, "", "yes", "ok")
	if !strings.HasPrefix(got, "ok\nok\n") {
		t.Errorf("yes = %q", got[:20])
	}
}

func TestXargs(t *testing.T) {
	i := newI(t)
	var out bytes.Buffer
	ctx := &core.Ctx{IO: core.NewIOTable(strings.NewReader("a b\nc\n"), &out, &out)}
	st := i.Builtin("xargs")(i, ctx, []string{"xargs", "printf", `<%s><%s><%s>`})
	if st != 0 || out.String() != "<a><b><c>" {
		t.Errorf("xargs = %q, %d", out.String(), st)
	}
	// Default command is echo (the primitive is absent here, so it
	// reports failure rather than crashing).
	var out2 bytes.Buffer
	ctx2 := &core.Ctx{IO: core.NewIOTable(strings.NewReader("x\n"), &out2, &out2)}
	i.Builtin("xargs")(i, ctx2, []string{"xargs"})
}

func TestSleepAndErrors(t *testing.T) {
	i := newI(t)
	if _, st := runTool(t, i, "", "sleep", "0.01"); st != 0 {
		t.Error("sleep 0.01 failed")
	}
	if _, st := runTool(t, i, "", "sleep", "forever"); st == 0 {
		t.Error("sleep forever should fail")
	}
	if _, st := runTool(t, i, "", "sleep"); st == 0 {
		t.Error("sleep without args should fail")
	}
}

func TestTeeAppend(t *testing.T) {
	i := newI(t)
	dir := t.TempDir()
	i.SetDir(dir)
	runTool(t, i, "one\n", "tee", "log")
	runTool(t, i, "two\n", "tee", "-a", "log")
	data, _ := os.ReadFile(filepath.Join(dir, "log"))
	if string(data) != "one\ntwo\n" {
		t.Errorf("tee -a = %q", data)
	}
}

func TestGrepQuiet(t *testing.T) {
	i := newI(t)
	out, st := runTool(t, i, "needle\n", "grep", "-q", "needle")
	if st != 0 || out != "" {
		t.Errorf("grep -q = %q, %d", out, st)
	}
	if _, st := runTool(t, i, "hay\n", "grep", "-q", "needle"); st != 1 {
		t.Error("grep -q miss should be 1")
	}
	if _, st := runTool(t, i, "", "grep", "["); st == 0 {
		t.Error("bad regexp should fail")
	}
	if _, st := runTool(t, i, "", "grep"); st == 0 {
		t.Error("missing pattern should fail")
	}
}

func TestSedPrintForm(t *testing.T) {
	i := newI(t)
	got, _ := runTool(t, i, "keep\ndrop\n", "sed", "-n", "/keep/p")
	if got != "keep\n" {
		t.Errorf("sed -n /re/p = %q", got)
	}
	got, _ = runTool(t, i, "a\nb\n", "sed", "/a/p")
	if got != "a\na\nb\n" {
		t.Errorf("sed /re/p = %q", got)
	}
}

func TestDateMoreDirectives(t *testing.T) {
	i := newI(t)
	got, st := runTool(t, i, "", "date", "+%Y-%m-%dT%H:%M:%S")
	if st != 0 || len(strings.TrimSpace(got)) != 19 {
		t.Errorf("timestamp = %q", got)
	}
	got, st = runTool(t, i, "", "date", "+%s")
	if st != 0 || len(strings.TrimSpace(got)) < 9 {
		t.Errorf("epoch = %q", got)
	}
}

func TestLsLong(t *testing.T) {
	i := newI(t)
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "f"), []byte("12345"), 0o644)
	got, st := runTool(t, i, "", "ls", "-l", dir)
	if st != 0 || !strings.Contains(got, "5 f") {
		t.Errorf("ls -l = %q", got)
	}
	if _, st := runTool(t, i, "", "ls", "-Z", dir); st == 0 {
		t.Error("unknown flag should fail")
	}
}

func TestHeadOfFile(t *testing.T) {
	i := newI(t)
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "f"), []byte("1\n2\n3\n"), 0o644)
	i.SetDir(dir)
	if got, _ := runTool(t, i, "", "head", "-2", "f"); got != "1\n2\n" {
		t.Errorf("head file = %q", got)
	}
	if _, st := runTool(t, i, "", "head", "-2", "missing"); st == 0 {
		t.Error("head of missing file should fail")
	}
	if _, st := runTool(t, i, "", "head", "-nx"); st == 0 {
		t.Error("bad count should fail")
	}
}
