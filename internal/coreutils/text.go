package coreutils

import (
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"es/internal/core"
)

func registerText(i *core.Interp) {
	i.RegisterBuiltin("cat", wrap("cat", builtinCat))
	i.RegisterBuiltin("tr", wrap("tr", builtinTr))
	i.RegisterBuiltin("sort", wrap("sort", builtinSort))
	i.RegisterBuiltin("uniq", wrap("uniq", builtinUniq))
	i.RegisterBuiltin("sed", wrap("sed", builtinSed))
	i.RegisterBuiltin("grep", wrap("grep", builtinGrep))
	i.RegisterBuiltin("head", wrap("head", builtinHead))
	i.RegisterBuiltin("tail", wrap("tail", builtinTail))
	i.RegisterBuiltin("wc", wrap("wc", builtinWc))
	i.RegisterBuiltin("tee", wrap("tee", builtinTee))
	i.RegisterBuiltin("cut", wrap("cut", builtinCut))
	i.RegisterBuiltin("rev", wrap("rev", builtinRev))
	i.RegisterBuiltin("tac", wrap("tac", builtinTac))
	i.RegisterBuiltin("nl", wrap("nl", builtinNl))
	i.RegisterBuiltin("cmp", wrap("cmp", builtinCmp))
}

func openFile(c *ctxio, name string) (*os.File, error) {
	return os.Open(c.resolve(name))
}

func builtinCat(c *ctxio, args []string) int {
	return c.inputs(args, func(r io.Reader) int {
		if _, err := io.Copy(c.out, r); err != nil {
			return c.errorf("%v", err)
		}
		return 0
	})
}

// builtinTr supports the paper's usage: tr [-cs] set1 [set2], with
// character classes a-z ranges and backslash escapes (\012 octal, \n, \t).
func builtinTr(c *ctxio, args []string) int {
	complement, squeeze, del := false, false, false
	for len(args) > 0 && strings.HasPrefix(args[0], "-") && len(args[0]) > 1 {
		for _, f := range args[0][1:] {
			switch f {
			case 'c':
				complement = true
			case 's':
				squeeze = true
			case 'd':
				del = true
			default:
				return c.errorf("unsupported flag -%c", f)
			}
		}
		args = args[1:]
	}
	if len(args) < 1 {
		return c.errorf("missing operand")
	}
	set1 := expandTrSet(args[0])
	var set2 []byte
	if len(args) > 1 {
		set2 = expandTrSet(args[1])
	}
	inSet := make([]bool, 256)
	for _, b := range set1 {
		inSet[b] = true
	}
	member := func(b byte) bool { return inSet[b] != complement }
	// Translation table: members map to their positional counterpart in
	// set2 (the last char repeats); with -c, all members map to the last
	// char of set2, per POSIX.
	var xlat [256]byte
	for i := 0; i < 256; i++ {
		xlat[i] = byte(i)
	}
	if len(set2) > 0 && !del {
		if complement {
			last := set2[len(set2)-1]
			for i := 0; i < 256; i++ {
				if member(byte(i)) {
					xlat[i] = last
				}
			}
		} else {
			for i, b := range set1 {
				j := i
				if j >= len(set2) {
					j = len(set2) - 1
				}
				xlat[b] = set2[j]
			}
		}
	}
	var lastOut int = -1
	buf := make([]byte, 32*1024)
	status := c.inputs(nil, func(r io.Reader) int {
		for {
			n, err := r.Read(buf)
			for _, b := range buf[:n] {
				if del && member(b) {
					continue
				}
				ob := b
				if member(b) {
					ob = xlat[b]
				}
				if squeeze && member(b) && int(ob) == lastOut {
					continue
				}
				c.out.WriteByte(ob)
				lastOut = int(ob)
			}
			if err != nil {
				return 0
			}
		}
	})
	return status
}

// expandTrSet expands ranges (a-z) and escapes (\012, \n, \t) in a tr set.
func expandTrSet(s string) []byte {
	var out []byte
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				ch = '\n'
			case 't':
				ch = '\t'
			case '\\':
				ch = '\\'
			default:
				if s[i] >= '0' && s[i] <= '7' {
					v := 0
					for j := 0; j < 3 && i < len(s) && s[i] >= '0' && s[i] <= '7'; j++ {
						v = v*8 + int(s[i]-'0')
						i++
					}
					i--
					ch = byte(v)
				} else {
					ch = s[i]
				}
			}
		}
		if i+2 < len(s) && s[i+1] == '-' && s[i+2] != '\\' {
			hi := s[i+2]
			for b := ch; b <= hi; b++ {
				out = append(out, b)
			}
			i += 2
			continue
		}
		out = append(out, ch)
	}
	return out
}

func builtinSort(c *ctxio, args []string) int {
	reverse, numeric, unique := false, false, false
	var files []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") && len(a) > 1 {
			for _, f := range a[1:] {
				switch f {
				case 'r':
					reverse = true
				case 'n':
					numeric = true
				case 'u':
					unique = true
				default:
					return c.errorf("unsupported flag -%c", f)
				}
			}
		} else {
			files = append(files, a)
		}
	}
	var lines []string
	c.inputs(files, func(r io.Reader) int {
		eachLine(r, func(l string) { lines = append(lines, l) })
		return 0
	})
	less := func(a, b string) bool { return a < b }
	if numeric {
		less = func(a, b string) bool {
			na, nb := leadingNum(a), leadingNum(b)
			if na != nb {
				return na < nb
			}
			return a < b
		}
	}
	sort.SliceStable(lines, func(x, y int) bool {
		if reverse {
			return less(lines[y], lines[x])
		}
		return less(lines[x], lines[y])
	})
	var prev string
	first := true
	for _, l := range lines {
		if unique && !first && l == prev {
			continue
		}
		c.out.WriteString(l)
		c.out.WriteByte('\n')
		prev, first = l, false
	}
	return 0
}

func leadingNum(s string) float64 {
	s = strings.TrimLeft(s, " \t")
	end := 0
	for end < len(s) && (s[end] == '-' || s[end] == '+' || s[end] == '.' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0
	}
	return v
}

func builtinUniq(c *ctxio, args []string) int {
	count := false
	var files []string
	for _, a := range args {
		switch a {
		case "-c":
			count = true
		default:
			files = append(files, a)
		}
	}
	var prev string
	n := 0
	flush := func() {
		if n == 0 {
			return
		}
		if count {
			fmt.Fprintf(c.out, "%7d %s\n", n, prev)
		} else {
			c.out.WriteString(prev)
			c.out.WriteByte('\n')
		}
	}
	c.inputs(files, func(r io.Reader) int {
		eachLine(r, func(l string) {
			if n > 0 && l == prev {
				n++
				return
			}
			flush()
			prev, n = l, 1
		})
		return 0
	})
	flush()
	return 0
}

// builtinSed supports the small command subset the paper and common
// scripts use: Nq (quit after N lines), s/re/repl/[g], /re/d, N,Md, p
// with -n.
func builtinSed(c *ctxio, args []string) int {
	noPrint := false
	for len(args) > 0 && args[0] == "-n" {
		noPrint = true
		args = args[1:]
	}
	if len(args) == 0 {
		return c.errorf("missing script")
	}
	script := args[0]
	files := args[1:]

	// Nq: quit after printing N lines.
	if m := regexp.MustCompile(`^(\d*)q$`).FindStringSubmatch(script); m != nil {
		limit := 1
		if m[1] != "" {
			limit, _ = strconv.Atoi(m[1])
		}
		n := 0
		c.inputs(files, func(r io.Reader) int {
			eachLine(r, func(l string) {
				if n < limit {
					c.out.WriteString(l)
					c.out.WriteByte('\n')
					n++
				}
			})
			return 0
		})
		return 0
	}
	// s/re/repl/[g]
	if strings.HasPrefix(script, "s") && len(script) > 1 {
		sep := script[1]
		parts := strings.Split(script[2:], string(sep))
		if len(parts) < 2 {
			return c.errorf("bad substitution: %s", script)
		}
		re, err := regexp.Compile(parts[0])
		if err != nil {
			return c.errorf("bad pattern: %v", err)
		}
		repl := strings.ReplaceAll(parts[1], "\\", "$")
		global := len(parts) > 2 && strings.Contains(parts[2], "g")
		c.inputs(files, func(r io.Reader) int {
			eachLine(r, func(l string) {
				if global {
					l = re.ReplaceAllString(l, repl)
				} else if loc := re.FindStringIndex(l); loc != nil {
					l = l[:loc[0]] + re.ReplaceAllString(l[loc[0]:loc[1]], repl) + l[loc[1]:]
				}
				if !noPrint {
					c.out.WriteString(l)
					c.out.WriteByte('\n')
				}
			})
			return 0
		})
		return 0
	}
	// /re/d and /re/p
	if m := regexp.MustCompile(`^/(.*)/([dp])$`).FindStringSubmatch(script); m != nil {
		re, err := regexp.Compile(m[1])
		if err != nil {
			return c.errorf("bad pattern: %v", err)
		}
		del := m[2] == "d"
		c.inputs(files, func(r io.Reader) int {
			eachLine(r, func(l string) {
				match := re.MatchString(l)
				switch {
				case del && match:
				case !del && match && !noPrint:
					c.out.WriteString(l + "\n" + l + "\n")
				case !del && match:
					c.out.WriteString(l + "\n")
				case !noPrint:
					c.out.WriteString(l + "\n")
				}
			})
			return 0
		})
		return 0
	}
	return c.errorf("unsupported script: %s", script)
}

func builtinGrep(c *ctxio, args []string) int {
	invert, ignore, count, quiet := false, false, false, false
	for len(args) > 0 && strings.HasPrefix(args[0], "-") && len(args[0]) > 1 {
		for _, f := range args[0][1:] {
			switch f {
			case 'v':
				invert = true
			case 'i':
				ignore = true
			case 'c':
				count = true
			case 'q':
				quiet = true
			default:
				return c.errorf("unsupported flag -%c", f)
			}
		}
		args = args[1:]
	}
	if len(args) == 0 {
		return c.errorf("missing pattern")
	}
	pat := args[0]
	if ignore {
		pat = "(?i)" + pat
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return c.errorf("bad pattern: %v", err)
	}
	matched, n := false, 0
	c.inputs(args[1:], func(r io.Reader) int {
		eachLine(r, func(l string) {
			if re.MatchString(l) != invert {
				matched = true
				n++
				if !count && !quiet {
					c.out.WriteString(l)
					c.out.WriteByte('\n')
				}
			}
		})
		return 0
	})
	if count {
		fmt.Fprintf(c.out, "%d\n", n)
	}
	if matched {
		return 0
	}
	return 1
}

func headTailCount(args []string) (int, []string, bool) {
	n := 10
	var files []string
	for k := 0; k < len(args); k++ {
		a := args[k]
		switch {
		case a == "-n" && k+1 < len(args):
			v, err := strconv.Atoi(args[k+1])
			if err != nil {
				return 0, nil, false
			}
			n = v
			k++
		case strings.HasPrefix(a, "-n"):
			v, err := strconv.Atoi(a[2:])
			if err != nil {
				return 0, nil, false
			}
			n = v
		case strings.HasPrefix(a, "-") && len(a) > 1:
			v, err := strconv.Atoi(a[1:])
			if err != nil {
				return 0, nil, false
			}
			n = v
		default:
			files = append(files, a)
		}
	}
	return n, files, true
}

func builtinHead(c *ctxio, args []string) int {
	n, files, ok := headTailCount(args)
	if !ok {
		return c.errorf("bad count")
	}
	return c.inputs(files, func(r io.Reader) int {
		k := 0
		eachLine(r, func(l string) {
			if k < n {
				c.out.WriteString(l)
				c.out.WriteByte('\n')
				k++
			}
		})
		return 0
	})
}

func builtinTail(c *ctxio, args []string) int {
	n, files, ok := headTailCount(args)
	if !ok {
		return c.errorf("bad count")
	}
	return c.inputs(files, func(r io.Reader) int {
		var keep []string
		eachLine(r, func(l string) {
			keep = append(keep, l)
			if len(keep) > n {
				keep = keep[1:]
			}
		})
		for _, l := range keep {
			c.out.WriteString(l)
			c.out.WriteByte('\n')
		}
		return 0
	})
}

func builtinWc(c *ctxio, args []string) int {
	var lines, words, chars bool
	var files []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") && len(a) > 1 {
			for _, f := range a[1:] {
				switch f {
				case 'l':
					lines = true
				case 'w':
					words = true
				case 'c':
					chars = true
				default:
					return c.errorf("unsupported flag -%c", f)
				}
			}
		} else {
			files = append(files, a)
		}
	}
	if !lines && !words && !chars {
		lines, words, chars = true, true, true
	}
	print := func(l, w, ch int64, name string) {
		var cols []string
		if lines {
			cols = append(cols, fmt.Sprintf("%7d", l))
		}
		if words {
			cols = append(cols, fmt.Sprintf("%7d", w))
		}
		if chars {
			cols = append(cols, fmt.Sprintf("%7d", ch))
		}
		if name != "" {
			cols = append(cols, name)
		}
		c.out.WriteString(strings.Join(cols, " "))
		c.out.WriteByte('\n')
	}
	countOne := func(r io.Reader) (int64, int64, int64) {
		var l, w, ch int64
		inWord := false
		buf := make([]byte, 32*1024)
		for {
			n, err := r.Read(buf)
			for _, b := range buf[:n] {
				ch++
				if b == '\n' {
					l++
				}
				sp := b == ' ' || b == '\t' || b == '\n' || b == '\r'
				if !sp && !inWord {
					w++
				}
				inWord = !sp
			}
			if err != nil {
				return l, w, ch
			}
		}
	}
	if len(files) == 0 {
		l, w, ch := countOne(c.in)
		print(l, w, ch, "")
		return 0
	}
	var tl, tw, tch int64
	status := 0
	for _, f := range files {
		r, err := openFile(c, f)
		if err != nil {
			status = c.errorf("%s: %v", f, err)
			continue
		}
		l, w, ch := countOne(r)
		r.Close()
		print(l, w, ch, f)
		tl, tw, tch = tl+l, tw+w, tch+ch
	}
	if len(files) > 1 {
		print(tl, tw, tch, "total")
	}
	return status
}

func builtinTee(c *ctxio, args []string) int {
	appendMode := false
	var files []string
	for _, a := range args {
		if a == "-a" {
			appendMode = true
		} else {
			files = append(files, a)
		}
	}
	writers := []io.Writer{c.out}
	var closers []io.Closer
	flags := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	if appendMode {
		flags = os.O_WRONLY | os.O_CREATE | os.O_APPEND
	}
	for _, f := range files {
		w, err := os.OpenFile(c.resolve(f), flags, 0o666)
		if err != nil {
			return c.errorf("%s: %v", f, err)
		}
		writers = append(writers, w)
		closers = append(closers, w)
	}
	io.Copy(io.MultiWriter(writers...), c.in)
	for _, cl := range closers {
		cl.Close()
	}
	return 0
}

func builtinCut(c *ctxio, args []string) int {
	delim := "\t"
	var fields []int
	var files []string
	for k := 0; k < len(args); k++ {
		a := args[k]
		switch {
		case strings.HasPrefix(a, "-d"):
			if a == "-d" && k+1 < len(args) {
				delim = args[k+1]
				k++
			} else {
				delim = a[2:]
			}
		case strings.HasPrefix(a, "-f"):
			spec := a[2:]
			if a == "-f" && k+1 < len(args) {
				spec = args[k+1]
				k++
			}
			for _, part := range strings.Split(spec, ",") {
				if n, err := strconv.Atoi(part); err == nil {
					fields = append(fields, n)
				}
			}
		default:
			files = append(files, a)
		}
	}
	if len(fields) == 0 {
		return c.errorf("missing field list")
	}
	return c.inputs(files, func(r io.Reader) int {
		eachLine(r, func(l string) {
			cols := strings.Split(l, delim)
			var outCols []string
			for _, f := range fields {
				if f >= 1 && f <= len(cols) {
					outCols = append(outCols, cols[f-1])
				}
			}
			c.out.WriteString(strings.Join(outCols, delim))
			c.out.WriteByte('\n')
		})
		return 0
	})
}

func builtinRev(c *ctxio, args []string) int {
	return c.inputs(args, func(r io.Reader) int {
		eachLine(r, func(l string) {
			rs := []rune(l)
			for a, b := 0, len(rs)-1; a < b; a, b = a+1, b-1 {
				rs[a], rs[b] = rs[b], rs[a]
			}
			c.out.WriteString(string(rs))
			c.out.WriteByte('\n')
		})
		return 0
	})
}

func builtinTac(c *ctxio, args []string) int {
	var lines []string
	c.inputs(args, func(r io.Reader) int {
		eachLine(r, func(l string) { lines = append(lines, l) })
		return 0
	})
	for k := len(lines) - 1; k >= 0; k-- {
		c.out.WriteString(lines[k])
		c.out.WriteByte('\n')
	}
	return 0
}

func builtinNl(c *ctxio, args []string) int {
	n := 0
	return c.inputs(args, func(r io.Reader) int {
		eachLine(r, func(l string) {
			n++
			fmt.Fprintf(c.out, "%6d\t%s\n", n, l)
		})
		return 0
	})
}

func builtinCmp(c *ctxio, args []string) int {
	if len(args) != 2 {
		return c.errorf("usage: cmp file1 file2")
	}
	a, err := os.ReadFile(c.resolve(args[0]))
	if err != nil {
		return c.errorf("%v", err)
	}
	b, err := os.ReadFile(c.resolve(args[1]))
	if err != nil {
		return c.errorf("%v", err)
	}
	if string(a) == string(b) {
		return 0
	}
	fmt.Fprintf(c.out, "%s %s differ\n", args[0], args[1])
	return 1
}
