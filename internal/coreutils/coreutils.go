// Package coreutils provides hermetic, in-process implementations of the
// Unix text tools the paper's examples rely on (Figure 1's word-frequency
// pipeline, test(1) in the noclobber spoof, date(1), and friends).
//
// They are registered as builtins: command dispatch finds them after fn-
// definitions and before $PATH, so the paper's transcripts reproduce
// byte-for-byte on a machine with no userland at all.  Each implements the
// commonly used subset of its flags; unsupported usage reports an error
// and a non-zero status rather than guessing.
package coreutils

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"

	"es/internal/core"
)

// Register installs the full builtin set.
func Register(i *core.Interp) {
	registerText(i)
	registerFs(i)
	registerMisc(i)
}

// Names returns the registered command names (for tests and docs).
func Names() []string {
	return []string{
		"basename", "cat", "cmp", "cut", "date", "dirname", "env", "false",
		"grep", "head", "ls", "mkdir", "nl", "pwd", "rev", "rm", "seq",
		"sed", "sleep", "sort", "tac", "tail", "tee", "test", "touch",
		"tr", "true", "uniq", "wc", "xargs", "yes",
	}
}

// ctxio bundles the common per-invocation state.
type ctxio struct {
	i    *core.Interp
	in   io.Reader
	out  *bufio.Writer
	errw io.Writer
	name string
}

// wrap adapts a simpler function shape to core.BuiltinFunc, handling
// output buffering and error reporting uniformly.
func wrap(name string, fn func(c *ctxio, args []string) int) core.BuiltinFunc {
	return func(i *core.Interp, ctx *core.Ctx, argv []string) int {
		c := &ctxio{
			i:    i,
			in:   ctx.Stdin(),
			out:  bufio.NewWriter(ctx.Stdout()),
			errw: ctx.Stderr(),
			name: name,
		}
		status := fn(c, argv[1:])
		c.out.Flush()
		return status
	}
}

// errorf reports a diagnostic and returns failure.
func (c *ctxio) errorf(format string, args ...interface{}) int {
	fmt.Fprintf(c.errw, c.name+": "+format+"\n", args...)
	return 1
}

// resolve makes a path absolute relative to the shell's working directory.
func (c *ctxio) resolve(path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(c.i.Dir(), path)
}

// inputs opens the file operands (or stdin when none / "-"), calling fn
// for each reader in order.  Returns non-zero if any file fails to open.
func (c *ctxio) inputs(files []string, fn func(r io.Reader) int) int {
	if len(files) == 0 {
		return fn(c.in)
	}
	status := 0
	for _, f := range files {
		if f == "-" {
			if s := fn(c.in); s != 0 {
				status = s
			}
			continue
		}
		r, err := openFile(c, f)
		if err != nil {
			status = c.errorf("%s: %v", f, err)
			continue
		}
		if s := fn(r); s != 0 {
			status = s
		}
		r.Close()
	}
	return status
}

// eachLine feeds every input line (without newline) to fn.
func eachLine(r io.Reader, fn func(line string)) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		fn(sc.Text())
	}
}
