package coreutils

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"es/internal/core"
)

func registerMisc(i *core.Interp) {
	i.RegisterBuiltin("true", wrap("true", func(c *ctxio, args []string) int { return 0 }))
	i.RegisterBuiltin("false", wrap("false", func(c *ctxio, args []string) int { return 1 }))
	i.RegisterBuiltin("seq", wrap("seq", builtinSeq))
	i.RegisterBuiltin("date", wrap("date", builtinDate))
	i.RegisterBuiltin("sleep", wrap("sleep", builtinSleep))
	i.RegisterBuiltin("env", wrap("env", builtinEnv))
	i.RegisterBuiltin("yes", wrap("yes", builtinYes))
	i.RegisterBuiltin("xargs", builtinXargs)
	i.RegisterBuiltin("expr", wrap("expr", builtinExpr))
	i.RegisterBuiltin("printf", wrap("printf", builtinPrintf))
}

func builtinSeq(c *ctxio, args []string) int {
	lo, hi, step := 1, 1, 1
	var err error
	switch len(args) {
	case 1:
		hi, err = strconv.Atoi(args[0])
	case 2:
		lo, err = strconv.Atoi(args[0])
		if err == nil {
			hi, err = strconv.Atoi(args[1])
		}
	case 3:
		lo, err = strconv.Atoi(args[0])
		if err == nil {
			step, err = strconv.Atoi(args[1])
		}
		if err == nil {
			hi, err = strconv.Atoi(args[2])
		}
	default:
		return c.errorf("usage: seq [first [step]] last")
	}
	if err != nil || step == 0 {
		return c.errorf("bad arguments")
	}
	for n := lo; (step > 0 && n <= hi) || (step < 0 && n >= hi); n += step {
		fmt.Fprintf(c.out, "%d\n", n)
	}
	return 0
}

// builtinDate supports +FORMAT with the strftime directives shell scripts
// use; the paper's example is date +%y-%m-%d.
func builtinDate(c *ctxio, args []string) int {
	now := time.Now()
	if len(args) == 0 {
		c.out.WriteString(now.Format("Mon Jan  2 15:04:05 MST 2006"))
		c.out.WriteByte('\n')
		return 0
	}
	if !strings.HasPrefix(args[0], "+") {
		return c.errorf("usage: date [+format]")
	}
	spec := args[0][1:]
	var b strings.Builder
	for k := 0; k < len(spec); k++ {
		if spec[k] != '%' || k+1 >= len(spec) {
			b.WriteByte(spec[k])
			continue
		}
		k++
		switch spec[k] {
		case 'y':
			b.WriteString(now.Format("06"))
		case 'Y':
			b.WriteString(now.Format("2006"))
		case 'm':
			b.WriteString(now.Format("01"))
		case 'd':
			b.WriteString(now.Format("02"))
		case 'H':
			b.WriteString(now.Format("15"))
		case 'M':
			b.WriteString(now.Format("04"))
		case 'S':
			b.WriteString(now.Format("05"))
		case 's':
			fmt.Fprintf(&b, "%d", now.Unix())
		case '%':
			b.WriteByte('%')
		default:
			return c.errorf("unsupported directive %%%c", spec[k])
		}
	}
	c.out.WriteString(b.String())
	c.out.WriteByte('\n')
	return 0
}

func builtinSleep(c *ctxio, args []string) int {
	if len(args) == 0 {
		return c.errorf("missing operand")
	}
	secs, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return c.errorf("bad interval %s", args[0])
	}
	time.Sleep(time.Duration(secs * float64(time.Second)))
	return 0
}

func builtinEnv(c *ctxio, args []string) int {
	for _, kv := range c.i.ExportEnv() {
		c.out.WriteString(kv)
		c.out.WriteByte('\n')
	}
	return 0
}

func builtinYes(c *ctxio, args []string) int {
	word := "y"
	if len(args) > 0 {
		word = strings.Join(args, " ")
	}
	// Bounded: an infinite yes would hang hermetic tests; emit a large
	// finite stream (callers pipe into head anyway).
	for k := 0; k < 1<<20; k++ {
		if _, err := c.out.WriteString(word + "\n"); err != nil {
			return 0
		}
	}
	return 0
}

// builtinXargs reads whitespace-separated words from standard input and
// runs the given command once with all of them appended.
func builtinXargs(i *core.Interp, ctx *core.Ctx, argv []string) int {
	data, err := io.ReadAll(ctx.Stdin())
	if err != nil {
		fmt.Fprintf(ctx.Stderr(), "xargs: %v\n", err)
		return 1
	}
	words := strings.Fields(string(data))
	cmd := argv[1:]
	if len(cmd) == 0 {
		cmd = []string{"echo"}
	}
	all := append(append([]string{}, cmd[1:]...), words...)
	res, aerr := i.ApplyTerm(ctx.NonTail(), core.StrTerm(cmd[0]), core.StrList(all...))
	if aerr != nil {
		fmt.Fprintf(ctx.Stderr(), "xargs: %v\n", aerr)
		return 1
	}
	if res.True() {
		return 0
	}
	return 1
}

// builtinExpr supports simple integer arithmetic and comparison:
// expr a OP b with + - '*' / % < <= = != >= >.
func builtinExpr(c *ctxio, args []string) int {
	if len(args) != 3 {
		return c.errorf("usage: expr a op b")
	}
	a, err1 := strconv.Atoi(args[0])
	b, err2 := strconv.Atoi(args[2])
	if err1 != nil || err2 != nil {
		return c.errorf("non-numeric argument")
	}
	switch args[1] {
	case "+":
		fmt.Fprintf(c.out, "%d\n", a+b)
	case "-":
		fmt.Fprintf(c.out, "%d\n", a-b)
	case "*":
		fmt.Fprintf(c.out, "%d\n", a*b)
	case "/":
		if b == 0 {
			return c.errorf("division by zero")
		}
		fmt.Fprintf(c.out, "%d\n", a/b)
	case "%":
		if b == 0 {
			return c.errorf("division by zero")
		}
		fmt.Fprintf(c.out, "%d\n", a%b)
	case "<", "<=", "=", "!=", ">=", ">":
		ok := false
		switch args[1] {
		case "<":
			ok = a < b
		case "<=":
			ok = a <= b
		case "=":
			ok = a == b
		case "!=":
			ok = a != b
		case ">=":
			ok = a >= b
		case ">":
			ok = a > b
		}
		if ok {
			fmt.Fprintln(c.out, "1")
			return 0
		}
		fmt.Fprintln(c.out, "0")
		return 1
	default:
		return c.errorf("unsupported operator %s", args[1])
	}
	if args[1] == "-" && a-b == 0 || args[1] == "+" && a+b == 0 {
		return 1 // expr exits 1 when the result is zero
	}
	return 0
}

func builtinPrintf(c *ctxio, args []string) int {
	if len(args) == 0 {
		return c.errorf("missing format")
	}
	format := args[0]
	operands := args[1:]
	k := 0
	next := func() string {
		if k < len(operands) {
			k++
			return operands[k-1]
		}
		return ""
	}
	var b strings.Builder
	for j := 0; j < len(format); j++ {
		ch := format[j]
		switch {
		case ch == '\\' && j+1 < len(format):
			j++
			switch format[j] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte(format[j])
			}
		case ch == '%' && j+1 < len(format):
			j++
			switch format[j] {
			case 's':
				b.WriteString(next())
			case 'd':
				n, _ := strconv.Atoi(next())
				fmt.Fprintf(&b, "%d", n)
			case '%':
				b.WriteByte('%')
			default:
				return c.errorf("unsupported directive %%%c", format[j])
			}
		default:
			b.WriteByte(ch)
		}
	}
	c.out.WriteString(b.String())
	return 0
}
