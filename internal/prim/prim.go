// Package prim provides the standard $& primitives of es and the
// initial.es start-up script that binds them to their %-prefixed hook
// functions.
//
// "%create is not really the built-in file redirection service.  It is a
// hook to the primitive $&create, which itself cannot be overridden.  That
// means that it is always possible to access the underlying shell service,
// even when its hook has been reassigned."
package prim

import (
	"es/internal/core"
)

// Register installs the full standard primitive set into an interpreter.
func Register(i *core.Interp) {
	registerControl(i)
	registerPlumbing(i)
	registerWords(i)
	registerServices(i)
	registerSnapshot(i)
	registerAnalyze(i)
}

// RunInitial evaluates the embedded initial.es script, establishing the
// hook bindings, the default prompt, and the path/PATH settor pair.
func RunInitial(i *core.Interp, ctx *core.Ctx) error {
	_, err := i.RunString(ctx, initialES)
	return err
}

// run applies a term (usually a thunk) to trailing arguments, without
// establishing a return boundary: `return` inside an if branch or a catch
// handler unwinds past the primitive to the enclosing function.
func run(i *core.Interp, ctx *core.Ctx, t core.Term, rest core.List) (core.List, error) {
	return i.Call(ctx, t, rest)
}
