package prim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"es/internal/core"
)

func newInterp(t *testing.T) (*core.Interp, *core.Ctx, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	i := core.New()
	Register(i)
	var out, errw bytes.Buffer
	ctx := &core.Ctx{IO: core.NewIOTable(strings.NewReader(""), &out, &errw)}
	if err := RunInitial(i, ctx); err != nil {
		t.Fatalf("initial.es: %v", err)
	}
	return i, ctx, &out, &errw
}

func mustRun(t *testing.T, i *core.Interp, ctx *core.Ctx, src string) core.List {
	t.Helper()
	res, err := i.RunString(ctx, src)
	if err != nil {
		t.Fatalf("RunString(%q): %v", src, err)
	}
	return res
}

func TestIfChain(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	tests := []struct{ src, want string }{
		{"if {result 0} {result then}", "then"},
		{"if {result 1} {result then}", ""},
		{"if {result 1} {result then} {result else}", "else"},
		{"if {result 1} {result a} {result 0} {result b} {result c}", "b"},
		{"if {result 1} {result a} {result 1} {result b} {result c}", "c"},
		{"if", ""},
	}
	for _, tt := range tests {
		got := mustRun(t, i, ctx, "result <>{"+tt.src+"}").Flatten(" ")
		if got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestAndOrShortCircuit(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	mustRun(t, i, ctx, "%and {echo a} {result 1} {echo never}")
	if out.String() != "a\n" {
		t.Errorf("and transcript = %q", out.String())
	}
	out.Reset()
	mustRun(t, i, ctx, "%or {result 1} {echo b} {echo never}")
	if out.String() != "b\n" {
		t.Errorf("or transcript = %q", out.String())
	}
	if !mustRun(t, i, ctx, "%and").True() {
		t.Error("empty and should be true")
	}
	if mustRun(t, i, ctx, "%or").True() {
		t.Error("empty or should be false")
	}
}

func TestResultEchoesRichValues(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	res := mustRun(t, i, ctx, "result a {echo b} $&echo")
	if len(res) != 3 || res[1].Closure == nil || res[2].Prim != "echo" {
		t.Errorf("result = %#v", res)
	}
}

func TestThrowRequiresName(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	if _, err := i.RunString(ctx, "throw"); err == nil {
		t.Error("bare throw should fail")
	}
	_, err := i.RunString(ctx, "throw custom a b")
	e := core.AsException(err)
	if e == nil || e.Name() != "custom" || len(e.Args) != 3 {
		t.Errorf("custom exception = %v", err)
	}
}

func TestCatchRethrow(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	_, err := i.RunString(ctx, "catch @ e msg {throw $e $msg} {throw error original}")
	if err == nil || !strings.Contains(err.Error(), "original") {
		t.Errorf("rethrow = %v", err)
	}
}

func TestCatchNestedRetryIsolation(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	// retry thrown by the inner handler re-runs only the inner body.
	mustRun(t, i, ctx, `
inner-runs = ''
catch @ e {echo outer-handler} {
	catch @ e {
		if {~ $#inner-runs 2} {result done} {throw retry}
	} {
		inner-runs = $inner-runs x
		throw error boom
	}
}`)
	if strings.Contains(out.String(), "outer-handler") {
		t.Errorf("retry leaked to outer catch: %q", out.String())
	}
	if got := i.Var("inner-runs"); len(got) != 2 {
		t.Errorf("inner body ran %d times, want 2", len(got))
	}
}

func TestEvalPrimitive(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	got := mustRun(t, i, ctx, "cmd = 'result built at runtime'; result <>{eval $cmd}").Flatten(" ")
	if got != "built at runtime" {
		t.Errorf("eval = %q", got)
	}
}

func TestDotSourcesFile(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	dir := t.TempDir()
	file := filepath.Join(dir, "lib.es")
	if err := os.WriteFile(file, []byte("echo sourced with $*\nfn from-lib {result lib}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustRun(t, i, ctx, ". "+file+" a1 a2")
	if out.String() != "sourced with a1 a2\n" {
		t.Errorf("dot output = %q", out.String())
	}
	if got := mustRun(t, i, ctx, "from-lib").Flatten(""); got != "lib" {
		t.Errorf("function from sourced file = %q", got)
	}
	if _, err := i.RunString(ctx, ". /nonexistent-es-file"); err == nil {
		t.Error("sourcing a missing file should throw")
	}
}

func TestFlattenFsplitSplit(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	tests := []struct{ src, want string }{
		{"result <>{%flatten : a b c}", "a:b:c"},
		{"result <>{%flatten '' a b}", "ab"},
		{"result <>{%flatten :}", ""},
		{"result <>{%fsplit : a:b::c}", "a b  c"},
		{"result <>{%fsplit : a b}", "a b"},
		{"result <>{%split ': ' 'a:b c'}", "a b c"},
	}
	for _, tt := range tests {
		got := mustRun(t, i, ctx, tt.src).Flatten(" ")
		if got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
	// fsplit keeps empty fields: a::b has three.
	if got := mustRun(t, i, ctx, "result $#:xx"); got.Flatten("") != "0" {
		_ = got // placeholder: count checked below
	}
	res := mustRun(t, i, ctx, "x = <>{%fsplit : a::b}; result $#x").Flatten("")
	if res != "3" {
		t.Errorf("fsplit empty fields: %q", res)
	}
}

func TestCountPrim(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	if got := mustRun(t, i, ctx, "result <>{$&count a b c}").Flatten(""); got != "3" {
		t.Errorf("count = %q", got)
	}
}

func TestEchoFlags(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	mustRun(t, i, ctx, "echo -n no newline")
	if out.String() != "no newline" {
		t.Errorf("-n = %q", out.String())
	}
	out.Reset()
	mustRun(t, i, ctx, "echo -- -n literal")
	if out.String() != "-n literal\n" {
		t.Errorf("-- = %q", out.String())
	}
}

func TestCdAndErrors(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	dir := t.TempDir()
	mustRun(t, i, ctx, "cd "+dir)
	if i.Dir() != dir {
		t.Errorf("dir = %q", i.Dir())
	}
	// Relative cd.
	sub := filepath.Join(dir, "sub")
	os.Mkdir(sub, 0o755)
	mustRun(t, i, ctx, "cd sub")
	if i.Dir() != sub {
		t.Errorf("relative cd = %q", i.Dir())
	}
	mustRun(t, i, ctx, "cd ..")
	if i.Dir() != dir {
		t.Errorf("dotdot cd = %q", i.Dir())
	}
	_, err := i.RunString(ctx, "cd /no/such/dir")
	if err == nil || !strings.Contains(err.Error(), "chdir /no/such/dir") {
		t.Errorf("cd error = %v", err)
	}
	// cd with no argument goes home.
	i.SetVarRaw("home", core.StrList(dir))
	mustRun(t, i, ctx, "cd /")
	mustRun(t, i, ctx, "cd")
	if i.Dir() != dir {
		t.Errorf("cd home = %q", i.Dir())
	}
}

func TestCdSpoofTitlebar(t *testing.T) {
	// The paper's cd spoof: "a cd operation which also places the
	// current directory in the title-bar".
	i, ctx, out, _ := newInterp(t)
	i.RegisterPrim("title", func(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
		out.WriteString("TITLE:" + args.Flatten(" ") + "\n")
		return core.True(), nil
	})
	dir := t.TempDir()
	mustRun(t, i, ctx, "fn-title = $&title")
	mustRun(t, i, ctx, `
let (cd = $fn-cd)
fn cd {
	$cd $*
	title $*
}`)
	mustRun(t, i, ctx, "cd "+dir)
	if i.Dir() != dir {
		t.Errorf("spoofed cd did not chdir: %q", i.Dir())
	}
	if !strings.Contains(out.String(), "TITLE:"+dir) {
		t.Errorf("title hook not called: %q", out.String())
	}
}

func TestPathsearch(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	dir := t.TempDir()
	tool := filepath.Join(dir, "sometool")
	if err := os.WriteFile(tool, []byte("#!/bin/sh\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	notExec := filepath.Join(dir, "data")
	os.WriteFile(notExec, []byte("x"), 0o644)
	i.SetVarRaw("path", core.StrList("/nonexistent", dir))
	got := mustRun(t, i, ctx, "result <>{%pathsearch sometool}").Flatten("")
	if got != tool {
		t.Errorf("pathsearch = %q", got)
	}
	if _, err := i.RunString(ctx, "%pathsearch data"); err == nil {
		t.Error("non-executable file should not be found")
	}
	if _, err := i.RunString(ctx, "%pathsearch missing-entirely"); err == nil {
		t.Error("missing program should throw")
	}
	// Slash-containing names pass through.
	got = mustRun(t, i, ctx, "result <>{%pathsearch ./rel/prog}").Flatten("")
	if got != "./rel/prog" {
		t.Errorf("slash passthrough = %q", got)
	}
}

func TestWhatisForms(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	mustRun(t, i, ctx, "fn simple {echo hi}")
	mustRun(t, i, ctx, "whatis simple")
	if out.String() != "@ * {echo hi}\n" {
		t.Errorf("whatis fn = %q", out.String())
	}
	out.Reset()
	i.RegisterBuiltin("somebuiltin", func(i *core.Interp, ctx *core.Ctx, argv []string) int { return 0 })
	mustRun(t, i, ctx, "whatis somebuiltin")
	if out.String() != "$&somebuiltin\n" {
		t.Errorf("whatis builtin = %q", out.String())
	}
	out.Reset()
	res := mustRun(t, i, ctx, "whatis utterly-missing-xyz")
	if res.True() {
		t.Error("whatis of missing name should be false")
	}
}

func TestVarsListing(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	mustRun(t, i, ctx, "zz-unique = some value")
	mustRun(t, i, ctx, "vars")
	if !strings.Contains(out.String(), "zz-unique=some\x01value") {
		t.Errorf("vars output missing assignment: %q", out.String())
	}
}

func TestTimeFormat(t *testing.T) {
	i, ctx, _, errw := newInterp(t)
	mustRun(t, i, ctx, "time {result 0}")
	got := errw.String()
	if !strings.Contains(got, "r ") || !strings.Contains(got, "u ") || !strings.Contains(got, "s\t") {
		t.Errorf("time format = %q", got)
	}
	if !strings.Contains(got, "result 0") {
		t.Errorf("time label = %q", got)
	}
}

func TestBackgroundAndWait(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	mustRun(t, i, ctx, "%background {result from-background}")
	apid := i.Var("apid").Flatten("")
	if apid == "" {
		t.Fatal("apid not set")
	}
	got := mustRun(t, i, ctx, "result <>{wait "+apid+"}").Flatten(" ")
	if got != "from-background" {
		t.Errorf("wait result = %q", got)
	}
	if _, err := i.RunString(ctx, "wait 99999"); err == nil {
		t.Error("waiting for unknown job should throw")
	}
	if _, err := i.RunString(ctx, "wait"); err == nil {
		t.Error("wait with no jobs should throw")
	}
}

func TestApids(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	mustRun(t, i, ctx, "sync = ''; %background {result 1}; %background {result 2}")
	ids := mustRun(t, i, ctx, "apids")
	if len(ids) != 2 {
		t.Errorf("apids = %v", ids)
	}
	mustRun(t, i, ctx, "wait "+ids[0].String())
	ids = mustRun(t, i, ctx, "apids")
	if len(ids) != 1 {
		t.Errorf("apids after wait = %v", ids)
	}
	mustRun(t, i, ctx, "wait") // drain
}

func TestForkIsolation(t *testing.T) {
	i, ctx, _, errw := newInterp(t)
	mustRun(t, i, ctx, "g = before; fork {g = inside}")
	if got := i.Var("g").Flatten(""); got != "before" {
		t.Errorf("fork leaked: %q", got)
	}
	// Exceptions die at the subshell boundary with a report and false.
	res := mustRun(t, i, ctx, "fork {throw error boom}")
	if res.True() {
		t.Error("fork with exception should be false")
	}
	if !strings.Contains(errw.String(), "boom") {
		t.Errorf("exception not reported: %q", errw.String())
	}
	// exit inside a subshell becomes its status, silently.
	errw.Reset()
	res = mustRun(t, i, ctx, "fork {exit 3}")
	if res.Flatten("") != "3" || errw.Len() != 0 {
		t.Errorf("fork exit: res=%v stderr=%q", res, errw.String())
	}
}

func TestBackquoteSplitting(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	got := mustRun(t, i, ctx, "result `{echo 'a b'; echo c}").Flatten(",")
	if got != "a,b,c" {
		t.Errorf("backquote = %q", got)
	}
	// Custom ifs.
	got = mustRun(t, i, ctx, "local (ifs = :) {result `{echo -n a:b c}}").Flatten(",")
	if got != "a,b c\n" && got != "a,b c" {
		t.Errorf("custom ifs = %q", got)
	}
	// Backquote runs in a subshell: assignments do not leak.
	mustRun(t, i, ctx, "bq = before; x = `{bq = inside; echo out}")
	if got := i.Var("bq").Flatten(""); got != "before" {
		t.Errorf("backquote leaked: %q", got)
	}
}

func TestReadPrim(t *testing.T) {
	i, _, _, _ := newInterp(t)
	var out bytes.Buffer
	ctx := &core.Ctx{IO: core.NewIOTable(strings.NewReader("line one\nline two\n"), &out, &out)}
	got := mustRun(t, i, ctx, "result <>{read}").Flatten(" ")
	if got != "line one" {
		t.Errorf("read = %q", got)
	}
	got = mustRun(t, i, ctx, "result <>{read}").Flatten(" ")
	if got != "line two" {
		t.Errorf("read 2 = %q", got)
	}
	if _, err := i.RunString(ctx, "read"); !core.ExcNamed(err, "eof") {
		t.Errorf("read at eof = %v", err)
	}
}

func TestPrimitivesListing(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	res := mustRun(t, i, ctx, "result <>{$&primitives}")
	names := res.Strings()
	for _, want := range []string{"if", "pipe", "create", "catch", "pathsearch", "dot"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("primitive %q missing from listing", want)
		}
	}
	// Sorted.
	for k := 1; k < len(names); k++ {
		if names[k] < names[k-1] {
			t.Errorf("primitives not sorted at %d: %v", k, names)
			break
		}
	}
}

func TestUnknownPrimErrors(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	if _, err := i.RunString(ctx, "$&no-such-primitive"); err == nil {
		t.Error("unknown primitive should throw")
	}
}

func TestDupAndClose(t *testing.T) {
	i, ctx, out, errw := newInterp(t)
	mustRun(t, i, ctx, "echo to-stderr >[2=1]")
	// stderr duplicated onto stdout's stream target: both in out.
	_ = errw
	if out.String() != "to-stderr\n" {
		t.Errorf("dup 2=1: out=%q", out.String())
	}
	out.Reset()
	mustRun(t, i, ctx, "echo vanished >[1=]")
	if out.Len() != 0 {
		t.Errorf("close: out=%q", out.String())
	}
}

func TestRedirectionFiles(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	dir := t.TempDir()
	mustRun(t, i, ctx, "cd "+dir)
	mustRun(t, i, ctx, "echo one > f; echo two >> f")
	mustRun(t, i, ctx, "catch @ e {result $e} {{while {} {echo got <>{read}}} < f}")
	if out.String() != "got one\ngot two\n" {
		t.Errorf("file round trip = %q", out.String())
	}
}

func TestExitStatusHelper(t *testing.T) {
	for _, tt := range []struct {
		args []string
		want int
	}{
		{nil, 0},
		{[]string{"0"}, 0},
		{[]string{"3"}, 3},
		{[]string{"nonsense"}, 1},
		{[]string{"300"}, 1},
	} {
		if got := ExitStatus(core.StrList(tt.args...)); got != tt.want {
			t.Errorf("ExitStatus(%v) = %d, want %d", tt.args, got, tt.want)
		}
	}
}

func TestForever(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	got := mustRun(t, i, ctx, `
n =
result <>{forever {
	n = $n x
	if {~ $#n 3} {break finished $#n}
	echo tick
}}`)
	if got.Flatten(" ") != "finished 3" {
		t.Errorf("forever result = %v", got)
	}
	if out.String() != "tick\ntick\n" {
		t.Errorf("forever output = %q", out.String())
	}
	// break with no value falls back to the last body result.
	got = mustRun(t, i, ctx, "forever {break}")
	if !got.True() {
		t.Errorf("bare break result = %v", got)
	}
}

func TestNotPrim(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	if mustRun(t, i, ctx, "$&not {result 0}").True() {
		t.Error("not true should be false")
	}
	if !mustRun(t, i, ctx, "$&not {result 1}").True() {
		t.Error("not false should be true")
	}
	if mustRun(t, i, ctx, "$&not").True() {
		t.Error("bare not is false")
	}
	// %not runs a command with arguments.
	if mustRun(t, i, ctx, "$&not result 0").True() {
		t.Error("not result 0 should be false")
	}
}

func TestBreakReturnOutsideLoop(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	_, err := i.RunString(ctx, "break stray")
	if !core.ExcNamed(err, "break") {
		t.Errorf("stray break = %v", err)
	}
	_, err = i.RunString(ctx, "return stray")
	if !core.ExcNamed(err, "return") {
		t.Errorf("top-level return = %v", err)
	}
}

func TestExecPrim(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	_, err := i.RunString(ctx, "exec {echo ran; result 5}")
	e := core.AsException(err)
	if e == nil || e.Name() != "exit" {
		t.Fatalf("exec = %v", err)
	}
	if ExitStatus(e.Args[1:]) != 5 {
		t.Errorf("exec status = %v", e.Args)
	}
	if out.String() != "ran\n" {
		t.Errorf("exec output = %q", out.String())
	}
	if res := mustRun(t, i, ctx, "$&exec"); !res.True() {
		t.Errorf("bare exec = %v", res)
	}
}

func TestHerePrim(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	mustRun(t, i, ctx, "%here 0 'fed text' {echo got <>{read}}")
	if out.String() != "got fed text\n" {
		t.Errorf("here = %q", out.String())
	}
	if _, err := i.RunString(ctx, "%here bad x {y}"); err == nil {
		t.Error("bad fd should throw")
	}
	if _, err := i.RunString(ctx, "%here 0"); err == nil {
		t.Error("missing args should throw")
	}
}

func TestPipePrimDirect(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	mustRun(t, i, ctx, "%pipe {echo one; echo two} 1 0 {while {} {echo saw <>{read}}}")
	if out.String() != "saw one\nsaw two\n" {
		t.Errorf("pipe = %q", out.String())
	}
	// Degenerate forms.
	if res := mustRun(t, i, ctx, "%pipe"); !res.True() {
		t.Errorf("empty pipe = %v", res)
	}
	out.Reset()
	mustRun(t, i, ctx, "%pipe {echo solo}")
	if out.String() != "solo\n" {
		t.Errorf("single-element pipe = %q", out.String())
	}
	if _, err := i.RunString(ctx, "%pipe {a} 1 {b}"); err == nil {
		t.Error("malformed pipe should throw")
	}
	if _, err := i.RunString(ctx, "%pipe {a} x y {b}"); err == nil {
		t.Error("non-numeric fds should throw")
	}
}

func TestVarPrim(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	mustRun(t, i, ctx, "alpha = 1 2; beta = 3")
	got := mustRun(t, i, ctx, "result <>{$&var alpha beta}")
	if got.Flatten(" ") != "1 2 3" {
		t.Errorf("$&var = %v", got)
	}
}

func TestVersionPrim(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	got := mustRun(t, i, ctx, "version")
	if !strings.Contains(got.Flatten(" "), "es-go") {
		t.Errorf("version = %v", got)
	}
}

func TestNoexportPrim(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	mustRun(t, i, ctx, "secret = hidden; noexport secret")
	for _, kv := range i.ExportEnv() {
		if strings.HasPrefix(kv, "secret=") {
			t.Errorf("noexported variable leaked: %q", kv)
		}
	}
}

func TestMatchPrim(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	if !mustRun(t, i, ctx, "$&match foo f*").True() {
		t.Error("match f*")
	}
	if mustRun(t, i, ctx, "$&match foo b*").True() {
		t.Error("match b*")
	}
	if mustRun(t, i, ctx, "$&match foo").True() {
		t.Error("no patterns should be false for a subject")
	}
	if !mustRun(t, i, ctx, "$&match").True() {
		t.Error("empty match is true")
	}
}

type testReader struct {
	lines []string
	pos   int
}

func (r *testReader) ReadLine() (string, error) {
	if r.pos >= len(r.lines) {
		return "", errStop{}
	}
	l := r.lines[r.pos]
	r.pos++
	return l, nil
}

type errStop struct{}

func (errStop) Error() string { return "eof" }

func TestParsePrim(t *testing.T) {
	i, ctx, _, errw := newInterp(t)
	i.Reader = &testReader{lines: []string{"echo one", "fn f {", "echo two", "}"}}
	// First %parse returns a closure for "echo one".
	got := mustRun(t, i, ctx, "p = <>{%parse 'P1> ' 'P2> '}; $p")
	_ = got
	// Second command spans lines; continuation prompts go to stderr.
	mustRun(t, i, ctx, "q = <>{%parse 'P1> ' 'P2> '}; $q")
	e := errw.String()
	if !strings.Contains(e, "P1> ") || !strings.Contains(e, "P2> ") {
		t.Errorf("prompts = %q", e)
	}
	// Exhausted input throws eof.
	if _, err := i.RunString(ctx, "%parse"); !core.ExcNamed(err, "eof") {
		t.Errorf("parse at eof = %v", err)
	}
	// Without a reader, %parse is immediately eof.
	i.Reader = nil
	if _, err := i.RunString(ctx, "%parse"); !core.ExcNamed(err, "eof") {
		t.Errorf("parse without reader = %v", err)
	}
	// Malformed complete input is an error exception.
	i.Reader = &testReader{lines: []string{"a ) b"}}
	if _, err := i.RunString(ctx, "%parse"); !core.ExcNamed(err, "error") {
		t.Errorf("parse of garbage = %v", err)
	}
}

func TestFallbackLoop(t *testing.T) {
	i, ctx, out, _ := newInterp(t)
	// Delete the es-coded loop: the $& fallback must still drive a
	// session.
	mustRun(t, i, ctx, "fn-%interactive-loop =")
	i.Reader = &testReader{lines: []string{"echo via fallback", "result 9"}}
	res, err := i.CallHook(ctx, "%interactive-loop", nil)
	if err != nil {
		t.Fatalf("fallback loop: %v", err)
	}
	if out.String() != "via fallback\n" {
		t.Errorf("fallback output = %q", out.String())
	}
	if res.Flatten("") != "9" {
		t.Errorf("fallback result = %v", res)
	}
}

func TestRunSync(t *testing.T) {
	i, ctx, _, _ := newInterp(t)
	i.ImportEnv([]string{"PATH=/usr/bin:/bin"})
	if err := RunSync(i, ctx); err != nil {
		t.Fatal(err)
	}
	if got := i.Var("path").Flatten(","); got != "/usr/bin,/bin" {
		t.Errorf("path after sync = %q", got)
	}
}
