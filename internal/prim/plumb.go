package prim

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"es/internal/core"
)

func registerPlumbing(i *core.Interp) {
	i.RegisterPrim("pipe", primPipe)
	i.RegisterPrim("create", primCreate)
	i.RegisterPrim("append", primAppend)
	i.RegisterPrim("open", primOpen)
	i.RegisterPrim("dup", primDup)
	i.RegisterPrim("close", primClose)
	i.RegisterPrim("background", primBackground)
	i.RegisterPrim("fork", primFork)
	i.RegisterPrim("backquote", primBackquote)
	i.RegisterPrim("wait", primWait)
	i.RegisterPrim("apids", primApids)
	i.RegisterPrim("read", primRead)
	i.RegisterPrim("here", primHere)
}

// primHere is the herestring service: `cmd <<< text` becomes
// %here 0 text {cmd}, feeding text (with a trailing newline) as input.
func primHere(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) < 3 {
		return nil, core.ErrorExc("%here: usage: %here fd text cmd")
	}
	fd, err := strconv.Atoi(args[0].String())
	if err != nil {
		return nil, core.ErrorExc("%here: bad file descriptor")
	}
	text := args[1].String()
	if !strings.HasSuffix(text, "\n") {
		text += "\n"
	}
	r := strings.NewReader(text)
	cctx := ctx.NonTail().WithIO(ctx.IO.WithFD(fd, r))
	return run(i, cctx, args[2], args[3:])
}

// primPipe runs a flattened pipeline: cmd (outfd infd cmd)...  Every
// element runs in its own forked interpreter (the in-process analogue of
// the per-element fork in the C implementation), connected with real
// pipes so externals and shell functions mix freely.  The result is the
// final element's result.
func primPipe(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return core.True(), nil
	}
	type elem struct {
		cmd   core.Term
		outFd int // descriptor this element writes into the next pipe
		inFd  int // descriptor the NEXT element reads the pipe from
	}
	var elems []elem
	elems = append(elems, elem{cmd: args[0]})
	for k := 1; k < len(args); k += 3 {
		if k+2 > len(args)-1 {
			return nil, core.ErrorExc("%pipe: malformed pipeline")
		}
		outFd, err1 := strconv.Atoi(args[k].String())
		inFd, err2 := strconv.Atoi(args[k+1].String())
		if err1 != nil || err2 != nil {
			return nil, core.ErrorExc("%pipe: bad file descriptor")
		}
		elems[len(elems)-1].outFd = outFd
		elems = append(elems, elem{cmd: args[k+2], inFd: inFd})
	}
	if len(elems) == 1 {
		return run(i, ctx.NonTail(), elems[0].cmd, nil)
	}

	// Wire n-1 pipes between n elements.
	ios := make([]*core.IOTable, len(elems))
	for k := range ios {
		ios[k] = ctx.IO
	}
	type pipeEnds struct{ r, w *os.File }
	pipes := make([]pipeEnds, len(elems)-1)
	for k := 0; k < len(elems)-1; k++ {
		pr, pw, err := os.Pipe()
		if err != nil {
			return nil, core.ErrorExc(err.Error())
		}
		pipes[k] = pipeEnds{pr, pw}
		ios[k] = ios[k].WithFD(elems[k].outFd, pw)
		ios[k+1] = ios[k+1].WithFD(elems[k+1].inFd, pr)
	}

	var wg sync.WaitGroup
	results := make([]core.List, len(elems))
	errs := make([]error, len(elems))
	for k := range elems {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			child := i.Fork()
			cctx := &core.Ctx{IO: ios[k]}
			results[k], errs[k] = child.ApplyTerm(cctx, elems[k].cmd, nil)
			// Close this element's pipe ends so neighbours see EOF.
			if k > 0 {
				pipes[k-1].r.Close()
			}
			if k < len(pipes) {
				pipes[k].w.Close()
			}
		}(k)
	}
	wg.Wait()

	// Exceptions from pipeline elements cannot propagate out of their
	// subshell: report them and fail, as the paper laments.  An exit
	// becomes the element's status, silently.
	for k, err := range errs {
		if err != nil {
			results[k] = subshellResult(ctx, err, "in pipeline")
		}
	}
	return results[len(results)-1], nil
}

func openRedir(i *core.Interp, ctx *core.Ctx, args core.List, flag int, what string) (core.List, error) {
	if len(args) < 3 {
		return nil, core.ErrorExc(what + ": usage: " + what + " fd file cmd")
	}
	if len(args) > 3 {
		return nil, core.ErrorExc(what + ": too many words in redirection (a single name is required)")
	}
	fd, err := strconv.Atoi(args[0].String())
	if err != nil {
		return nil, core.ErrorExc(what + ": bad file descriptor " + args[0].String())
	}
	path := args[1].String()
	if !filepath.IsAbs(path) {
		path = filepath.Join(i.Dir(), path)
	}
	f, ferr := os.OpenFile(path, flag, 0o666)
	if ferr != nil {
		return nil, core.ErrorExc(ferr.Error())
	}
	defer f.Close()
	cctx := ctx.NonTail().WithIO(ctx.IO.WithFD(fd, f))
	return run(i, cctx, args[2], args[3:])
}

// primCreate is the service behind `cmd > file`:
// %create fd file {cmd}.
func primCreate(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	return openRedir(i, ctx, args, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, "%create")
}

// primAppend implements `cmd >> file`: %append opens for appending,
// creating the file if needed.
func primAppend(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	return openRedir(i, ctx, args, os.O_WRONLY|os.O_CREATE|os.O_APPEND, "%append")
}

// primOpen implements `cmd < file`: %open opens the file read-only on
// the requested descriptor.
func primOpen(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	return openRedir(i, ctx, args, os.O_RDONLY, "%open")
}

// primDup implements `cmd >[a=b]`: %dup a b {cmd}.
func primDup(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) < 3 {
		return nil, core.ErrorExc("%dup: usage: %dup newfd oldfd cmd")
	}
	newFd, err1 := strconv.Atoi(args[0].String())
	oldFd, err2 := strconv.Atoi(args[1].String())
	if err1 != nil || err2 != nil {
		return nil, core.ErrorExc("%dup: bad file descriptor")
	}
	cctx := ctx.NonTail().WithIO(ctx.IO.WithFD(newFd, ctx.IO.Get(oldFd)))
	return run(i, cctx, args[2], args[3:])
}

// primClose implements `cmd >[fd=]`: run cmd with fd closed.
func primClose(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) < 2 {
		return nil, core.ErrorExc("%close: usage: %close fd cmd")
	}
	fd, err := strconv.Atoi(args[0].String())
	if err != nil {
		return nil, core.ErrorExc("%close: bad file descriptor")
	}
	cctx := ctx.NonTail().WithIO(ctx.IO.WithFD(fd, nil))
	return run(i, cctx, args[1], args[2:])
}

// primBackground starts a job in a forked interpreter; $apid receives the
// job id, as the C implementation stores the child pid.
func primBackground(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return core.True(), nil
	}
	child := i.Fork()
	cctx := &core.Ctx{IO: ctx.IO}
	cmd, rest := args[0], args[1:]
	stderr := ctx.Stderr()
	id := i.StartJob(func() core.List {
		res, err := child.ApplyTerm(cctx, cmd, rest)
		if err != nil {
			return subshellResultTo(stderr, err, "in background job")
		}
		return res
	})
	i.SetVarRaw("apid", core.StrList(strconv.Itoa(id)))
	return core.True(), nil
}

// primFork runs its arguments in a subshell: state changes are isolated
// and exceptions cannot propagate — "a message is printed on exit from
// the subshell and a false exit status is returned".  A bare `fork` (the
// paper's "run the rest in a subshell" idiom) cannot be expressed
// in-process and is a no-op here; see DESIGN.md.
func primFork(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return core.True(), nil
	}
	child := i.Fork()
	res, err := child.ApplyTerm(ctx.NonTail(), args[0], args[1:])
	if err != nil {
		return subshellResult(ctx, err, "in subshell"), nil
	}
	return res, nil
}

// subshellResult converts a subshell's terminal error into its status: an
// exit exception becomes the status it carries; anything else is the
// paper's "a message is printed on exit from the subshell and a false
// exit status is returned".
func subshellResult(ctx *core.Ctx, err error, where string) core.List {
	return subshellResultTo(ctx.Stderr(), err, where)
}

func subshellResultTo(stderr io.Writer, err error, where string) core.List {
	if e := core.AsException(err); e != nil && e.Name() == "exit" {
		return core.StrList(strconv.Itoa(ExitStatus(e.Args[1:])))
	}
	io.WriteString(stderr, "es: uncaught exception "+where+": "+err.Error()+"\n")
	return core.False()
}

// primBackquote runs a fragment in a subshell with its output captured,
// then splits it on $ifs — the service behind `{cmd}.
func primBackquote(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return nil, core.ErrorExc("%backquote: missing command")
	}
	ifs := " \t\n"
	if v := i.Var("ifs"); v != nil {
		ifs = v.Flatten("")
	}
	child := i.Fork()
	var buf bytes.Buffer
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(&buf, pr)
		done <- err
	}()
	cctx := ctx.NonTail().WithIO(ctx.IO.WithFD(1, pw))
	_, err := child.ApplyTerm(cctx, args[0], args[1:])
	pw.Close()
	<-done
	if err != nil {
		if core.AsException(err) != nil {
			return nil, err
		}
		return nil, core.ErrorExc(err.Error())
	}
	return core.StrList(splitIfs(buf.String(), ifs)...), nil
}

// splitIfs splits on any ifs character, dropping empty fields, as shells
// do for command substitution.
func splitIfs(s, ifs string) []string {
	if ifs == "" {
		if s == "" {
			return nil
		}
		return []string{strings.TrimSuffix(s, "\n")}
	}
	return strings.FieldsFunc(s, func(r rune) bool {
		return strings.ContainsRune(ifs, r)
	})
}

// primWait waits for a background job: `wait [id]`.
func primWait(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		_, res, ok := i.WaitAny()
		if !ok {
			return nil, core.ErrorExc("wait: no processes to wait for")
		}
		return res, nil
	}
	id, err := strconv.Atoi(args[0].String())
	if err != nil {
		return nil, core.ErrorExc("wait: bad process id " + args[0].String())
	}
	res, ok := i.WaitJob(id)
	if !ok {
		return nil, core.ErrorExc("wait: unknown process " + args[0].String())
	}
	return res, nil
}

// primApids lists the process ids of the outstanding background jobs,
// the value of the $apids variable.
func primApids(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	ids := i.JobIDs()
	out := make([]string, len(ids))
	for k, id := range ids {
		out[k] = strconv.Itoa(id)
	}
	return core.StrList(out...), nil
}

// primRead reads one line from standard input, returning it as a single
// term; at end of input it throws eof.
func primRead(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	var line []byte
	buf := make([]byte, 1)
	r := ctx.Stdin()
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if buf[0] == '\n' {
				return core.StrList(string(line)), nil
			}
			line = append(line, buf[0])
		}
		if err != nil {
			if len(line) > 0 {
				return core.StrList(string(line)), nil
			}
			return nil, core.Throw(core.StrList("eof"))
		}
	}
}
