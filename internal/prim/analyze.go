package prim

import (
	"strings"

	"es/internal/analysis"
	"es/internal/core"
)

func registerAnalyze(i *core.Interp) {
	i.RegisterPrim("analyze", primAnalyze)
}

// primAnalyze runs the static analyzer over a script given as a single
// string argument, resolving hooks, primitives, and variables against the
// calling interpreter's current registries.  It returns one word per
// diagnostic ("line:col [CODE] severity: message") followed, after an
// "effects" separator word, by the effect categories the script reaches.
// The analyze hook is how scripts vet other scripts before eval'ing them.
func primAnalyze(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return nil, core.ErrorExc("usage: $&analyze script")
	}
	var b strings.Builder
	for n, a := range args {
		if n > 0 {
			b.WriteString("\n")
		}
		b.WriteString(a.String())
	}
	res := analysis.Analyze(b.String(), analysis.Options{Env: analysis.EnvFromInterp(i)})
	var out []string
	for _, d := range res.Diags {
		pos := "-"
		if d.Pos.Known() {
			pos = d.Pos.String()
		}
		out = append(out, pos+" ["+d.Code+"] "+d.Sev.String()+": "+d.Msg)
	}
	out = append(out, "effects")
	out = append(out, res.Effects.Categories...)
	return core.StrList(out...), nil
}
