package prim

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"es/internal/core"
	"es/internal/proc"
	"es/internal/syntax"
)

// Version identifies this implementation in $&version.
const Version = "es-go 0.9 (reproduction of Haahr & Rakitzis, USENIX W'93)"

func registerServices(i *core.Interp) {
	i.RegisterPrim("cd", primCd)
	i.RegisterPrim("pathsearch", primPathsearch)
	i.RegisterPrim("recache", primRecache)
	i.RegisterPrim("cachestats", primCacheStats)
	i.RegisterPrim("serverstats", primServerStats)
	i.RegisterPrim("whatis", primWhatis)
	i.RegisterPrim("vars", primVars)
	i.RegisterPrim("var", primVar)
	i.RegisterPrim("parse", primParse)
	i.RegisterPrim("time", primTime)
	i.RegisterPrim("version", primVersion)
	i.RegisterPrim("primitives", primPrimitives)
	i.RegisterPrim("noexport", primNoexport)
	i.RegisterPrim("interactive-loop", primFallbackLoop) // esvet:ok fallback only; initial.es defines fn %interactive-loop itself
}

// primCd changes the interpreter's working directory.
func primCd(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	var dir string
	switch len(args) {
	case 0:
		home := i.Var("home")
		if len(home) == 0 {
			return nil, core.ErrorExc("chdir: no home directory")
		}
		dir = home[0].String()
	default:
		dir = args[0].String()
	}
	resolved := dir
	if !filepath.IsAbs(resolved) {
		resolved = filepath.Join(i.Dir(), resolved)
	}
	resolved = filepath.Clean(resolved)
	fi, err := os.Stat(resolved)
	if err != nil {
		return nil, core.ErrorExc("chdir " + dir + ": No such file or directory")
	}
	if !fi.IsDir() {
		return nil, core.ErrorExc("chdir " + dir + ": Not a directory")
	}
	i.SetDir(resolved)
	return core.True(), nil
}

// primPathsearch looks a program up in $path; it is the service behind
// the %pathsearch hook that Figure 2 replaces with a caching version.
//
// The primitive now caches natively: successful absolute lookups are
// memoized per interpreter, invalidated whenever path/PATH is assigned
// (the settor round-trip) or $&recache runs, and re-verified with one
// stat on every hit so a deleted binary falls back to a full search.  The
// hook remains fully spoofable — a user's fn %pathsearch (lib/pathcache.es)
// replaces this entire primitive, native cache included.
func primPathsearch(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return nil, core.ErrorExc("usage: %pathsearch program")
	}
	name := args[0].String()
	if strings.ContainsRune(name, '/') {
		return core.StrList(name), nil
	}
	pc := i.PathCache()
	if file, ok := pc.Get(name); ok {
		if proc.Executable(file) {
			return core.StrList(file), nil
		}
		pc.Delete(name) // stale: binary vanished since it was cached
	}
	dirs := i.Var("path").Strings()
	if file, ok := proc.Lookup(name, dirs); ok {
		// Only absolute results are cached: a hit for a relative $path
		// entry would go wrong the moment the shell changes directory.
		if filepath.IsAbs(file) {
			pc.Put(name, file)
		}
		return core.StrList(file), nil
	}
	// Misses are never cached, so a program installed after a failed
	// lookup is found immediately.
	return nil, core.ErrorExc(name + ": not found")
}

// primRecache drops the native caches: the pathsearch memo plus the
// process-wide parse, decode, and compiled-glob caches.  It is the native
// analogue of Figure 2's recache function (which remains free to shadow
// it: lib/pathcache.es redefines fn-recache for its own spoofed cache).
func primRecache(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	i.FlushCaches()
	return core.True(), nil
}

// primCacheStats returns one term per native cache in the form
// name:hits:misses:invalidations:entries, the shell-visible face of the
// counter surface behind es -cachestats.
func primCacheStats(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	var out core.List
	for _, s := range i.CacheStats() {
		out = append(out, core.StrTerm(fmt.Sprintf("%s:%d:%d:%d:%d",
			s.Name, s.Hits, s.Misses, s.Invalidations, s.Entries)))
	}
	return out, nil
}

// serverStatsFn is installed by internal/server when an esd daemon runs
// in this process; it is held here, one layer below the server, so the
// primitive table never depends on the serving layer.
var serverStatsFn atomic.Value // of func() []string

// SetServerStats wires $&serverstats to a running server's counter
// snapshot.
func SetServerStats(fn func() []string) { serverStatsFn.Store(fn) }

// primServerStats returns the serving layer's counters as name:value
// words (sessions, evals, timeouts, p50/p99 latency, bytes in/out), the
// same shape as $&cachestats.  Outside a daemon it throws error, so
// scripts can probe for the serving layer with catch.
func primServerStats(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	fn, _ := serverStatsFn.Load().(func() []string)
	if fn == nil {
		return nil, core.ErrorExc("serverstats: no server running in this process")
	}
	return core.StrList(fn()...), nil
}

// primWhatis prints how each name would be interpreted: the environment
// encoding of its fn- definition (the paper's `whatis foo` →
// `%closure(a=b)@ * {echo $a}`), the $& form for builtins, or the path of
// the external.
func primWhatis(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	out := ctx.Stdout()
	status := core.True()
	for _, t := range args {
		name := t.String()
		if fnval := i.Var("fn-" + name); len(fnval) > 0 {
			io.WriteString(out, core.EncodeValue(fnval)+"\n")
			continue
		}
		if i.Builtin(name) != nil {
			io.WriteString(out, "$&"+name+"\n")
			continue
		}
		found, err := i.CallHook(ctx.NonTail(), "%pathsearch", core.StrList(name))
		if err != nil && !core.ExcNamed(err, "error") {
			// A spoofed %pathsearch may throw real exceptions — signal,
			// break, a user's own names — which must unwind, not be
			// misreported as "not found".
			return nil, err
		}
		if err != nil || len(found) == 0 {
			io.WriteString(ctx.Stderr(), name+": not found\n")
			status = core.False()
			continue
		}
		io.WriteString(out, found.Flatten(" ")+"\n")
	}
	return status, nil
}

// primVars prints the variable table, one name=value per line.
func primVars(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	out := ctx.Stdout()
	for _, name := range i.VarNames() {
		v := i.Var(name)
		if v == nil {
			continue
		}
		io.WriteString(out, name+"="+core.EncodeValue(v)+"\n")
	}
	return core.True(), nil
}

// primVar returns the values of the named variables (a read that works
// on computed names).
func primVar(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	var out core.List
	for _, t := range args {
		out = append(out, i.Var(t.String())...)
	}
	return out, nil
}

// primParse prints its first argument to standard error, reads a command
// — potentially more than one line long, prompting with its second
// argument for continuations — and returns the parsed command as a
// closure.  It throws eof when the input source is exhausted.
func primParse(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if i.Reader == nil {
		return nil, core.Throw(core.StrList("eof"))
	}
	// Back at the prompt: an interrupt that fired after the previous
	// command's last boundary check has no command left to abort; without
	// this it would stay latched and kill the next, unrelated command.
	i.ClearInterrupt()
	p1, p2 := "", ""
	if len(args) > 0 {
		p1 = args[0].String()
	}
	if len(args) > 1 {
		p2 = args[1].String()
	}
	stderr := ctx.Stderr()
	io.WriteString(stderr, p1)
	var src strings.Builder
	for {
		line, err := i.Reader.ReadLine()
		if err != nil {
			if src.Len() == 0 {
				return nil, core.Throw(core.StrList("eof"))
			}
			return nil, core.ErrorExc("unexpected end of input")
		}
		src.WriteString(line)
		blk, perr := core.ParseCommand(src.String())
		if perr == nil {
			return core.List{core.Term{Closure: &core.Closure{Body: blk}}}, nil
		}
		if !syntax.IsIncomplete(perr) {
			return nil, core.ErrorExc(perr.Error())
		}
		src.WriteByte('\n')
		io.WriteString(stderr, p2)
	}
}

// primTime runs a command and reports its real/user/system time on
// standard error in the paper's format: `2r 0.3u 0.2s cat paper9`.
func primTime(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return core.True(), nil
	}
	label := commandLabel(args)
	before := proc.Snapshot()
	res, err := run(i, ctx.NonTail(), args[0], args[1:])
	real, user, sys := before.Since()
	fmt.Fprintf(ctx.Stderr(), "%dr %.1fu %.1fs\t%s\n",
		int(real.Seconds()+0.5), user.Seconds(), sys.Seconds(), label)
	return res, err
}

// commandLabel renders a timed command the way the paper prints it: a
// thunk shows its body, other terms their text.
func commandLabel(args core.List) string {
	parts := make([]string, 0, len(args))
	for _, t := range args {
		if t.Closure != nil {
			parts = append(parts, syntax.UnparseBody(t.Closure.Body))
		} else {
			parts = append(parts, t.String())
		}
	}
	return strings.Join(parts, " ")
}

// primVersion reports the interpreter version string.
func primVersion(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	return core.StrList(Version), nil
}

// primPrimitives lists the registered $&primitives, sorted, so scripts
// can discover the shell services of the binary they run under.
func primPrimitives(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	names := i.PrimNames()
	sort.Strings(names)
	return core.StrList(names...), nil
}

// primNoexport marks variables that must not be exported to the
// environment of child processes.
func primNoexport(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	for _, t := range args {
		i.SetNoExport(t.String())
	}
	return core.True(), nil
}

// primFallbackLoop is the $& fallback for %interactive-loop so a shell
// whose hook was deleted still runs: it reads and evaluates commands until
// eof, printing errors.
func primFallbackLoop(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	result := core.List{}
	for {
		cmd, err := primParse(i, ctx, i.Var("prompt"))
		if err != nil {
			if core.ExcNamed(err, "eof") {
				return result, nil
			}
			io.WriteString(ctx.Stderr(), err.Error()+"\n")
			continue
		}
		res, err := run(i, ctx.NonTail(), cmd[0], nil)
		if err != nil {
			io.WriteString(ctx.Stderr(), err.Error()+"\n")
			continue
		}
		result = res
	}
}
