package prim

import (
	"io"
	"strconv"
	"strings"

	"es/internal/core"
	"es/internal/glob"
)

func registerWords(i *core.Interp) {
	i.RegisterPrim("flatten", primFlatten)
	i.RegisterPrim("fsplit", primFsplit)
	i.RegisterPrim("split", primSplit)
	i.RegisterPrim("count", primCount)
	i.RegisterPrim("match", primMatch)
	i.RegisterPrim("echo", primEcho)
}

// primFlatten joins a list into one term: %flatten sep list...
func primFlatten(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return nil, core.ErrorExc("usage: %flatten separator [args ...]")
	}
	sep := args[0].String()
	rest := core.List(args[1:])
	if len(rest) == 0 {
		return core.List{}, nil
	}
	return core.StrList(rest.Flatten(sep)), nil
}

// primFsplit splits each argument on a separator string, keeping empty
// fields: %fsplit : a:b::c → a b ” c.
func primFsplit(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return nil, core.ErrorExc("usage: %fsplit separator [args ...]")
	}
	sep := args[0].String()
	var out []string
	for _, t := range args[1:] {
		if sep == "" {
			out = append(out, t.String())
			continue
		}
		out = append(out, strings.Split(t.String(), sep)...)
	}
	return core.StrList(out...), nil
}

// primSplit splits on any character of the separator set, dropping empty
// fields (ifs-style).
func primSplit(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return nil, core.ErrorExc("usage: %split separator [args ...]")
	}
	set := args[0].String()
	var out []string
	for _, t := range args[1:] {
		out = append(out, splitIfs(t.String(), set)...)
	}
	return core.StrList(out...), nil
}

// primCount returns the number of terms in its argument list, the
// value behind $#var.
func primCount(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	return core.StrList(strconv.Itoa(len(args))), nil
}

// primMatch is the function form of the ~ command: $&match subject
// patterns...  (The subject is a single term here; the syntax form
// handles list subjects.)
func primMatch(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return core.True(), nil
	}
	subj := args[0].String()
	for _, p := range args[1:] {
		if glob.New(p.String()).Match(subj) {
			return core.True(), nil
		}
	}
	return core.False(), nil
}

// primEcho prints its arguments separated by spaces; -n suppresses the
// newline, -- ends option processing.
func primEcho(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	nl := true
	if len(args) > 0 {
		switch args[0].String() {
		case "-n":
			nl = false
			args = args[1:]
		case "--":
			args = args[1:]
		}
	}
	var b strings.Builder
	for k, t := range args {
		if k > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.String())
	}
	if nl {
		b.WriteByte('\n')
	}
	if _, err := io.WriteString(ctx.Stdout(), b.String()); err != nil {
		return core.False(), nil
	}
	return core.True(), nil
}
