package prim

import (
	"strconv"
	"strings"

	"es/internal/core"
)

func registerControl(i *core.Interp) {
	i.RegisterPrim("if", primIf)
	i.RegisterPrim("while", primWhile)
	i.RegisterPrim("forever", primForever)
	i.RegisterPrim("and", primAnd)
	i.RegisterPrim("or", primOr)
	i.RegisterPrim("not", primNot)
	i.RegisterPrim("result", primResult)
	i.RegisterPrim("throw", primThrow)
	i.RegisterPrim("catch", primCatch)
	i.RegisterPrim("break", primBreak)
	i.RegisterPrim("return", primReturn)
	i.RegisterPrim("eval", primEval)
	i.RegisterPrim("exit", primExit)
	i.RegisterPrim("exec", primExec)
	i.RegisterPrim("dot", primDot)
}

// primIf implements the cond-chain if: alternating {cond} {body} pairs
// with an optional trailing else body, as used by Figure 3's interactive
// loop.  The chosen body runs in the caller's tail position.
func primIf(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	k := 0
	for ; k+1 < len(args); k += 2 {
		cond, err := run(i, ctx.NonTail(), args[k], nil)
		if err != nil {
			return nil, err
		}
		if cond.True() {
			return run(i, ctx, args[k+1], nil)
		}
	}
	if k < len(args) { // trailing else
		return run(i, ctx, args[k], nil)
	}
	return core.List{}, nil
}

// primWhile runs {body} while {cond} is true; break stops it.  The result
// is the last body result.
func primWhile(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) < 1 {
		return nil, core.ErrorExc("while: usage: while {cond} {body}")
	}
	cond := args[0]
	var body core.List
	if len(args) > 1 {
		body = args[1:]
	}
	nt := ctx.NonTail()
	result := core.True()
	for {
		c, err := run(i, nt, cond, nil)
		if err != nil {
			return nil, err
		}
		if !c.True() {
			return result, nil
		}
		for _, b := range body {
			r, err := run(i, nt, b, nil)
			if err != nil {
				if val, stop := breakValue(err, result); stop {
					return val, nil
				}
				return nil, err
			}
			result = r
		}
		if len(body) == 0 {
			// while {cond} with no body: loop on the condition alone.
			result = c
		}
	}
}

// primForever loops its thunks endlessly until a break exception
// carries a value out.
func primForever(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	nt := ctx.NonTail()
	result := core.True()
	for {
		for _, b := range args {
			r, err := run(i, nt, b, nil)
			if err != nil {
				if val, stop := breakValue(err, result); stop {
					return val, nil
				}
				return nil, err
			}
			result = r
		}
	}
}

// breakValue reports whether err is a break exception, returning the
// value it carries (or fallback).
func breakValue(err error, fallback core.List) (core.List, bool) {
	e := core.AsException(err)
	if e == nil || e.Name() != "break" {
		return nil, false
	}
	if len(e.Args) > 1 {
		return e.Args[1:], true
	}
	return fallback, true
}

// primAnd short-circuits over thunks; the last one runs in tail position.
func primAnd(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	result := core.True()
	for k, t := range args {
		c := ctx.NonTail()
		if k == len(args)-1 {
			c = ctx
		}
		r, err := run(i, c, t, nil)
		if err != nil {
			return nil, err
		}
		if !r.True() {
			return r, nil
		}
		result = r
	}
	return result, nil
}

// primOr short-circuits over thunks like primAnd, stopping at the first
// true result; the last thunk runs in tail position.
func primOr(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	result := core.False()
	if len(args) == 0 {
		return result, nil
	}
	for k, t := range args {
		c := ctx.NonTail()
		if k == len(args)-1 {
			c = ctx
		}
		r, err := run(i, c, t, nil)
		if err != nil {
			return nil, err
		}
		if r.True() {
			return r, nil
		}
		result = r
	}
	return result, nil
}

// primNot runs its command and inverts the truth of the result.
func primNot(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return core.False(), nil
	}
	r, err := run(i, ctx.NonTail(), args[0], args[1:])
	if err != nil {
		return nil, err
	}
	return core.Bool(!r.True()), nil
}

// primResult returns its arguments: the identity that turns a list into a
// rich return value.
func primResult(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	return args, nil
}

// primThrow raises its arguments as an exception; the first is the
// exception name.
func primThrow(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return nil, core.ErrorExc("throw: missing exception name")
	}
	return nil, core.Throw(args)
}

// primCatch implements `catch @ e args {handler} {body}`: run body; on an
// exception run handler with the exception's terms; a retry thrown by the
// handler re-runs body.
func primCatch(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) < 2 {
		return nil, core.ErrorExc("catch: usage: catch handler body")
	}
	handler, body := args[0], args[1]
	nt := ctx.NonTail()
	for {
		res, err := run(i, nt, body, nil)
		if err == nil {
			return res, nil
		}
		exc := core.AsException(err)
		if exc == nil {
			return nil, err
		}
		hres, herr := run(i, nt, handler, exc.Args)
		if herr != nil {
			if core.ExcNamed(herr, "retry") {
				continue
			}
			return nil, herr
		}
		return hres, nil
	}
}

// primBreak throws the break exception that the looping primitives
// catch, carrying an optional result value.
func primBreak(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	return nil, core.Throw(append(core.StrList("break"), args...))
}

// primReturn throws the return exception, unwound at the nearest
// function-call boundary.
func primReturn(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	return nil, core.Throw(append(core.StrList("return"), args...))
}

// primEval concatenates its arguments into a command and runs it.
func primEval(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	src := strings.Join(args.Strings(), " ")
	return i.RunString(ctx.NonTail(), src)
}

// primExit terminates the shell.  Under cmd/es this exits the process
// (the C implementation calls exit(2)); embedded, and in subshells, it
// raises the exit exception, which subshell frames convert to a status.
func primExit(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if i.ExitFunc != nil {
		i.ExitFunc(ExitStatus(args))
	}
	return nil, core.Throw(append(core.StrList("exit"), args...))
}

// ExitStatus converts exit arguments to a process status.
func ExitStatus(args core.List) int {
	if core.List(args).True() {
		return 0
	}
	if len(args) == 1 {
		if n, err := strconv.Atoi(args[0].String()); err == nil && n >= 0 && n < 256 {
			return n
		}
	}
	return 1
}

// primExec runs a command and then exits with its status (the in-process
// approximation of exec(2)).
func primExec(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return core.True(), nil
	}
	res, err := run(i, ctx.NonTail(), args[0], args[1:])
	if err != nil {
		return nil, err
	}
	return nil, core.Throw(append(core.StrList("exit"), res...))
}

// primDot sources a script file: `. file args...` with $* bound to args.
func primDot(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) == 0 {
		return nil, core.ErrorExc("usage: . file [args ...]")
	}
	return i.RunFile(ctx.NonTail(), args[0].String(), args[1:])
}
