package prim

import "es/internal/core"

// initialES is the start-up script.  Like the C implementation — where
// "much of es's initialization is actually done by an es script, called
// initial.es, which is converted by a shell script to a C character string
// at compile time and stored internally" — it is embedded in the binary
// and establishes the hook bindings, default variables, the path/PATH
// settor pair, and the default interactive loop (the paper's Figure 3).
const initialES = `
# initial.es -- set up the default machinery of es.

# Bind the shell services to their %-prefixed hook variables; the hooks
# may be spoofed, the $&-primitives may not.
fn-%and = $&and
fn-%or = $&or
fn-%not = $&not
fn-%pipe = $&pipe
fn-%create = $&create
fn-%append = $&append
fn-%open = $&open
fn-%here = $&here
fn-%dup = $&dup
fn-%close = $&close
fn-%background = $&background
fn-%backquote = $&backquote
fn-%pathsearch = $&pathsearch
fn-%flatten = $&flatten
fn-%fsplit = $&fsplit
fn-%split = $&split
fn-%count = $&count
fn-%match = $&match
fn-%parse = $&parse
fn-%whatis = $&whatis

# The %prompt hook "is provided for the user to redefine, and by default
# does nothing."
fn-%prompt = {}

# Bind the built-in shell functions to their hook variables.
fn-. = $&dot
fn-break = $&break
fn-catch = $&catch
fn-cd = $&cd
fn-echo = $&echo
fn-eval = $&eval
fn-exec = $&exec
fn-exit = $&exit
fn-fork = $&fork
fn-if = $&if
fn-result = $&result
fn-return = $&return
fn-throw = $&throw
fn-time = $&time
fn-wait = $&wait
fn-whatis = $&whatis
fn-vars = $&vars
fn-var = $&var
fn-while = $&while
fn-forever = $&forever
fn-apids = $&apids
fn-read = $&read
fn-version = $&version
fn-primitives = $&primitives
fn-noexport = $&noexport

# Session images: snapshot writes the definable state (variables, marks,
# functions, spoofed hooks, settors) to a single checksummed file;
# restore replaces this session's state with a saved image.  %snapshot
# and %restore are spoofable hooks over the unspoofable services.
fn-%snapshot = $&snapshot
fn-%restore = $&restore
fn-snapshot = @ file {%snapshot $file}
fn-restore = @ file {%restore $file}

# Native cache controls: recache drops the interpreter's dispatch caches
# (a spoofed cache like lib/pathcache.es redefines fn-recache for itself),
# cachestats returns the hit/miss/invalidation counters.
fn-recache = $&recache
fn-cachestats = $&cachestats

# Serving-layer observability: inside an esd daemon, serverstats returns
# the server's counters (sessions, evals, timeouts, latency quantiles) as
# name:value words; elsewhere it throws error.
fn-serverstats = $&serverstats

# Static analysis: analyze runs escheck's checker over a script string and
# returns its diagnostics as a list, so scripts can vet other scripts
# before eval'ing them.
fn-analyze = $&analyze

# Default word splitting and prompts.  The default prompt "; " is a null
# command followed by a command separator, so whole lines, including
# prompts, can be cut and pasted back to the shell for re-execution.
if {~ $#ifs 0} {ifs = ' ' '	' '
'}
if {~ $#prompt 0} {prompt = '; ' ''}

# Settor functions working around UNIX path conventions: the list path and
# the colon-separated PATH mirror each other.  Each settor temporarily
# assigns its opposite-case cousin to null before making the assignment to
# the opposite-case variable; this avoids infinite recursion between the
# two settor functions.
set-path = @ {
	local (set-PATH = )
		PATH = <>{%flatten : $*}
	return $*
}
set-PATH = @ {
	local (set-path = )
		path = <>{%fsplit : $*}
	return $*
}

# The default interpreter loop, written in es itself (Figure 3).
fn %interactive-loop {
	let (result = 0) {
		catch @ e msg {
			if {~ $e eof} {
				return $result
			} {~ $e error} {
				echo >[1=2] $msg
			} {
				echo >[1=2] uncaught exception: $e $msg
			}
			throw retry
		} {
			while {} {
				%prompt
				let (cmd = <>{%parse $prompt}) {
					result = <>{$cmd}
				}
			}
		}
	}
}
`

// syncES runs after the environment has been imported: it pushes imported
// values through their settors so aliased pairs (path/PATH) agree.
const syncES = `
if {!~ $#PATH 0} {
	PATH = $PATH
} {!~ $#path 0} {
	path = $path
}
if {~ $#home 0 && !~ $#HOME 0} {home = $HOME}
`

// InitialES returns the embedded start-up prelude source, so tooling
// (escheck -prelude, the check.sh gate) can analyze it like any script.
func InitialES() string { return initialES }

// RunSync evaluates the post-import synchronization script.
func RunSync(i *core.Interp, ctx *core.Ctx) error {
	_, err := i.RunString(ctx, syncES)
	return err
}
