package prim

import (
	"es/internal/core"
	"es/internal/image"
)

func init() {
	// Stamp images written by a shell with the full primitive set.
	image.EsVersion = Version
}

func registerSnapshot(i *core.Interp) {
	i.RegisterPrim("snapshot", primSnapshot)
	i.RegisterPrim("restore", primRestore)
}

// primSnapshot writes a session image of the calling interpreter's
// definable state to a file: $&snapshot file.  Like every $& service it
// has a spoofable hook, %snapshot, so session policy (say, stripping
// secrets before the write) can wrap it.
func primSnapshot(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) != 1 {
		return nil, core.ErrorExc("usage: $&snapshot file")
	}
	path := args[0].String()
	if err := image.WriteFile(path, image.Capture(i, nil)); err != nil {
		return nil, core.ErrorExc("snapshot " + path + ": " + err.Error())
	}
	return core.StrList(path), nil
}

// primRestore replaces the calling interpreter's definable state with
// the image in a file: $&restore file.  Jobs, descriptors, and $pid do
// not travel; restore re-stamps $pid with this process.
func primRestore(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
	if len(args) != 1 {
		return nil, core.ErrorExc("usage: $&restore file")
	}
	path := args[0].String()
	img, err := image.ReadFile(path)
	if err != nil {
		return nil, core.ErrorExc("restore " + path + ": " + err.Error())
	}
	img.Restore(i)
	return core.StrList(path), nil
}
