fn die {
	throw error die dead
	echo never reached
}
fn maybe {
	if {result 0}
}
while {} {
	echo spinning
}
# DIAG 3:2 W120
# DIAG 6:2 W122
# DIAG 8:1 I125
