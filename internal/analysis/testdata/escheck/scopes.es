let (unused = 1) {
	echo nothing here uses it
}
let (x = outer) {
	let (x = inner) {
		echo $x
	}
}
for (i = a b c) {}
# DIAG 1:6 W123
# DIAG 4:6 W123
# DIAG 5:7 W124
# DIAG 9:1 W121
