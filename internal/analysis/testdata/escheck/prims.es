echo <>{$&nosuchprim}
result <>{$&flatten : a b}
# DIAG 1:9 E101
