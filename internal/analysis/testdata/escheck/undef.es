echo $never-set
fn f {
	local (tmpvar = 1) {
		echo $tmpvar
	}
}
echo $tmpvar
# DIAG 1:6 W110
# DIAG 7:6 W111
