fn greet name {
	echo hello $name
}
greet world
let (x = 1 2 3) {
	echo $x
}
