fn-%myjunkhook = {echo spoofed}
%notahook argument
fn-%pipe = {echo pipes are mine now}
# DIAG 1:1 W103
# DIAG 2:1 E102
