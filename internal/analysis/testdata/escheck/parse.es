if (
# DIAG 3:1 E100
