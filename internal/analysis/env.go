package analysis

import "es/internal/core"

// EnvFromInterp snapshots a live interpreter's registries — primitives,
// builtins, and every defined variable including fn-… bindings — into the
// form the analyzer resolves references against.  Take the snapshot after
// the prelude (and any lib scripts the deployment loads) so their
// definitions count as pre-defined.
func EnvFromInterp(in *core.Interp) *Env {
	env := &Env{
		Prims:    map[string]bool{},
		Builtins: map[string]bool{},
		Vars:     map[string]bool{},
	}
	for _, n := range in.PrimNames() {
		env.Prims[n] = true
	}
	for _, n := range in.BuiltinNames() {
		env.Builtins[n] = true
	}
	for _, n := range in.VarNames() {
		env.Vars[n] = true
	}
	return env
}
