// Package analysis is a static analyzer for es scripts.  It walks the
// rewritten core trees (the same representation the evaluator and the
// bytecode compiler consume) and produces position-carrying diagnostics:
//
//	file:line:col: [CODE] message
//
// Four passes run in one walk:
//
//   - reference analysis: free-variable detection that tracks lambda
//     binders and let/local/for scopes, with a distinct "dynamic-only"
//     class for names that are only ever bound via local;
//   - hook & primitive resolution: every %hook call and $&prim reference
//     is checked against the live registry (an Env snapshot), catching
//     typo'd spoofs that would otherwise silently never fire;
//   - dead code & structure lint: unreachable commands after
//     throw/return/exit/break, empty binding-form bodies, if-arity
//     mistakes, unused let bindings, shadowing;
//   - effect summary: the set of hooks, primitives, and external commands
//     a script can reach, bucketed into coarse capability categories.
//
// Analysis is best-effort and purely advisory: es is a dynamic language
// (undefined variables legally evaluate to the empty list, names can be
// computed at runtime), so most findings are warnings.  Only parse
// failures and references to unregistered %hooks/$&primitives are errors.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"es/internal/syntax"
)

// Severity classifies a diagnostic.
type Severity int

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// Diagnostic codes.  Exxx are errors, Wxxx warnings, Ixxx informational.
const (
	CodeParse       = "E100" // script does not parse
	CodeUnknownPrim = "E101" // $&name not in the primitive registry
	CodeUnknownHook = "E102" // %name called but no such hook is defined
	CodeSpoofJunk   = "W103" // fn-%name defined but no such hook exists
	CodeUndefVar    = "W110" // reference to a never-defined variable
	CodeDynVar      = "W111" // variable only ever bound dynamically (local)
	CodeUnreachable = "W120" // command after throw/return/exit/break
	CodeEmptyBody   = "W121" // let/local/for with an empty body
	CodeIfArity     = "W122" // if with a condition but no branch
	CodeUnusedLet   = "W123" // let binding never referenced in its body
	CodeShadow      = "W124" // binding shadows an enclosing lexical binding
	CodeEmptyCond   = "I125" // while with an empty (always-true) condition
)

// Diagnostic is one finding, anchored to a source position when known.
type Diagnostic struct {
	File string     `json:"file,omitempty"`
	Pos  syntax.Pos `json:"pos"`
	Code string     `json:"code"`
	Sev  Severity   `json:"severity"`
	Msg  string     `json:"message"`
}

func (d Diagnostic) String() string {
	var b strings.Builder
	if d.File != "" {
		b.WriteString(d.File)
		b.WriteString(":")
	}
	if d.Pos.Known() {
		b.WriteString(d.Pos.String())
		b.WriteString(":")
	}
	if b.Len() > 0 {
		b.WriteString(" ")
	}
	fmt.Fprintf(&b, "[%s] %s", d.Code, d.Msg)
	return b.String()
}

// Options configures an analysis run.
type Options struct {
	// File names the script in diagnostics (optional).
	File string
	// Env is the registry snapshot to resolve %hooks, $&primitives, and
	// pre-defined variables against.  A nil Env skips registry-dependent
	// checks (E101/E102/W103) and treats no variables as pre-defined.
	Env *Env
}

// Env is a snapshot of the definitions a script will run against: the
// primitive registry, the builtin table, and the variables (including
// fn-… function bindings) present before the script starts.  Build one
// from a live interpreter with EnvFromInterp.
type Env struct {
	Prims    map[string]bool
	Builtins map[string]bool
	Vars     map[string]bool
}

// Result is the outcome of analyzing one script.
type Result struct {
	Diags   []Diagnostic `json:"diagnostics"`
	Effects Effects      `json:"effects"`
}

// Errors reports how many error-severity diagnostics the result holds.
func (r Result) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Sev == SevError {
			n++
		}
	}
	return n
}

// Filter returns only the diagnostics at or above min severity.
func (r Result) Filter(min Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Sev >= min {
			out = append(out, d)
		}
	}
	return out
}

// Analyze parses, rewrites, and analyzes src.  A parse failure yields a
// single E100 diagnostic rather than an error: the analyzer's contract is
// that every input produces a Result.
func Analyze(src string, opts Options) Result {
	b, err := syntax.Parse(src)
	if err != nil {
		d := Diagnostic{File: opts.File, Code: CodeParse, Sev: SevError, Msg: err.Error()}
		if pe, ok := err.(*syntax.ParseError); ok {
			d.Pos = syntax.Pos{Line: pe.Line, Col: pe.Col}
			d.Msg = pe.Msg
		}
		return Result{Diags: []Diagnostic{d}}
	}
	rw := syntax.Rewrite(b)
	blk, ok := rw.(*syntax.Block)
	if !ok {
		blk = &syntax.Block{Cmds: []syntax.Cmd{rw}}
	}
	return AnalyzeBlock(blk, opts)
}

// AnalyzeBlock analyzes an already parsed and rewritten tree.
func AnalyzeBlock(b *syntax.Block, opts Options) Result {
	c := &checker{
		file:     opts.File,
		env:      opts.Env,
		globals:  map[string]bool{},
		dynNames: map[string]bool{},
		effects:  newEffectSet(),
	}
	c.prepass(b)
	c.walkCmd(b, nil)
	sort.SliceStable(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
	return Result{Diags: c.diags, Effects: c.effects.summary()}
}

// checker carries the walk state.
type checker struct {
	file     string
	env      *Env
	diags    []Diagnostic
	globals  map[string]bool // names assigned anywhere in the script
	dynNames map[string]bool // names bound by local anywhere in the script
	effects  *effectSet
}

func (c *checker) report(pos syntax.Pos, code string, sev Severity, format string, args ...interface{}) {
	c.diags = append(c.diags, Diagnostic{
		File: c.file, Pos: pos, Code: code, Sev: sev,
		Msg: fmt.Sprintf(format, args...),
	})
}

// scope is one lexical frame: lambda params, let/for/local bindings.
type scope struct {
	parent *scope
	names  map[string]*binder
}

type binder struct {
	pos        syntax.Pos
	used       bool
	warnUnused bool
}

func (s *scope) lookup(name string) *binder {
	for sc := s; sc != nil; sc = sc.parent {
		if b, ok := sc.names[name]; ok {
			return b
		}
	}
	return nil
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: map[string]*binder{}}
}

// prepass collects flow-insensitive facts: every literal assignment
// target (es assignments are global unless lexically shadowed, even
// inside closures) and every literal local-bound name.
func (c *checker) prepass(cmd syntax.Cmd) {
	switch n := cmd.(type) {
	case nil:
	case *syntax.Block:
		for _, sub := range n.Cmds {
			c.prepass(sub)
		}
	case *syntax.Simple:
		for _, w := range n.Words {
			c.prepassWord(w)
		}
	case *syntax.Assign:
		if name, ok := n.Name.LitText(); ok {
			c.globals[name] = true
		}
		for _, w := range n.Values {
			c.prepassWord(w)
		}
	case *syntax.Let:
		c.prepassBindings(n.Bindings)
		c.prepass(n.Body)
	case *syntax.Local:
		for _, b := range n.Bindings {
			if name, ok := b.Name.LitText(); ok {
				c.dynNames[name] = true
			}
		}
		c.prepassBindings(n.Bindings)
		c.prepass(n.Body)
	case *syntax.For:
		c.prepassBindings(n.Bindings)
		c.prepass(n.Body)
	case *syntax.Match:
		c.prepassWord(n.Subject)
		for _, w := range n.Pats {
			c.prepassWord(w)
		}
	case *syntax.MatchExtract:
		c.prepassWord(n.Subject)
		for _, w := range n.Pats {
			c.prepassWord(w)
		}
	case *syntax.Not:
		c.prepass(n.Body)
	}
}

func (c *checker) prepassBindings(bs []syntax.Binding) {
	for _, b := range bs {
		for _, w := range b.Values {
			c.prepassWord(w)
		}
	}
}

func (c *checker) prepassWord(w *syntax.Word) {
	if w == nil {
		return
	}
	for _, p := range w.Parts {
		switch p := p.(type) {
		case *syntax.Var:
			c.prepassWord(p.Name)
			for _, iw := range p.Index {
				c.prepassWord(iw)
			}
		case *syntax.CmdSub:
			c.prepass(p.Body)
		case *syntax.RetSub:
			c.prepass(p.Body)
		case *syntax.LambdaPart:
			if p.Lambda != nil {
				c.prepass(p.Lambda.Body)
			}
		case *syntax.ListPart:
			for _, lw := range p.Words {
				c.prepassWord(lw)
			}
		}
	}
}

// terminal heads: commands after one of these in the same block can
// never run.
var terminalHeads = map[string]bool{
	"throw": true, "return": true, "exit": true, "break": true,
}

func isTerminal(cmd syntax.Cmd) bool {
	s, ok := cmd.(*syntax.Simple)
	if !ok || len(s.Words) == 0 {
		return false
	}
	if name, ok := s.Words[0].LitText(); ok {
		return terminalHeads[name]
	}
	if len(s.Words[0].Parts) == 1 {
		if pr, ok := s.Words[0].Parts[0].(*syntax.Prim); ok {
			return terminalHeads[pr.Name]
		}
	}
	return false
}

func (c *checker) walkCmd(cmd syntax.Cmd, sc *scope) {
	switch n := cmd.(type) {
	case nil:
	case *syntax.Block:
		for i, sub := range n.Cmds {
			c.walkCmd(sub, sc)
			if isTerminal(sub) && i+1 < len(n.Cmds) {
				next := n.Cmds[i+1]
				head, _ := terminalName(sub)
				c.report(bestPos(syntax.CmdPos(next), syntax.CmdPos(sub)), CodeUnreachable, SevWarning,
					"unreachable command: preceding %s always transfers control", head)
				// Still walk the dead commands (they may hold more
				// findings) but report unreachability only once per block.
				for _, dead := range n.Cmds[i+1:] {
					c.walkCmd(dead, sc)
				}
				return
			}
		}
	case *syntax.Simple:
		c.checkSimple(n, sc)
	case *syntax.Assign:
		c.checkAssign(n, sc)
	case *syntax.Let:
		c.walkBindingForm(n.Pos, "let", n.Bindings, n.Body, sc, true)
	case *syntax.Local:
		c.walkBindingForm(n.Pos, "local", n.Bindings, n.Body, sc, false)
	case *syntax.For:
		c.walkBindingForm(n.Pos, "for", n.Bindings, n.Body, sc, false)
	case *syntax.Match:
		c.walkWord(n.Subject, sc)
		for _, w := range n.Pats {
			c.walkWord(w, sc)
		}
	case *syntax.MatchExtract:
		c.walkWord(n.Subject, sc)
		for _, w := range n.Pats {
			c.walkWord(w, sc)
		}
	case *syntax.Not:
		c.walkCmd(n.Body, sc)
	default:
		// Surface nodes (Pipe, AndOr, Bg, RedirCmd, Fn) cannot appear in a
		// rewritten tree; tolerate them anyway so the analyzer never
		// panics on hand-built inputs.
		switch n := cmd.(type) {
		case *syntax.Pipe:
			c.walkCmd(n.Left, sc)
			c.walkCmd(n.Right, sc)
		case *syntax.AndOr:
			c.walkCmd(n.Left, sc)
			c.walkCmd(n.Right, sc)
		case *syntax.Bg:
			c.walkCmd(n.Body, sc)
		case *syntax.RedirCmd:
			c.walkCmd(n.Body, sc)
		case *syntax.Fn:
			if n.Lambda != nil {
				c.walkLambda(n.Lambda, sc)
			}
		}
	}
}

func terminalName(cmd syntax.Cmd) (string, bool) {
	s, ok := cmd.(*syntax.Simple)
	if !ok || len(s.Words) == 0 {
		return "", false
	}
	return s.Words[0].LitText()
}

func bestPos(p, fallback syntax.Pos) syntax.Pos {
	if p.Known() {
		return p
	}
	return fallback
}

func (c *checker) checkSimple(n *syntax.Simple, sc *scope) {
	if len(n.Words) == 0 {
		return
	}
	head := n.Words[0]
	if name, ok := head.LitText(); ok {
		c.checkHead(name, head.Pos, len(n.Words)-1, n, sc)
	}
	for _, w := range n.Words {
		c.walkWord(w, sc)
	}
}

// checkHead resolves a literal command head: hooks against the registry,
// structure lint for the control builtins, and the effect summary.
func (c *checker) checkHead(name string, pos syntax.Pos, nargs int, n *syntax.Simple, sc *scope) {
	if strings.HasPrefix(name, "%") {
		if !c.hookKnown(name, sc) {
			c.report(pos, CodeUnknownHook, SevError,
				"call to undefined hook %s (no fn-%s anywhere in scope)", name, name)
		}
		c.effects.addHook(name)
		return
	}
	switch name {
	case "if":
		if nargs == 1 {
			c.report(pos, CodeIfArity, SevWarning,
				"if with a condition but no branch: the condition's value is the result")
		}
	case "while", "forever":
		if name == "while" && nargs >= 1 {
			if l := lambdaArg(n.Words[1]); l != nil && emptyBody(l.Body) {
				c.report(pos, CodeEmptyCond, SevInfo,
					"while with an empty condition loops until an exception (break, signal, deadline)")
			}
		}
	}
	c.effects.addHead(name, c.headKnown(name, sc))
}

// hookKnown reports whether %name resolves to a function: a lexical or
// script-level fn-%name binding, or one in the ambient environment.
func (c *checker) hookKnown(name string, sc *scope) bool {
	fn := "fn-" + name
	if sc != nil && sc.lookup(fn) != nil {
		return true
	}
	if c.globals[fn] {
		return true
	}
	return c.env != nil && c.env.Vars[fn]
}

// headKnown reports whether a non-hook head resolves to anything other
// than an external command on $path.
func (c *checker) headKnown(name string, sc *scope) bool {
	fn := "fn-" + name
	if sc != nil && sc.lookup(fn) != nil {
		return true
	}
	if c.globals[fn] {
		return true
	}
	if c.env == nil {
		return false
	}
	return c.env.Vars[fn] || c.env.Builtins[name]
}

func (c *checker) checkAssign(n *syntax.Assign, sc *scope) {
	if name, ok := n.Name.LitText(); ok {
		if hook := strings.TrimPrefix(name, "fn-"); hook != name && strings.HasPrefix(hook, "%") {
			// Spoofing a hook: fine if the hook exists (the whole point of
			// the architecture), suspicious if nothing will ever call it.
			if c.env != nil && !c.env.Vars[name] && !knownHookName(hook) {
				c.report(bestPos(n.Name.Pos, n.Pos), CodeSpoofJunk, SevWarning,
					"definition of unknown hook %s: nothing dispatches through it (typo?)", hook)
			}
		}
	} else {
		c.walkWord(n.Name, sc)
	}
	for _, w := range n.Values {
		c.walkWord(w, sc)
	}
}

func (c *checker) walkBindingForm(pos syntax.Pos, kind string, bs []syntax.Binding, body syntax.Cmd, sc *scope, warnUnused bool) {
	// Binding values evaluate in the outer scope.
	for _, b := range bs {
		if _, ok := b.Name.LitText(); !ok {
			c.walkWord(b.Name, sc)
		}
		for _, w := range b.Values {
			c.walkWord(w, sc)
		}
	}
	inner := newScope(sc)
	for _, b := range bs {
		name, ok := b.Name.LitText()
		if !ok {
			continue
		}
		if name != "*" && name != "0" && sc != nil {
			if outer := sc.lookup(name); outer != nil {
				c.report(bestPos(b.Name.Pos, pos), CodeShadow, SevWarning,
					"%s binding of %s shadows an enclosing binding at %s", kind, name, outer.pos)
			}
		}
		inner.names[name] = &binder{
			pos:        bestPos(b.Name.Pos, pos),
			warnUnused: warnUnused,
		}
	}
	if emptyBody(body) {
		c.report(pos, CodeEmptyBody, SevWarning, "%s with an empty body", kind)
	}
	c.walkCmd(body, inner)
	if warnUnused && !subtreeDynamic(body) {
		for name, b := range inner.names {
			if !b.used && b.warnUnused {
				c.report(b.pos, CodeUnusedLet, SevWarning,
					"let binding %s is never used in its body", name)
			}
		}
	}
}

func emptyBody(body syntax.Cmd) bool {
	switch b := body.(type) {
	case nil:
		return true
	case *syntax.Block:
		return len(b.Cmds) == 0
	case *syntax.Simple:
		// A literal {} body parses as a Simple invoking an empty
		// parameterless brace-lambda.
		if len(b.Words) == 1 {
			if l := lambdaArg(b.Words[0]); l != nil && !l.HasParams && l.Body != nil && len(l.Body.Cmds) == 0 {
				return true
			}
		}
	}
	return false
}

func lambdaArg(w *syntax.Word) *syntax.Lambda {
	if w == nil || len(w.Parts) != 1 {
		return nil
	}
	lp, ok := w.Parts[0].(*syntax.LambdaPart)
	if !ok {
		return nil
	}
	return lp.Lambda
}

func (c *checker) walkWord(w *syntax.Word, sc *scope) {
	if w == nil {
		return
	}
	for _, p := range w.Parts {
		switch p := p.(type) {
		case *syntax.Var:
			c.checkVar(p, sc)
		case *syntax.Prim:
			if c.env != nil && !c.env.Prims[p.Name] {
				c.report(p.Pos, CodeUnknownPrim, SevError,
					"reference to unregistered primitive $&%s", p.Name)
			}
			c.effects.addPrim(p.Name)
		case *syntax.CmdSub:
			c.walkCmd(p.Body, sc)
		case *syntax.RetSub:
			c.walkCmd(p.Body, sc)
		case *syntax.LambdaPart:
			if p.Lambda != nil {
				c.walkLambda(p.Lambda, sc)
			}
		case *syntax.ListPart:
			for _, lw := range p.Words {
				c.walkWord(lw, sc)
			}
		}
	}
}

func (c *checker) walkLambda(l *syntax.Lambda, sc *scope) {
	inner := newScope(sc)
	for _, param := range l.Params {
		inner.names[param] = &binder{pos: l.Pos}
	}
	// Every lambda binds * (to its arguments when no parameter list is
	// declared, and it remains visible regardless).
	inner.names["*"] = &binder{pos: l.Pos}
	c.walkCmd(l.Body, inner)
}

func (c *checker) checkVar(v *syntax.Var, sc *scope) {
	name, ok := v.Name.LitText()
	if !ok {
		// Computed name like $(fn-$cmd): analyze the parts, skip resolution.
		c.walkWord(v.Name, sc)
		for _, iw := range v.Index {
			c.walkWord(iw, sc)
		}
		return
	}
	for _, iw := range v.Index {
		c.walkWord(iw, sc)
	}
	if sc != nil {
		if b := sc.lookup(name); b != nil {
			b.used = true
			return
		}
	}
	if c.globals[name] || alwaysDefined(name) {
		return
	}
	if c.env != nil && c.env.Vars[name] {
		return
	}
	if c.dynNames[name] {
		c.report(v.Pos, CodeDynVar, SevWarning,
			"%s is only bound dynamically (via local); empty unless a caller binds it", name)
		return
	}
	c.report(v.Pos, CodeUndefVar, SevWarning,
		"reference to undefined variable %s (evaluates to the empty list)", name)
}

// alwaysDefined lists names the evaluator itself guarantees: the argument
// list, the program name, positional parameters, and pid.
func alwaysDefined(name string) bool {
	switch name {
	case "*", "0", "apid", "apids":
		return true
	}
	if name == "" {
		return false
	}
	for _, r := range name {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// subtreeDynamic reports whether a subtree uses facilities that defeat
// static reference tracking: computed variable names, eval/dot, or the
// vars/var introspection services.  Unused-binding warnings are
// suppressed in such scopes.
func subtreeDynamic(cmd syntax.Cmd) bool {
	found := false
	var walkC func(syntax.Cmd)
	var walkW func(*syntax.Word)
	walkW = func(w *syntax.Word) {
		if w == nil || found {
			return
		}
		for _, p := range w.Parts {
			switch p := p.(type) {
			case *syntax.Var:
				if _, ok := p.Name.LitText(); !ok {
					found = true
					return
				}
				for _, iw := range p.Index {
					walkW(iw)
				}
			case *syntax.CmdSub:
				walkC(p.Body)
			case *syntax.RetSub:
				walkC(p.Body)
			case *syntax.LambdaPart:
				if p.Lambda != nil {
					walkC(p.Lambda.Body)
				}
			case *syntax.ListPart:
				for _, lw := range p.Words {
					walkW(lw)
				}
			}
		}
	}
	walkC = func(cmd syntax.Cmd) {
		if found {
			return
		}
		switch n := cmd.(type) {
		case *syntax.Block:
			for _, sub := range n.Cmds {
				walkC(sub)
			}
		case *syntax.Simple:
			if len(n.Words) > 0 {
				if name, ok := n.Words[0].LitText(); ok {
					switch name {
					case "eval", ".", "vars", "var":
						found = true
						return
					}
				}
			}
			for _, w := range n.Words {
				walkW(w)
			}
		case *syntax.Assign:
			walkW(n.Name)
			for _, w := range n.Values {
				walkW(w)
			}
		case *syntax.Let:
			for _, b := range n.Bindings {
				walkW(b.Name)
				for _, w := range b.Values {
					walkW(w)
				}
			}
			walkC(n.Body)
		case *syntax.Local:
			for _, b := range n.Bindings {
				walkW(b.Name)
				for _, w := range b.Values {
					walkW(w)
				}
			}
			walkC(n.Body)
		case *syntax.For:
			for _, b := range n.Bindings {
				walkW(b.Name)
				for _, w := range b.Values {
					walkW(w)
				}
			}
			walkC(n.Body)
		case *syntax.Match:
			walkW(n.Subject)
			for _, w := range n.Pats {
				walkW(w)
			}
		case *syntax.MatchExtract:
			walkW(n.Subject)
			for _, w := range n.Pats {
				walkW(w)
			}
		case *syntax.Not:
			walkC(n.Body)
		}
	}
	walkC(cmd)
	return found
}
