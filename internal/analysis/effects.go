package analysis

import "sort"

// Effects summarizes what a script can reach: the hooks it calls, the
// primitives it references, the external commands it may exec, and the
// coarse capability categories those imply.  This is the input the
// multi-tenant sandboxing roadmap item needs for pre-admission policy
// ("does this script ever write files / spawn processes?").
type Effects struct {
	Hooks      []string `json:"hooks,omitempty"`
	Prims      []string `json:"prims,omitempty"`
	External   []string `json:"external,omitempty"`
	Categories []string `json:"categories,omitempty"`
}

// Empty reports whether the script reaches nothing of note.
func (e Effects) Empty() bool {
	return len(e.Hooks) == 0 && len(e.Prims) == 0 && len(e.External) == 0
}

// effectSet accumulates effects during the walk.
type effectSet struct {
	hooks      map[string]bool
	prims      map[string]bool
	external   map[string]bool
	categories map[string]bool
}

func newEffectSet() *effectSet {
	return &effectSet{
		hooks:      map[string]bool{},
		prims:      map[string]bool{},
		external:   map[string]bool{},
		categories: map[string]bool{},
	}
}

func (e *effectSet) addHook(name string) {
	e.hooks[name] = true
	if cat := serviceCategory[trimHook(name)]; cat != "" {
		e.categories[cat] = true
	}
}

func (e *effectSet) addPrim(name string) {
	e.prims[name] = true
	if cat := serviceCategory[name]; cat != "" {
		e.categories[cat] = true
	}
}

// addHead records a non-hook command head.  Known heads (builtins,
// functions) contribute their category; unknown heads are external
// commands, which imply process-spawning via %pathsearch + fork/exec.
func (e *effectSet) addHead(name string, known bool) {
	if known {
		if cat := serviceCategory[name]; cat != "" {
			e.categories[cat] = true
		}
		return
	}
	e.external[name] = true
	e.categories["external-command"] = true
	e.categories["process"] = true
}

func (e *effectSet) summary() Effects {
	return Effects{
		Hooks:      sortedKeys(e.hooks),
		Prims:      sortedKeys(e.prims),
		External:   sortedKeys(e.external),
		Categories: sortedKeys(e.categories),
	}
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func trimHook(name string) string {
	if len(name) > 0 && name[0] == '%' {
		return name[1:]
	}
	return name
}

// serviceCategory buckets primitive/hook/builtin names into the coarse
// capabilities the sandboxing profiles care about.  Pure control and
// word-manipulation services carry no category.
var serviceCategory = map[string]string{
	// process creation and management
	"pipe": "process", "background": "process", "fork": "process",
	"backquote": "process", "wait": "process", "apids": "process",
	"exec": "process",
	// file system, split by direction
	"create": "file-write", "append": "file-write",
	"open": "file-read", "here": "file-read", "read": "file-read",
	// raw descriptor plumbing
	"dup": "fd", "close": "fd",
	// interpreter / process state
	"cd": "state", "noexport": "state", "recache": "state",
	// introspection
	"vars": "introspect", "var": "introspect", "whatis": "introspect",
	"primitives": "introspect", "cachestats": "introspect",
	"serverstats": "introspect", "time": "introspect", "version": "introspect",
	// dynamic evaluation defeats static vetting; flag it loudly
	"eval": "dynamic-eval", "dot": "dynamic-eval", ".": "dynamic-eval",
	"parse": "dynamic-eval",
	// termination
	"exit": "exit",
	// path resolution (ambient fs access)
	"pathsearch": "path-lookup",
	// session images
	"snapshot": "image", "restore": "image",
}

// rewriterHooks are the %-hook names the rewriter and evaluator dispatch
// through implicitly (pipes become %pipe calls, redirections %create and
// friends, path lookup %pathsearch, ...).  A fn-%name definition for one
// of these is a legitimate spoof even when the ambient Env snapshot does
// not list it.
var rewriterHooks = map[string]bool{
	"%and": true, "%or": true, "%background": true, "%pipe": true,
	"%create": true, "%append": true, "%open": true, "%dup": true,
	"%close": true, "%here": true, "%backquote": true, "%pathsearch": true,
	"%whatis": true, "%parse": true, "%interactive-loop": true,
	"%prompt": true, "%snapshot": true, "%restore": true,
	"%count": true, "%flatten": true, "%fsplit": true, "%match": true,
	"%not": true, "%split": true,
}

// knownHookName reports whether %name is one of the implicit dispatch
// hooks (see rewriterHooks).
func knownHookName(name string) bool { return rewriterHooks[name] }
