package analysis_test

// The golden-diagnostics battery: each testdata/escheck/*.es file carries
// its expected diagnostics as trailing `# DIAG line:col CODE` annotations,
// and the test holds the analyzer to exactly that set — no missing
// findings, no extras, positions included.  The fuzz target holds the
// other invariant: anything the parser accepts, the analyzer must survive.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"es"
	"es/internal/analysis"
)

// testEnv resolves prims, builtins and globals against a real shell, the
// same registry every production surface (escheck, es -check, esd, the
// analyze primitive) uses.
func testEnv(t testing.TB) *analysis.Env {
	t.Helper()
	sh, err := es.New(es.Options{})
	if err != nil {
		t.Fatalf("es.New: %v", err)
	}
	return analysis.EnvFromInterp(sh.Interp())
}

var diagRE = regexp.MustCompile(`(?m)^# DIAG (\d+:\d+) (\S+)$`)

func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "escheck", "*.es"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden corpus: %v", err)
	}
	env := testEnv(t)
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			var want []string
			for _, m := range diagRE.FindAllStringSubmatch(string(src), -1) {
				want = append(want, m[1]+" "+m[2])
			}
			res := analysis.Analyze(string(src), analysis.Options{File: file, Env: env})
			var got []string
			for _, d := range res.Diags {
				got = append(got, fmt.Sprintf("%s %s", d.Pos, d.Code))
			}
			sort.Strings(want)
			sort.Strings(got)
			if strings.Join(want, "\n") != strings.Join(got, "\n") {
				t.Errorf("diagnostics mismatch\nwant:\n  %s\ngot:\n  %s",
					strings.Join(want, "\n  "), strings.Join(got, "\n  "))
			}
		})
	}
}

func TestSeverityGate(t *testing.T) {
	env := testEnv(t)
	// Warnings alone must not count as errors: undefined variables are
	// legal es (they evaluate to the empty list).
	res := analysis.Analyze("echo $nope", analysis.Options{Env: env})
	if res.Errors() != 0 {
		t.Errorf("undefined var counted as error: %+v", res.Diags)
	}
	// An unregistered primitive is an error: $&names cannot be spoofed,
	// so the reference can never succeed.
	res = analysis.Analyze("echo <>{$&missingprim}", analysis.Options{Env: env})
	if res.Errors() != 1 {
		t.Errorf("unknown prim not an error: %+v", res.Diags)
	}
}

func TestDiagnosticString(t *testing.T) {
	res := analysis.Analyze("echo $nope", analysis.Options{File: "x.es", Env: testEnv(t)})
	if len(res.Diags) != 1 {
		t.Fatalf("diags = %+v", res.Diags)
	}
	s := res.Diags[0].String()
	if !strings.HasPrefix(s, "x.es:1:6: [W110] ") {
		t.Errorf("String() = %q", s)
	}
}

func TestEffects(t *testing.T) {
	env := testEnv(t)
	res := analysis.Analyze("ls | /bin/true; eval $cmd", analysis.Options{Env: env})
	cats := strings.Join(res.Effects.Categories, " ")
	for _, want := range []string{"process", "dynamic-eval", "external-command"} {
		if !strings.Contains(cats, want) {
			t.Errorf("categories %v missing %q", res.Effects.Categories, want)
		}
	}
	// A script that touches nothing effectful reports no categories.
	res = analysis.Analyze("x = 1", analysis.Options{Env: env})
	if len(res.Effects.Categories) != 0 {
		t.Errorf("pure assignment has categories %v", res.Effects.Categories)
	}
}

func TestFilter(t *testing.T) {
	env := testEnv(t)
	res := analysis.Analyze("echo $nope; echo <>{$&missingprim}", analysis.Options{Env: env})
	if n := len(res.Filter(analysis.SevError)); n != 1 {
		t.Errorf("Filter(SevError) = %d diags, want 1", n)
	}
	if n := len(res.Filter(analysis.SevInfo)); n != len(res.Diags) {
		t.Errorf("Filter(SevInfo) = %d diags, want all %d", n, len(res.Diags))
	}
}

// FuzzAnalyze asserts the analyzer's robustness invariant: for any input
// — parseable or not — Analyze returns without panicking or hanging.
func FuzzAnalyze(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("testdata", "escheck", "*.es"))
	for _, file := range seeds {
		src, err := os.ReadFile(file)
		if err == nil {
			f.Add(string(src))
		}
	}
	f.Add("fn f x {echo $x}; f 1 | g; local (a = $b) {throw $a}")
	f.Add("%pipe {echo} 1 0 {wc}")
	f.Add("let (x = <>{$&split : $y}) {if {~ $x a} {x}}")
	env := testEnv(f)
	f.Fuzz(func(t *testing.T, src string) {
		analysis.Analyze(src, analysis.Options{Env: env})
		analysis.Analyze(src, analysis.Options{}) // nil env must be safe too
	})
}
