package server

// Tests for the fleet-front-end session semantics: the hello handshake,
// in-session pipelining windows, tenant quotas, admission shedding, the
// oversized-frame error path, the socket-takeover lock, and the
// startSession refusal branches.

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"es"
	"es/internal/core"
)

// hello performs the handshake and returns the server's reply.
func (c *client) hello(t *testing.T, tenant string, window int) *Frame {
	t.Helper()
	if err := c.fw.Write(&Frame{Type: "hello", ID: 99, Tenant: tenant, Window: window}); err != nil {
		t.Fatalf("write hello: %v", err)
	}
	f, err := c.fr.Read()
	if err != nil {
		t.Fatalf("read hello reply: %v", err)
	}
	return f
}

func TestHelloWindowClamp(t *testing.T) {
	srv := newTestServer(t, Config{MaxWindow: 2})
	c := dial(t, srv)
	f := c.hello(t, "", 99)
	if f.Type != "hello" || !f.True || f.Window != 2 {
		t.Fatalf("hello reply = %+v, want granted window 2", f)
	}
	// The session works normally after the handshake.
	if f := c.eval(t, "result ok", 0); f.Type != "result" {
		t.Fatalf("eval after hello: %+v", f)
	}
}

// TestPipelining is the tentpole's wire semantics: several evals in
// flight on one session, answered with their ids, each reply correct.
func TestPipelining(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)
	if f := c.hello(t, "", 4); f.Window != 4 {
		t.Fatalf("hello granted %+v", f)
	}
	const n = 4
	for id := 1; id <= n; id++ {
		if err := c.fw.Write(&Frame{Type: "eval", ID: int64(id),
			Src: fmt.Sprintf("result r%d", id)}); err != nil {
			t.Fatalf("pipelined write %d: %v", id, err)
		}
	}
	seen := map[int64]string{}
	for k := 0; k < n; k++ {
		f, err := c.fr.Read()
		if err != nil {
			t.Fatalf("pipelined read %d: %v", k, err)
		}
		if f.Type != "result" {
			t.Fatalf("pipelined reply = %+v", f)
		}
		seen[f.ID] = strings.Join(f.Value, " ")
	}
	for id := 1; id <= n; id++ {
		if seen[int64(id)] != fmt.Sprintf("r%d", id) {
			t.Errorf("id %d answered %q", id, seen[int64(id)])
		}
	}
}

// TestSerialClientUnaffected pins wire compatibility: a session that
// never says hello sees exactly the old frame types and old behavior.
func TestSerialClientUnaffected(t *testing.T) {
	srv := newTestServer(t, Config{MaxWindow: 8})
	c := dial(t, srv)
	for n := 0; n < 3; n++ {
		f := c.eval(t, fmt.Sprintf("result %d", n), 0)
		if f.Type != "result" || f.Value[0] != fmt.Sprintf("%d", n) {
			t.Fatalf("serial eval %d: %+v", n, f)
		}
	}
}

func TestTenantSessionQuota(t *testing.T) {
	srv := newTestServer(t, Config{
		Tenants: map[string]TenantQuota{"acme": {MaxSessions: 1}},
	})
	a := dial(t, srv)
	if f := a.hello(t, "acme", 1); f.Type != "hello" || f.Tenant != "acme" {
		t.Fatalf("first hello: %+v", f)
	}
	b := dial(t, srv)
	f := b.hello(t, "acme", 1)
	if f.Type != "error" || len(f.Exception) < 2 || f.Exception[0] != "signal" || f.Exception[1] != "quota" {
		t.Fatalf("over-quota hello = %+v, want signal quota", f)
	}
	if bye, err := b.fr.Read(); err != nil || bye.Type != "bye" || bye.Reason != "quota" {
		t.Fatalf("after quota reject: %+v, %v", bye, err)
	}
	if got := srv.Metrics().QuotaRejects.Load(); got != 1 {
		t.Errorf("quota_rejects = %d, want 1", got)
	}
	// Closing the first session frees the slot.
	a.fw.Write(&Frame{Type: "bye"})
	a.fr.Read()
	a.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c := dial(t, srv)
		f := c.hello(t, "acme", 1)
		if f.Type == "hello" {
			break
		}
		c.fr.Read() // the bye
		c.conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("session slot never released after bye")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTenantInFlightQuota(t *testing.T) {
	srv := newTestServer(t, Config{
		MaxConcurrent: 4,
		Tenants:       map[string]TenantQuota{"t": {MaxInFlight: 1}},
	})
	c := dial(t, srv)
	if f := c.hello(t, "t", 4); f.Type != "hello" {
		t.Fatalf("hello: %+v", f)
	}
	// The first eval is slow and holds the tenant's one in-flight slot;
	// the second arrives while it runs and must be refused retryably.
	if err := c.fw.Write(&Frame{Type: "eval", ID: 1, Src: "sleep 0.3; result slow"}); err != nil {
		t.Fatal(err)
	}
	if err := c.fw.Write(&Frame{Type: "eval", ID: 2, Src: "result fast"}); err != nil {
		t.Fatal(err)
	}
	var rejected, completed *Frame
	for k := 0; k < 2; k++ {
		f, err := c.fr.Read()
		if err != nil {
			t.Fatal(err)
		}
		switch f.ID {
		case 1:
			completed = f
		case 2:
			rejected = f
		}
	}
	if rejected == nil || rejected.Type != "error" ||
		len(rejected.Exception) < 2 || rejected.Exception[1] != "quota" {
		t.Fatalf("second eval = %+v, want signal quota", rejected)
	}
	if rejected.RetryAfterMS <= 0 {
		t.Errorf("quota reject retry_after_ms = %d, want > 0", rejected.RetryAfterMS)
	}
	if completed == nil || completed.Type != "result" {
		t.Fatalf("first eval = %+v", completed)
	}
	// The slot frees once the slow eval answers.
	if f := c.eval(t, "result again", 0); f.Type != "result" {
		t.Fatalf("after in-flight release: %+v", f)
	}
}

func TestTenantDeadlineCeiling(t *testing.T) {
	srv := newTestServer(t, Config{
		Tenants: map[string]TenantQuota{"t": {DeadlineCeiling: 50 * time.Millisecond}},
	})
	c := dial(t, srv)
	if f := c.hello(t, "t", 1); f.Type != "hello" {
		t.Fatalf("hello: %+v", f)
	}
	// No deadline requested at all: the ceiling still applies.
	start := time.Now()
	f := c.eval(t, "while {} {}", 0)
	if f.Type != "error" || strings.Join(f.Exception, " ") != "signal deadline" {
		t.Fatalf("ceiling reply = %+v", f)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("ceiling took %v", el)
	}
	// A deadline over the ceiling is clamped down to it.
	start = time.Now()
	if f = c.eval(t, "while {} {}", 60_000); f.Type != "error" {
		t.Fatalf("clamped reply = %+v", f)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("clamp took %v, ceiling not applied", el)
	}
}

// TestAdmitEvalShed exercises the pluggable admission hook the frontend
// controller sits behind: a shed eval is answered `signal overload` with
// a retry hint, costs no evaluation, and the session keeps working.
func TestAdmitEvalShed(t *testing.T) {
	var shed sync.Map
	shed.Store("on", true)
	srv := newTestServer(t, Config{
		AdmitEval: func() *Overload {
			if on, _ := shed.Load("on"); on.(bool) {
				return &Overload{Signal: "overload", Reason: "test", RetryAfterMS: 7}
			}
			return nil
		},
	})
	c := dial(t, srv)
	f := c.eval(t, "result never-runs", 0)
	if f.Type != "error" || len(f.Exception) < 2 || f.Exception[1] != "overload" {
		t.Fatalf("shed reply = %+v, want signal overload", f)
	}
	if f.RetryAfterMS != 7 {
		t.Errorf("retry_after_ms = %d, want 7", f.RetryAfterMS)
	}
	m := srv.Metrics()
	if got := m.Sheds.Load(); got != 1 {
		t.Errorf("sheds = %d, want 1", got)
	}
	if got := m.Evals.Load(); got != 0 {
		t.Errorf("shed eval was evaluated: evals = %d", got)
	}
	shed.Store("on", false)
	if f := c.eval(t, "result ok", 0); f.Type != "result" {
		t.Fatalf("session unusable after shed: %+v", f)
	}
}

// TestOversizedFrame pins the satellite fix: a frame over maxFrameBytes
// must be answered with an error frame and a bye, not a silent death.
func TestOversizedFrame(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)
	go func() {
		// The server stops reading mid-line, so this write may fail once
		// it closes the connection; that is the point.
		huge := make([]byte, maxFrameBytes+4096)
		for k := range huge {
			huge[k] = 'a'
		}
		c.conn.Write(huge)
	}()
	f, err := c.fr.Read()
	if err != nil {
		t.Fatalf("no error frame for oversized line: %v", err)
	}
	if f.Type != "error" || !strings.Contains(strings.Join(f.Exception, " "), "frame exceeds") {
		t.Fatalf("oversized reply = %+v", f)
	}
	if f, err = c.fr.Read(); err != nil || f.Type != "bye" || f.Reason != "frame too large" {
		t.Fatalf("no bye after oversized frame: %+v, %v", f, err)
	}
	waitClosed(t, srv)
}

// TestListenTakeoverRace pins the satellite fix for the check-then-remove
// race: with a stale socket on disk, two daemons starting simultaneously
// must resolve to exactly one owner (the loser errors instead of silently
// unlinking the winner's freshly bound socket).
func TestListenTakeoverRace(t *testing.T) {
	template, err := es.New(es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Socket:     t.TempDir() + "/esd.sock",
		NewSession: func() (*core.Interp, error) { return template.Interp().Spawn(), nil },
	}
	// Manufacture a stale socket file: bound, never served, left on disk.
	ln, err := net.Listen("unix", cfg.Socket)
	if err != nil {
		t.Fatal(err)
	}
	ln.(*net.UnixListener).SetUnlinkOnClose(false)
	ln.Close()

	mk := func() *Server {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := mk(), mk()
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for _, s := range []*Server{s1, s2} {
		wg.Add(1)
		go func(s *Server) {
			defer wg.Done()
			errs <- s.Listen()
		}(s)
	}
	wg.Wait()
	close(errs)
	var ok, failed int
	for err := range errs {
		if err == nil {
			ok++
		} else {
			failed++
		}
	}
	if ok != 1 || failed != 1 {
		t.Fatalf("takeover race: %d winners, %d losers; want exactly 1 each", ok, failed)
	}
	// The winner's socket is alive and serving.
	for _, s := range []*Server{s1, s2} {
		if s.ln != nil {
			go s.Serve()
			conn, err := net.Dial("unix", cfg.Socket)
			if err != nil {
				t.Fatalf("winner not serving: %v", err)
			}
			fr, fw := NewClientConn(conn)
			fw.Write(&Frame{Type: "eval", ID: 1, Src: "result alive"})
			if f, err := fr.Read(); err != nil || f.Type != "result" {
				t.Fatalf("winner eval: %+v, %v", f, err)
			}
			conn.Close()
			s.Drain(5 * time.Second)
		}
	}
}

// TestStartSessionPoolError covers the error-frame-then-close branch: a
// session constructor failure must answer the client before hanging up.
func TestStartSessionPoolError(t *testing.T) {
	cfg := Config{
		Socket:     t.TempDir() + "/esd.sock",
		PoolSize:   -1, // no filler goroutine; get() always calls NewSession
		NewSession: func() (*core.Interp, error) { return nil, fmt.Errorf("spawn exhausted") },
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Drain(5 * time.Second)
	conn, err := net.Dial("unix", cfg.Socket)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fr, _ := NewClientConn(conn)
	f, err := fr.Read()
	if err != nil {
		t.Fatalf("no error frame on pool exhaustion: %v", err)
	}
	if f.Type != "error" || !strings.Contains(strings.Join(f.Exception, " "), "spawn exhausted") {
		t.Fatalf("pool-exhaustion reply = %+v", f)
	}
	if _, err := fr.Read(); err == nil {
		t.Fatal("connection left open after pool exhaustion")
	}
	if got := srv.Metrics().SessionsOpened.Load(); got != 0 {
		t.Errorf("refused session counted as opened: %d", got)
	}
}

// TestStartSessionDrainRace covers the bye-on-drain branch: a connection
// that reaches startSession after draining begins gets a drain goodbye,
// not a half-registered session.
func TestStartSessionDrainRace(t *testing.T) {
	template, err := es.New(es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Socket:     t.TempDir() + "/esd.sock",
		NewSession: func() (*core.Interp, error) { return template.Interp().Spawn(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drain before the "accepted" connection is handed over — the race
	// window between Accept and the registration under s.mu.
	if err := srv.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	client, serverEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.startSession(serverEnd, nil)
	}()
	fr, _ := NewClientConn(client)
	f, err := fr.Read()
	if err != nil || f.Type != "bye" || f.Reason != "drain" {
		t.Fatalf("drain-race reply = %+v, %v", f, err)
	}
	if _, err := fr.Read(); err == nil {
		t.Fatal("connection left open after drain refusal")
	}
	client.Close()
	<-done
	if srv.openSessions() != 0 {
		t.Errorf("drain-raced session registered: %d open", srv.openSessions())
	}
}

// TestStatsIncludeListenersAndTenants: the new counter surfaces land in
// the stats words next to the old ones.
func TestStatsIncludeListenersAndTenants(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)
	if f := c.hello(t, "acme", 2); f.Type != "hello" {
		t.Fatalf("hello: %+v", f)
	}
	c.eval(t, "result 1", 0)
	joined := strings.Join(srv.Stats(), " ")
	for _, want := range []string{
		"lst_unix_sessions:1", "lst_unix_bytes_in:", "lst_unix_bytes_out:",
		"tenant_acme_sessions:1", "tenant_acme_inflight:0",
		"queued:0", "sheds:0", "quota_rejects:0",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("stats missing %q:\n%s", want, joined)
		}
	}
}
