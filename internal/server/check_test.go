package server

// Tests for the check frame and the -vet admission gate: static
// diagnostics come back over the wire without evaluation, and a vetting
// server proves it rejected a bad script *before* running any of it.

import (
	"strings"
	"testing"
)

func TestCheckFrame(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)

	// A script with only warnings checks true, diagnostics included.
	f := c.roundTrip(t, &Frame{Type: "check", ID: 1, Src: "echo $undefined; ls | wc"})
	if f.Type != "check" || !f.True {
		t.Fatalf("warning-only check = %+v", f)
	}
	if len(f.Diags) != 1 || !strings.Contains(f.Diags[0], "[W110]") {
		t.Errorf("diags = %v", f.Diags)
	}
	if strings.Join(f.Effects, " ") == "" {
		t.Errorf("no effects for a process-spawning script")
	}

	// A script with a static error checks false.
	f = c.roundTrip(t, &Frame{Type: "check", ID: 2, Src: "echo <>{$&nosuchprim}"})
	if f.Type != "check" || f.True {
		t.Fatalf("bad check = %+v", f)
	}
	if len(f.Diags) != 1 || !strings.Contains(f.Diags[0], "[E101]") {
		t.Errorf("diags = %v", f.Diags)
	}

	if got := srv.Metrics().Checks.Load(); got != 2 {
		t.Errorf("Checks = %d, want 2", got)
	}
	if got := srv.Metrics().CheckRejects.Load(); got != 1 {
		t.Errorf("CheckRejects = %d, want 1", got)
	}
	stats := strings.Join(srv.Stats(), " ")
	if !strings.Contains(stats, "checks:2") || !strings.Contains(stats, "check_rejects:1") {
		t.Errorf("stats missing check counters: %v", stats)
	}
}

// TestCheckResolvesAgainstSession pins the registry the check runs
// against: a hook the session itself spoofed is known to its analyzer.
func TestCheckResolvesAgainstSession(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)

	f := c.roundTrip(t, &Frame{Type: "check", ID: 1, Src: "%my-custom-hook"})
	if f.True && len(f.Diags) == 0 {
		t.Fatalf("undefined hook not diagnosed: %+v", f)
	}
	if f = c.eval(t, "fn %my-custom-hook {echo custom}", 0); f.Type != "result" {
		t.Fatalf("spoof failed: %+v", f)
	}
	f = c.roundTrip(t, &Frame{Type: "check", ID: 3, Src: "%my-custom-hook"})
	if !f.True || len(f.Diags) != 0 {
		t.Fatalf("session-defined hook still diagnosed: %+v", f)
	}
}

func TestVetRejectsWithoutEvaluating(t *testing.T) {
	srv := newTestServer(t, Config{Vet: true})
	c := dial(t, srv)

	// The script sets a variable and then trips a static error.  If any
	// of it had run, $witness would be set afterwards.
	f := c.eval(t, "witness = ran; echo <>{$&nosuchprim}", 0)
	if f.Type != "error" {
		t.Fatalf("vet did not reject: %+v", f)
	}
	if !strings.Contains(strings.Join(f.Exception, " "), "vet") {
		t.Errorf("exception = %v", f.Exception)
	}
	if f.Stdout != "" {
		t.Errorf("rejected script produced output %q", f.Stdout)
	}

	f = c.eval(t, "echo count <={%count $witness}", 0)
	if f.Type != "result" || f.Stdout != "count 0\n" {
		t.Fatalf("rejected script was (partially) evaluated: %+v", f)
	}

	// Statically clean scripts still run; warnings do not block.
	f = c.eval(t, "echo $undefined-but-legal ok", 0)
	if f.Type != "result" || f.Stdout != "ok\n" {
		t.Fatalf("clean eval under vet = %+v", f)
	}

	if got := srv.Metrics().CheckRejects.Load(); got != 1 {
		t.Errorf("CheckRejects = %d, want 1", got)
	}
}
