package server

// The snapshot/restore/migrate acceptance tests from the issue: a
// session with user-defined vars, functions, and a spoofed %pathsearch
// survives snap -> daemon restart -> restore with identical behavior,
// and migrate moves a live session between two daemons.

import (
	"encoding/base64"
	"strings"
	"testing"
	"time"

	"es"
	"es/internal/core"
	"es/internal/image"
)

// roundTrip sends one frame and returns the reply.
func (c *client) roundTrip(t *testing.T, f *Frame) *Frame {
	t.Helper()
	if err := c.fw.Write(f); err != nil {
		t.Fatalf("write %s: %v", f.Type, err)
	}
	r, err := c.fr.Read()
	if err != nil {
		t.Fatalf("read %s reply: %v", f.Type, err)
	}
	return r
}

// decorate gives a session the state the acceptance criterion names:
// variables, a function with a capture, and a spoofed %pathsearch.
func decorate(t *testing.T, c *client) {
	t.Helper()
	for _, src := range []string{
		"project = es-image",
		"secret = hunter2; noexport secret",
		"let (salt = xyz) fn seasoned {result $salt $project}",
		"fn %pathsearch name {result /spoofed/$name}",
	} {
		if f := c.eval(t, src, 0); f.Type != "result" {
			t.Fatalf("setup %q: %+v", src, f)
		}
	}
}

// checkDecorated verifies the decorated behavior, bit for bit.
func checkDecorated(t *testing.T, c *client, label string) {
	t.Helper()
	if f := c.eval(t, "seasoned", 0); strings.Join(f.Value, " ") != "xyz es-image" {
		t.Errorf("%s: seasoned = %+v", label, f)
	}
	if f := c.eval(t, "result <>{%pathsearch vi}", 0); strings.Join(f.Value, " ") != "/spoofed/vi" {
		t.Errorf("%s: spoofed %%pathsearch = %+v", label, f)
	}
	if f := c.eval(t, "result $secret", 0); strings.Join(f.Value, " ") != "hunter2" {
		t.Errorf("%s: secret = %+v", label, f)
	}
}

func TestSnapRestoreFrames(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)
	decorate(t, c)

	snap := c.roundTrip(t, &Frame{Type: "snap", ID: 2})
	if snap.Type != "snap" || snap.Image == "" {
		t.Fatalf("snap reply = %+v", snap)
	}
	// The wire image is a well-formed internal/image artifact.
	raw, err := base64.StdEncoding.DecodeString(snap.Image)
	if err != nil {
		t.Fatalf("image not base64: %v", err)
	}
	if _, err := image.Decode(raw); err != nil {
		t.Fatalf("image does not decode: %v", err)
	}

	// A FRESH session restored from the image behaves identically.
	c2 := dial(t, srv)
	if f := c2.roundTrip(t, &Frame{Type: "restore", ID: 3, Image: snap.Image}); f.Type != "restore" || !f.True {
		t.Fatalf("restore reply = %+v", f)
	}
	checkDecorated(t, c2, "restored session")

	// snap -> restore -> snap is byte-identical: the differential
	// round-trip battery, through the daemon.
	snap2 := c2.roundTrip(t, &Frame{Type: "snap", ID: 4})
	if snap2.Image != snap.Image {
		t.Errorf("re-snapshot differs from snapshot")
	}

	// Corrupted images are refused and the session stays usable.
	if f := c2.roundTrip(t, &Frame{Type: "restore", ID: 5, Image: "bm90IGFuIGltYWdl"}); f.Type != "error" {
		t.Errorf("corrupt restore accepted: %+v", f)
	}
	checkDecorated(t, c2, "session after refused restore")

	if got := srv.Metrics().Snapshots.Load(); got != 2 {
		t.Errorf("snapshots counter = %d, want 2", got)
	}
	if got := srv.Metrics().Restores.Load(); got != 1 {
		t.Errorf("restores counter = %d, want 1", got)
	}
}

// The issue's restart acceptance: snap, drain the daemon completely,
// start a NEW daemon process-equivalent on a fresh socket, restore.
func TestSnapSurvivesDaemonRestart(t *testing.T) {
	srv1 := newTestServer(t, Config{})
	c1 := dial(t, srv1)
	decorate(t, c1)
	snap := c1.roundTrip(t, &Frame{Type: "snap", ID: 2})
	if snap.Type != "snap" {
		t.Fatalf("snap reply = %+v", snap)
	}
	if err := srv1.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	srv2 := newTestServer(t, Config{})
	c2 := dial(t, srv2)
	if f := c2.roundTrip(t, &Frame{Type: "restore", ID: 1, Image: snap.Image}); f.Type != "restore" || !f.True {
		t.Fatalf("restore on restarted daemon = %+v", f)
	}
	checkDecorated(t, c2, "session across restart")
}

// The migrate acceptance: a live session moves between two daemons; the
// client keeps its connection and its state, with evals now answered by
// the target.
func TestMigrateBetweenDaemons(t *testing.T) {
	origin := newTestServer(t, Config{})
	target := newTestServer(t, Config{})
	c := dial(t, origin)
	decorate(t, c)

	f := c.roundTrip(t, &Frame{Type: "migrate", ID: 7, Socket: target.cfg.Socket})
	if f.Type != "migrate" || !f.True || f.Socket != target.cfg.Socket {
		t.Fatalf("migrate reply = %+v", f)
	}
	// Same connection, same state — running on the target now.
	checkDecorated(t, c, "migrated session")
	if got := target.Metrics().Evals.Load(); got == 0 {
		t.Errorf("target served no evals; session did not actually move")
	}
	if got := origin.Metrics().Migrations.Load(); got != 1 {
		t.Errorf("origin migrations counter = %d, want 1", got)
	}
	if got := target.Metrics().Restores.Load(); got != 1 {
		t.Errorf("target restores counter = %d, want 1", got)
	}
	// Stats frames relay too, and come from the target.
	sf := c.roundTrip(t, &Frame{Type: "stats", ID: 8})
	if sf.Type != "stats" || !strings.Contains(strings.Join(sf.Stats, " "), "restores:1") {
		t.Errorf("relayed stats = %+v", sf)
	}
	// A clean goodbye travels the relay and both sessions wind down.
	bye := c.roundTrip(t, &Frame{Type: "bye"})
	if bye.Type != "bye" {
		t.Errorf("relayed bye = %+v", bye)
	}
}

func TestMigrateFailureLeavesSession(t *testing.T) {
	origin := newTestServer(t, Config{})
	c := dial(t, origin)
	decorate(t, c)
	if f := c.roundTrip(t, &Frame{Type: "migrate", ID: 1, Socket: "/nonexistent/esd.sock"}); f.Type != "error" {
		t.Fatalf("migrate to nowhere = %+v", f)
	}
	if f := c.roundTrip(t, &Frame{Type: "migrate", ID: 2, Socket: origin.cfg.Socket}); f.Type != "error" {
		t.Fatalf("migrate to self = %+v", f)
	}
	checkDecorated(t, c, "session after failed migrate")
	if got := origin.Metrics().Migrations.Load(); got != 0 {
		t.Errorf("migrations counter = %d after failures", got)
	}
}

// Pre-baked pools: sessions spawned via NewSessionFromImage start with
// the image's state already installed.
func TestNewSessionFromImage(t *testing.T) {
	template, err := es.New(es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baked, err := es.New(es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baked.Run("prebaked = yes; fn stamp {result image-$prebaked}"); err != nil {
		t.Fatal(err)
	}
	img := image.Capture(baked.Interp(), nil)

	cfg := Config{NewSession: NewSessionFromImage(template.Interp(), img)}
	sess, err := cfg.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunString(&core.Ctx{IO: core.NewIOTable(strings.NewReader(""), nil, nil)}, "stamp")
	if err != nil {
		t.Fatalf("stamp on pre-baked session: %v", err)
	}
	if got := strings.Join(res.Strings(), " "); got != "image-yes" {
		t.Errorf("stamp = %q", got)
	}
	// Sessions are isolated: mutating one does not leak into the next.
	if _, err := sess.RunString(&core.Ctx{IO: core.NewIOTable(strings.NewReader(""), nil, nil)}, "prebaked = mutated"); err != nil {
		t.Fatal(err)
	}
	sess2, _ := cfg.NewSession()
	res, err = sess2.RunString(&core.Ctx{IO: core.NewIOTable(strings.NewReader(""), nil, nil)}, "result $prebaked")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.Strings(), " "); got != "yes" {
		t.Errorf("template leaked mutation: %q", got)
	}
}
