package server

// The warm interpreter pool.  Stamping a session interpreter out of the
// template (Fork + detach, core.Interp.Spawn) deep-copies every variable
// binding initial.es established — measurable work we do not want on the
// accept path.  A filler goroutine keeps a small buffered channel of
// pre-spawned interpreters topped up; sessions take one in O(1) and the
// filler replaces it off the hot path.

import (
	"sync"

	"es/internal/core"
)

// pool keeps warm, pre-initialized session interpreters.
type pool struct {
	newFn func() (*core.Interp, error)
	ch    chan *core.Interp
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

func newPool(size int, newFn func() (*core.Interp, error)) *pool {
	if size < 0 {
		size = 0
	}
	p := &pool{
		newFn: newFn,
		ch:    make(chan *core.Interp, size),
		stop:  make(chan struct{}),
	}
	if size > 0 {
		p.wg.Add(1)
		go p.fill()
	}
	return p
}

// fill keeps the channel full until the pool closes.  On a constructor
// error the filler retires; Get falls back to direct construction and
// surfaces the error to the session that hit it.
func (p *pool) fill() {
	defer p.wg.Done()
	for {
		i, err := p.newFn()
		if err != nil {
			return
		}
		select {
		case p.ch <- i:
		case <-p.stop:
			return
		}
	}
}

// get returns a warm interpreter, or builds one inline when the pool is
// momentarily empty (a burst of accepts outrunning the filler).
func (p *pool) get() (*core.Interp, error) {
	select {
	case i := <-p.ch:
		return i, nil
	default:
		return p.newFn()
	}
}

func (p *pool) close() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
}
