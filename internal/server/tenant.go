package server

// Per-tenant quotas.  A session names its tenant in the hello frame;
// sessions that never say hello stay anonymous and are governed only by
// the server-wide admission controller.  Tenancy is deliberately
// cooperative — the same spirit as the shell's spoofable hooks: the
// handshake declares which policy bucket the session wants to be
// accounted under, and the daemon enforces the bucket's ceilings
// (sessions, in-flight evals, deadline) without trusting anything else
// about the client.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TenantQuota is one tenant's ceilings.  Zero fields mean unlimited.
type TenantQuota struct {
	// MaxSessions caps concurrently open sessions naming this tenant; a
	// hello over the cap is answered `signal quota` and the session is
	// closed with a bye.
	MaxSessions int

	// MaxInFlight caps this tenant's evals that are queued or running
	// across all its sessions; an eval over the cap is answered with a
	// retryable `signal quota` error frame.
	MaxInFlight int

	// DeadlineCeiling clamps every eval's deadline: a request asking for
	// more (or for no deadline at all) runs under the ceiling instead.
	DeadlineCeiling time.Duration
}

// tenantState is the live accounting for one tenant name.
type tenantState struct {
	name     string
	quota    TenantQuota
	sessions atomic.Int64
	inflight atomic.Int64
}

// tenantSet maps tenant names to their live state, creating entries on
// first contact.  Tenants without a configured quota are unlimited but
// still counted, so stats can attribute load.
type tenantSet struct {
	mu     sync.Mutex
	quotas map[string]TenantQuota
	m      map[string]*tenantState
}

func newTenantSet(quotas map[string]TenantQuota) *tenantSet {
	return &tenantSet{quotas: quotas, m: make(map[string]*tenantState)}
}

func (ts *tenantSet) get(name string) *tenantState {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t := ts.m[name]
	if t == nil {
		t = &tenantState{name: name, quota: ts.quotas[name]}
		ts.m[name] = t
	}
	return t
}

// acquireSession counts one session against the tenant, refusing it over
// MaxSessions.
func (ts *tenantSet) acquireSession(name string) (*tenantState, bool) {
	t := ts.get(name)
	for {
		n := t.sessions.Load()
		if t.quota.MaxSessions > 0 && n >= int64(t.quota.MaxSessions) {
			return nil, false
		}
		if t.sessions.CompareAndSwap(n, n+1) {
			return t, true
		}
	}
}

// words renders every tenant's live gauges for the stats surfaces.
func (ts *tenantSet) words() []string {
	ts.mu.Lock()
	states := make([]*tenantState, 0, len(ts.m))
	for _, t := range ts.m {
		states = append(states, t)
	}
	ts.mu.Unlock()
	var w []string
	for _, t := range states {
		w = append(w,
			fmt.Sprintf("tenant_%s_sessions:%d", t.name, t.sessions.Load()),
			fmt.Sprintf("tenant_%s_inflight:%d", t.name, t.inflight.Load()))
	}
	return w
}
