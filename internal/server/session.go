package server

// One session = one connection = one interpreter = one goroutine.  The
// read loop turns wire frames into mailbox messages; the session
// goroutine — the interpreter's only driver, since core.Interp is not
// safe for concurrent use — drains the mailbox in order.  Asynchronous
// aborts (per-request deadlines) do not need a second driver: they ride
// the interpreter's cooperative cancellation, armed before RunString and
// fired from a timer goroutine that never touches the interpreter.
//
// Pipelining: the mailbox doubles as the per-session dispatch queue.  A
// hello frame grants a window W (clamped to Config.MaxWindow); the read
// loop then admits up to W unanswered evals before it stops reading —
// TCP backpressure is the flow control.  Evals still execute one at a
// time on the interpreter, in arrival order, so per-id ordering is free;
// the win is that frame decode, the wire round trip, and the next
// request's network time overlap with evaluation.  Admission control
// also lives on the read loop: a shed eval (overload or tenant quota) is
// answered immediately with a retryable error frame without ever
// touching the queue, which is exactly what load shedding is for —
// refusing work at the front door while the interpreter digs out.

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"es/internal/analysis"
	"es/internal/core"
)

// session is one client connection and the interpreter it owns.
type session struct {
	id     uint64
	srv    *Server
	conn   net.Conn
	interp *core.Interp
	fr     *FrameReader
	fw     *FrameWriter
	mail   chan *Frame   // read loop -> session goroutine (the dispatch queue)
	closed chan struct{} // closed when the session goroutine exits
	sm     sessionMetrics

	// evalDone carries one token per answered (or forwarded, or dropped)
	// eval back to the read loop's window accounting.  Capacity MaxWindow
	// ≥ any granted window, so sends never block even after the read loop
	// has given up.
	evalDone chan struct{}

	// tenant is set by the read loop on the first hello naming one; the
	// session goroutine reads it for deadline clamping and accounting.
	tenant atomic.Pointer[tenantState]
}

// sessionBuffer collects one request's output.  Pipeline elements and
// background jobs write from their own goroutines, so it locks; a
// background job that outlives its request writes into a buffer nobody
// will read again, which is safe and intentionally lossy (the C shell
// drops output of disowned jobs on a closed terminal the same way).
type sessionBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *sessionBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *sessionBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func newSession(id uint64, srv *Server, conn net.Conn, interp *core.Interp, ls *ListenerStats) *session {
	var inLst, outLst *atomic.Int64
	if ls != nil {
		inLst, outLst = &ls.BytesIn, &ls.BytesOut
	}
	return &session{
		id:       id,
		srv:      srv,
		conn:     conn,
		interp:   interp,
		fr:       NewFrameReader(conn, &srv.metrics.BytesIn, inLst),
		fw:       NewFrameWriter(conn, &srv.metrics.BytesOut, outLst),
		mail:     make(chan *Frame, srv.cfg.MaxWindow),
		closed:   make(chan struct{}),
		evalDone: make(chan struct{}, srv.cfg.MaxWindow),
	}
}

// run drives the session to completion.  It returns when the client says
// bye, the connection drops, or the server drains — in the drain case
// only after every request already in the mailbox has been answered.
func (s *session) run() {
	defer func() {
		close(s.closed)
		s.conn.Close()
		// Evals admitted but never dispatched (a force-close dropped the
		// session mid-queue) still hold queue-depth and tenant-in-flight
		// accounting; release them.  The read loop is guaranteed to close
		// the mailbox: its reads fail once the connection is closed, and
		// its window waits select on s.closed.
		for f := range s.mail {
			if f.Type == "eval" {
				s.srv.metrics.Queued.Add(-1)
				s.finishEval()
			}
		}
		s.srv.metrics.SessionsClosed.Add(1)
		s.srv.dropSession(s.id)
	}()
	go s.readLoop()
	for {
		select {
		case f, ok := <-s.mail:
			if !ok {
				return // client hung up
			}
			if s.dispatch(f) {
				return
			}
		case <-s.srv.drainCh:
			// Finish the work already accepted, then say goodbye.
			for {
				select {
				case f, ok := <-s.mail:
					if !ok {
						return
					}
					if s.dispatch(f) {
						return
					}
					continue
				default:
				}
				break
			}
			s.fw.Write(&Frame{Type: "bye", Reason: "drain"})
			return
		}
	}
}

// finishEval returns one admitted eval's window token and tenant
// in-flight slot.  Exactly one call per admitted eval, on whichever path
// retired it: answered, forwarded by a relay, or dropped at close.
func (s *session) finishEval() {
	if t := s.tenant.Load(); t != nil {
		t.inflight.Add(-1)
	}
	s.evalDone <- struct{}{}
}

// readLoop feeds the mailbox until the stream ends.  It never touches the
// interpreter; hello handshakes and eval admission (window backpressure,
// overload shedding, tenant quotas) are handled here so a shed request is
// answered even while the interpreter is busy.
func (s *session) readLoop() {
	window := 1
	pending := 0
	defer func() {
		close(s.mail)
		if t := s.tenant.Load(); t != nil {
			t.sessions.Add(-1)
		}
	}()
	for {
		f, err := s.fr.Read()
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// The doc on maxFrameBytes promises an error frame, and
				// the scanner cannot resync past the oversized line, so
				// answer and hang up instead of dying silently.
				s.fw.Write(&Frame{Type: "error",
					Exception: []string{"error", "esd", err.Error()}})
				s.fw.Write(&Frame{Type: "bye", Reason: "frame too large"})
			}
			return
		}
		switch f.Type {
		case "hello":
			w, ok := s.hello(f, window)
			if !ok {
				return
			}
			window = w
			continue
		case "eval":
			if ov := s.srv.admitEval(s.tenant.Load()); ov != nil {
				s.fw.Write(&Frame{Type: "error", ID: f.ID,
					Exception:    []string{"signal", ov.Signal, ov.Reason},
					RetryAfterMS: ov.RetryAfterMS})
				continue
			}
			for pending >= window {
				select {
				case <-s.evalDone:
					pending--
				case <-s.closed:
					return
				}
			}
			pending++
			s.srv.metrics.Queued.Add(1)
			if t := s.tenant.Load(); t != nil {
				t.inflight.Add(1)
			}
		}
		select {
		case s.mail <- f:
		case <-s.closed:
			return
		}
	}
}

// hello negotiates the session's pipeline window and tenant.  It runs on
// the read loop before any frame it precedes is admitted, so the session
// goroutine observes the tenant through the mailbox's happens-before.
// The bool result is false when the session must close (tenant over its
// session quota).
func (s *session) hello(f *Frame, window int) (int, bool) {
	w := f.Window
	if w < 1 {
		w = 1
	}
	if w > s.srv.cfg.MaxWindow {
		w = s.srv.cfg.MaxWindow
	}
	if f.Tenant != "" {
		switch cur := s.tenant.Load(); {
		case cur == nil:
			t, ok := s.srv.tenants.acquireSession(f.Tenant)
			if !ok {
				s.srv.metrics.QuotaRejects.Add(1)
				s.fw.Write(&Frame{Type: "error", ID: f.ID,
					Exception: []string{"signal", "quota", "tenant " + f.Tenant + " session quota exhausted"}})
				s.fw.Write(&Frame{Type: "bye", Reason: "quota"})
				return window, false
			}
			s.tenant.Store(t)
		case cur.name != f.Tenant:
			// Tenancy is fixed for the life of a session; a different name
			// is an error, but not a fatal one — the window still applies.
			s.fw.Write(&Frame{Type: "error", ID: f.ID,
				Exception: []string{"error", "esd", "tenant already set: " + cur.name}})
			return window, true
		}
	}
	reply := &Frame{Type: "hello", ID: f.ID, Window: w, True: true}
	if t := s.tenant.Load(); t != nil {
		reply.Tenant = t.name
	}
	s.fw.Write(reply)
	return w, true
}

// dispatch handles one frame; the returned bool means "close the
// session".
func (s *session) dispatch(f *Frame) bool {
	switch f.Type {
	case "eval":
		s.eval(f)
		s.finishEval()
		return false
	case "stats":
		words := append(s.srv.Stats(), s.sm.words(s.id)...)
		s.fw.Write(&Frame{Type: "stats", ID: f.ID, Stats: words})
		return false
	case "snap":
		s.snap(f)
		return false
	case "restore":
		s.restore(f)
		return false
	case "migrate":
		return s.migrate(f)
	case "check":
		s.check(f)
		return false
	case "bye":
		s.fw.Write(&Frame{Type: "bye", Reason: "bye"})
		return true
	default:
		s.fw.Write(&Frame{Type: "error", ID: f.ID,
			Exception: []string{"error", "esd", "unknown frame type: " + f.Type}})
		return false
	}
}

// analyze runs the static analyzer over one script, resolving hooks,
// primitives and variables against this session's interpreter, so a
// script that spoofed a hook earlier in the session checks against its
// own definitions.
func (s *session) analyze(src string) analysis.Result {
	return analysis.Analyze(src, analysis.Options{Env: analysis.EnvFromInterp(s.interp)})
}

// check answers a check frame: static diagnostics and the effect summary
// for the script, without evaluating any of it.
func (s *session) check(f *Frame) {
	s.srv.metrics.Checks.Add(1)
	res := s.analyze(f.Src)
	reply := &Frame{Type: "check", ID: f.ID, True: res.Errors() == 0,
		Effects: res.Effects.Categories}
	for _, d := range res.Diags {
		reply.Diags = append(reply.Diags, d.String())
	}
	if res.Errors() > 0 {
		s.srv.metrics.CheckRejects.Add(1)
	}
	s.fw.Write(reply)
}

// eval runs one request on the session's interpreter, under the server's
// eval semaphore and, when a deadline applies, under a cancel token that
// surfaces in-script as the catchable exception `signal deadline`.
func (s *session) eval(f *Frame) {
	s.srv.sem <- struct{}{}
	s.srv.metrics.Queued.Add(-1) // dispatched: no longer queue depth
	defer func() { <-s.srv.sem }()
	m := &s.srv.metrics
	m.InFlight.Add(1)
	defer m.InFlight.Add(-1)
	m.Evals.Add(1)
	s.sm.evals.Add(1)

	// Pre-admission vetting: with -vet, a script with static errors (a
	// parse failure or a reference to an unregistered $&primitive) is
	// rejected here, before any of it runs.
	if s.srv.cfg.Vet {
		if res := s.analyze(f.Src); res.Errors() > 0 {
			m.Checks.Add(1)
			m.CheckRejects.Add(1)
			exc := []string{"error", "esd", "vet: script rejected by static analysis"}
			for _, d := range res.Filter(analysis.SevError) {
				exc = append(exc, d.String())
			}
			s.fw.Write(&Frame{Type: "error", ID: f.ID, Exception: exc})
			return
		}
	}

	deadline := s.srv.cfg.DefaultDeadline
	if f.DeadlineMS > 0 {
		deadline = time.Duration(f.DeadlineMS) * time.Millisecond
	}
	// The tenant's deadline ceiling clamps both longer requests and
	// requests asking for no deadline at all.
	if t := s.tenant.Load(); t != nil && t.quota.DeadlineCeiling > 0 {
		if deadline <= 0 || deadline > t.quota.DeadlineCeiling {
			deadline = t.quota.DeadlineCeiling
		}
	}
	var out, errb sessionBuffer
	ctx := &core.Ctx{IO: core.NewIOTable(strings.NewReader(""), &out, &errb)}
	if deadline > 0 {
		done := make(chan struct{})
		timer := time.AfterFunc(deadline, func() { close(done) })
		s.interp.SetCancel(done, "deadline")
		defer func() {
			timer.Stop()
			s.interp.ClearCancel()
		}()
	}
	start := time.Now()
	res, err := s.interp.RunString(ctx, f.Src)
	elapsed := time.Since(start)
	// The next request must start clean even if this one left an
	// interrupt latched mid-eval; the deadline token is cleared above.
	s.interp.ClearInterrupt()
	m.Observe(elapsed)

	reply := &Frame{
		ID:     f.ID,
		Stdout: out.String(),
		Stderr: errb.String(),
		MS:     float64(elapsed.Microseconds()) / 1000,
	}
	if err != nil {
		m.Errors.Add(1)
		s.sm.errors.Add(1)
		reply.Type = "error"
		if exc := core.AsException(err); exc != nil {
			reply.Exception = exc.Args.Strings()
			if exc.Name() == "signal" && len(exc.Args) > 1 && exc.Args[1].String() == "deadline" {
				m.Timeouts.Add(1)
				s.sm.timeouts.Add(1)
			}
		} else {
			reply.Exception = []string{"error", "esd", err.Error()}
		}
	} else {
		reply.Type = "result"
		reply.Value = res.Strings()
		reply.True = res.True()
	}
	s.fw.Write(reply)
}
