package server

// One session = one connection = one interpreter = one goroutine.  The
// read loop turns wire frames into mailbox messages; the session
// goroutine — the interpreter's only driver, since core.Interp is not
// safe for concurrent use — drains the mailbox in order.  Asynchronous
// aborts (per-request deadlines) do not need a second driver: they ride
// the interpreter's cooperative cancellation, armed before RunString and
// fired from a timer goroutine that never touches the interpreter.

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"time"

	"es/internal/analysis"
	"es/internal/core"
)

// session is one client connection and the interpreter it owns.
type session struct {
	id     uint64
	srv    *Server
	conn   net.Conn
	interp *core.Interp
	fr     *FrameReader
	fw     *FrameWriter
	mail   chan *Frame   // read loop -> session goroutine
	closed chan struct{} // closed when the session goroutine exits
	sm     sessionMetrics
}

// sessionBuffer collects one request's output.  Pipeline elements and
// background jobs write from their own goroutines, so it locks; a
// background job that outlives its request writes into a buffer nobody
// will read again, which is safe and intentionally lossy (the C shell
// drops output of disowned jobs on a closed terminal the same way).
type sessionBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *sessionBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *sessionBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func newSession(id uint64, srv *Server, conn net.Conn, interp *core.Interp) *session {
	return &session{
		id:     id,
		srv:    srv,
		conn:   conn,
		interp: interp,
		fr:     NewFrameReader(conn, &srv.metrics.BytesIn),
		fw:     NewFrameWriter(conn, &srv.metrics.BytesOut),
		mail:   make(chan *Frame, 8),
		closed: make(chan struct{}),
	}
}

// run drives the session to completion.  It returns when the client says
// bye, the connection drops, or the server drains — in the drain case
// only after every request already in the mailbox has been answered.
func (s *session) run() {
	defer func() {
		close(s.closed)
		s.conn.Close()
		s.srv.metrics.SessionsClosed.Add(1)
		s.srv.dropSession(s.id)
	}()
	go s.readLoop()
	for {
		select {
		case f, ok := <-s.mail:
			if !ok {
				return // client hung up
			}
			if s.dispatch(f) {
				return
			}
		case <-s.srv.drainCh:
			// Finish the work already accepted, then say goodbye.
			for {
				select {
				case f, ok := <-s.mail:
					if !ok {
						return
					}
					if s.dispatch(f) {
						return
					}
					continue
				default:
				}
				break
			}
			s.fw.Write(&Frame{Type: "bye", Reason: "drain"})
			return
		}
	}
}

// readLoop feeds the mailbox until the stream ends.  It never touches the
// interpreter.
func (s *session) readLoop() {
	defer close(s.mail)
	for {
		f, err := s.fr.Read()
		if err != nil {
			return
		}
		select {
		case s.mail <- f:
		case <-s.closed:
			return
		}
	}
}

// dispatch handles one frame; the returned bool means "close the
// session".
func (s *session) dispatch(f *Frame) bool {
	switch f.Type {
	case "eval":
		s.eval(f)
		return false
	case "stats":
		words := append(s.srv.metrics.Words(), s.sm.words(s.id)...)
		s.fw.Write(&Frame{Type: "stats", ID: f.ID, Stats: words})
		return false
	case "snap":
		s.snap(f)
		return false
	case "restore":
		s.restore(f)
		return false
	case "migrate":
		return s.migrate(f)
	case "check":
		s.check(f)
		return false
	case "bye":
		s.fw.Write(&Frame{Type: "bye", Reason: "bye"})
		return true
	default:
		s.fw.Write(&Frame{Type: "error", ID: f.ID,
			Exception: []string{"error", "esd", "unknown frame type: " + f.Type}})
		return false
	}
}

// analyze runs the static analyzer over one script, resolving hooks,
// primitives and variables against this session's interpreter, so a
// script that spoofed a hook earlier in the session checks against its
// own definitions.
func (s *session) analyze(src string) analysis.Result {
	return analysis.Analyze(src, analysis.Options{Env: analysis.EnvFromInterp(s.interp)})
}

// check answers a check frame: static diagnostics and the effect summary
// for the script, without evaluating any of it.
func (s *session) check(f *Frame) {
	s.srv.metrics.Checks.Add(1)
	res := s.analyze(f.Src)
	reply := &Frame{Type: "check", ID: f.ID, True: res.Errors() == 0,
		Effects: res.Effects.Categories}
	for _, d := range res.Diags {
		reply.Diags = append(reply.Diags, d.String())
	}
	if res.Errors() > 0 {
		s.srv.metrics.CheckRejects.Add(1)
	}
	s.fw.Write(reply)
}

// eval runs one request on the session's interpreter, under the server's
// eval semaphore and, when a deadline applies, under a cancel token that
// surfaces in-script as the catchable exception `signal deadline`.
func (s *session) eval(f *Frame) {
	s.srv.sem <- struct{}{}
	defer func() { <-s.srv.sem }()
	m := &s.srv.metrics
	m.InFlight.Add(1)
	defer m.InFlight.Add(-1)
	m.Evals.Add(1)
	s.sm.evals.Add(1)

	// Pre-admission vetting: with -vet, a script with static errors (a
	// parse failure or a reference to an unregistered $&primitive) is
	// rejected here, before any of it runs.
	if s.srv.cfg.Vet {
		if res := s.analyze(f.Src); res.Errors() > 0 {
			m.Checks.Add(1)
			m.CheckRejects.Add(1)
			exc := []string{"error", "esd", "vet: script rejected by static analysis"}
			for _, d := range res.Filter(analysis.SevError) {
				exc = append(exc, d.String())
			}
			s.fw.Write(&Frame{Type: "error", ID: f.ID, Exception: exc})
			return
		}
	}

	deadline := s.srv.cfg.DefaultDeadline
	if f.DeadlineMS > 0 {
		deadline = time.Duration(f.DeadlineMS) * time.Millisecond
	}
	var out, errb sessionBuffer
	ctx := &core.Ctx{IO: core.NewIOTable(strings.NewReader(""), &out, &errb)}
	if deadline > 0 {
		done := make(chan struct{})
		timer := time.AfterFunc(deadline, func() { close(done) })
		s.interp.SetCancel(done, "deadline")
		defer func() {
			timer.Stop()
			s.interp.ClearCancel()
		}()
	}
	start := time.Now()
	res, err := s.interp.RunString(ctx, f.Src)
	elapsed := time.Since(start)
	// The next request must start clean even if this one left an
	// interrupt latched mid-eval; the deadline token is cleared above.
	s.interp.ClearInterrupt()
	m.Observe(elapsed)

	reply := &Frame{
		ID:     f.ID,
		Stdout: out.String(),
		Stderr: errb.String(),
		MS:     float64(elapsed.Microseconds()) / 1000,
	}
	if err != nil {
		m.Errors.Add(1)
		s.sm.errors.Add(1)
		reply.Type = "error"
		if exc := core.AsException(err); exc != nil {
			reply.Exception = exc.Args.Strings()
			if exc.Name() == "signal" && len(exc.Args) > 1 && exc.Args[1].String() == "deadline" {
				m.Timeouts.Add(1)
				s.sm.timeouts.Add(1)
			}
		} else {
			reply.Exception = []string{"error", "esd", err.Error()}
		}
	} else {
		reply.Type = "result"
		reply.Value = res.Strings()
		reply.True = res.True()
	}
	s.fw.Write(reply)
}
