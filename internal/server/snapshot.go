package server

// Session checkpointing and live migration.  A session's definable state
// serializes to an internal/image session image, which makes three
// daemon-level capabilities nearly free:
//
//   - snap/restore frames: a client checkpoints its session, the daemon
//     restarts, and the client restores into a fresh session — restart
//     without session loss.
//
//   - migrate frames: the origin daemon captures the session, replays it
//     into a new session on the target daemon, then degrades itself to a
//     transparent frame relay.  The client keeps its one connection; its
//     evals now run on the target.  Stateless load-balancing for a
//     connection-oriented protocol.
//
//   - pre-baked pools: a Config.NewSession built by NewSessionFromImage
//     restores an image once onto a template and stamps sessions out of
//     it with Spawn, so per-session cost stays one deep copy no matter
//     how much state the image carries.

import (
	"encoding/base64"
	"io"
	"net"

	"es/internal/core"
	"es/internal/image"
)

// NewSessionFromImage returns a Config.NewSession that spawns sessions
// pre-baked from a session image.  The image is restored once, onto a
// private template spawned from base (which supplies the primitives and
// builtins — images carry state, not code); each session is then a cheap
// Spawn of the template.
func NewSessionFromImage(base *core.Interp, img *image.Image) func() (*core.Interp, error) {
	template := base.Spawn()
	img.Restore(template)
	return func() (*core.Interp, error) {
		return template.Spawn(), nil
	}
}

// snap answers with the session's state as a base64 session image.  It
// runs on the session goroutine, so the interpreter is quiescent; no
// meta is stamped, keeping snap → restore → snap byte-identical.
func (s *session) snap(f *Frame) {
	img := image.Capture(s.interp, nil)
	s.srv.metrics.Snapshots.Add(1)
	s.fw.Write(&Frame{Type: "snap", ID: f.ID,
		Image: base64.StdEncoding.EncodeToString(img.Encode())})
}

// restore replaces the session's definable state with the frame's image.
func (s *session) restore(f *Frame) {
	img, err := decodeImageFrame(f)
	if err != nil {
		s.fw.Write(&Frame{Type: "error", ID: f.ID,
			Exception: []string{"error", "esd", err.Error()}})
		return
	}
	img.Restore(s.interp)
	s.srv.metrics.Restores.Add(1)
	s.fw.Write(&Frame{Type: "restore", ID: f.ID, True: true})
}

func decodeImageFrame(f *Frame) (*image.Image, error) {
	data, err := base64.StdEncoding.DecodeString(f.Image)
	if err != nil {
		return nil, err
	}
	return image.Decode(data)
}

// migrate moves the session to the daemon at f.Socket and turns this
// session into a relay.  The returned bool is dispatch's "close the
// session" flag: true once the relay ends.  A failed migration replies
// with an error frame and leaves the session here, untouched.
func (s *session) migrate(f *Frame) bool {
	fail := func(msg string) bool {
		s.fw.Write(&Frame{Type: "error", ID: f.ID,
			Exception: []string{"error", "esd", "migrate: " + msg}})
		return false
	}
	if f.Socket == "" {
		return fail("no target socket")
	}
	if f.Socket == s.srv.cfg.Socket {
		return fail("target is this daemon")
	}
	tconn, err := net.Dial("unix", f.Socket)
	if err != nil {
		return fail(err.Error())
	}
	tfr, tfw := NewClientConn(tconn)
	img := image.Capture(s.interp, nil)
	if err := tfw.Write(&Frame{Type: "restore", ID: f.ID,
		Image: base64.StdEncoding.EncodeToString(img.Encode())}); err != nil {
		tconn.Close()
		return fail(err.Error())
	}
	ack, err := tfr.Read()
	if err != nil {
		tconn.Close()
		return fail(err.Error())
	}
	if ack.Type != "restore" || !ack.True {
		tconn.Close()
		msg := "target refused the session"
		if len(ack.Exception) > 0 {
			msg = ack.Exception[len(ack.Exception)-1]
		}
		return fail(msg)
	}
	s.srv.metrics.Migrations.Add(1)
	s.srv.cfg.Logf("esd: session %d migrated to %s", s.id, f.Socket)
	s.fw.Write(&Frame{Type: "migrate", ID: f.ID, Socket: f.Socket, True: true})
	s.relay(tconn, tfw)
	return true
}

// relay forwards the rest of the session through the target connection:
// client frames out of the mailbox are re-framed to the target, target
// bytes are copied back verbatim (the session goroutine stopped writing
// frames of its own, so raw copy cannot tear a line).  The relay ends
// when either side hangs up or this daemon drains — a drain closes the
// target connection, and the client sees EOF exactly as if its daemon
// had restarted, which is what the snap/restore path is for.
func (s *session) relay(tconn net.Conn, tfw *FrameWriter) {
	defer tconn.Close()
	copied := make(chan struct{})
	go func() {
		defer close(copied)
		n, _ := io.Copy(s.conn, tconn)
		s.srv.metrics.BytesOut.Add(n)
	}()
	for {
		select {
		case f, ok := <-s.mail:
			if !ok {
				tconn.Close()
				<-copied
				return
			}
			if f.Type == "eval" {
				// The target answers this eval; release the local window
				// token and queue-depth slot its admission took.
				s.srv.metrics.Queued.Add(-1)
				s.finishEval()
			}
			if err := tfw.Write(f); err != nil {
				<-copied
				return
			}
		case <-s.srv.drainCh:
			tconn.Close()
			<-copied
			return
		case <-copied:
			return
		}
	}
}
