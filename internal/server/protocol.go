// Package server is the esd serving layer: a concurrent evaluation
// service that drives warm-pooled es interpreters over a unix-domain
// socket.
//
// The paper frames es as an embeddable command language — "a library
// version of es which could be used stand-alone as a shell or linked into
// other programs" — and this package is that library version put behind a
// wire: each connection is a session owning one interpreter (core.Interp
// is not safe for concurrent use) driven by a dedicated goroutine with a
// mailbox, a warm pool keeps session start-up off the hot path, a
// semaphore caps concurrent evaluations, and per-request deadlines
// surface in-script as the catchable exception `signal deadline` via the
// interpreter's cooperative-cancellation boundary checks.
//
// The protocol is newline-delimited JSON, one Frame per line.  Clients
// send eval, stats and bye frames; the server answers with result, error,
// stats and bye frames.  A session that never says hello is served
// serially, exactly as before the fleet front end existed; a hello frame
// may negotiate a pipeline window (several evals in flight, replies
// matched by id, ordering guaranteed only per id) and name a tenant for
// quota accounting.  Cross-session concurrency comes from sessions.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Frame is one protocol message.  Type selects which fields are
// meaningful:
//
//	eval    (client) — Src, optional ID and DeadlineMS
//	result  (server) — ID, Value, True, Stdout, Stderr, MS
//	error   (server) — ID, Exception (the uncaught es exception, one word
//	                   per list term), Stdout, Stderr, MS
//	stats   (client) — ID; (server) — ID, Stats
//	snap    (client) — ID; (server) — ID, Image (the session's state as a
//	                   base64 session image, internal/image format)
//	restore (client) — ID, Image; (server) — ID, True (state replaced)
//	migrate (client) — ID, Socket (another esd's socket path); (server) —
//	                   ID, Socket, True once the session's state lives on
//	                   the target and this daemon has become a transparent
//	                   relay: subsequent frames on the same connection are
//	                   answered by the target
//	check   (client) — ID, Src; (server) — ID, Diags (one word per
//	                   diagnostic), Effects (capability categories the
//	                   script reaches), True when the script carries no
//	                   static errors.  Nothing is evaluated.
//	hello   (client) — optional ID, Tenant (name for quota accounting),
//	                   Window (requested pipeline window); (server) — ID,
//	                   Tenant, Window (the granted window, clamped to the
//	                   server's ceiling), True.  The server never sends a
//	                   hello unsolicited, so clients that predate it see
//	                   only the frame types they always saw.
//	bye     (either) — Reason on the server side ("bye", "drain",
//	                   "quota", "frame too large")
//
// A shed eval — admission control refusing work under overload, or a
// tenant over its in-flight quota — is answered with an error frame whose
// Exception begins `signal overload` (or `signal quota`) and whose
// RetryAfterMS tells the client when a retry is worth attempting.
type Frame struct {
	Type       string   `json:"type"`
	ID         int64    `json:"id,omitempty"`
	Src        string   `json:"src,omitempty"`
	DeadlineMS int64    `json:"deadline_ms,omitempty"`
	Value      []string `json:"value,omitempty"`
	True       bool     `json:"true,omitempty"`
	Exception  []string `json:"exception,omitempty"`
	Stdout     string   `json:"stdout,omitempty"`
	Stderr     string   `json:"stderr,omitempty"`
	MS         float64  `json:"ms,omitempty"`
	Stats      []string `json:"stats,omitempty"`
	Reason     string   `json:"reason,omitempty"`
	Image      string   `json:"image,omitempty"`   // base64 session image
	Socket     string   `json:"socket,omitempty"`  // migrate target
	Diags      []string `json:"diags,omitempty"`   // check: one word per diagnostic
	Effects    []string `json:"effects,omitempty"` // check: capability categories

	Tenant       string `json:"tenant,omitempty"`         // hello: tenant name for quotas
	Window       int    `json:"window,omitempty"`         // hello: requested/granted pipeline window
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"` // error(overload/quota): retry hint
}

// maxFrameBytes bounds one frame line; a client shipping a larger script
// gets an error frame (see ErrFrameTooLarge and the session read loop)
// rather than an unbounded buffer.
const maxFrameBytes = 8 << 20

// ErrFrameTooLarge reports a frame line over maxFrameBytes.  The
// underlying bufio.Scanner cannot resynchronize past the oversized line,
// so the stream is unusable after this error; the session answers with an
// error frame and a bye rather than dying silently.
var ErrFrameTooLarge = fmt.Errorf("frame exceeds %d bytes: %w", maxFrameBytes, bufio.ErrTooLong)

// FrameReader decodes newline-delimited frames, counting wire bytes into
// the given metrics counters (nil counters are skipped; sessions count
// into both the server-wide and the per-listener counter).
type FrameReader struct {
	s  *bufio.Scanner
	in []*atomic.Int64
}

func NewFrameReader(r io.Reader, in ...*atomic.Int64) *FrameReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64<<10), maxFrameBytes)
	return &FrameReader{s: s, in: in}
}

// Read returns the next frame; io.EOF at end of stream, ErrFrameTooLarge
// for a line over the frame-size bound.
func (fr *FrameReader) Read() (*Frame, error) {
	if !fr.s.Scan() {
		if err := fr.s.Err(); err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				return nil, ErrFrameTooLarge
			}
			return nil, err
		}
		return nil, io.EOF
	}
	line := fr.s.Bytes()
	for _, c := range fr.in {
		if c != nil {
			c.Add(int64(len(line) + 1))
		}
	}
	var f Frame
	if err := json.Unmarshal(line, &f); err != nil {
		return nil, fmt.Errorf("bad frame: %w", err)
	}
	return &f, nil
}

// FrameWriter encodes frames one per line.  It serializes writers: the
// session goroutine, the read loop's admission path, and the server's
// drain path may all speak on one connection.
type FrameWriter struct {
	mu  sync.Mutex
	w   io.Writer
	out []*atomic.Int64
}

func NewFrameWriter(w io.Writer, out ...*atomic.Int64) *FrameWriter {
	return &FrameWriter{w: w, out: out}
}

// NewClientConn wraps the client side of an esd connection in frame
// codecs (without wire-byte accounting); esc and tests speak through it.
func NewClientConn(rw io.ReadWriter) (*FrameReader, *FrameWriter) {
	return NewFrameReader(rw, nil), NewFrameWriter(rw, nil)
}

func (fw *FrameWriter) Write(f *Frame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	fw.mu.Lock()
	defer fw.mu.Unlock()
	n, err := fw.w.Write(b)
	for _, c := range fw.out {
		if c != nil {
			c.Add(int64(n))
		}
	}
	return err
}
