package server

import (
	"testing"
	"time"
)

// bucketOf returns the index of the single bucket an Observe(d) call
// increments, by diffing the histogram.
func bucketOf(t *testing.T, d time.Duration) int {
	t.Helper()
	var m Metrics
	m.Observe(d)
	idx := -1
	for k := range m.lat {
		if n := m.lat[k].Load(); n != 0 {
			if idx != -1 || n != 1 {
				t.Fatalf("Observe(%v) incremented more than one bucket", d)
			}
			idx = k
		}
	}
	if idx == -1 {
		t.Fatalf("Observe(%v) incremented no bucket", d)
	}
	return idx
}

// TestObserveBucketRanges pins the documented ranges: bucket 0 is
// [0, 1µs) (with negatives clamped in), bucket k ≥ 1 is [2^(k-1), 2^k)
// microseconds, and the last bucket absorbs the overflow.
func TestObserveBucketRanges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0}, // clamped, not a real bucket skew
		{0, 0},
		{500 * time.Nanosecond, 0},
		{999 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{1999 * time.Nanosecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{7 * time.Microsecond, 3},
		{8 * time.Microsecond, 4},
		{100 * time.Microsecond, 7}, // [64µs, 128µs)
		{time.Millisecond, 10},      // 1000µs ∈ [512µs, 1024µs)
		{8760 * time.Hour, latBuckets - 1}, // a year: far past the last lower edge
	}
	for _, c := range cases {
		if got := bucketOf(t, c.d); got != c.want {
			t.Errorf("Observe(%v): bucket %d, want %d", c.d, got, c.want)
		}
	}
}

// TestQuantileKnownDistribution checks q=0, q=0.5 and q=1 against a
// distribution whose per-bucket placement is known exactly.
func TestQuantileKnownDistribution(t *testing.T) {
	var m Metrics
	// 4 sub-µs, 4 in [2µs,4µs), 2 in [64µs,128µs): n = 10.
	for i := 0; i < 4; i++ {
		m.Observe(100 * time.Nanosecond)
	}
	for i := 0; i < 4; i++ {
		m.Observe(3 * time.Microsecond)
	}
	m.Observe(100 * time.Microsecond)
	m.Observe(90 * time.Microsecond)

	// q=0 is the minimum: the lower edge of the first non-empty bucket
	// (0 here, since sub-µs observations exist) — not that bucket's
	// upper edge as the old formula reported.
	if got := m.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	// q=0.5: rank ceil(0.5·10) = 5, which is the first observation in
	// the [2µs,4µs) bucket; upper bound 4µs.
	if got := m.Quantile(0.5); got != 4*time.Microsecond {
		t.Errorf("Quantile(0.5) = %v, want 4µs", got)
	}
	// q=1: rank 10, the slowest observation, in [64µs,128µs); upper
	// bound 128µs.
	if got := m.Quantile(1); got != 128*time.Microsecond {
		t.Errorf("Quantile(1) = %v, want 128µs", got)
	}
	// Out-of-range q clamps rather than misbehaving.
	if got := m.Quantile(-0.5); got != 0 {
		t.Errorf("Quantile(-0.5) = %v, want 0", got)
	}
	if got := m.Quantile(2); got != 128*time.Microsecond {
		t.Errorf("Quantile(2) = %v, want 128µs", got)
	}
}

// TestQuantileEdges covers the empty histogram and a minimum that does
// not sit in bucket 0.
func TestQuantileEdges(t *testing.T) {
	var m Metrics
	if got := m.Quantile(0.5); got != 0 {
		t.Errorf("Quantile on empty histogram = %v, want 0", got)
	}
	m.Observe(3 * time.Microsecond) // bucket 2: [2µs, 4µs)
	if got := m.Quantile(0); got != 2*time.Microsecond {
		t.Errorf("Quantile(0) = %v, want lower edge 2µs", got)
	}
	if got := m.Quantile(1); got != 4*time.Microsecond {
		t.Errorf("Quantile(1) = %v, want upper edge 4µs", got)
	}
}
