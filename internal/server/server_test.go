package server

// The esd subsystem's test suite, including the acceptance soaks: 100
// concurrent sessions under -race, a 50ms deadline on `while {} {}`
// answered within 1s with the session still usable, and a drain under
// load that completes every in-flight eval.

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"es"
	"es/internal/core"
)

// newTestServer starts a server on a fresh socket; the returned server is
// already accepting.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	template, err := es.New(es.Options{})
	if err != nil {
		t.Fatalf("template shell: %v", err)
	}
	cfg.Socket = filepath.Join(t.TempDir(), "esd.sock")
	cfg.NewSession = func() (*core.Interp, error) {
		return template.Interp().Spawn(), nil
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Drain(10 * time.Second); err != nil {
			t.Logf("cleanup drain: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv
}

type client struct {
	conn net.Conn
	fr   *FrameReader
	fw   *FrameWriter
}

func dial(t *testing.T, srv *Server) *client {
	t.Helper()
	conn, err := net.Dial("unix", srv.cfg.Socket)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	fr, fw := NewClientConn(conn)
	return &client{conn: conn, fr: fr, fw: fw}
}

// eval sends one eval frame and returns the reply.
func (c *client) eval(t *testing.T, src string, deadlineMS int64) *Frame {
	t.Helper()
	if err := c.fw.Write(&Frame{Type: "eval", ID: 1, Src: src, DeadlineMS: deadlineMS}); err != nil {
		t.Fatalf("write eval: %v", err)
	}
	f, err := c.fr.Read()
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	return f
}

func TestEvalRoundTrip(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)
	f := c.eval(t, "echo hello, server", 0)
	if f.Type != "result" || f.Stdout != "hello, server\n" || !f.True {
		t.Fatalf("reply = %+v", f)
	}
	// Rich return values survive the wire.
	f = c.eval(t, "result a b c", 0)
	if f.Type != "result" || strings.Join(f.Value, " ") != "a b c" {
		t.Fatalf("rich result = %+v", f)
	}
	// An uncaught exception comes back as an error frame, list intact.
	f = c.eval(t, "throw flirp 42", 0)
	if f.Type != "error" || strings.Join(f.Exception, " ") != "flirp 42" {
		t.Fatalf("exception reply = %+v", f)
	}
	// The session survives the exception.
	if f = c.eval(t, "result ok", 0); f.Type != "result" {
		t.Fatalf("session unusable after exception: %+v", f)
	}
}

// TestDeadline is the acceptance criterion: `while {} {}` with a 50ms
// deadline answers with a catchable exception frame within 1s, and the
// session remains usable for the next request.
func TestDeadline(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)
	start := time.Now()
	f := c.eval(t, "while {} {}", 50)
	elapsed := time.Since(start)
	if f.Type != "error" || strings.Join(f.Exception, " ") != "signal deadline" {
		t.Fatalf("deadline reply = %+v", f)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline frame took %v, want < 1s", elapsed)
	}
	if f = c.eval(t, "echo still alive", 0); f.Type != "result" || f.Stdout != "still alive\n" {
		t.Fatalf("session unusable after deadline: %+v", f)
	}
	if got := srv.Metrics().Timeouts.Load(); got != 1 {
		t.Errorf("timeouts counter = %d, want 1", got)
	}
}

func TestDeadlineCatchableInScript(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)
	f := c.eval(t, "catch @ e {result caught $e} {while {} {}}", 50)
	if f.Type != "result" || strings.Join(f.Value, " ") != "caught signal deadline" {
		t.Fatalf("catch reply = %+v", f)
	}
}

func TestDefaultDeadlineFromConfig(t *testing.T) {
	srv := newTestServer(t, Config{DefaultDeadline: 50 * time.Millisecond})
	c := dial(t, srv)
	f := c.eval(t, "while {} {}", 0)
	if f.Type != "error" || strings.Join(f.Exception, " ") != "signal deadline" {
		t.Fatalf("default deadline reply = %+v", f)
	}
}

func TestSessionIsolation(t *testing.T) {
	srv := newTestServer(t, Config{})
	a, b := dial(t, srv), dial(t, srv)
	if f := a.eval(t, "x = from-session-a; fn greet {echo hi}", 0); f.Type != "result" {
		t.Fatalf("assign: %+v", f)
	}
	// State set in one session is invisible to another: sessions are
	// spawned, not shared.
	if f := b.eval(t, "echo $#x $#fn-greet", 0); f.Type != "result" || f.Stdout != "0 0\n" {
		t.Fatalf("leak across sessions: %+v", f)
	}
	// But within a session, state persists across requests.
	if f := a.eval(t, "echo $x", 0); f.Stdout != "from-session-a\n" {
		t.Fatalf("state lost within session: %+v", f)
	}
}

func TestStatsFrameAndServerstatsPrim(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)
	c.eval(t, "echo warm", 0)

	if err := c.fw.Write(&Frame{Type: "stats", ID: 7}); err != nil {
		t.Fatal(err)
	}
	f, err := c.fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != "stats" || f.ID != 7 {
		t.Fatalf("stats reply = %+v", f)
	}
	joined := strings.Join(f.Stats, " ")
	for _, want := range []string{"sessions_total:", "evals:", "timeouts:", "p50_us:", "p99_us:", "bytes_in:", "session_evals:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("stats missing %q: %v", want, f.Stats)
		}
	}

	// The same counters are scriptable inside a session via the
	// $&serverstats primitive (wired through prim.SetServerStats).
	r := c.eval(t, "result <>{serverstats}", 0)
	if r.Type != "result" {
		t.Fatalf("serverstats eval = %+v", r)
	}
	found := false
	for _, w := range r.Value {
		if strings.HasPrefix(w, "evals:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("$&serverstats returned %v", r.Value)
	}
}

func TestByeFrame(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)
	if err := c.fw.Write(&Frame{Type: "bye"}); err != nil {
		t.Fatal(err)
	}
	f, err := c.fr.Read()
	if err != nil || f.Type != "bye" {
		t.Fatalf("bye reply = %+v, %v", f, err)
	}
	waitClosed(t, srv)
}

// waitClosed waits for the server to observe all sessions gone.
func waitClosed(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.openSessions() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d sessions still open", srv.openSessions())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSoak100Sessions is the concurrency acceptance soak: 100 concurrent
// sessions, several requests each, zero failed frames.  Run under -race
// by scripts/check.sh -race.
func TestSoak100Sessions(t *testing.T) {
	srv := newTestServer(t, Config{PoolSize: 8})
	const sessions = 100
	const evalsPer = 5
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for k := 0; k < sessions; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			conn, err := net.Dial("unix", srv.cfg.Socket)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			fr, fw := NewClientConn(conn)
			for n := 0; n < evalsPer; n++ {
				want := fmt.Sprintf("s%d-%d", k, n)
				if err := fw.Write(&Frame{Type: "eval", ID: int64(n), Src: "echo " + want}); err != nil {
					errs <- fmt.Errorf("session %d write: %w", k, err)
					return
				}
				f, err := fr.Read()
				if err != nil {
					errs <- fmt.Errorf("session %d read: %w", k, err)
					return
				}
				if f.Type != "result" || f.Stdout != want+"\n" || f.ID != int64(n) {
					errs <- fmt.Errorf("session %d bad frame: %+v", k, f)
					return
				}
			}
			fw.Write(&Frame{Type: "bye"})
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := srv.Metrics()
	if got := m.Evals.Load(); got != sessions*evalsPer {
		t.Errorf("evals = %d, want %d", got, sessions*evalsPer)
	}
	if got := m.SessionsOpened.Load(); got != sessions {
		t.Errorf("sessions_total = %d, want %d", got, sessions)
	}
	if got := m.Errors.Load(); got != 0 {
		t.Errorf("errors = %d, want 0", got)
	}
}

// TestDrainUnderLoad: a drain that starts while evals are in flight
// completes every one of them, says bye, and returns cleanly — the
// SIGTERM acceptance criterion, minus the process wrapper (cmd/esd maps
// SIGTERM onto exactly this call).
func TestDrainUnderLoad(t *testing.T) {
	srv := newTestServer(t, Config{MaxConcurrent: 32})
	const sessions = 16
	type outcome struct {
		result *Frame
		bye    *Frame
		err    error
	}
	results := make(chan outcome, sessions)
	var started sync.WaitGroup
	for k := 0; k < sessions; k++ {
		started.Add(1)
		go func() {
			conn, err := net.Dial("unix", srv.cfg.Socket)
			if err != nil {
				started.Done()
				results <- outcome{err: err}
				return
			}
			defer conn.Close()
			fr, fw := NewClientConn(conn)
			err = fw.Write(&Frame{Type: "eval", ID: 1, Src: "sleep 0.3; echo survived"})
			started.Done()
			if err != nil {
				results <- outcome{err: err}
				return
			}
			var o outcome
			o.result, o.err = fr.Read()
			if o.err == nil {
				// The drain should follow with a goodbye.
				o.bye, _ = fr.Read()
			}
			results <- o
		}()
	}
	started.Wait()
	time.Sleep(50 * time.Millisecond) // let the evals reach the interpreter
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for k := 0; k < sessions; k++ {
		o := <-results
		if o.err != nil {
			t.Errorf("client: %v", o.err)
			continue
		}
		if o.result.Type != "result" || o.result.Stdout != "survived\n" {
			t.Errorf("in-flight eval not completed: %+v", o.result)
		}
		if o.bye == nil || o.bye.Type != "bye" || o.bye.Reason != "drain" {
			t.Errorf("no drain goodbye: %+v", o.bye)
		}
	}
	// New connections are refused once draining.
	if _, err := net.Dial("unix", srv.cfg.Socket); err == nil {
		// The socket file may still accept at the OS level before close
		// propagates; a served bye/drain is also acceptable.  Only a
		// successfully evaluated request would be a bug, and the listener
		// is closed, so nothing will answer.
		t.Log("dial after drain succeeded (listener backlog); tolerated")
	}
}

// TestDrainForceClosesStuckSessions: an eval with no deadline spinning
// forever cannot hold the drain hostage past its timeout — the server
// cancels it cooperatively (`signal shutdown`) and reports the forced
// close.
func TestDrainForceClosesStuckSessions(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)
	if err := c.fw.Write(&Frame{Type: "eval", ID: 1, Src: "while {} {}"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the eval start spinning
	start := time.Now()
	err := srv.Drain(200 * time.Millisecond)
	if err == nil {
		t.Fatal("Drain of a stuck session returned nil, want forced-close error")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("forced drain took %v", el)
	}
	waitClosed(t, srv)
}

func TestUnknownFrameType(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := dial(t, srv)
	if err := c.fw.Write(&Frame{Type: "flirp", ID: 3}); err != nil {
		t.Fatal(err)
	}
	f, err := c.fr.Read()
	if err != nil || f.Type != "error" || f.ID != 3 {
		t.Fatalf("unknown frame reply = %+v, %v", f, err)
	}
	// Session still works afterwards.
	if f := c.eval(t, "result ok", 0); f.Type != "result" {
		t.Fatalf("session died after bad frame: %+v", f)
	}
}
