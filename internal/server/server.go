package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"es/internal/core"
	"es/internal/prim"
)

// Config configures a Server.
type Config struct {
	// Socket is the unix-domain socket path to serve on.
	Socket string

	// PoolSize is how many warm interpreters to keep pre-spawned
	// (default 4).
	PoolSize int

	// MaxConcurrent caps simultaneously running evaluations across all
	// sessions (default GOMAXPROCS); sessions beyond the cap queue on the
	// semaphore in arrival order.
	MaxConcurrent int

	// MaxWindow is the largest per-session pipeline window a hello frame
	// can be granted (default 32).  Sessions that never say hello run
	// with a window of 1 — the pre-pipelining serial behavior.
	MaxWindow int

	// DefaultDeadline applies to eval frames that do not carry their own
	// deadline_ms; zero means no server-imposed deadline.
	DefaultDeadline time.Duration

	// Vet makes every eval frame pass static analysis before admission:
	// a script with static errors (parse failure, unregistered $&primitive)
	// is answered with an error frame and never evaluated.
	Vet bool

	// Tenants maps tenant names (from the hello frame) to their quotas.
	// Tenants absent from the map are unlimited but still accounted.
	Tenants map[string]TenantQuota

	// AdmitEval, when set, is consulted once per arriving eval frame
	// before it is queued; a non-nil Overload sheds the eval with a
	// retryable `signal overload` error frame.  internal/frontend wires
	// its p99/queue-depth controller here.
	AdmitEval func() *Overload

	// NewSession builds one detached session interpreter.  The usual
	// implementation spawns from a warm template:
	//
	//	sh, _ := es.New(es.Options{...})         // once
	//	cfg.NewSession = func() (*core.Interp, error) {
	//		return sh.Interp().Spawn(), nil       // per session
	//	}
	NewSession func() (*core.Interp, error)

	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// Overload is an admission controller's verdict when it refuses an eval:
// the client sees an error frame `signal <Signal> <Reason>` carrying
// RetryAfterMS as a retry hint.
type Overload struct {
	Signal       string // "overload" (shed) or "quota" (tenant ceiling)
	Reason       string
	RetryAfterMS int64
}

// Server is a concurrent es evaluation daemon.
type Server struct {
	cfg     Config
	ln      net.Listener
	lock    *os.File // flock-held sentinel next to the unix socket
	unixLS  *ListenerStats
	pool    *pool
	sem     chan struct{}
	metrics Metrics
	tenants *tenantSet

	drainCh   chan struct{} // closed when draining starts
	draining  atomic.Bool
	drainOnce sync.Once

	mu       sync.Mutex
	extra    []net.Listener // TCP/TLS listeners attached by the front end
	sessions map[uint64]*session
	nextID   atomic.Uint64
	wg       sync.WaitGroup // one per session goroutine
	lnWG     sync.WaitGroup // one per accept goroutine on extra listeners
}

// New builds a Server and wires $&serverstats: scripts evaluated anywhere
// in this process report this server's counters (the most recently
// created server wins, matching the one-daemon-per-process deployment).
func New(cfg Config) (*Server, error) {
	if cfg.NewSession == nil {
		return nil, errors.New("server: Config.NewSession is required")
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 4
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = 32
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:      cfg,
		pool:     newPool(cfg.PoolSize, cfg.NewSession),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		tenants:  newTenantSet(cfg.Tenants),
		drainCh:  make(chan struct{}),
		sessions: make(map[uint64]*session),
	}
	prim.SetServerStats(s.Stats)
	return s, nil
}

// admitEval decides one arriving eval's fate before it is queued: nil
// admits it; a non-nil Overload sheds it with a retryable error frame.
// Tenant in-flight quotas are checked first (they are the tighter,
// attributable signal), then the pluggable controller.
func (s *Server) admitEval(t *tenantState) *Overload {
	if t != nil && t.quota.MaxInFlight > 0 && t.inflight.Load() >= int64(t.quota.MaxInFlight) {
		s.metrics.QuotaRejects.Add(1)
		return &Overload{Signal: "quota",
			Reason:       "tenant " + t.name + " in-flight quota exhausted",
			RetryAfterMS: 100}
	}
	if s.cfg.AdmitEval != nil {
		if ov := s.cfg.AdmitEval(); ov != nil {
			s.metrics.Sheds.Add(1)
			return ov
		}
	}
	return nil
}

// Listen binds the unix socket, replacing a stale socket file left by a
// dead daemon.  Takeover is guarded by an exclusive flock on a sentinel
// file next to the socket: two daemons racing for the same stale socket
// would otherwise both pass the liveness dial check and the loser's
// Listen would silently unlink the winner's freshly bound socket.  The
// kernel drops the lock when the owner dies, so a crashed daemon never
// wedges the path.
func (s *Server) Listen() error {
	lock, err := os.OpenFile(s.cfg.Socket+".lock", os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return fmt.Errorf("server: %s: daemon already running (lock held)", s.cfg.Socket)
	}
	if fi, err := os.Stat(s.cfg.Socket); err == nil && fi.Mode()&os.ModeSocket != 0 {
		if c, err := net.Dial("unix", s.cfg.Socket); err == nil {
			c.Close()
			lock.Close()
			return fmt.Errorf("server: %s: daemon already running", s.cfg.Socket)
		}
		os.Remove(s.cfg.Socket)
	}
	ln, err := net.Listen("unix", s.cfg.Socket)
	if err != nil {
		lock.Close()
		return err
	}
	s.ln = ln
	s.lock = lock
	s.unixLS = s.metrics.RegisterListener("unix")
	s.cfg.Logf("esd: listening on %s (pool=%d max=%d window=%d)",
		s.cfg.Socket, s.cfg.PoolSize, s.cfg.MaxConcurrent, s.cfg.MaxWindow)
	return nil
}

// Serve accepts sessions until the listener closes; it returns nil when
// the server is draining.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.startSession(conn, s.unixLS)
	}
}

// AddListener attaches an extra accept surface — a TCP or TLS listener
// bound by internal/frontend — served by `accepts` parallel accept
// goroutines (accept sharding keeps a burst of handshakes from
// serializing behind one goroutine's session setup).  The listener is
// closed when the server drains.
func (s *Server) AddListener(ln net.Listener, name string, accepts int) *ListenerStats {
	if accepts < 1 {
		accepts = 1
	}
	ls := s.metrics.RegisterListener(name)
	s.mu.Lock()
	s.extra = append(s.extra, ln)
	draining := s.draining.Load()
	s.mu.Unlock()
	if draining {
		ln.Close()
		return ls
	}
	s.cfg.Logf("esd: listening on %s/%s (accepts=%d)", name, ln.Addr(), accepts)
	for k := 0; k < accepts; k++ {
		s.lnWG.Add(1)
		go func() {
			defer s.lnWG.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				s.startSession(conn, ls)
			}
		}()
	}
	return ls
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

func (s *Server) startSession(conn net.Conn, ls *ListenerStats) {
	interp, err := s.pool.get()
	if err != nil {
		fw := NewFrameWriter(conn, &s.metrics.BytesOut)
		fw.Write(&Frame{Type: "error", Exception: []string{"error", "esd", err.Error()}})
		conn.Close()
		return
	}
	id := s.nextID.Add(1)
	sess := newSession(id, s, conn, interp, ls)
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		sess.fw.Write(&Frame{Type: "bye", Reason: "drain"})
		conn.Close()
		return
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.metrics.SessionsOpened.Add(1)
	if ls != nil {
		ls.Sessions.Add(1)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		sess.run()
	}()
}

// dropSession forgets a finished session.
func (s *Server) dropSession(id uint64) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

// Drain performs a graceful shutdown: stop accepting, let every session
// answer the requests it has already read, then say bye and close.  It
// returns nil once all sessions have exited.  If timeout is positive and
// sessions are still busy when it expires — an eval with no deadline
// stuck in a loop, say — their interpreters are cooperatively cancelled
// (`signal shutdown`), their connections closed, and Drain reports an
// error.  Drain is idempotent; concurrent callers all wait.
func (s *Server) Drain(timeout time.Duration) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
		if s.ln != nil {
			s.ln.Close()
		}
		s.mu.Lock()
		extra := append([]net.Listener(nil), s.extra...)
		s.mu.Unlock()
		for _, ln := range extra {
			ln.Close()
		}
		s.cfg.Logf("esd: draining (%d sessions open)", s.openSessions())
	})
	done := make(chan struct{})
	go func() {
		s.lnWG.Wait()
		s.wg.Wait()
		close(done)
	}()
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case <-done:
		s.pool.close()
		s.releaseLock()
		s.cfg.Logf("esd: drain complete")
		return nil
	case <-timeoutCh:
		s.forceClose()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
		}
		s.pool.close()
		s.releaseLock()
		return fmt.Errorf("server: drain timed out after %v; sessions force-closed", timeout)
	}
}

// releaseLock lets go of the socket-takeover sentinel; the kernel would
// drop the flock at process exit anyway, this just tidies the in-process
// (tests, embedders) lifecycle.
func (s *Server) releaseLock() {
	if s.lock != nil {
		s.lock.Close()
		s.lock = nil
	}
}

// forceClose aborts the sessions that outlived the drain timeout: their
// in-flight evals are cancelled at the next command boundary and their
// connections closed under them.
func (s *Server) forceClose() {
	closed := make(chan struct{})
	close(closed)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		sess.interp.SetCancel(closed, "shutdown")
		sess.conn.Close()
	}
}

func (s *Server) openSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Stats snapshots the server-wide counters as name:value words: the
// global counter set, per-listener transport counters, then per-tenant
// gauges.
func (s *Server) Stats() []string {
	return append(s.metrics.Words(), s.tenants.words()...)
}

// Metrics exposes the raw counter set (tests and embedders).
func (s *Server) Metrics() *Metrics { return &s.metrics }
