package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"es/internal/core"
	"es/internal/prim"
)

// Config configures a Server.
type Config struct {
	// Socket is the unix-domain socket path to serve on.
	Socket string

	// PoolSize is how many warm interpreters to keep pre-spawned
	// (default 4).
	PoolSize int

	// MaxConcurrent caps simultaneously running evaluations across all
	// sessions (default GOMAXPROCS); sessions beyond the cap queue on the
	// semaphore in arrival order.
	MaxConcurrent int

	// DefaultDeadline applies to eval frames that do not carry their own
	// deadline_ms; zero means no server-imposed deadline.
	DefaultDeadline time.Duration

	// Vet makes every eval frame pass static analysis before admission:
	// a script with static errors (parse failure, unregistered $&primitive)
	// is answered with an error frame and never evaluated.
	Vet bool

	// NewSession builds one detached session interpreter.  The usual
	// implementation spawns from a warm template:
	//
	//	sh, _ := es.New(es.Options{...})         // once
	//	cfg.NewSession = func() (*core.Interp, error) {
	//		return sh.Interp().Spawn(), nil       // per session
	//	}
	NewSession func() (*core.Interp, error)

	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// Server is a concurrent es evaluation daemon.
type Server struct {
	cfg     Config
	ln      net.Listener
	pool    *pool
	sem     chan struct{}
	metrics Metrics

	drainCh   chan struct{} // closed when draining starts
	draining  atomic.Bool
	drainOnce sync.Once

	mu       sync.Mutex
	sessions map[uint64]*session
	nextID   atomic.Uint64
	wg       sync.WaitGroup // one per session goroutine
}

// New builds a Server and wires $&serverstats: scripts evaluated anywhere
// in this process report this server's counters (the most recently
// created server wins, matching the one-daemon-per-process deployment).
func New(cfg Config) (*Server, error) {
	if cfg.NewSession == nil {
		return nil, errors.New("server: Config.NewSession is required")
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 4
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:      cfg,
		pool:     newPool(cfg.PoolSize, cfg.NewSession),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		drainCh:  make(chan struct{}),
		sessions: make(map[uint64]*session),
	}
	prim.SetServerStats(s.Stats)
	return s, nil
}

// Listen binds the unix socket, replacing a stale socket file left by a
// dead daemon.
func (s *Server) Listen() error {
	if fi, err := os.Stat(s.cfg.Socket); err == nil && fi.Mode()&os.ModeSocket != 0 {
		if c, err := net.Dial("unix", s.cfg.Socket); err == nil {
			c.Close()
			return fmt.Errorf("server: %s: daemon already running", s.cfg.Socket)
		}
		os.Remove(s.cfg.Socket)
	}
	ln, err := net.Listen("unix", s.cfg.Socket)
	if err != nil {
		return err
	}
	s.ln = ln
	s.cfg.Logf("esd: listening on %s (pool=%d max=%d)",
		s.cfg.Socket, s.cfg.PoolSize, s.cfg.MaxConcurrent)
	return nil
}

// Serve accepts sessions until the listener closes; it returns nil when
// the server is draining.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.startSession(conn)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

func (s *Server) startSession(conn net.Conn) {
	interp, err := s.pool.get()
	if err != nil {
		fw := NewFrameWriter(conn, &s.metrics.BytesOut)
		fw.Write(&Frame{Type: "error", Exception: []string{"error", "esd", err.Error()}})
		conn.Close()
		return
	}
	id := s.nextID.Add(1)
	sess := newSession(id, s, conn, interp)
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		sess.fw.Write(&Frame{Type: "bye", Reason: "drain"})
		conn.Close()
		return
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.metrics.SessionsOpened.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		sess.run()
	}()
}

// dropSession forgets a finished session.
func (s *Server) dropSession(id uint64) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

// Drain performs a graceful shutdown: stop accepting, let every session
// answer the requests it has already read, then say bye and close.  It
// returns nil once all sessions have exited.  If timeout is positive and
// sessions are still busy when it expires — an eval with no deadline
// stuck in a loop, say — their interpreters are cooperatively cancelled
// (`signal shutdown`), their connections closed, and Drain reports an
// error.  Drain is idempotent; concurrent callers all wait.
func (s *Server) Drain(timeout time.Duration) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
		if s.ln != nil {
			s.ln.Close()
		}
		s.cfg.Logf("esd: draining (%d sessions open)", s.openSessions())
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case <-done:
		s.pool.close()
		s.cfg.Logf("esd: drain complete")
		return nil
	case <-timeoutCh:
		s.forceClose()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
		}
		s.pool.close()
		return fmt.Errorf("server: drain timed out after %v; sessions force-closed", timeout)
	}
}

// forceClose aborts the sessions that outlived the drain timeout: their
// in-flight evals are cancelled at the next command boundary and their
// connections closed under them.
func (s *Server) forceClose() {
	closed := make(chan struct{})
	close(closed)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		sess.interp.SetCancel(closed, "shutdown")
		sess.conn.Close()
	}
}

func (s *Server) openSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Stats snapshots the server-wide counters as name:value words.
func (s *Server) Stats() []string { return s.metrics.Words() }

// Metrics exposes the raw counter set (tests and embedders).
func (s *Server) Metrics() *Metrics { return &s.metrics }
