package server

// Server observability, in the same counter idiom as internal/cache:
// plain atomics snapshotted on demand, never sampled behind a lock on the
// hot path.  Latency is a fixed power-of-two histogram in microseconds,
// so p50/p99 are one pass over 40 counters with bounded (~2x) bucket
// error — the classic serving-histogram trade.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// latBuckets is the histogram size.  Bucket 0 counts sub-microsecond
// evals — the interval [0µs, 1µs) — and bucket k for k ≥ 1 counts
// [2^(k-1), 2^k) microseconds; the final bucket also absorbs anything
// slower than its lower edge, which is already past an hour.
const latBuckets = 40

// Metrics is the server-wide counter set.  All fields are safe for
// concurrent use.
type Metrics struct {
	SessionsOpened atomic.Int64
	SessionsClosed atomic.Int64
	Evals          atomic.Int64 // eval frames processed
	Errors         atomic.Int64 // evals that raised an uncaught exception
	Timeouts       atomic.Int64 // the subset of Errors that were `signal deadline`
	InFlight       atomic.Int64 // evals currently holding the semaphore
	Checks         atomic.Int64 // scripts statically analyzed (check frames + -vet pre-checks)
	CheckRejects   atomic.Int64 // the subset with static errors
	Snapshots      atomic.Int64 // snap frames served
	Restores       atomic.Int64 // restore frames applied
	Migrations     atomic.Int64 // sessions handed to another daemon
	Queued         atomic.Int64 // evals admitted but not yet running (the dispatch-queue depth)
	Sheds          atomic.Int64 // evals refused by admission control (`signal overload`)
	QuotaRejects   atomic.Int64 // evals/sessions refused by tenant quotas (`signal quota`)
	BytesIn        atomic.Int64
	BytesOut       atomic.Int64

	lat [latBuckets]atomic.Int64

	lmu       sync.Mutex
	listeners []*ListenerStats
}

// ListenerStats is the per-listener slice of the transport counters: one
// per accept surface (unix, tcp, tls), registered by the serving layer
// and folded into Words after the globals.
type ListenerStats struct {
	Name     string
	Sessions atomic.Int64
	BytesIn  atomic.Int64
	BytesOut atomic.Int64
}

// RegisterListener adds (or returns the existing) per-listener counter
// set under name.
func (m *Metrics) RegisterListener(name string) *ListenerStats {
	m.lmu.Lock()
	defer m.lmu.Unlock()
	for _, ls := range m.listeners {
		if ls.Name == name {
			return ls
		}
	}
	ls := &ListenerStats{Name: name}
	m.listeners = append(m.listeners, ls)
	return ls
}

// Observe records one eval's wall-clock latency.  Sub-microsecond
// evals land in bucket 0; negative durations (a clock stepped backwards
// mid-eval) are clamped there too rather than skewing a real bucket.
func (m *Metrics) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	k := 0
	for us > 0 && k < latBuckets-1 {
		us >>= 1
		k++
	}
	m.lat[k].Add(1)
}

// bucketLower and bucketUpper are the documented edges of bucket k:
// [0, 1µs) for bucket 0, [2^(k-1), 2^k) µs for k ≥ 1.
func bucketLower(k int) time.Duration {
	if k == 0 {
		return 0
	}
	return time.Duration(int64(1)<<uint(k-1)) * time.Microsecond
}

func bucketUpper(k int) time.Duration {
	return time.Duration(int64(1)<<uint(k)) * time.Microsecond
}

// Quantile returns a bound on the q-quantile (q clamped to [0,1]) of
// observed latencies; zero when nothing has been observed.  For q > 0
// it reports the upper edge of the bucket holding the ceil(q·n)-th
// fastest observation — an upper bound with the histogram's ~2x
// resolution.  q = 0 asks for the minimum, so it reports the lower edge
// of the first non-empty bucket instead: the old rank formula returned
// that bucket's upper edge, claiming a "minimum" larger than an
// observation that was actually made.
func (m *Metrics) Quantile(q float64) time.Duration {
	return QuantileOfCounts(m.Buckets(), q)
}

// Buckets snapshots the latency histogram counts, bucket edges as
// documented above.  Controllers that want a sliding window keep the
// previous snapshot and take the difference.
func (m *Metrics) Buckets() []int64 {
	counts := make([]int64, latBuckets)
	for k := range m.lat {
		counts[k] = m.lat[k].Load()
	}
	return counts
}

// QuantileOfCounts is Quantile over an arbitrary count vector with the
// same bucket edges — the piece admission controllers run over an
// interval delta of Buckets rather than the lifetime histogram.
func QuantileOfCounts(counts []int64, q float64) time.Duration {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q <= 0 {
		for k, c := range counts {
			if c > 0 {
				return bucketLower(k)
			}
		}
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank > total {
		rank = total
	}
	var seen int64
	for k, c := range counts {
		seen += c
		if seen >= rank {
			return bucketUpper(k)
		}
	}
	return bucketUpper(len(counts) - 1)
}

// Words renders the counters as name:value words, the wire/script surface
// shared by the stats frame and the $&serverstats primitive (the same
// shape as $&cachestats).  The order is fixed so output is diffable.
func (m *Metrics) Words() []string {
	open := m.SessionsOpened.Load() - m.SessionsClosed.Load()
	words := []string{
		fmt.Sprintf("sessions_open:%d", open),
		fmt.Sprintf("sessions_total:%d", m.SessionsOpened.Load()),
		fmt.Sprintf("evals:%d", m.Evals.Load()),
		fmt.Sprintf("errors:%d", m.Errors.Load()),
		fmt.Sprintf("timeouts:%d", m.Timeouts.Load()),
		fmt.Sprintf("inflight:%d", m.InFlight.Load()),
		fmt.Sprintf("checks:%d", m.Checks.Load()),
		fmt.Sprintf("check_rejects:%d", m.CheckRejects.Load()),
		fmt.Sprintf("snapshots:%d", m.Snapshots.Load()),
		fmt.Sprintf("restores:%d", m.Restores.Load()),
		fmt.Sprintf("migrations:%d", m.Migrations.Load()),
		fmt.Sprintf("queued:%d", m.Queued.Load()),
		fmt.Sprintf("sheds:%d", m.Sheds.Load()),
		fmt.Sprintf("quota_rejects:%d", m.QuotaRejects.Load()),
		fmt.Sprintf("bytes_in:%d", m.BytesIn.Load()),
		fmt.Sprintf("bytes_out:%d", m.BytesOut.Load()),
		fmt.Sprintf("p50_us:%d", m.Quantile(0.50).Microseconds()),
		fmt.Sprintf("p99_us:%d", m.Quantile(0.99).Microseconds()),
	}
	m.lmu.Lock()
	listeners := append([]*ListenerStats(nil), m.listeners...)
	m.lmu.Unlock()
	for _, ls := range listeners {
		words = append(words,
			fmt.Sprintf("lst_%s_sessions:%d", ls.Name, ls.Sessions.Load()),
			fmt.Sprintf("lst_%s_bytes_in:%d", ls.Name, ls.BytesIn.Load()),
			fmt.Sprintf("lst_%s_bytes_out:%d", ls.Name, ls.BytesOut.Load()),
		)
	}
	return words
}

// sessionMetrics is the per-session slice of the same counters, reported
// in a session's stats frame alongside the globals.
type sessionMetrics struct {
	evals    atomic.Int64
	errors   atomic.Int64
	timeouts atomic.Int64
}

func (sm *sessionMetrics) words(id uint64) []string {
	return []string{
		fmt.Sprintf("session:%d", id),
		fmt.Sprintf("session_evals:%d", sm.evals.Load()),
		fmt.Sprintf("session_errors:%d", sm.errors.Load()),
		fmt.Sprintf("session_timeouts:%d", sm.timeouts.Load()),
	}
}
