package frontend

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"es"
	"es/internal/core"
	"es/internal/server"
)

// newFrontend starts a Frontend on a fresh unix socket plus whatever the
// config adds; the returned frontend is already serving.
func newFrontend(t *testing.T, cfg Config) *Frontend {
	t.Helper()
	template, err := es.New(es.Options{})
	if err != nil {
		t.Fatalf("template shell: %v", err)
	}
	cfg.Server.Socket = filepath.Join(t.TempDir(), "esd.sock")
	cfg.Server.NewSession = func() (*core.Interp, error) {
		return template.Interp().Spawn(), nil
	}
	fe, err := New(cfg)
	if err != nil {
		t.Fatalf("frontend.New: %v", err)
	}
	if err := fe.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- fe.Serve() }()
	t.Cleanup(func() {
		if err := fe.Drain(10 * time.Second); err != nil {
			t.Logf("cleanup drain: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return fe
}

type client struct {
	conn net.Conn
	fr   *server.FrameReader
	fw   *server.FrameWriter
}

func dialNet(t *testing.T, network, addr string) *client {
	t.Helper()
	conn, err := net.Dial(network, addr)
	return dialConn(t, conn, err)
}

func dialConn(t *testing.T, conn net.Conn, err error) *client {
	t.Helper()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	fr, fw := server.NewClientConn(conn)
	return &client{conn: conn, fr: fr, fw: fw}
}

func (c *client) eval(t *testing.T, id int64, src string) *server.Frame {
	t.Helper()
	if err := c.fw.Write(&server.Frame{Type: "eval", ID: id, Src: src}); err != nil {
		t.Fatalf("write eval: %v", err)
	}
	f, err := c.fr.Read()
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	return f
}

func TestTCPServing(t *testing.T) {
	fe := newFrontend(t, Config{TCP: "127.0.0.1:0", Accepts: 3})
	addr := fe.TCPAddr()
	if addr == "" {
		t.Fatal("no bound TCP address")
	}
	c := dialNet(t, "tcp", addr)
	if f := c.eval(t, 1, "echo over tcp"); f.Type != "result" || f.Stdout != "over tcp\n" {
		t.Fatalf("tcp eval = %+v", f)
	}
	// The unix socket serves alongside.
	u := dialNet(t, "unix", fe.Socket())
	if f := u.eval(t, 1, "result unix-too"); f.Type != "result" || f.Value[0] != "unix-too" {
		t.Fatalf("unix eval = %+v", f)
	}
}

// TestTCPManySessions exercises accept sharding: a burst of concurrent
// TCP sessions all served, counted under the tcp listener's stats.
func TestTCPManySessions(t *testing.T) {
	fe := newFrontend(t, Config{TCP: "127.0.0.1:0", Accepts: 4})
	addr := fe.TCPAddr()
	const sessions = 32
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for k := 0; k < sessions; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			fr, fw := server.NewClientConn(conn)
			want := fmt.Sprintf("s%d", k)
			if err := fw.Write(&server.Frame{Type: "eval", ID: 1, Src: "echo " + want}); err != nil {
				errs <- err
				return
			}
			f, err := fr.Read()
			if err != nil || f.Type != "result" || f.Stdout != want+"\n" {
				errs <- fmt.Errorf("session %d: %+v, %v", k, f, err)
				return
			}
			fw.Write(&server.Frame{Type: "bye"})
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	joined := strings.Join(fe.Server().Stats(), " ")
	if !strings.Contains(joined, fmt.Sprintf("lst_tcp_sessions:%d", sessions)) {
		t.Errorf("per-listener session count missing: %s", joined)
	}
}

// selfSignedCert writes a PEM cert/key pair for 127.0.0.1 into dir.
func selfSignedCert(t *testing.T, dir string) (certFile, keyFile string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "esd-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile,
		pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile,
		pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	return certFile, keyFile
}

func TestTLSServing(t *testing.T) {
	dir := t.TempDir()
	certFile, keyFile := selfSignedCert(t, dir)
	fe := newFrontend(t, Config{TLS: "127.0.0.1:0", CertFile: certFile, KeyFile: keyFile})
	addr := fe.TLSAddr()
	if addr == "" {
		t.Fatal("no bound TLS address")
	}
	pemBytes, err := os.ReadFile(certFile)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pemBytes) {
		t.Fatal("bad test cert")
	}
	conn, err := tls.Dial("tcp", addr, &tls.Config{RootCAs: pool, ServerName: "127.0.0.1"})
	c := dialConn(t, conn, err)
	if f := c.eval(t, 1, "result secure"); f.Type != "result" || f.Value[0] != "secure" {
		t.Fatalf("tls eval = %+v", f)
	}
	joined := strings.Join(fe.Server().Stats(), " ")
	if !strings.Contains(joined, "lst_tls_sessions:1") {
		t.Errorf("tls listener stats missing: %s", joined)
	}
}

// TestQueueCeilingShed is the load-shedding acceptance path: with one
// eval running and the dispatch queue at its ceiling, further evals are
// answered `signal overload` with a retry hint while admitted work
// completes normally.
func TestQueueCeilingShed(t *testing.T) {
	fe := newFrontend(t, Config{
		Server:       server.Config{MaxConcurrent: 1},
		QueueCeiling: 1,
		RetryAfterMS: 25,
	})
	srv := fe.Server()
	a := dialNet(t, "unix", fe.Socket())
	if err := a.fw.Write(&server.Frame{Type: "eval", ID: 1, Src: "sleep 0.4; result slow"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let it occupy the semaphore

	b := dialNet(t, "unix", fe.Socket())
	if err := b.fw.Write(&server.Frame{Type: "hello", Window: 4}); err != nil {
		t.Fatal(err)
	}
	if f, err := b.fr.Read(); err != nil || f.Type != "hello" {
		t.Fatalf("hello: %+v, %v", f, err)
	}
	// First eval queues (depth 1 = ceiling); the next two arrive over the
	// ceiling and must shed.
	for id := int64(1); id <= 3; id++ {
		if err := b.fw.Write(&server.Frame{Type: "eval", ID: id, Src: "result ok"}); err != nil {
			t.Fatal(err)
		}
	}
	var shed, served int
	for k := 0; k < 3; k++ {
		f, err := b.fr.Read()
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case f.Type == "error" && len(f.Exception) > 1 && f.Exception[1] == "overload":
			if f.RetryAfterMS != 25 {
				t.Errorf("retry_after_ms = %d, want 25", f.RetryAfterMS)
			}
			shed++
		case f.Type == "result":
			served++
		default:
			t.Fatalf("unexpected reply %+v", f)
		}
	}
	if shed != 2 || served != 1 {
		t.Fatalf("shed=%d served=%d, want 2/1", shed, served)
	}
	if f, err := a.fr.Read(); err != nil || f.Type != "result" || f.Value[0] != "slow" {
		t.Fatalf("admitted slow eval = %+v, %v", f, err)
	}
	if got := srv.Metrics().Sheds.Load(); got != 2 {
		t.Errorf("sheds counter = %d, want 2", got)
	}
}

// TestControllerP99Window unit-tests the sliding-window p99 logic: a
// burst of slow evals flips shedding on; a quiet interval flips it off.
func TestControllerP99Window(t *testing.T) {
	var m server.Metrics
	c := newController(&m, Config{
		P99Ceiling:   time.Millisecond,
		RetryAfterMS: 50,
		SamplePeriod: time.Hour, // sampled manually
	})
	c.prev = m.Buckets()
	for k := 0; k < 20; k++ {
		m.Observe(10 * time.Millisecond)
	}
	c.sample()
	if !c.shedding.Load() {
		t.Fatal("p99 over ceiling did not start shedding")
	}
	if ov := c.admit(); ov == nil || ov.Signal != "overload" || ov.RetryAfterMS != 50 {
		t.Fatalf("admit under shed = %+v", ov)
	}
	// An interval in which nothing completed: admission reopens.
	c.sample()
	if c.shedding.Load() {
		t.Fatal("idle interval did not stop shedding")
	}
	if ov := c.admit(); ov != nil {
		t.Fatalf("admit after recovery = %+v", ov)
	}
	// Fast evals keep admission open.
	for k := 0; k < 20; k++ {
		m.Observe(10 * time.Microsecond)
	}
	c.sample()
	if c.shedding.Load() {
		t.Fatal("fast interval started shedding")
	}
}
