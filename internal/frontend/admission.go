package frontend

// The p99-aware admission controller.  Load shedding has to act on the
// present, but the server's histogram is cumulative over the process
// lifetime, so the controller keeps the previous bucket snapshot and
// computes quantiles of the interval delta: the latency distribution of
// exactly the evals that finished in the last sample period.  When that
// interval p99 crosses the ceiling, a flag flips and the read loops shed
// arriving evals with retryable `signal overload` frames; shed requests
// cost no interpreter time and are not observed into the histogram, so
// as the backlog clears the interval p99 falls and admission reopens —
// a sampled bang-bang controller, deliberately simple.  Queue depth is
// the second, instantaneous signal: it is one atomic load, so it is
// checked inline on every admission rather than sampled.

import (
	"sync"
	"sync/atomic"
	"time"

	"es/internal/server"
)

// minIntervalSamples is how many evals must finish inside one sample
// period before its p99 is believed; a near-idle interval's quantiles
// are noise, and an idle server must never shed.
const minIntervalSamples = 8

type controller struct {
	m            *server.Metrics
	p99Ceiling   time.Duration
	queueCeiling int
	retryMS      int64
	period       time.Duration

	shedding atomic.Bool
	prev     []int64
	started  atomic.Bool
	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

func newController(m *server.Metrics, cfg Config) *controller {
	return &controller{
		m:            m,
		p99Ceiling:   cfg.P99Ceiling,
		queueCeiling: cfg.QueueCeiling,
		retryMS:      cfg.RetryAfterMS,
		period:       cfg.SamplePeriod,
		stopCh:       make(chan struct{}),
		done:         make(chan struct{}),
	}
}

func (c *controller) start() {
	if c.p99Ceiling <= 0 {
		return // nothing to sample; queue depth is checked inline
	}
	c.prev = c.m.Buckets()
	c.started.Store(true)
	go c.run()
}

func (c *controller) stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	if c.started.Load() {
		<-c.done
	}
}

func (c *controller) run() {
	defer close(c.done)
	tick := time.NewTicker(c.period)
	defer tick.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-tick.C:
			c.sample()
		}
	}
}

// sample advances the sliding window by one period and re-decides the
// shed flag from the interval's p99.
func (c *controller) sample() {
	cur := c.m.Buckets()
	delta := make([]int64, len(cur))
	var n int64
	for k := range cur {
		delta[k] = cur[k] - c.prev[k]
		n += delta[k]
	}
	c.prev = cur
	switch {
	case n >= minIntervalSamples:
		c.shedding.Store(server.QuantileOfCounts(delta, 0.99) > c.p99Ceiling)
	case n == 0:
		// Nothing finished: either idle (stop shedding) or everything is
		// wedged behind the queue — and the queue-depth check covers that.
		c.shedding.Store(false)
	}
	// 0 < n < minIntervalSamples: too little evidence either way; hold
	// the previous verdict.
}

// admit is the server's AdmitEval hook: nil admits, non-nil sheds.
func (c *controller) admit() *server.Overload {
	if c.queueCeiling > 0 && c.m.Queued.Load() >= int64(c.queueCeiling) {
		return &server.Overload{Signal: "overload",
			Reason: "queue depth over ceiling", RetryAfterMS: c.retryMS}
	}
	if c.p99Ceiling > 0 && c.shedding.Load() {
		return &server.Overload{Signal: "overload",
			Reason: "p99 over ceiling", RetryAfterMS: c.retryMS}
	}
	return nil
}
