// Package frontend is the fleet-facing serving layer over
// internal/server: it takes the daemon from "one unix socket, serial
// sessions" to a front end that can face real traffic.  It owns
//
//   - transport: TCP and TLS listeners next to the unix socket, each
//     with N parallel accept goroutines (accept sharding) and its own
//     session/byte counters in serverstats;
//
//   - admission: a controller sampling the server's latency histogram on
//     a fixed period, computing the p99 of the interval delta (the
//     lifetime histogram answers "how has it ever been", a controller
//     needs "how is it right now"), and shedding new evals with
//     retryable `signal overload` error frames when that p99 or the
//     dispatch-queue depth crosses its ceiling.
//
// Session semantics — pipelining windows, tenant quotas, per-id reply
// ordering — live in internal/server; this package decides what gets to
// reach them.
package frontend

import (
	"crypto/tls"
	"errors"
	"net"
	"time"

	"es/internal/server"
)

// Config configures a Frontend.  Server carries everything the inner
// daemon needs (socket path, pool, quotas, ...); the fields here are the
// front end's own: extra listeners and admission ceilings.
type Config struct {
	Server server.Config

	// TCP, when non-empty, is a host:port to serve plaintext TCP on
	// (":0" picks a free port; see TCPAddr).
	TCP string

	// TLS, when non-empty, is a host:port to serve TLS on; CertFile and
	// KeyFile must name a PEM certificate/key pair.
	TLS      string
	CertFile string
	KeyFile  string

	// Accepts is the number of parallel accept goroutines per TCP/TLS
	// listener (default 2).
	Accepts int

	// P99Ceiling, when positive, turns on p99-aware shedding: while the
	// p99 of evals completed in the last sample period exceeds it, new
	// evals are answered `signal overload` instead of queueing.
	P99Ceiling time.Duration

	// QueueCeiling, when positive, sheds evals arriving while the
	// dispatch-queue depth (admitted evals not yet running) is at or
	// over it.
	QueueCeiling int

	// RetryAfterMS is the retry hint stamped on shed frames (default 100).
	RetryAfterMS int64

	// SamplePeriod is how often the controller re-reads the histogram
	// (default 100ms).
	SamplePeriod time.Duration
}

// Frontend is a Server plus its listeners and admission controller.
type Frontend struct {
	cfg  Config
	srv  *server.Server
	ctrl *controller
	tcp  net.Listener
	tlsL net.Listener
}

// New builds the inner server with the front end's admission controller
// wired into its eval path.  Nothing is bound until Listen.
func New(cfg Config) (*Frontend, error) {
	if cfg.Accepts <= 0 {
		cfg.Accepts = 2
	}
	if cfg.RetryAfterMS <= 0 {
		cfg.RetryAfterMS = 100
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 100 * time.Millisecond
	}
	f := &Frontend{cfg: cfg}
	scfg := cfg.Server
	if cfg.P99Ceiling > 0 || cfg.QueueCeiling > 0 {
		// The controller is constructed against the server's metrics, but
		// the server needs the Admit hook at construction; close over the
		// field and fill it below.
		scfg.AdmitEval = func() *server.Overload { return f.ctrl.admit() }
	}
	srv, err := server.New(scfg)
	if err != nil {
		return nil, err
	}
	f.srv = srv
	f.ctrl = newController(srv.Metrics(), cfg)
	return f, nil
}

// Server exposes the inner daemon (stats, drain, tests).
func (f *Frontend) Server() *server.Server { return f.srv }

// Socket is the unix socket path the inner daemon serves on.
func (f *Frontend) Socket() string { return f.cfg.Server.Socket }

// TCPAddr is the bound TCP address after Listen ("" without a TCP
// listener) — the way scripts and tests discover a ":0" port.
func (f *Frontend) TCPAddr() string {
	if f.tcp == nil {
		return ""
	}
	return f.tcp.Addr().String()
}

// TLSAddr is the bound TLS address after Listen.
func (f *Frontend) TLSAddr() string {
	if f.tlsL == nil {
		return ""
	}
	return f.tlsL.Addr().String()
}

// Listen binds every configured surface: the unix socket (with its
// stale-takeover lock), then TCP, then TLS.
func (f *Frontend) Listen() error {
	if err := f.srv.Listen(); err != nil {
		return err
	}
	if f.cfg.TCP != "" {
		ln, err := net.Listen("tcp", f.cfg.TCP)
		if err != nil {
			return err
		}
		f.tcp = ln
	}
	if f.cfg.TLS != "" {
		if f.cfg.CertFile == "" || f.cfg.KeyFile == "" {
			return errors.New("frontend: TLS listener needs CertFile and KeyFile")
		}
		cert, err := tls.LoadX509KeyPair(f.cfg.CertFile, f.cfg.KeyFile)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", f.cfg.TLS)
		if err != nil {
			return err
		}
		f.tlsL = tls.NewListener(ln, &tls.Config{
			Certificates: []tls.Certificate{cert},
			MinVersion:   tls.VersionTLS12,
		})
	}
	return nil
}

// Serve attaches the TCP/TLS listeners (each with the configured accept
// parallelism), starts the admission controller, and serves the unix
// socket in the foreground until drain.
func (f *Frontend) Serve() error {
	if f.tcp != nil {
		f.srv.AddListener(f.tcp, "tcp", f.cfg.Accepts)
	}
	if f.tlsL != nil {
		f.srv.AddListener(f.tlsL, "tls", f.cfg.Accepts)
	}
	f.ctrl.start()
	return f.srv.Serve()
}

// ListenAndServe is Listen followed by Serve.
func (f *Frontend) ListenAndServe() error {
	if err := f.Listen(); err != nil {
		return err
	}
	return f.Serve()
}

// Drain stops the controller and gracefully drains the server (which
// closes every listener, unix and attached alike).
func (f *Frontend) Drain(timeout time.Duration) error {
	f.ctrl.stop()
	return f.srv.Drain(timeout)
}
