package syntax

import "testing"

// rewriteOf parses src, rewrites it, and unparses the core form.
func rewriteOf(t *testing.T, src string) string {
	t.Helper()
	b, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return UnparseBody(Rewrite(b).(*Block))
}

func TestRewriteCoreForms(t *testing.T) {
	tests := []struct{ src, want string }{
		// The paper's flagship example: "ls > /tmp/foo is internally
		// rewritten as %create 1 /tmp/foo {ls}".
		{"ls > /tmp/foo", "%create 1 /tmp/foo {ls}"},
		{"a >> log", "%append 1 log {a}"},
		{"cat < in", "%open 0 in {cat}"},
		{"echo >[1=2] oops", "%dup 1 2 {echo oops}"},
		{"cmd >[2=]", "%close 2 {cmd}"},
		{"a | b", "%pipe {a} 1 0 {b}"},
		{"a | b | c", "%pipe {a} 1 0 {b} 1 0 {c}"},
		{"a |[2] b", "%pipe {a} 2 0 {b}"},
		{"a |[2=5] b", "%pipe {a} 2 5 {b}"},
		{"a && b", "%and {a} {b}"},
		{"a && b && c", "%and {a} {b} {c}"},
		{"a || b", "%or {a} {b}"},
		{"a && b || c", "%or {%and {a} {b}} {c}"},
		{"sleep 3 &", "%background {sleep 3}"},
		{"fn d {date}", "fn-d = {date}"},
		{"fn echon args {echo -n $args}", "fn-echon = @ args {echo -n $args}"},
		{"fn trace", "fn-trace ="},
		{"fn $func args {$old $args}", "fn-$func = @ args {$old $args}"},
		{"cat < in > out", "%open 0 in {%create 1 out {cat}}"},
		{"{a; b} > f", "%create 1 f {{a; b}}"},
		{"a | b > f", "%pipe {a} 1 0 {%create 1 f {b}}"},
		{"a > f | b", "%pipe {%create 1 f {a}} 1 0 {b}"},
		{"! a | b", "%pipe {! a} 1 0 {b}"},
		{"a & b", "{%background {a}; b}"},
		// Untouched forms.
		{"~ $e error", "~ $e error"},
		{"let (x = a) echo $x", "let (x = a) echo $x"},
		{"local (x = a) echo $x", "local (x = a) echo $x"},
		{"for (i = $args) $cmd $i", "for (i = $args) $cmd $i"},
		{"x = foo", "x = foo"},
	}
	for _, tt := range tests {
		got := rewriteOf(t, tt.src)
		if got != tt.want {
			t.Errorf("Rewrite(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

// Rewriting must reach inside lambdas, substitutions and binding bodies.
func TestRewriteRecurses(t *testing.T) {
	tests := []struct{ src, want string }{
		{"fn f {a | b}", "fn-f = {%pipe {a} 1 0 {b}}"},
		{"x = {a | b}", "x = {%pipe {a} 1 0 {b}}"},
		{"let (x = {a > f}) $x", "let (x = {%create 1 f {a}}) $x"},
		{"echo <>{a | b}", "echo <>{%pipe {a} 1 0 {b}}"},
		{"echo `{a | b}", "echo `{%pipe {a} 1 0 {b}}"},
		{"if {a && b} {c > f}", "if {%and {a} {b}} {%create 1 f {c}}"},
		{"for (i = x) a | b", "for (i = x) %pipe {a} 1 0 {b}"},
	}
	for _, tt := range tests {
		got := rewriteOf(t, tt.src)
		if got != tt.want {
			t.Errorf("Rewrite(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

// The core form is a fixed point of Rewrite.
func TestRewriteIdempotent(t *testing.T) {
	srcs := []string{
		"ls > /tmp/foo",
		"a | b | c && d || e &",
		"fn f a b {x | y > z}",
		"catch @ e msg {h} {b < f}",
	}
	for _, src := range srcs {
		once := rewriteOf(t, src)
		twice := rewriteOf(t, once)
		if once != twice {
			t.Errorf("Rewrite not idempotent for %q:\nonce:  %s\ntwice: %s", src, once, twice)
		}
	}
}

// Core trees contain no surface-only nodes.
func TestRewriteEliminatesSurfaceNodes(t *testing.T) {
	b, err := Parse("a | b && c > f & \n fn g {x | y}")
	if err != nil {
		t.Fatal(err)
	}
	var check func(c Cmd)
	var checkWord func(w *Word)
	checkWord = func(w *Word) {
		if w == nil {
			return
		}
		for _, p := range w.Parts {
			switch p := p.(type) {
			case *LambdaPart:
				check(p.Lambda.Body)
			case *CmdSub:
				check(p.Body)
			case *RetSub:
				check(p.Body)
			case *ListPart:
				for _, sub := range p.Words {
					checkWord(sub)
				}
			}
		}
	}
	check = func(c Cmd) {
		switch c := c.(type) {
		case *Pipe, *AndOr, *Bg, *RedirCmd, *Fn:
			t.Errorf("surface node %T survived rewrite", c)
		case *Block:
			for _, sub := range c.Cmds {
				check(sub)
			}
		case *Simple:
			for _, w := range c.Words {
				checkWord(w)
			}
		case *Assign:
			for _, w := range c.Values {
				checkWord(w)
			}
		case *Let:
			check(c.Body)
		case *Local:
			check(c.Body)
		case *For:
			check(c.Body)
		case *Not:
			check(c.Body)
		}
	}
	check(Rewrite(b))
}
