package syntax

// Rewrite lowers surface syntax into the paper's core forms.  "In es,
// almost all standard shell constructs (e.g., pipes and redirection) are
// translated into a uniform representation: function calls."
//
//	a | b          →  %pipe {a} 1 0 {b}
//	a |[2] b       →  %pipe {a} 2 0 {b}
//	cmd > f        →  %create 1 f {cmd}
//	cmd >> f       →  %append 1 f {cmd}
//	cmd < f        →  %open 0 f {cmd}
//	cmd >[1=2]     →  %dup 1 2 {cmd}
//	cmd >[2=]      →  %close 2 {cmd}
//	cmd &          →  %background {cmd}
//	a && b         →  %and {a} {b}
//	a || b         →  %or {a} {b}
//	`{cmd}         →  (split over $ifs of) <>{%backquote {cmd}}
//	fn f p {b}     →  fn-f = @ p {b}
//	fn f           →  fn-f =
//
// The rewritten tree contains only Block, Simple, Assign, Let, Local, For,
// Match and Not command nodes.  Because the targets are ordinary hook
// functions (fn-%pipe and friends, bound in initial.es), redefining them
// from the shell changes the behaviour of the corresponding syntax — the
// paper's "spoofing".
func Rewrite(c Cmd) Cmd {
	if c == nil {
		return nil
	}
	switch c := c.(type) {
	case *Block:
		out := &Block{Cmds: make([]Cmd, 0, len(c.Cmds)), Pos: c.Pos}
		for _, sub := range c.Cmds {
			out.Cmds = append(out.Cmds, Rewrite(sub))
		}
		return out
	case *Simple:
		out := &Simple{Words: rewriteWords(c.Words), Pos: c.Pos}
		if len(c.Redirs) > 0 {
			return rewriteRedirs(out, c.Redirs)
		}
		return out
	case *RedirCmd:
		return rewriteRedirs(Rewrite(c.Body), c.Redirs)
	case *Assign:
		return &Assign{Name: rewriteWord(c.Name), Values: rewriteWords(c.Values), Pos: c.Pos}
	case *Let:
		return &Let{Bindings: rewriteBindings(c.Bindings), Body: Rewrite(c.Body), Pos: c.Pos}
	case *Local:
		return &Local{Bindings: rewriteBindings(c.Bindings), Body: Rewrite(c.Body), Pos: c.Pos}
	case *For:
		return &For{Bindings: rewriteBindings(c.Bindings), Body: Rewrite(c.Body), Pos: c.Pos}
	case *Match:
		return &Match{Subject: rewriteWord(c.Subject), Pats: rewriteWords(c.Pats), Pos: c.Pos}
	case *MatchExtract:
		return &MatchExtract{Subject: rewriteWord(c.Subject), Pats: rewriteWords(c.Pats), Pos: c.Pos}
	case *Not:
		return &Not{Body: Rewrite(c.Body), Pos: c.Pos}
	case *Pipe:
		return rewritePipe(c)
	case *AndOr:
		hook := "%and"
		if c.Op == OROR {
			hook = "%or"
		}
		// Flatten chains of the same operator into one call.
		words := []*Word{litWordAt(c.Pos, hook)}
		words = append(words, andOrOperands(c, c.Op)...)
		return &Simple{Words: words, Pos: c.Pos}
	case *Bg:
		return &Simple{Words: []*Word{litWordAt(c.Pos, "%background"), thunk(c.Body)}, Pos: c.Pos}
	case *Fn:
		nm := rewriteWord(c.Name)
		var name *Word
		if lit, ok := nm.Parts[0].(*Lit); ok && !lit.Quoted {
			rest := append([]Part{&Lit{Text: "fn-" + lit.Text}}, nm.Parts[1:]...)
			name = &Word{Parts: rest, Pos: nm.Pos}
		} else {
			name = &Word{Parts: append([]Part{&Lit{Text: "fn-"}}, nm.Parts...), Pos: nm.Pos}
		}
		if c.Lambda == nil {
			return &Assign{Name: name, Pos: c.Pos}
		}
		lam := &Lambda{Params: c.Lambda.Params, HasParams: c.Lambda.HasParams, Body: rewriteBlock(c.Lambda.Body), Pos: c.Lambda.Pos}
		w := LambdaWord(lam)
		w.Pos = lam.Pos
		return &Assign{Name: name, Values: []*Word{w}, Pos: c.Pos}
	}
	return c
}

// litWordAt is LitWord anchored to a source position, so words the
// rewriter synthesizes (hook-call heads like %pipe) still point at the
// construct they came from.
func litWordAt(pos Pos, text string) *Word {
	w := LitWord(text)
	w.Pos = pos
	return w
}

// andOrOperands flattens nested AndOr nodes with the same operator into a
// thunk list.
func andOrOperands(c Cmd, op Kind) []*Word {
	if ao, ok := c.(*AndOr); ok && ao.Op == op {
		return append(andOrOperands(ao.Left, op), andOrOperands(ao.Right, op)...)
	}
	return []*Word{thunk(c)}
}

// rewritePipe flattens a pipeline into a single %pipe call:
// a | b | c → %pipe {a} 1 0 {b} 1 0 {c}.
func rewritePipe(c Cmd) Cmd {
	pos := CmdPos(c)
	words := append([]*Word{litWordAt(pos, "%pipe")}, pipeOperands(c)...)
	return &Simple{Words: words, Pos: pos}
}

func pipeOperands(c Cmd) []*Word {
	if p, ok := c.(*Pipe); ok {
		left := pipeOperands(p.Left)
		left = append(left, litWordAt(p.Pos, itoa(p.LFd)), litWordAt(p.Pos, itoa(p.RFd)))
		return append(left, pipeOperands(p.Right)...)
	}
	return []*Word{thunk(c)}
}

// rewriteRedirs nests redirection hook calls around a command, first redir
// outermost (so it is applied first).
func rewriteRedirs(body Cmd, redirs []*Redir) Cmd {
	out := body
	for i := len(redirs) - 1; i >= 0; i-- {
		r := redirs[i]
		at := func(text string) *Word { return litWordAt(r.Pos, text) }
		var words []*Word
		switch r.Op {
		case RedirTo:
			words = []*Word{at("%create"), at(itoa(r.Fd)), rewriteWord(r.Target)}
		case RedirAppend:
			words = []*Word{at("%append"), at(itoa(r.Fd)), rewriteWord(r.Target)}
		case RedirFrom:
			words = []*Word{at("%open"), at(itoa(r.Fd)), rewriteWord(r.Target)}
		case RedirHere:
			words = []*Word{at("%here"), at(itoa(r.Fd)), rewriteWord(r.Target)}
		case RedirDup:
			words = []*Word{at("%dup"), at(itoa(r.Fd)), at(itoa(r.Fd2))}
		case RedirClose:
			words = []*Word{at("%close"), at(itoa(r.Fd))}
		}
		words = append(words, thunk(out))
		out = &Simple{Words: words, Pos: r.Pos}
	}
	return out
}

// thunk wraps a (rewritten) command as a parameterless {…} fragment
// anchored to the source command's position.
func thunk(c Cmd) *Word {
	pos := CmdPos(c)
	w := BlockLambda(Rewrite(c))
	w.Pos = pos
	if lp, ok := w.Parts[0].(*LambdaPart); ok {
		lp.Lambda.Pos = pos
		if lp.Lambda.Body != nil && !lp.Lambda.Body.Pos.Known() {
			lp.Lambda.Body.Pos = pos
		}
	}
	return w
}

func rewriteBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	return Rewrite(b).(*Block)
}

func rewriteBindings(bs []Binding) []Binding {
	out := make([]Binding, len(bs))
	for i, b := range bs {
		out[i] = Binding{Name: rewriteWord(b.Name), Values: rewriteWords(b.Values)}
	}
	return out
}

func rewriteWords(ws []*Word) []*Word {
	out := make([]*Word, len(ws))
	for i, w := range ws {
		out[i] = rewriteWord(w)
	}
	return out
}

func rewriteWord(w *Word) *Word {
	if w == nil {
		return nil
	}
	out := &Word{Parts: make([]Part, len(w.Parts)), Pos: w.Pos}
	for i, part := range w.Parts {
		out.Parts[i] = rewritePart(part)
	}
	return out
}

func rewritePart(part Part) Part {
	switch part := part.(type) {
	case *Var:
		v := &Var{Name: rewriteWord(part.Name), Count: part.Count, Double: part.Double, Flat: part.Flat, Pos: part.Pos}
		v.Index = rewriteWords(part.Index)
		return v
	case *CmdSub:
		return &CmdSub{Body: rewriteBlock(part.Body), Pos: part.Pos}
	case *RetSub:
		return &RetSub{Body: rewriteBlock(part.Body), Pos: part.Pos}
	case *LambdaPart:
		l := part.Lambda
		return &LambdaPart{Lambda: &Lambda{Params: l.Params, HasParams: l.HasParams, Body: rewriteBlock(l.Body), Pos: l.Pos}}
	case *ListPart:
		return &ListPart{Words: rewriteWords(part.Words)}
	}
	return part
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
