package syntax

import "fmt"

// Parse parses a complete es program (one or more commands) into a surface
// Block.  Callers that want the paper's core representation should pass the
// result through Rewrite.
//
// If the input ends inside an unterminated construct, the returned error
// satisfies IsIncomplete, which interactive callers use to request
// continuation lines.
func Parse(src string) (*Block, error) {
	p := &parser{lex: newLexer(src)}
	p.advance()
	b := p.parseLines(EOF)
	if p.err == nil && p.tok.Kind != EOF {
		p.errorf(false, "unexpected %s", p.tok)
	}
	if p.err != nil {
		return nil, p.err
	}
	return b, nil
}

type parser struct {
	lex *lexer
	tok Token
	err *ParseError
}

// pos returns the current token's source position.
func (p *parser) pos() Pos { return Pos{Line: p.tok.Line, Col: p.tok.Col} }

func (p *parser) errorf(incomplete bool, format string, args ...interface{}) {
	if p.err == nil {
		p.err = &ParseError{Line: p.tok.Line, Col: p.tok.Col, Msg: fmt.Sprintf(format, args...), Incomplete: incomplete}
	}
}

func (p *parser) advance() {
	if p.err != nil {
		p.tok = Token{Kind: EOF}
		return
	}
	p.tok = p.lex.next()
	if p.lex.err != nil && p.err == nil {
		p.err = p.lex.err
		p.tok = Token{Kind: EOF}
	}
}

func (p *parser) expect(k Kind) Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Kind == EOF, "expected %s, found %s", k, t)
		return t
	}
	p.advance()
	return t
}

// skipNewlines consumes newline tokens (used after |, &&, || and inside
// blocks and binding lists).
func (p *parser) skipNewlines() {
	for p.tok.Kind == NEWLINE {
		p.advance()
	}
}

func isTerminator(k Kind) bool {
	return k == SEMI || k == NEWLINE || k == EOF || k == RBRACE || k == RPAREN
}

// parseLines parses a command sequence up to the given closing token
// (RBRACE for blocks, EOF at top level).  The closer is not consumed.
func (p *parser) parseLines(close Kind) *Block {
	b := &Block{}
	for p.err == nil {
		for p.tok.Kind == SEMI || p.tok.Kind == NEWLINE {
			p.advance()
		}
		if p.tok.Kind == close || p.tok.Kind == EOF {
			return b
		}
		c := p.parseCommandLine()
		if c != nil {
			b.Cmds = append(b.Cmds, c)
		}
		if p.err != nil {
			return b
		}
		switch p.tok.Kind {
		case SEMI, NEWLINE:
			p.advance()
		case close, EOF:
			return b
		default:
			p.errorf(false, "unexpected %s", p.tok)
			return b
		}
	}
	return b
}

// parseCommandLine parses one full command: andor chains with optional
// trailing & for background.
func (p *parser) parseCommandLine() Cmd {
	c := p.parseAndOr()
	for p.tok.Kind == AMP && p.err == nil {
		ampPos := p.pos()
		p.advance()
		c = &Bg{Body: c, Pos: ampPos}
		// '&' also terminates; allow another command to follow directly.
		if isTerminator(p.tok.Kind) || p.tok.Kind == AMP {
			return c
		}
		next := p.parseAndOr()
		c = &Block{Cmds: []Cmd{c, next}}
	}
	return c
}

func (p *parser) parseAndOr() Cmd {
	c := p.parsePipeline()
	for (p.tok.Kind == ANDAND || p.tok.Kind == OROR) && p.err == nil {
		op := p.tok.Kind
		opPos := p.pos()
		p.advance()
		p.skipNewlines()
		right := p.parsePipeline()
		c = &AndOr{Op: op, Left: c, Right: right, Pos: opPos}
	}
	return c
}

func (p *parser) parsePipeline() Cmd {
	c := p.parseCommand()
	for p.tok.Kind == PIPE && p.err == nil {
		t := p.tok
		p.advance()
		p.skipNewlines()
		right := p.parseCommand()
		lfd, rfd := 1, 0
		if t.Fd >= 0 {
			lfd = t.Fd
		}
		if t.Fd2 >= 0 {
			rfd = t.Fd2
		}
		c = &Pipe{Left: c, LFd: lfd, RFd: rfd, Right: right, Pos: Pos{Line: t.Line, Col: t.Col}}
	}
	return c
}

// parseCommand parses a single command: !, ~, the binding keywords, fn, or
// a simple command with redirections.
func (p *parser) parseCommand() Cmd {
	switch p.tok.Kind {
	case BANG:
		bangPos := p.pos()
		p.advance()
		return &Not{Body: p.parseCommand(), Pos: bangPos}
	case TILDE, EXTRACT:
		extract := p.tok.Kind == EXTRACT
		matchPos := p.pos()
		p.advance()
		subj := p.parseWord()
		if subj == nil {
			p.errorf(p.tok.Kind == EOF, "expected match subject after '~'")
			return nil
		}
		var pats []*Word
		for p.err == nil && p.isWordStart() {
			w := p.parseWord()
			if w == nil {
				break
			}
			pats = append(pats, w)
		}
		if extract {
			return &MatchExtract{Subject: subj, Pats: pats, Pos: matchPos}
		}
		return &Match{Subject: subj, Pats: pats, Pos: matchPos}
	case WORD:
		// Keywords only when the token is a complete word: let$x or
		// fn^y are ordinary commands, not binding forms.
		if p.keywordIsolated() {
			switch p.tok.Text {
			case "fn":
				return p.parseFn()
			case "let":
				return p.parseBindingForm("let")
			case "local":
				return p.parseBindingForm("local")
			case "for":
				return p.parseBindingForm("for")
			}
		}
	}
	return p.parseSimple()
}

func (p *parser) parseFn() Cmd {
	fnPos := p.pos()
	p.advance() // fn
	name := p.parseWord()
	if name == nil {
		p.errorf(p.tok.Kind == EOF, "expected function name after fn")
		return nil
	}
	var params []string
	for p.tok.Kind == WORD || p.tok.Kind == QWORD {
		if !plainNameText(p.tok.Text) {
			p.errorf(false, "bad parameter name %q", p.tok.Text)
			return nil
		}
		params = append(params, p.tok.Text)
		p.advance()
	}
	if p.tok.Kind != LBRACE {
		if len(params) == 0 && isTerminator(p.tok.Kind) {
			return &Fn{Name: name, Pos: fnPos} // fn name: undefine
		}
		p.errorf(p.tok.Kind == EOF, "expected '{' in fn definition")
		return nil
	}
	lamPos := p.pos() // the '{'
	body := p.parseBlock()
	return &Fn{Name: name, Lambda: &Lambda{Params: params, HasParams: len(params) > 0, Body: body, Pos: lamPos}, Pos: fnPos}
}

// parseBindingForm parses let/local/for (bindings) command.
func (p *parser) parseBindingForm(kw string) Cmd {
	kwPos := p.pos()
	p.advance() // keyword
	p.expect(LPAREN)
	var bindings []Binding
	for p.err == nil {
		p.skipNewlines()
		if p.tok.Kind == RPAREN {
			break
		}
		name := p.parseWord()
		if name == nil {
			p.errorf(p.tok.Kind == EOF, "expected binding name in %s", kw)
			return nil
		}
		b := Binding{Name: name}
		if p.tok.Kind == EQUALS {
			p.advance()
			for p.err == nil && p.isWordStart() {
				w := p.parseWord()
				if w == nil {
					break
				}
				b.Values = append(b.Values, w)
			}
		}
		bindings = append(bindings, b)
		if p.tok.Kind == SEMI || p.tok.Kind == NEWLINE {
			p.advance()
			continue
		}
		break
	}
	p.skipNewlines()
	p.expect(RPAREN)
	if p.err != nil {
		return nil
	}
	p.skipNewlines()
	// The body is a full command (pipelines and &&/|| included), so
	// "for (i = $x) a | b" pipes inside the loop body.
	body := p.parseAndOr()
	if body == nil && p.err == nil {
		p.errorf(p.tok.Kind == EOF, "expected command after %s (...)", kw)
		return nil
	}
	switch kw {
	case "let":
		return &Let{Bindings: bindings, Body: body, Pos: kwPos}
	case "local":
		return &Local{Bindings: bindings, Body: body, Pos: kwPos}
	default:
		return &For{Bindings: bindings, Body: body, Pos: kwPos}
	}
}

// parseSimple parses words and redirections; detects assignment when the
// first word is followed by '='.
func (p *parser) parseSimple() Cmd {
	startPos := p.pos()
	var words []*Word
	var redirs []*Redir
	for p.err == nil {
		switch {
		case p.tok.Kind == REDIR:
			t := p.tok
			p.advance()
			r := &Redir{Op: t.Op, Fd: t.Fd, Fd2: t.Fd2, Pos: Pos{Line: t.Line, Col: t.Col}}
			switch {
			case t.Heredoc:
				// A heredoc: the lexer delivered the literal body.
				r.Target = QuotedWord(t.Text)
			case t.Op != RedirDup && t.Op != RedirClose:
				r.Target = p.parseWord()
				if r.Target == nil {
					p.errorf(p.tok.Kind == EOF, "expected file name after redirection")
					return nil
				}
			}
			redirs = append(redirs, r)
		case p.tok.Kind == EQUALS && len(words) <= 1:
			// assignment: name = values...  (empty name not allowed)
			p.advance()
			var name *Word
			if len(words) == 1 {
				name = words[0]
			} else {
				p.errorf(false, "assignment without a variable name")
				return nil
			}
			var values []*Word
			for p.err == nil && p.isWordStart() {
				w := p.parseWord()
				if w == nil {
					break
				}
				values = append(values, w)
			}
			return &Assign{Name: name, Values: values, Pos: startPos}
		case p.isWordStart():
			words = append(words, p.parseWord())
		default:
			if len(words) == 0 && len(redirs) == 0 {
				p.errorf(p.tok.Kind == EOF, "expected command, found %s", p.tok)
				return nil
			}
			c := Cmd(&Simple{Words: words, Pos: startPos})
			if len(redirs) > 0 {
				c = &RedirCmd{Body: c, Redirs: redirs, Pos: startPos}
			}
			return c
		}
	}
	return nil
}

// isWordStart reports whether the current token can begin a word.
func (p *parser) isWordStart() bool {
	return isWordStartKind(p.tok.Kind)
}

func isWordStartKind(k Kind) bool {
	switch k {
	case WORD, QWORD, DOLLAR, COUNT, DOUBLE, FLAT, PRIM, BQUOTE, RETSUB, LBRACE, AT, LPAREN:
		return true
	}
	return false
}

// plainNameText reports whether text consists solely of name characters.
func plainNameText(text string) bool {
	if text == "" {
		return false
	}
	for k := 0; k < len(text); k++ {
		if !isNameChar(text[k]) {
			return false
		}
	}
	return true
}

// keywordIsolated reports whether the current WORD token stands alone (no
// adjacent continuation or caret), so it may act as a keyword.
func (p *parser) keywordIsolated() bool {
	save := *p.lex
	next := p.lex.next()
	*p.lex = save
	if next.Kind == CARET {
		return false
	}
	if isWordStartKind(next.Kind) && !next.SpaceBefore {
		return false
	}
	return true
}

// parseWord parses one word: adjacent parts and explicit '^' concatenation.
func (p *parser) parseWord() *Word {
	if !p.isWordStart() {
		return nil
	}
	w := &Word{Pos: p.pos()}
	first := true
	for p.err == nil {
		if !first {
			if p.tok.Kind == CARET {
				p.advance()
			} else if !p.isWordStart() || p.tok.SpaceBefore {
				break
			}
		}
		part := p.parsePart()
		if part == nil {
			break
		}
		w.Parts = append(w.Parts, part)
		first = false
	}
	if len(w.Parts) == 0 {
		return nil
	}
	return w
}

func (p *parser) parsePart() Part {
	switch p.tok.Kind {
	case WORD:
		t := p.tok
		p.advance()
		return &Lit{Text: t.Text}
	case QWORD:
		t := p.tok
		p.advance()
		return &Lit{Text: t.Text, Quoted: true}
	case DOLLAR, COUNT, DOUBLE, FLAT:
		return p.parseVar()
	case PRIM:
		primPos := p.pos()
		p.advance()
		if p.tok.Kind != WORD || p.tok.SpaceBefore || !plainNameText(p.tok.Text) {
			p.errorf(p.tok.Kind == EOF, "expected primitive name after $&")
			return nil
		}
		name := p.tok.Text
		p.advance()
		return &Prim{Name: name, Pos: primPos}
	case BQUOTE:
		bqPos := p.pos()
		p.advance()
		if p.tok.Kind == LBRACE {
			return &CmdSub{Body: p.parseBlock(), Pos: bqPos}
		}
		// `word is shorthand for `{word}
		w := p.parseWord()
		if w == nil {
			p.errorf(p.tok.Kind == EOF, "expected '{' or word after '`'")
			return nil
		}
		return &CmdSub{Body: &Block{Cmds: []Cmd{&Simple{Words: []*Word{w}, Pos: w.Pos}}, Pos: w.Pos}, Pos: bqPos}
	case RETSUB:
		rsPos := p.pos()
		p.advance()
		if p.tok.Kind != LBRACE {
			p.errorf(p.tok.Kind == EOF, "expected '{' after '<>'")
			return nil
		}
		return &RetSub{Body: p.parseBlock(), Pos: rsPos}
	case LBRACE:
		lbPos := p.pos()
		return &LambdaPart{Lambda: &Lambda{Body: p.parseBlock(), Pos: lbPos}}
	case AT:
		atPos := p.pos()
		p.advance()
		var params []string
		for p.tok.Kind == WORD || p.tok.Kind == QWORD {
			if !plainNameText(p.tok.Text) {
				p.errorf(false, "bad parameter name %q", p.tok.Text)
				return nil
			}
			params = append(params, p.tok.Text)
			p.advance()
		}
		if p.tok.Kind != LBRACE {
			p.errorf(p.tok.Kind == EOF, "expected '{' in lambda")
			return nil
		}
		return &LambdaPart{Lambda: &Lambda{Params: params, HasParams: true, Body: p.parseBlock(), Pos: atPos}}
	case LPAREN:
		p.advance()
		lp := &ListPart{}
		for p.err == nil {
			p.skipNewlines()
			if p.tok.Kind == RPAREN {
				break
			}
			w := p.parseWord()
			if w == nil {
				p.errorf(p.tok.Kind == EOF, "expected word or ')' in list")
				return nil
			}
			lp.Words = append(lp.Words, w)
		}
		p.expect(RPAREN)
		return lp
	}
	return nil
}

// parseVar parses $name, $#name, $$name, $(computed), with an optional
// adjacent (subscript).
func (p *parser) parseVar() Part {
	kind := p.tok.Kind
	varPos := p.pos()
	p.advance()
	v := &Var{Count: kind == COUNT, Double: kind == DOUBLE, Flat: kind == FLAT, Pos: varPos}
	switch {
	case p.tok.Kind == LPAREN && !p.tok.SpaceBefore:
		// $(computed-name)
		p.advance()
		name := p.parseWord()
		if name == nil {
			p.errorf(p.tok.Kind == EOF, "expected variable name in $(...)")
			return nil
		}
		p.expect(RPAREN)
		v.Name = name
	case (p.tok.Kind == WORD || p.tok.Kind == QWORD) && !p.tok.SpaceBefore:
		v.Name = &Word{Parts: []Part{&Lit{Text: p.tok.Text, Quoted: p.tok.Kind == QWORD}}, Pos: p.pos()}
		p.advance()
		// allow computed names like $fn-$func?  No: '$' ends the name.
	default:
		p.errorf(p.tok.Kind == EOF, "expected variable name after '$'")
		return nil
	}
	if p.tok.Kind == LPAREN && !p.tok.SpaceBefore {
		p.advance()
		for p.err == nil {
			p.skipNewlines()
			if p.tok.Kind == RPAREN {
				break
			}
			w := p.parseWord()
			if w == nil {
				p.errorf(p.tok.Kind == EOF, "expected subscript or ')'")
				return nil
			}
			v.Index = append(v.Index, w)
		}
		p.expect(RPAREN)
	}
	return v
}

// parseBlock parses { lines }.
func (p *parser) parseBlock() *Block {
	lbPos := p.pos()
	p.expect(LBRACE)
	b := p.parseLines(RBRACE)
	b.Pos = lbPos
	if p.err == nil && p.tok.Kind == EOF {
		p.errorf(true, "expected '}'")
		return b
	}
	p.expect(RBRACE)
	return b
}
