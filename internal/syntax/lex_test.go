package syntax

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	tests := []struct {
		src  string
		want []Kind
	}{
		{"cd /tmp", []Kind{WORD, WORD, EOF}},
		{"rm Ex*", []Kind{WORD, WORD, EOF}},
		{"a; b", []Kind{WORD, SEMI, WORD, EOF}},
		{"a | b", []Kind{WORD, PIPE, WORD, EOF}},
		{"a || b && c", []Kind{WORD, OROR, WORD, ANDAND, WORD, EOF}},
		{"a &", []Kind{WORD, AMP, EOF}},
		{"a\nb", []Kind{WORD, NEWLINE, WORD, EOF}},
		{"x = foo", []Kind{WORD, EQUALS, WORD, EOF}},
		{"x=foo bar", []Kind{WORD, EQUALS, WORD, WORD, EOF}},
		{"fn d {date}", []Kind{WORD, WORD, LBRACE, WORD, RBRACE, EOF}},
		{"@ i {cd $i}", []Kind{AT, WORD, LBRACE, WORD, DOLLAR, WORD, RBRACE, EOF}},
		{"echo $#head", []Kind{WORD, COUNT, WORD, EOF}},
		{"echo $$var", []Kind{WORD, DOUBLE, WORD, EOF}},
		{"fn-%and = $&and", []Kind{WORD, EQUALS, PRIM, WORD, EOF}},
		{"!~ $e error", []Kind{BANG, TILDE, DOLLAR, WORD, WORD, EOF}},
		{"echo <>{car}", []Kind{WORD, RETSUB, LBRACE, WORD, RBRACE, EOF}},
		{"echo <={car}", []Kind{WORD, RETSUB, LBRACE, WORD, RBRACE, EOF}},
		{"title `{pwd}", []Kind{WORD, BQUOTE, LBRACE, WORD, RBRACE, EOF}},
		{"ls > /tmp/foo", []Kind{WORD, REDIR, WORD, EOF}},
		{"echo >[1=2] oops", []Kind{WORD, REDIR, WORD, EOF}},
		{"a^b", []Kind{WORD, CARET, WORD, EOF}},
		{"# comment only", []Kind{EOF}},
		{"a # trailing\nb", []Kind{WORD, NEWLINE, WORD, EOF}},
		{"a \\\n b", []Kind{WORD, WORD, EOF}},
		{"$mixed(2)", []Kind{DOLLAR, WORD, LPAREN, WORD, RPAREN, EOF}},
		{"'hi there'", []Kind{QWORD, EOF}},
		{"''", []Kind{QWORD, EOF}},
		{"let (x = a) b", []Kind{WORD, LPAREN, WORD, EQUALS, WORD, RPAREN, WORD, EOF}},
	}
	for _, tt := range tests {
		toks, err := Lex(tt.src)
		if err != nil {
			t.Errorf("Lex(%q): %v", tt.src, err)
			continue
		}
		got := kinds(toks)
		if len(got) != len(tt.want) {
			t.Errorf("Lex(%q) = %v, want %v", tt.src, toks, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Lex(%q)[%d] = %v, want %v", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestLexQuoting(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{"'hello, world'", "hello, world"},
		{"'don''t'", "don't"},
		{"'^byron'", "^byron"},
		{"'{print $2}'", "{print $2}"},
		{"'usage: in dir cmd'", "usage: in dir cmd"},
	}
	for _, tt := range tests {
		toks, err := Lex(tt.src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", tt.src, err)
		}
		if toks[0].Kind != QWORD || toks[0].Text != tt.want {
			t.Errorf("Lex(%q) = %v, want qword %q", tt.src, toks[0], tt.want)
		}
	}
}

func TestLexUnterminatedQuote(t *testing.T) {
	_, err := Lex("'oops")
	if err == nil || !IsIncomplete(err) {
		t.Fatalf("want incomplete error, got %v", err)
	}
}

func TestLexFdSpecs(t *testing.T) {
	toks, err := Lex(">[1=2]")
	if err != nil {
		t.Fatal(err)
	}
	r := toks[0]
	if r.Kind != REDIR || r.Op != RedirDup || r.Fd != 1 || r.Fd2 != 2 {
		t.Errorf("got %+v, want dup 1=2", r)
	}

	toks, err = Lex(">[2=]")
	if err != nil {
		t.Fatal(err)
	}
	r = toks[0]
	if r.Kind != REDIR || r.Op != RedirClose || r.Fd != 2 {
		t.Errorf("got %+v, want close 2", r)
	}

	toks, err = Lex("a |[2] b")
	if err != nil {
		t.Fatal(err)
	}
	r = toks[1]
	if r.Kind != PIPE || r.Fd != 2 {
		t.Errorf("got %+v, want pipe fd 2", r)
	}

	toks, err = Lex(">>[2] log")
	if err != nil {
		t.Fatal(err)
	}
	r = toks[0]
	if r.Kind != REDIR || r.Op != RedirAppend || r.Fd != 2 {
		t.Errorf("got %+v, want append fd 2", r)
	}
}

func TestLexSpaceBefore(t *testing.T) {
	toks, err := Lex("fn-$func a$b $c(1)")
	if err != nil {
		t.Fatal(err)
	}
	// fn- $ func  a $ b  $ c (1): adjacency must be recorded.
	if toks[1].SpaceBefore { // '$' after fn-
		t.Error("$ after fn- should be adjacent")
	}
	if !toks[3].SpaceBefore { // 'a' begins a new word
		t.Error("a should have space before")
	}
	adjParen := toks[8]
	if adjParen.Kind != LPAREN || adjParen.SpaceBefore {
		t.Errorf("subscript paren should be adjacent, got %v", adjParen)
	}
}

// Words made of safe characters always lex to a single WORD token with the
// same text.
func TestLexWordRoundTripProperty(t *testing.T) {
	safe := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789%-_./+:,*?"
	f := func(idx []uint8) bool {
		if len(idx) == 0 {
			return true
		}
		var b strings.Builder
		for _, i := range idx {
			b.WriteByte(safe[int(i)%len(safe)])
		}
		word := b.String()
		toks, err := Lex(word)
		if err != nil {
			return false
		}
		return len(toks) == 2 && toks[0].Kind == WORD && toks[0].Text == word
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Any string survives a quote-then-lex round trip.
func TestLexQuoteRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		quoted := "'" + strings.ReplaceAll(s, "'", "''") + "'"
		toks, err := Lex(quoted)
		if err != nil {
			return false
		}
		return len(toks) == 2 && toks[0].Kind == QWORD && toks[0].Text == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLexHeredoc(t *testing.T) {
	src := "cat << EOF\nline 1\nline 2\nEOF\necho after"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	// cat, REDIR(heredoc), NEWLINE, echo, after, EOF
	if toks[1].Kind != REDIR || !toks[1].Heredoc {
		t.Fatalf("token 1 = %+v", toks[1])
	}
	if toks[1].Text != "line 1\nline 2\n" {
		t.Errorf("body = %q", toks[1].Text)
	}
	rest := []Kind{WORD, REDIR, NEWLINE, WORD, WORD, EOF}
	for k, want := range rest {
		if toks[k].Kind != want {
			t.Errorf("token %d = %v, want %v", k, toks[k].Kind, want)
		}
	}
}

func TestLexHeredocUnterminated(t *testing.T) {
	for _, src := range []string{"cat << EOF", "cat << EOF\nbody without end"} {
		_, err := Lex(src)
		if err == nil || !IsIncomplete(err) {
			t.Errorf("Lex(%q): err = %v, want incomplete", src, err)
		}
	}
	if _, err := Lex("cat << "); err == nil {
		t.Error("missing tag should error")
	}
}

func TestParseHeredocPipeline(t *testing.T) {
	b, err := Parse("cat << A | tr x y\nbody\nA")
	if err != nil {
		t.Fatal(err)
	}
	core := UnparseBody(Rewrite(b).(*Block))
	if core != "%pipe {%here 0 'body\n' {cat}} 1 0 {tr x y}" {
		t.Errorf("heredoc core = %q", core)
	}
}

func TestLexTwoHeredocsSequential(t *testing.T) {
	src := "a << X\none\nX\nb << Y\ntwo\nY"
	b, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Cmds) != 2 {
		t.Fatalf("got %d cmds", len(b.Cmds))
	}
}
