package syntax

import (
	"math/rand"
	"strings"
	"testing"
)

func pretty(t *testing.T, src string) string {
	t.Helper()
	blk, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return Pretty(blk)
}

func TestPrettyBasics(t *testing.T) {
	tests := []struct{ src, want string }{
		{"a;b;c", "a\nb\nc\n"},
		{"echo hi", "echo hi\n"},
		{"fn f {a; b}", "fn f {\n\ta\n\tb\n}\n"},
		{"fn g x y {one}", "fn g x y {one}\n"},
		{"fn g x y {one; two}", "fn g x y {\n\tone\n\ttwo\n}\n"},
		{"if {cond} {a;b}", "if {cond} {\n\ta\n\tb\n}\n"},
		{"if {cond} {a}", "if {cond} {a}\n"},
		{"let (x = 1) {a; b}", "let (x = 1) {\n\ta\n\tb\n}\n"},
		{"let (x = 1) a", "let (x = 1) a\n"},
		{"for (i = 1 2) {a;b}", "for (i = 1 2) {\n\ta\n\tb\n}\n"},
		{"x = {a;b}", "x = {\n\ta\n\tb\n}\n"},
		{"x = @ p {a;b}", "x = @ p {\n\ta\n\tb\n}\n"},
		{"a | b > f", "%pipe isn't rewritten: surface stays"},
		{"", ""},
	}
	for _, tt := range tests {
		if tt.want == "%pipe isn't rewritten: surface stays" {
			got := pretty(t, tt.src)
			if got != "a | b > f\n" {
				t.Errorf("Pretty(%q) = %q", tt.src, got)
			}
			continue
		}
		if got := pretty(t, tt.src); got != tt.want {
			t.Errorf("Pretty(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestPrettyNesting(t *testing.T) {
	src := "fn outer {if {cond} {x = 1; inner; while {go} {step; step2}}}"
	got := pretty(t, src)
	want := `fn outer {
	if {cond} {
		x = 1
		inner
		while {go} {
			step
			step2
		}
	}
}
`
	if got != want {
		t.Errorf("nested pretty:\n%s\nwant:\n%s", got, want)
	}
}

// Pretty output always re-parses to the same program (the esfmt safety
// guarantee), across the random program generator.
func TestPrettyRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		g := &progGen{r: r, depth: 4}
		prog := g.block(1 + r.Intn(4))
		canonical := UnparseBody(prog)
		formatted := Pretty(prog)
		reparsed, err := Parse(formatted)
		if err != nil {
			t.Fatalf("iter %d: pretty output does not parse:\n%s\nerr: %v", iter, formatted, err)
		}
		if UnparseBody(reparsed) != canonical {
			t.Fatalf("iter %d: pretty changed the program:\nsrc:  %s\nfmt:\n%s\nback: %s",
				iter, canonical, formatted, UnparseBody(reparsed))
		}
	}
}

func TestPrettyIdempotent(t *testing.T) {
	srcs := []string{
		"fn f {a; b; if {c} {d; e}}",
		"let (x = {p; q}) {r; s}",
		"watch = @ v {echo old; echo new; return $*}",
	}
	for _, src := range srcs {
		once := pretty(t, src)
		blk, err := Parse(once)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		twice := Pretty(blk)
		if once != twice {
			t.Errorf("not idempotent:\nonce:\n%s\ntwice:\n%s", once, twice)
		}
	}
}

func TestPrettyPreservesComplexWords(t *testing.T) {
	src := `x = $a(1 2)^'q w'^` + "`" + `{cmd}; echo $#v $^w <>{r}`
	got := pretty(t, src)
	if !strings.Contains(got, "$a(1 2)") || !strings.Contains(got, "$#v") {
		t.Errorf("words mangled: %q", got)
	}
}
