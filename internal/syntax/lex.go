package syntax

import (
	"fmt"
	"strings"
)

// ErrIncomplete is reported (wrapped in *ParseError with Incomplete set)
// when the input ends inside a construct that could be completed by more
// input: an open brace, paren, or quote.  The REPL uses it to prompt for
// continuation lines.
type ParseError struct {
	Line       int
	Col        int
	Msg        string
	Incomplete bool
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// IsIncomplete reports whether err is a parse error that more input could
// resolve (unterminated quote, brace, or paren).
func IsIncomplete(err error) bool {
	pe, ok := err.(*ParseError)
	return ok && pe.Incomplete
}

type lexer struct {
	src        string
	pos        int
	line       int
	col        int
	space      bool // whitespace seen since last token
	prevDollar bool // previous token was $, $#, $$ or $&
	err        *ParseError

	// skips are [start,end) source regions consumed out of band —
	// heredoc bodies, which belong to an earlier << token rather than
	// the token stream.  Sorted by start.
	skips []skipRegion
}

type skipRegion struct{ start, end int }

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(incomplete bool, format string, args ...interface{}) {
	if l.err == nil {
		l.err = &ParseError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...), Incomplete: incomplete}
	}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// wordBreak reports whether c terminates an unquoted word.
// '~', '@' and '!' are special only at the start of a token, so they do not
// break words; '=' does (rc heritage: quote it to pass it literally).
func wordBreak(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', ';', '&', '|', '^', '$', '\'', '{', '}', '(', ')', '<', '>', '=', '`', '#', 0:
		return true
	}
	return false
}

// isNameChar reports whether c may appear in a variable name following
// '$'.  Names are more restricted than words: "$dir:" is the variable dir
// followed by a literal colon and "$prog.es" is $prog with an .es suffix,
// but fn-%pipe and path-cache are names.  (Dotted names like fn-. are
// reachable through the computed form $(fn-.).)
func isNameChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == '%' || c == '*' || c == '-':
		return true
	}
	return false
}

// next scans and returns the next token.
func (l *lexer) next() Token {
	l.skipSpace()
	tok := Token{Line: l.line, Col: l.col, SpaceBefore: l.space, Fd: -1, Fd2: -1}
	l.space = false
	wasDollar := l.prevDollar
	l.prevDollar = false
	if l.pos >= len(l.src) {
		tok.Kind = EOF
		return tok
	}
	c := l.peek()
	if wasDollar && !tok.SpaceBefore && isNameChar(c) {
		tok.Kind = WORD
		tok.Text = l.lexVarName()
		return tok
	}
	switch c {
	case '\n', '\r':
		l.advance()
		tok.Kind = NEWLINE
		return tok
	case ';':
		l.advance()
		tok.Kind = SEMI
		return tok
	case '&':
		l.advance()
		if l.peek() == '&' {
			l.advance()
			tok.Kind = ANDAND
			return tok
		}
		tok.Kind = AMP
		return tok
	case '|':
		l.advance()
		if l.peek() == '|' {
			l.advance()
			tok.Kind = OROR
			return tok
		}
		tok.Kind = PIPE
		if l.peek() == '[' {
			l.lexFdSpec(&tok)
		}
		return tok
	case '^':
		l.advance()
		tok.Kind = CARET
		return tok
	case '(':
		l.advance()
		tok.Kind = LPAREN
		return tok
	case ')':
		l.advance()
		tok.Kind = RPAREN
		return tok
	case '{':
		l.advance()
		tok.Kind = LBRACE
		return tok
	case '}':
		l.advance()
		tok.Kind = RBRACE
		return tok
	case '=':
		l.advance()
		tok.Kind = EQUALS
		return tok
	case '@':
		l.advance()
		tok.Kind = AT
		return tok
	case '!':
		l.advance()
		tok.Kind = BANG
		return tok
	case '~':
		l.advance()
		if l.peek() == '~' {
			l.advance()
			tok.Kind = EXTRACT
			return tok
		}
		tok.Kind = TILDE
		return tok
	case '`':
		l.advance()
		tok.Kind = BQUOTE
		return tok
	case '$':
		l.advance()
		switch l.peek() {
		case '#':
			l.advance()
			tok.Kind = COUNT
		case '$':
			l.advance()
			tok.Kind = DOUBLE
		case '&':
			l.advance()
			tok.Kind = PRIM
		case '^':
			l.advance()
			tok.Kind = FLAT
		default:
			tok.Kind = DOLLAR
		}
		l.prevDollar = true
		return tok
	case '\'':
		l.advance()
		tok.Kind = QWORD
		tok.Text = l.lexQuoted()
		return tok
	case '<':
		l.advance()
		if (l.peek() == '>' || l.peek() == '=') && l.peekAt(1) == '{' {
			l.advance()
			tok.Kind = RETSUB
			return tok
		}
		if l.peek() == '<' && l.peekAt(1) == '<' {
			l.advance()
			l.advance()
			tok.Kind = REDIR
			tok.Op = RedirHere
			tok.Fd = 0
			return tok
		}
		if l.peek() == '<' {
			// << TAG heredoc: the body is collected out of band and
			// delivered in the token's Text.
			l.advance()
			tok.Kind = REDIR
			tok.Op = RedirHere
			tok.Fd = 0
			tok.Heredoc = true
			tok.Text = l.lexHeredoc()
			return tok
		}
		tok.Kind = REDIR
		tok.Op = RedirFrom
		tok.Fd = 0
		if l.peek() == '[' {
			l.lexFdSpec(&tok)
		}
		return tok
	case '>':
		l.advance()
		tok.Kind = REDIR
		tok.Op = RedirTo
		tok.Fd = 1
		if l.peek() == '>' {
			l.advance()
			tok.Op = RedirAppend
		}
		if l.peek() == '[' {
			l.lexFdSpec(&tok)
			if tok.Fd2 >= 0 {
				tok.Op = RedirDup
			} else if tok.Op == RedirClose {
				// already set by lexFdSpec for >[n=]
				_ = tok
			}
		}
		return tok
	default:
		tok.Kind = WORD
		tok.Text = l.lexWord()
		if tok.Text == "" {
			// A word-breaking byte with no token of its own (e.g. NUL):
			// reject it rather than looping on an empty word.
			l.errorf(false, "invalid character %q", c)
			tok.Kind = EOF
		}
		return tok
	}
}

// lexHeredoc scans "<< TAG" (the "<<" already consumed): it reads the
// tag, finds the body between the next newline and a line consisting of
// the tag alone, records that region to be skipped by the token stream,
// and returns the body.  Bodies are literal: no substitution is
// performed, as with a quoted tag in traditional shells.
func (l *lexer) lexHeredoc() string {
	for l.peek() == ' ' || l.peek() == '\t' {
		l.advance()
	}
	start := l.pos
	for l.pos < len(l.src) && !wordBreak(l.peek()) {
		l.advance()
	}
	tag := l.src[start:l.pos]
	if tag == "" {
		l.errorf(false, "expected heredoc tag after <<")
		return ""
	}
	// Find the start of the body: just past the next newline.
	nl := strings.IndexByte(l.src[l.pos:], '\n')
	if nl < 0 {
		l.errorf(true, "unterminated heredoc %s", tag)
		return ""
	}
	bodyStart := l.pos + nl + 1
	// Find the terminator line.
	search := bodyStart
	for {
		if search >= len(l.src) {
			l.errorf(true, "unterminated heredoc %s", tag)
			return ""
		}
		lineEnd := strings.IndexByte(l.src[search:], '\n')
		var line string
		var next int
		if lineEnd < 0 {
			line = l.src[search:]
			next = len(l.src)
		} else {
			line = l.src[search : search+lineEnd]
			next = search + lineEnd + 1
		}
		if line == tag {
			body := l.src[bodyStart:search]
			l.skips = append(l.skips, skipRegion{bodyStart, next})
			return body
		}
		if lineEnd < 0 {
			l.errorf(true, "unterminated heredoc %s", tag)
			return ""
		}
		search = next
	}
}

// applySkips jumps the cursor over any heredoc body region it has
// reached.
func (l *lexer) applySkips() {
	for len(l.skips) > 0 && l.pos >= l.skips[0].start {
		if l.pos < l.skips[0].end {
			l.pos = l.skips[0].end
			l.line++ // approximate: body lines are opaque
		}
		l.skips = l.skips[1:]
	}
}

func (l *lexer) skipSpace() {
	l.applySkips()
	for l.pos < len(l.src) {
		l.applySkips()
		c := l.peek()
		switch {
		case c == ' ' || c == '\t':
			l.advance()
			l.space = true
		case c == '\\' && l.peekAt(1) == '\n':
			l.advance()
			l.advance()
			l.space = true
		case c == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// lexQuoted scans a single-quoted string; ” inside quotes is a literal
// quote, as in rc.  The opening quote has been consumed.
func (l *lexer) lexQuoted() string {
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			l.errorf(true, "unterminated quote")
			return b.String()
		}
		c := l.advance()
		if c == '\'' {
			if l.peek() == '\'' {
				l.advance()
				b.WriteByte('\'')
				continue
			}
			return b.String()
		}
		b.WriteByte(c)
	}
}

func (l *lexer) lexWord() string {
	start := l.pos
	for l.pos < len(l.src) && !wordBreak(l.peek()) {
		l.advance()
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexVarName() string {
	start := l.pos
	for l.pos < len(l.src) && isNameChar(l.peek()) {
		l.advance()
	}
	return l.src[start:l.pos]
}

// lexFdSpec scans a [n] or [n=m] or [n=] descriptor annotation following a
// redirection or pipe operator.
func (l *lexer) lexFdSpec(tok *Token) {
	l.advance() // '['
	n, ok := l.lexNumber()
	if !ok {
		l.errorf(false, "expected file descriptor number after '['")
		return
	}
	tok.Fd = n
	if l.peek() == '=' {
		l.advance()
		if l.peek() == ']' {
			tok.Op = RedirClose
		} else {
			m, ok := l.lexNumber()
			if !ok {
				l.errorf(false, "expected file descriptor number after '='")
				return
			}
			tok.Fd2 = m
		}
	}
	if l.peek() != ']' {
		l.errorf(false, "expected ']' in file descriptor annotation")
		return
	}
	l.advance()
}

func (l *lexer) lexNumber() (int, bool) {
	n, any := 0, false
	for l.peek() >= '0' && l.peek() <= '9' {
		n = n*10 + int(l.advance()-'0')
		any = true
		if n > maxFd {
			l.errorf(false, "file descriptor out of range")
			return 0, false
		}
	}
	return n, any
}

// maxFd bounds descriptor annotations; anything larger is a typo, not a
// file descriptor.
const maxFd = 1 << 20

// Lex tokenizes src completely; used by esdump and tests.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t := l.next()
		toks = append(toks, t)
		if t.Kind == EOF || l.err != nil {
			break
		}
	}
	if l.err != nil {
		return toks, l.err
	}
	return toks, nil
}
