package syntax

import (
	"strings"
	"testing"
)

// parseUnparse parses src and unparses the surface tree.
func parseUnparse(t *testing.T, src string) string {
	t.Helper()
	b, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return UnparseBody(b)
}

func TestParseSurface(t *testing.T) {
	tests := []struct {
		src  string
		want string // unparsed surface form; "" means identical to src
	}{
		{"cd /tmp", ""},
		{"rm Ex*", ""},
		{"a; b; c", ""},
		{"a | b", ""},
		{"a |[2] b", ""},
		{"a |[2=3] b", ""},
		{"a && b", ""},
		{"a || b", ""},
		{"! a", ""},
		{"~ $e error", ""},
		{"~ $#head 0", ""},
		{"a &", ""},
		{"x = foo bar", ""},
		{"x =", ""},
		{"mixed = {ls} hello, {wc} world", ""},
		{"echo $mixed(2) $mixed(4)", ""},
		{"$mixed(1) | $mixed(3)", ""},
		{"fn d {date +%y-%m-%d}", ""},
		{"fn apply cmd args {for (i = $args) $cmd $i}", ""},
		{"fn rev3 a b c {echo $c $b $a}", ""},
		{"fn trace", ""},
		{"@ i {cd $i; rm -f *} /tmp", ""},
		{"apply @ i {cd $i; rm -f *} /tmp /usr/tmp", ""},
		{"let (x = bar) echo $x", ""},
		{"local (x = baz) {echo $x; fn dynamic {echo $x}}", ""},
		{"let (h = hello; w = world) {hi = {echo $h, $w}}", ""},
		{"for (i = $args) $cmd $i", ""},
		{"echo <>{hello-world}", ""},
		{"echo <>{car <>{cdr <>{cons 1 nil}}}", ""},
		{"ls > /tmp/foo", ""},
		{"%create 1 /tmp/foo {ls}", ""},
		{"echo >[1=2] in $dir: $msg", "echo in $dir: $msg >[1=2]"},
		{"cat < in > out", "cat < in > out"},
		{"a >> log", "a >> log"},
		{"silly-command = {echo hi}", ""},
		{"$silly-command", ""},
		{"fn-echon = @ args {echo -n $args}", ""},
		{"title `{pwd}", ""},
		{"throw error 'usage: in dir cmd'", ""},
		{"catch @ e args {handler} {body}", ""},
		{"if {~ $#dir 0} {throw error usage}", ""},
		{"echo $$var", ""},
		{"set-$var = @ {return $*}", ""},
		{"let (old = $(fn-$func)) fn $func args {echo calling $func $args; $old $args}", ""},
		{"path-cache = $path-cache $prog", ""},
		{"fn-$prog = $file", ""},
		{"x = a^b", "x = a^b"},
		{"echo (a b c)", ""},
		{"a\nb", "a; b"},
		{"ps aux | grep '^byron' |\nawk '{print $2}' | xargs kill -9",
			"ps aux | grep '^byron' | awk '{print $2}' | xargs kill -9"},
		{"while {} {%prompt}", ""},
		{"echo hi # comment", "echo hi"},
		{";", ""},
		{"", ""},
	}
	for _, tt := range tests {
		got := parseUnparse(t, tt.src)
		want := tt.want
		if want == "" {
			want = tt.src
		}
		// empty-program cases
		if tt.src == ";" || tt.src == "" {
			want = ""
		}
		if got != want {
			t.Errorf("Parse(%q) unparsed to %q, want %q", tt.src, got, want)
		}
	}
}

// Unparsed surface output must re-parse to the same unparsed output
// (idempotence of the round trip).
func TestUnparseRoundTrip(t *testing.T) {
	srcs := []string{
		"cd /tmp",
		"a | b && c | d",
		"fn apply cmd args {for (i = $args) $cmd $i}",
		"let (old = $(fn-$func)) fn $func args {echo calling $func $args; $old $args}",
		"catch @ e msg {if {~ $e error} {echo >[1=2] in $dir: $msg} {throw $e $msg}} {cd $dir; $cmd}",
		"fn %interactive-loop {let (result = 0) {catch @ e msg {if {~ $e eof} {return $result} {~ $e error} {echo >[1=2] $msg} {echo >[1=2] uncaught exception: $e $msg}; throw retry} {while {} {%prompt; let (cmd = <>{%parse $prompt}) {result = <>{$cmd}}}}}}",
		"ls > /tmp/foo >> x < y >[2=1]",
		"echo 'a''b' c^d e$f",
		"x = ({a} {b}) last",
	}
	for _, src := range srcs {
		once := parseUnparse(t, src)
		twice := parseUnparse(t, once)
		if once != twice {
			t.Errorf("round trip not idempotent:\n src: %s\nonce: %s\ntwice: %s", src, once, twice)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		src        string
		incomplete bool
	}{
		{"{a; b", true},
		{"'oops", true},
		{"let (x = a", true},
		{"@ i", true},
		{"echo <>{", true},
		{"fn", true},
		{"a | ", true},
		{"(a b", true},
		{"a }", false},
		{"a ) b", false},
		{"= b", false},
		{"$", true},
		{"echo $mixed(", true},
	}
	for _, tt := range tests {
		_, err := Parse(tt.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error", tt.src)
			continue
		}
		if IsIncomplete(err) != tt.incomplete {
			t.Errorf("Parse(%q): incomplete = %v, want %v (err: %v)", tt.src, IsIncomplete(err), tt.incomplete, err)
		}
	}
}

func TestParseLambdaShapes(t *testing.T) {
	b, err := Parse("@ a b {echo}; {echo}; @ {echo}")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Cmds) != 3 {
		t.Fatalf("got %d cmds", len(b.Cmds))
	}
	get := func(c Cmd) *Lambda {
		s := c.(*Simple)
		return s.Words[0].Parts[0].(*LambdaPart).Lambda
	}
	l0 := get(b.Cmds[0])
	if !l0.HasParams || len(l0.Params) != 2 || l0.Params[0] != "a" {
		t.Errorf("lambda 0: %+v", l0)
	}
	l1 := get(b.Cmds[1])
	if l1.HasParams || len(l1.Params) != 0 {
		t.Errorf("lambda 1: %+v", l1)
	}
	l2 := get(b.Cmds[2])
	if !l2.HasParams || len(l2.Params) != 0 {
		t.Errorf("lambda 2: %+v", l2)
	}
}

func TestParseAssignDetection(t *testing.T) {
	b, err := Parse("x=foo bar")
	if err != nil {
		t.Fatal(err)
	}
	a, ok := b.Cmds[0].(*Assign)
	if !ok {
		t.Fatalf("got %T, want *Assign", b.Cmds[0])
	}
	name, _ := a.Name.LitText()
	if name != "x" || len(a.Values) != 2 {
		t.Errorf("assign = %s with %d values", name, len(a.Values))
	}
}

func TestParseWordConcat(t *testing.T) {
	b, err := Parse("echo fn-$func a^b")
	if err != nil {
		t.Fatal(err)
	}
	s := b.Cmds[0].(*Simple)
	if len(s.Words) != 3 {
		t.Fatalf("got %d words, want 3", len(s.Words))
	}
	w := s.Words[1]
	if len(w.Parts) != 2 {
		t.Fatalf("fn-$func has %d parts, want 2", len(w.Parts))
	}
	if _, ok := w.Parts[0].(*Lit); !ok {
		t.Errorf("part 0 is %T", w.Parts[0])
	}
	if _, ok := w.Parts[1].(*Var); !ok {
		t.Errorf("part 1 is %T", w.Parts[1])
	}
	w = s.Words[2]
	if len(w.Parts) != 2 {
		t.Fatalf("a^b has %d parts, want 2", len(w.Parts))
	}
}

func TestParseMultilineFunction(t *testing.T) {
	src := `fn echo-nl head tail {
	if {!~ $#head 0} {
		echo $head
		echo-nl $tail
	}
}`
	b, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := b.Cmds[0].(*Fn)
	if !ok {
		t.Fatalf("got %T", b.Cmds[0])
	}
	if name, _ := fn.Name.LitText(); name != "echo-nl" {
		t.Errorf("name %q", name)
	}
	if len(fn.Lambda.Params) != 2 {
		t.Errorf("params %v", fn.Lambda.Params)
	}
	if len(fn.Lambda.Body.Cmds) != 1 {
		t.Errorf("body has %d cmds", len(fn.Lambda.Body.Cmds))
	}
	inner := fn.Lambda.Body.Cmds[0].(*Simple)
	if word, _ := inner.Words[0].LitText(); word != "if" {
		t.Errorf("inner starts with %q", word)
	}
}

func TestParsePrompt(t *testing.T) {
	// The default "; " prompt pastes back as a null command + separator.
	b, err := Parse("; echo hi")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Cmds) != 1 {
		t.Fatalf("got %d cmds, want 1", len(b.Cmds))
	}
}

func TestParseBgChain(t *testing.T) {
	b, err := Parse("sleep 1 & echo done")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Cmds) != 1 {
		t.Fatalf("got %d cmds", len(b.Cmds))
	}
	if !strings.Contains(UnparseBody(b), "&") {
		t.Error("lost the &")
	}
}
