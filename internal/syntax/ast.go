package syntax

// The AST.  Parse produces surface nodes; Rewrite lowers the surface sugar
// (pipes, redirections, background, && and ||, fn definitions) into core
// forms: calls on %-hook functions, assignments, and the binding forms.
//
// Nodes shared by both layers: Word and its Parts, Block, Simple, Assign,
// Let, Local, For, Match, Not, Lambda.
// Surface-only nodes eliminated by Rewrite: Pipe, AndOr, Bg, RedirCmd, Fn.

// Pos is a source position: 1-based line and column.  The zero Pos means
// "unknown" — synthesized nodes the rewriter cannot anchor to any source
// token.  Positions ride along for diagnostics (the static analyzer and
// evaluator error messages); they never affect evaluation.
type Pos struct {
	Line int
	Col  int
}

// Known reports whether the position refers to real source text.
func (p Pos) Known() bool { return p.Line > 0 }

func (p Pos) String() string {
	return itoa(p.Line) + ":" + itoa(p.Col)
}

// Cmd is any command node.
type Cmd interface{ cmd() }

// CmdPos returns the source position of a command node (the zero Pos
// when unknown).
func CmdPos(c Cmd) Pos {
	switch c := c.(type) {
	case *Block:
		return c.Pos
	case *Simple:
		return c.Pos
	case *Assign:
		return c.Pos
	case *Let:
		return c.Pos
	case *Local:
		return c.Pos
	case *For:
		return c.Pos
	case *Match:
		return c.Pos
	case *MatchExtract:
		return c.Pos
	case *Not:
		return c.Pos
	case *Pipe:
		return c.Pos
	case *AndOr:
		return c.Pos
	case *Bg:
		return c.Pos
	case *RedirCmd:
		return c.Pos
	case *Fn:
		return c.Pos
	}
	return Pos{}
}

// Part is one component of a Word.
type Part interface{ part() }

// Word is a (possibly concatenated) word: adjacent parts with no
// intervening space, or parts joined by '^'.
type Word struct {
	Parts []Part
	Pos   Pos
}

// Lit is literal text.  Quoted text is exempt from globbing.
type Lit struct {
	Text   string
	Quoted bool
}

// Var is a variable reference: $name, $#name (count), $$name (double
// dereference), with an optional subscript list $name(i j ...).
// Name is itself a Word so computed names like $(fn-$func) work.
type Var struct {
	Name   *Word
	Count  bool
	Double bool
	Flat   bool // $^name: the value joined into one word
	Index  []*Word
	Pos    Pos
}

// Prim is a $&name primitive reference.
type Prim struct {
	Name string
	Pos  Pos
}

// CmdSub is `{...}: run the block, capture its output, split on $ifs.
type CmdSub struct {
	Body *Block
	Pos  Pos
}

// RetSub is <>{...} (also spelled <={...}): run the block and splice its
// rich return value into the word list.
type RetSub struct {
	Body *Block
	Pos  Pos
}

// LambdaPart is a lambda in word position: @ params {body} or a bare
// {body} fragment.
type LambdaPart struct {
	Lambda *Lambda
}

// ListPart is a parenthesised word list (a b c), spliced into place.
type ListPart struct {
	Words []*Word
}

// Lambda is a procedure value waiting to happen.  HasParams distinguishes
// "@ {body}" (declared, zero parameters) from "{body}" (no parameter list:
// arguments bind to *).
type Lambda struct {
	Params    []string
	HasParams bool
	Body      *Block
	Pos       Pos
}

// Block is a brace-enclosed (or top-level) command sequence.
type Block struct {
	Cmds []Cmd
	Pos  Pos
}

// Simple is a command invocation: evaluate the words, apply the first
// value to the rest.  Redirs is only populated on surface trees; Rewrite
// folds them into %create/%append/%open/%dup calls.
type Simple struct {
	Words  []*Word
	Redirs []*Redir
	Pos    Pos
}

// Redir is one surface redirection.
type Redir struct {
	Op     RedirOp
	Fd     int
	Fd2    int // for RedirDup
	Target *Word
	Pos    Pos
}

// Assign is name = values.  Name is a Word (computed targets such as
// fn-$i = ... are allowed).
type Assign struct {
	Name   *Word
	Values []*Word
	Pos    Pos
}

// Binding is one name = values pair in let/local/for headers.
type Binding struct {
	Name   *Word
	Values []*Word
}

// Let lexically binds names around Body.
type Let struct {
	Bindings []Binding
	Body     Cmd
	Pos      Pos
}

// Local dynamically binds names around Body (old values restored after).
type Local struct {
	Bindings []Binding
	Body     Cmd
	Pos      Pos
}

// For iterates bindings in parallel over their value lists.
type For struct {
	Bindings []Binding
	Body     Cmd
	Pos      Pos
}

// Match is ~ subject patterns...
type Match struct {
	Subject *Word
	Pats    []*Word
	Pos     Pos
}

// MatchExtract is ~~ subject patterns...: like Match, but the result is
// the text matched by each wildcard of the first pattern that matches.
type MatchExtract struct {
	Subject *Word
	Pats    []*Word
	Pos     Pos
}

// Not inverts the truth of its command (the paper's ! command).
type Not struct {
	Body Cmd
	Pos  Pos
}

// Surface-only nodes.

// Pipe is left |[LFd=RFd] right.  Fds default to 1 and 0.
type Pipe struct {
	Left  Cmd
	LFd   int
	RFd   int
	Right Cmd
	Pos   Pos
}

// AndOr is && / ||.
type AndOr struct {
	Op    Kind // ANDAND or OROR
	Left  Cmd
	Right Cmd
	Pos   Pos
}

// Bg is cmd &.
type Bg struct {
	Body Cmd
	Pos  Pos
}

// RedirCmd attaches redirections to an arbitrary command, e.g. {a;b} > f.
type RedirCmd struct {
	Body   Cmd
	Redirs []*Redir
	Pos    Pos
}

// Fn is fn name params {body}; sugar for fn-name = @ params {body}.
// A bare "fn name" (no body) undefines the function.
type Fn struct {
	Name   *Word
	Lambda *Lambda // nil to undefine
	Pos    Pos
}

func (*Word) part()       {}
func (*Lit) part()        {}
func (*Var) part()        {}
func (*Prim) part()       {}
func (*CmdSub) part()     {}
func (*RetSub) part()     {}
func (*LambdaPart) part() {}
func (*ListPart) part()   {}

func (*Block) cmd()        {}
func (*Simple) cmd()       {}
func (*Assign) cmd()       {}
func (*Let) cmd()          {}
func (*Local) cmd()        {}
func (*For) cmd()          {}
func (*Match) cmd()        {}
func (*MatchExtract) cmd() {}
func (*Not) cmd()          {}
func (*Pipe) cmd()         {}
func (*AndOr) cmd()        {}
func (*Bg) cmd()           {}
func (*RedirCmd) cmd()     {}
func (*Fn) cmd()           {}

// LitWord constructs a Word holding unquoted literal text.
func LitWord(text string) *Word {
	return &Word{Parts: []Part{&Lit{Text: text}}}
}

// QuotedWord constructs a Word holding quoted literal text.
func QuotedWord(text string) *Word {
	return &Word{Parts: []Part{&Lit{Text: text, Quoted: true}}}
}

// LambdaWord wraps a lambda as a word.
func LambdaWord(l *Lambda) *Word {
	return &Word{Parts: []Part{&LambdaPart{Lambda: l}}}
}

// BlockLambda wraps a command as a parameterless {…} fragment word.
func BlockLambda(c Cmd) *Word {
	b, ok := c.(*Block)
	if !ok {
		b = &Block{Cmds: []Cmd{c}}
	}
	return LambdaWord(&Lambda{Body: b})
}

// LitText returns the text of a Word consisting of a single literal part,
// and whether it is such a word.
func (w *Word) LitText() (string, bool) {
	if w == nil || len(w.Parts) != 1 {
		return "", false
	}
	l, ok := w.Parts[0].(*Lit)
	if !ok {
		return "", false
	}
	return l.Text, true
}
