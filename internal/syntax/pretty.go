package syntax

import "strings"

// Pretty renders a program in canonical multi-line form: one command per
// line, brace bodies indented with tabs, binding forms split when their
// bodies are blocks.  The output parses back to the same tree (the same
// guarantee Unparse gives), so esfmt can rewrite scripts safely.
func Pretty(blk *Block) string {
	var p prettyPrinter
	p.seqLines(blk, 0)
	out := strings.Join(p.lines, "\n")
	if out != "" {
		out += "\n"
	}
	return out
}

type prettyPrinter struct {
	lines []string
}

func (p *prettyPrinter) emit(depth int, text string) {
	p.lines = append(p.lines, strings.Repeat("\t", depth)+text)
}

// seqLines prints each command of a block on its own line.
func (p *prettyPrinter) seqLines(blk *Block, depth int) {
	for _, c := range blk.Cmds {
		p.cmdLines(c, depth)
	}
}

// blockNeedsSplit reports whether a brace body deserves its own lines:
// more than one command, or a single command that itself splits.
func blockNeedsSplit(b *Block) bool {
	if b == nil {
		return false
	}
	return len(b.Cmds) > 1 || (len(b.Cmds) == 1 && bodyIsMultiline(b.Cmds[0]))
}

// bodyIsMultiline reports whether a command deserves brace-and-indent
// treatment: more than one command, or a nested multi-line body.
func bodyIsMultiline(c Cmd) bool {
	switch c := c.(type) {
	case *Block:
		return blockNeedsSplit(c)
	case *Simple:
		// A simple command whose trailing argument is a brace body that
		// splits prints multi-line (fn-style definitions).
		for _, w := range c.Words {
			if lp, ok := singleLambda(w); ok && blockNeedsSplit(lp.Body) {
				return true
			}
		}
	case *Let:
		return bodyIsMultiline(c.Body)
	case *Local:
		return bodyIsMultiline(c.Body)
	case *For:
		return bodyIsMultiline(c.Body)
	case *Fn:
		return c.Lambda != nil && blockNeedsSplit(c.Lambda.Body)
	case *Assign:
		for _, w := range c.Values {
			if lp, ok := singleLambda(w); ok && blockNeedsSplit(lp.Body) {
				return true
			}
		}
	}
	return false
}

func singleLambda(w *Word) (*Lambda, bool) {
	if w == nil || len(w.Parts) != 1 {
		return nil, false
	}
	lp, ok := w.Parts[0].(*LambdaPart)
	if !ok {
		return nil, false
	}
	return lp.Lambda, true
}

// cmdLines prints one command, splitting brace bodies across lines when
// they hold more than one command.
func (p *prettyPrinter) cmdLines(c Cmd, depth int) {
	switch c := c.(type) {
	case nil:
		return
	case *Block:
		if !bodyIsMultiline(c) {
			p.emit(depth, Unparse(c))
			return
		}
		p.emit(depth, "{")
		p.seqLines(c, depth+1)
		p.emit(depth, "}")
	case *Fn:
		if c.Lambda == nil || !blockNeedsSplit(c.Lambda.Body) {
			p.emit(depth, Unparse(c))
			return
		}
		var head strings.Builder
		head.WriteString("fn ")
		printWord(&head, c.Name)
		for _, param := range c.Lambda.Params {
			head.WriteByte(' ')
			head.WriteString(param)
		}
		head.WriteString(" {")
		p.emit(depth, head.String())
		p.seqLines(c.Lambda.Body, depth+1)
		p.emit(depth, "}")
	case *Let, *Local, *For:
		p.bindingLines(c, depth)
	case *Simple:
		p.simpleLines(c, depth)
	case *Assign:
		p.assignLines(c, depth)
	default:
		p.emit(depth, Unparse(c))
	}
}

func (p *prettyPrinter) bindingLines(c Cmd, depth int) {
	var kw string
	var bindings []Binding
	var body Cmd
	switch c := c.(type) {
	case *Let:
		kw, bindings, body = "let", c.Bindings, c.Body
	case *Local:
		kw, bindings, body = "local", c.Bindings, c.Body
	case *For:
		kw, bindings, body = "for", c.Bindings, c.Body
	}
	if !bodyIsMultiline(body) {
		p.emit(depth, Unparse(c))
		return
	}
	var head strings.Builder
	head.WriteString(kw)
	head.WriteString(" (")
	for k, b := range bindings {
		if k > 0 {
			head.WriteString("; ")
		}
		printWord(&head, b.Name)
		head.WriteString(" =")
		for _, v := range b.Values {
			head.WriteByte(' ')
			printWord(&head, v)
		}
	}
	head.WriteString(")")
	if blk := groupBody(body); blk != nil {
		head.WriteString(" {")
		p.emit(depth, head.String())
		p.seqLines(blk, depth+1)
		p.emit(depth, "}")
		return
	}
	// A non-block body (a chained let/for/fn) continues on the next
	// line, indented — the grammar allows a newline after the binding
	// list, so no grouping braces are added.
	p.emit(depth, head.String())
	p.cmdLines(body, depth+1)
}

// groupBody unwraps a command that is just a brace group (directly, or as
// the Simple{lambda} form a reparse produces) to its command sequence.
func groupBody(c Cmd) *Block {
	switch c := c.(type) {
	case *Block:
		return c
	case *Simple:
		if len(c.Words) == 1 && len(c.Redirs) == 0 {
			if l, ok := singleLambda(c.Words[0]); ok && !l.HasParams {
				return l.Body
			}
		}
	}
	return nil
}

// simpleLines splits a trailing multi-command brace argument across
// lines: `if {cond} {a; b; c}` becomes an indented body.
func (p *prettyPrinter) simpleLines(c *Simple, depth int) {
	n := len(c.Words)
	if n == 0 || len(c.Redirs) > 0 {
		p.emit(depth, Unparse(c))
		return
	}
	last, ok := singleLambda(c.Words[n-1])
	if !ok || !blockNeedsSplit(last.Body) || last.HasParams {
		p.emit(depth, Unparse(c))
		return
	}
	var head strings.Builder
	for k := 0; k < n-1; k++ {
		if k > 0 {
			head.WriteByte(' ')
		}
		if k == 0 {
			printCmdWord(&head, c.Words[k])
		} else {
			printWord(&head, c.Words[k])
		}
	}
	if n > 1 {
		head.WriteByte(' ')
	}
	head.WriteByte('{')
	p.emit(depth, head.String())
	p.seqLines(last.Body, depth+1)
	p.emit(depth, "}")
}

func (p *prettyPrinter) assignLines(c *Assign, depth int) {
	n := len(c.Values)
	if n == 0 {
		p.emit(depth, Unparse(c))
		return
	}
	last, ok := singleLambda(c.Values[n-1])
	if !ok || !blockNeedsSplit(last.Body) {
		p.emit(depth, Unparse(c))
		return
	}
	var head strings.Builder
	printWord(&head, c.Name)
	head.WriteString(" =")
	for k := 0; k < n-1; k++ {
		head.WriteByte(' ')
		printWord(&head, c.Values[k])
	}
	head.WriteByte(' ')
	if last.HasParams {
		head.WriteString("@ ")
		for _, param := range last.Params {
			head.WriteString(param)
			head.WriteByte(' ')
		}
	}
	head.WriteByte('{')
	p.emit(depth, head.String())
	p.seqLines(last.Body, depth+1)
	p.emit(depth, "}")
}
