package syntax

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuoteString(t *testing.T) {
	tests := []struct{ in, want string }{
		{"plain", "plain"},
		{"", "''"},
		{"two words", "'two words'"},
		{"don't", "'don''t'"},
		{"a;b", "'a;b'"},
		{"$var", "'$var'"},
		{"a|b", "'a|b'"},
		{"~tilde", "'~tilde'"},
		{"@at", "'@at'"},
		{"!bang", "'!bang'"},
		{"mid~ok", "mid~ok"},
		{"glob*", "glob*"},
		{"a=b", "'a=b'"},
		{"hash#ok", "'hash#ok'"},
		{"{brace", "'{brace'"},
	}
	for _, tt := range tests {
		if got := QuoteString(tt.in); got != tt.want {
			t.Errorf("QuoteString(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// Every string, once quoted, re-lexes to itself as a single word.
func TestQuoteStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "\x00") {
			return true
		}
		toks, err := Lex(QuoteString(s))
		if err != nil {
			return false
		}
		return len(toks) == 2 &&
			(toks[0].Kind == WORD || toks[0].Kind == QWORD) &&
			toks[0].Text == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randProgram builds a random surface AST from a compact grammar; the
// round-trip property below checks parse∘unparse is the identity on
// unparser output.
type progGen struct {
	r     *rand.Rand
	depth int
}

func (g *progGen) word() *Word {
	words := []string{"a", "cmd", "x1", "file.txt", "two words", "Ex*", "%hook", "don't", "-n", "fn-x"}
	switch g.r.Intn(6) {
	case 0:
		return QuotedWord(words[g.r.Intn(len(words))])
	case 1:
		return &Word{Parts: []Part{&Var{Name: LitWord("v" + string(rune('a'+g.r.Intn(3))))}}}
	case 2:
		if g.depth > 0 {
			g.depth--
			return LambdaWord(&Lambda{Body: g.block(1)})
		}
		return LitWord("deep")
	case 3:
		return &Word{Parts: []Part{
			&Lit{Text: "pre"},
			&Var{Name: LitWord("mid")},
			&Lit{Text: ".suf"},
		}}
	case 4:
		return &Word{Parts: []Part{&Var{
			Name:  LitWord("lst"),
			Index: []*Word{LitWord("2")},
		}}}
	default:
		return LitWord(words[g.r.Intn(len(words))])
	}
}

func (g *progGen) cmd() Cmd {
	if g.depth <= 0 {
		return &Simple{Words: []*Word{g.word()}}
	}
	g.depth--
	switch g.r.Intn(8) {
	case 0:
		return &Pipe{Left: g.cmd(), LFd: 1, RFd: 0, Right: g.cmd()}
	case 1:
		op := Kind(ANDAND)
		if g.r.Intn(2) == 0 {
			op = OROR
		}
		return &AndOr{Op: op, Left: g.cmd(), Right: g.cmd()}
	case 2:
		return &Not{Body: g.cmd()}
	case 3:
		return &Match{Subject: g.word(), Pats: []*Word{g.word(), g.word()}}
	case 4:
		return &Let{Bindings: []Binding{{Name: LitWord("lv"), Values: []*Word{g.word()}}}, Body: g.cmd()}
	case 5:
		return &Assign{Name: LitWord("av"), Values: []*Word{g.word(), g.word()}}
	case 6:
		return &RedirCmd{Body: &Simple{Words: []*Word{g.word()}},
			Redirs: []*Redir{{Op: RedirTo, Fd: 1, Target: g.word()}}}
	default:
		ws := []*Word{g.word()}
		for g.r.Intn(3) > 0 {
			ws = append(ws, g.word())
		}
		return &Simple{Words: ws}
	}
}

func (g *progGen) block(n int) *Block {
	b := &Block{}
	for k := 0; k < n; k++ {
		b.Cmds = append(b.Cmds, g.cmd())
	}
	return b
}

// Unparser output always re-parses, and re-unparsing is a fixed point.
func TestRandomProgramRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		g := &progGen{r: r, depth: 4}
		prog := g.block(1 + r.Intn(3))
		src := UnparseBody(prog)
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("iter %d: generated source does not parse: %q: %v", iter, src, err)
		}
		again := UnparseBody(parsed)
		if again != src {
			t.Fatalf("iter %d: round trip not fixed:\n 1: %s\n 2: %s", iter, src, again)
		}
		// And the core form round-trips too.
		coreSrc := UnparseBody(Rewrite(parsed).(*Block))
		coreParsed, err := Parse(coreSrc)
		if err != nil {
			t.Fatalf("iter %d: core form does not parse: %q: %v", iter, coreSrc, err)
		}
		if UnparseBody(Rewrite(coreParsed).(*Block)) != coreSrc {
			t.Fatalf("iter %d: core form not a fixed point: %q", iter, coreSrc)
		}
	}
}

func TestUnparseLambdaShapes(t *testing.T) {
	blk, err := Parse("echo hi")
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		l    *Lambda
		want string
	}{
		{&Lambda{Body: blk}, "{echo hi}"},
		{&Lambda{HasParams: true, Body: blk}, "@ {echo hi}"},
		{&Lambda{HasParams: true, Params: []string{"a", "b"}, Body: blk}, "@ a b {echo hi}"},
		{&Lambda{HasParams: true, Params: []string{"*"}, Body: blk}, "@ * {echo hi}"},
	}
	for _, tt := range tests {
		if got := UnparseLambda(tt.l); got != tt.want {
			t.Errorf("UnparseLambda = %q, want %q", got, tt.want)
		}
	}
}

func TestUnparseRedirs(t *testing.T) {
	tests := []string{
		"a > f",
		"a >> f",
		"a < f",
		"a >[2] f",
		"a >>[2] f",
		"a <[3] f",
		"a >[1=2]",
		"a >[2=]",
	}
	for _, src := range tests {
		b, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := UnparseBody(b); got != src {
			t.Errorf("unparse(%q) = %q", src, got)
		}
	}
}
