package syntax

import "testing"

// FuzzParse: the parser must never panic, and anything it accepts must
// unparse to source that re-parses to the same unparsed form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"ls > /tmp/foo",
		"a | b && c || d &",
		"fn apply cmd args {for (i = $args) $cmd $i}",
		"let (x = a; y = b) {echo $x $y}",
		"catch @ e msg {throw $e} {body}",
		"echo <>{car <>{cdr $p}} `{date} $#x $$y $^z",
		"x = ({a} 'q w' $v(1 2) pre$mid.suf)",
		"~ $subj a* [b-d]? 'lit'",
		"%pipe {a} 1 0 {b} >[2=1] <<< here",
		"; ; \n\n # comment\n",
		"'unterminated",
		"{unclosed",
		"$",
		"a ^^ b",
		"fn-%x = $&y",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		blk, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		once := UnparseBody(blk)
		blk2, err := Parse(once)
		if err != nil {
			t.Fatalf("unparse of valid program does not re-parse:\n src: %q\nonce: %q\nerr: %v", src, once, err)
		}
		twice := UnparseBody(blk2)
		if once != twice {
			t.Fatalf("unparse not a fixed point:\n src: %q\nonce: %q\ntwice: %q", src, once, twice)
		}
		// The rewriter must accept anything the parser produced.
		core := UnparseBody(Rewrite(blk).(*Block))
		if _, err := Parse(core); err != nil {
			t.Fatalf("core form does not parse:\n src: %q\ncore: %q\nerr: %v", src, core, err)
		}
	})
}

// FuzzLex: the lexer terminates and never panics.
func FuzzLex(f *testing.F) {
	f.Add("a $# '>' >[1=2] `{x}")
	f.Add(">>>>[[[")
	f.Fuzz(func(t *testing.T, src string) {
		toks, _ := Lex(src)
		if len(toks) > len(src)+2 {
			t.Fatalf("token explosion: %d tokens from %d bytes", len(toks), len(src))
		}
	})
}
