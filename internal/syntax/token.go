// Package syntax implements the es shell language: lexer, parser, the
// surface-to-core rewriter, and the unparser.
//
// The language reproduced here is the one described in Haahr & Rakitzis,
// "Es: A shell with higher-order functions" (Winter USENIX 1993).  The
// surface syntax is rc-flavoured; the parser produces a small AST which
// Rewrite lowers into the paper's core forms, where pipes, redirections,
// background jobs and short-circuit operators are ordinary calls on
// %-prefixed hook functions.
package syntax

import "fmt"

// Kind identifies a lexical token.
type Kind int

// Token kinds.  WORD and QWORD carry text; the rest are punctuation.
const (
	EOF Kind = iota
	NEWLINE
	WORD    // unquoted word (may contain glob chars)
	QWORD   // 'single quoted' word
	SEMI    // ;
	AMP     // &
	ANDAND  // &&
	OROR    // ||
	PIPE    // | or |[n] or |[n=m]
	CARET   // ^
	LPAREN  // (
	RPAREN  // )
	LBRACE  // {
	RBRACE  // }
	EQUALS  // =
	AT      // @
	BANG    // !
	TILDE   // ~
	EXTRACT // ~~
	DOLLAR  // $  (followed by a word, possibly computed)
	COUNT   // $#
	DOUBLE  // $$
	FLAT    // $^
	PRIM    // $&
	BQUOTE  // `
	REDIR   // < > >> with optional [n] or [n=m]
	RETSUB  // <> or <= introducing {...} return-value substitution
)

var kindNames = map[Kind]string{
	EOF: "end of input", NEWLINE: "newline", WORD: "word", QWORD: "quoted word",
	SEMI: "';'", AMP: "'&'", ANDAND: "'&&'", OROR: "'||'", PIPE: "'|'",
	CARET: "'^'", LPAREN: "'('", RPAREN: "')'", LBRACE: "'{'", RBRACE: "'}'",
	EQUALS: "'='", AT: "'@'", BANG: "'!'", TILDE: "'~'", EXTRACT: "'~~'", DOLLAR: "'$'",
	COUNT: "'$#'", DOUBLE: "'$$'", PRIM: "'$&'", BQUOTE: "'`'",
	REDIR: "redirection", RETSUB: "'<>'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// RedirOp distinguishes the redirection operators.
type RedirOp int

const (
	RedirFrom   RedirOp = iota // < file
	RedirTo                    // > file
	RedirAppend                // >> file
	RedirDup                   // >[n=m]
	RedirClose                 // >[n=]
	RedirHere                  // <<< word (herestring)
)

func (op RedirOp) String() string {
	switch op {
	case RedirFrom:
		return "<"
	case RedirTo:
		return ">"
	case RedirAppend:
		return ">>"
	case RedirDup, RedirClose:
		return ">[n=m]"
	case RedirHere:
		return "<<<"
	}
	return "redir?"
}

// Token is one lexical token.  SpaceBefore reports whether whitespace (or a
// line continuation) separated it from the previous token; the parser uses
// it to decide word concatenation and subscript adjacency.
type Token struct {
	Kind        Kind
	Text        string // for WORD and QWORD; the body for heredocs
	Fd          int    // for REDIR and PIPE: primary descriptor (-1 if absent)
	Fd2         int    // for RedirDup and PIPE [n=m]: second descriptor (-1 if absent)
	Op          RedirOp
	Heredoc     bool // RedirHere via << TAG: Text is the literal body
	Line        int
	Col         int
	SpaceBefore bool
}

func (t Token) String() string {
	switch t.Kind {
	case WORD:
		return fmt.Sprintf("word(%s)", t.Text)
	case QWORD:
		return fmt.Sprintf("qword(%s)", t.Text)
	default:
		return t.Kind.String()
	}
}
