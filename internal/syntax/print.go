package syntax

import "strings"

// Unparse renders a command back to es source.  The output re-parses to an
// equivalent tree, which is what makes it possible to pass function
// definitions through the environment (the paper's "unparsing" machinery).
func Unparse(c Cmd) string {
	var b strings.Builder
	printCmd(&b, c)
	return b.String()
}

// UnparseWord renders one word.
func UnparseWord(w *Word) string {
	var b strings.Builder
	printWord(&b, w)
	return b.String()
}

// UnparseLambda renders a lambda value: "@ p1 p2 {body}" when it has a
// declared parameter list, "{body}" otherwise.
func UnparseLambda(l *Lambda) string {
	var b strings.Builder
	printLambda(&b, l)
	return b.String()
}

// UnparseBody renders the commands of a block joined by "; ", without the
// surrounding braces; useful for top-level scripts.
func UnparseBody(blk *Block) string {
	var b strings.Builder
	printSeq(&b, blk)
	return b.String()
}

func printSeq(b *strings.Builder, blk *Block) {
	for i, c := range blk.Cmds {
		if i > 0 {
			b.WriteString("; ")
		}
		printCmd(b, c)
	}
}

func printCmd(b *strings.Builder, c Cmd) {
	switch c := c.(type) {
	case nil:
		return
	case *Block:
		b.WriteByte('{')
		printSeq(b, c)
		b.WriteByte('}')
	case *Simple:
		for i, w := range c.Words {
			if i > 0 {
				b.WriteByte(' ')
			}
			if i == 0 {
				printCmdWord(b, w)
			} else {
				printWord(b, w)
			}
		}
		for _, r := range c.Redirs {
			b.WriteByte(' ')
			printRedir(b, r)
		}
	case *Assign:
		printWord(b, c.Name)
		b.WriteString(" =")
		for _, v := range c.Values {
			b.WriteByte(' ')
			printWord(b, v)
		}
	case *Let:
		printBindingForm(b, "let", c.Bindings, c.Body)
	case *Local:
		printBindingForm(b, "local", c.Bindings, c.Body)
	case *For:
		printBindingForm(b, "for", c.Bindings, c.Body)
	case *Match:
		b.WriteString("~ ")
		printWord(b, c.Subject)
		for _, p := range c.Pats {
			b.WriteByte(' ')
			printWord(b, p)
		}
	case *MatchExtract:
		b.WriteString("~~ ")
		printWord(b, c.Subject)
		for _, p := range c.Pats {
			b.WriteByte(' ')
			printWord(b, p)
		}
	case *Not:
		b.WriteString("! ")
		printCmd(b, c.Body)
	case *Pipe:
		printCmd(b, c.Left)
		b.WriteString(" |")
		if c.LFd != 1 || c.RFd != 0 {
			b.WriteByte('[')
			b.WriteString(itoa(c.LFd))
			if c.RFd != 0 {
				b.WriteByte('=')
				b.WriteString(itoa(c.RFd))
			}
			b.WriteByte(']')
		}
		b.WriteByte(' ')
		printCmd(b, c.Right)
	case *AndOr:
		printCmd(b, c.Left)
		if c.Op == ANDAND {
			b.WriteString(" && ")
		} else {
			b.WriteString(" || ")
		}
		printCmd(b, c.Right)
	case *Bg:
		printCmd(b, c.Body)
		b.WriteString(" &")
	case *RedirCmd:
		printCmd(b, c.Body)
		for _, r := range c.Redirs {
			b.WriteByte(' ')
			printRedir(b, r)
		}
	case *Fn:
		b.WriteString("fn ")
		printWord(b, c.Name)
		if c.Lambda != nil {
			for _, p := range c.Lambda.Params {
				b.WriteByte(' ')
				b.WriteString(p)
			}
			b.WriteByte(' ')
			b.WriteByte('{')
			printSeq(b, c.Lambda.Body)
			b.WriteByte('}')
		}
	}
}

func printRedir(b *strings.Builder, r *Redir) {
	switch r.Op {
	case RedirTo:
		b.WriteByte('>')
		if r.Fd != 1 {
			b.WriteByte('[')
			b.WriteString(itoa(r.Fd))
			b.WriteByte(']')
		}
	case RedirAppend:
		b.WriteString(">>")
		if r.Fd != 1 {
			b.WriteByte('[')
			b.WriteString(itoa(r.Fd))
			b.WriteByte(']')
		}
	case RedirFrom:
		b.WriteByte('<')
		if r.Fd != 0 {
			b.WriteByte('[')
			b.WriteString(itoa(r.Fd))
			b.WriteByte(']')
		}
	case RedirHere:
		b.WriteString("<<<")
		if r.Fd != 0 {
			b.WriteByte('[')
			b.WriteString(itoa(r.Fd))
			b.WriteByte(']')
		}
	case RedirDup:
		b.WriteString(">[")
		b.WriteString(itoa(r.Fd))
		b.WriteByte('=')
		b.WriteString(itoa(r.Fd2))
		b.WriteByte(']')
	case RedirClose:
		b.WriteString(">[")
		b.WriteString(itoa(r.Fd))
		b.WriteString("=]")
	}
	if r.Target != nil {
		b.WriteByte(' ')
		printWord(b, r.Target)
	}
}

func printBindingForm(b *strings.Builder, kw string, bindings []Binding, body Cmd) {
	b.WriteString(kw)
	b.WriteString(" (")
	for i, bind := range bindings {
		if i > 0 {
			b.WriteString("; ")
		}
		printWord(b, bind.Name)
		b.WriteString(" =")
		for _, v := range bind.Values {
			b.WriteByte(' ')
			printWord(b, v)
		}
	}
	b.WriteString(") ")
	printCmd(b, body)
}

// printCmdWord prints a word in command position, quoting a literal that
// would otherwise re-parse as a keyword (`{let} must not become the let
// syntax form).
func printCmdWord(b *strings.Builder, w *Word) {
	if text, ok := w.LitText(); ok {
		switch text {
		case "fn", "let", "local", "for":
			b.WriteByte('\'')
			b.WriteString(text)
			b.WriteByte('\'')
			return
		}
	}
	printWord(b, w)
}

func printWord(b *strings.Builder, w *Word) {
	if w == nil {
		return
	}
	for i, part := range w.Parts {
		if i > 0 && needCaret(w.Parts[i-1], part) {
			b.WriteByte('^')
		}
		printPart(b, part)
	}
}

// needCaret reports whether adjacent printing of prev and next would re-lex
// differently, requiring an explicit '^' concatenation.
func needCaret(prev, next Part) bool {
	switch p := prev.(type) {
	case *Lit:
		n, ok := next.(*Lit)
		if !ok {
			return false
		}
		// Two raw literals would merge into one token; two quoted
		// literals would merge their quotes ('a''b' is one word).
		prevQuoted := willQuote(p)
		nextQuoted := willQuote(n)
		return prevQuoted == nextQuoted
	case *Var, *Prim:
		switch n := next.(type) {
		case *Lit:
			if v, ok := p.(*Var); ok && len(v.Index) > 0 {
				return false // ')' already ended the name
			}
			text := quoteIfNeeded(n.Text, n.Quoted)
			return text != "" && isNameChar(text[0])
		case *ListPart:
			// $a(b) would re-lex as a subscript.
			if v, ok := p.(*Var); ok && len(v.Index) > 0 {
				return false
			}
			return true
		}
	}
	return false
}

func willQuote(l *Lit) bool {
	return strings.HasPrefix(quoteIfNeeded(l.Text, l.Quoted), "'")
}

func printPart(b *strings.Builder, part Part) {
	switch part := part.(type) {
	case *Lit:
		b.WriteString(quoteIfNeeded(part.Text, part.Quoted))
	case *Var:
		switch {
		case part.Count:
			b.WriteString("$#")
		case part.Double:
			b.WriteString("$$")
		case part.Flat:
			b.WriteString("$^")
		default:
			b.WriteByte('$')
		}
		if text, ok := part.Name.LitText(); ok && isPlainName(text) {
			b.WriteString(text)
		} else {
			b.WriteByte('(')
			printWord(b, part.Name)
			b.WriteByte(')')
		}
		if len(part.Index) > 0 {
			b.WriteByte('(')
			for i, w := range part.Index {
				if i > 0 {
					b.WriteByte(' ')
				}
				printWord(b, w)
			}
			b.WriteByte(')')
		}
	case *Prim:
		b.WriteString("$&")
		b.WriteString(part.Name)
	case *CmdSub:
		b.WriteString("`{")
		printSeq(b, part.Body)
		b.WriteByte('}')
	case *RetSub:
		b.WriteString("<>{")
		printSeq(b, part.Body)
		b.WriteByte('}')
	case *LambdaPart:
		printLambda(b, part.Lambda)
	case *ListPart:
		b.WriteByte('(')
		for i, w := range part.Words {
			if i > 0 {
				b.WriteByte(' ')
			}
			printWord(b, w)
		}
		b.WriteByte(')')
	}
}

func printLambda(b *strings.Builder, l *Lambda) {
	if l.HasParams {
		b.WriteString("@ ")
		for _, p := range l.Params {
			b.WriteString(p)
			b.WriteByte(' ')
		}
	}
	b.WriteByte('{')
	printSeq(b, l.Body)
	b.WriteByte('}')
}

// QuoteString renders s as a single es word, quoting when necessary.
func QuoteString(s string) string { return quoteIfNeeded(s, false) }

// isPlainName reports whether text can follow '$' directly and re-lex as a
// complete variable name: every character must be a name character (the
// lexer's rule); anything else needs the $(name) computed form.
func isPlainName(text string) bool {
	if text == "" {
		return false
	}
	for i := 0; i < len(text); i++ {
		if !isNameChar(text[i]) {
			return false
		}
	}
	return true
}

// quoteIfNeeded quotes text with rc-style single quotes when it contains
// characters that would not re-lex as a single plain word, or when the
// original was quoted (preserving glob exemption).
func quoteIfNeeded(text string, quoted bool) string {
	need := quoted || text == ""
	if !need {
		for i := 0; i < len(text); i++ {
			c := text[i]
			if wordBreak(c) {
				need = true
				break
			}
		}
		// Tokens special only at the start of a word.
		if !need {
			switch text[0] {
			case '~', '@', '!':
				need = true
			}
		}
	}
	if !need {
		return text
	}
	return "'" + strings.ReplaceAll(text, "'", "''") + "'"
}
