// Package compile lowers rewritten syntax trees to a compact, flat
// instruction form that the evaluator in internal/core executes in place
// of walking the heap-allocated AST.
//
// The parse cache (internal/core.ParseCommand) already makes rewritten
// trees shared and immutable, which is exactly the precondition for a
// compile step: each *syntax.Block is lowered once, process-wide, and the
// compiled Unit is reused by every evaluation and every interpreter.
//
// What compilation buys over tree walking:
//
//   - command dispatch is a switch on a dense opcode instead of a type
//     assertion ladder over heap nodes;
//   - word parts are pre-lowered: literal text becomes a pre-built
//     glob.Pattern constant (quoting masks included), so evaluation never
//     re-scans source text or re-allocates literal masks;
//   - fully static words — no variable references, no substitutions — are
//     folded at compile time into constant piece lists, and fully static,
//     wildcard-free word lists become constant Term pools shared by every
//     execution (es lists are immutable, so sharing is safe);
//   - match patterns built from static words are compiled to glob
//     patterns once, not per evaluation;
//   - $&primitive references are interned to dense indices so the
//     evaluator dispatches through a flat table instead of a map;
//   - lambda and substitution bodies are compiled eagerly and registered
//     with the caller, so closure application starts on compiled code.
//
// The package deliberately knows nothing about the evaluator: it depends
// only on syntax and glob.  Execution semantics — environments, tail
// calls, cancellation, exceptions — live in internal/core, which runs
// these instructions through exactly the same Ctx/Binding machinery as
// the tree walker.
package compile

import (
	"errors"
	"sync"

	"es/internal/glob"
	"es/internal/syntax"
)

// Op is a command opcode.
type Op uint8

const (
	// OpNop is an empty command (evaluates to the empty list, true).
	OpNop Op = iota
	// OpSimple evaluates Words and applies the first term to the rest.
	OpSimple
	// OpGroup is a bare {…} block in command position: grouping, not a
	// closure call — it runs Body in the enclosing environment.
	OpGroup
	// OpSeq is a nested command sequence (a *syntax.Block in command
	// position reached through rewriting).
	OpSeq
	// OpAssign is Name = Values.
	OpAssign
	// OpLet lexically binds Bindings around Body.
	OpLet
	// OpLocal dynamically binds Bindings around Body.
	OpLocal
	// OpFor iterates Bindings in parallel over their value lists.
	OpFor
	// OpMatch is ~ subject patterns…
	OpMatch
	// OpMatchExtract is ~~ subject patterns…
	OpMatchExtract
	// OpNot inverts the truth of Body.
	OpNot
)

// Unit is one compiled block.
type Unit struct {
	Block *syntax.Block // provenance (closure bodies still carry the AST)
	Seq   Seq
}

// Seq is a compiled command sequence; the result of a sequence is the
// result of its last instruction.
type Seq []Instr

// Body is a compiled command in body position (the body of let, local,
// for, and !).  IsBlock records whether the source command was a braced
// block: the evaluator counts a command boundary per block member, as the
// tree walker does, but not for a bare single-command body.
type Body struct {
	Seq     Seq
	IsBlock bool
}

// Instr is one compiled command.  The operand fields used depend on Op;
// unused fields are zero.
type Instr struct {
	Op Op

	Words    WordList  // OpSimple
	Name     *Word     // OpAssign target
	Values   WordList  // OpAssign values
	Bindings []Binding // OpLet / OpLocal / OpFor
	Subject  *Word     // OpMatch / OpMatchExtract
	Pats     Pats      // OpMatch / OpMatchExtract
	Body     Body      // OpLet / OpLocal / OpFor / OpNot body
	Seq      Seq       // OpGroup / OpSeq

	// HeadPrim pre-resolves $&prim command heads: when Words.Const is
	// non-nil and its first term is a primitive reference, HeadPrim holds
	// its interned index (else -1).  The evaluator dispatches through its
	// flat primitive table without building the head term at all.
	HeadPrim int
}

// Binding is one compiled name = values pair in a binding form header.
type Binding struct {
	Name   *Word
	Values WordList
}

// WordList is a compiled word list (command words, assignment values,
// binding values).
type WordList struct {
	Words []*Word
	// Const, when non-nil, is the exact, environment-independent term
	// list the words always evaluate to: every word is static and no
	// piece carries an unquoted wildcard (so no filename expansion can
	// intervene).  The evaluator shares one immutable List built from
	// this pool across all executions.
	Const []ConstTerm
}

// ConstTerm is one term of a constant word list: a plain string, or a
// $&primitive reference when Prim is non-empty.
type ConstTerm struct {
	Str     string
	Prim    string
	PrimIdx int
}

// Pats is a compiled match-pattern word list.
type Pats struct {
	Words []*Word
	// Static, when non-nil, is the pre-compiled pattern list: every
	// pattern word was static, so the patterns (masks included) are
	// constants.  nil with len(Words) == 0 means "no patterns".
	Static []glob.Pattern
}

// SegKind identifies one word segment.
type SegKind uint8

const (
	// SegLit is literal text, pre-built as a pattern with its quoting
	// mask.
	SegLit SegKind = iota
	// SegVar is a variable reference.
	SegVar
	// SegPrim is a $&name primitive reference.
	SegPrim
	// SegLambda is a lambda literal; the closure captures the runtime
	// environment.
	SegLambda
	// SegCmdSub is `{…}: output substitution through %backquote.
	SegCmdSub
	// SegRetSub is <={…}: rich return-value substitution.
	SegRetSub
	// SegList is a parenthesised word list, spliced into place.
	SegList
)

// StaticPiece is one pre-evaluated piece of a static word.
type StaticPiece struct {
	Pat     glob.Pattern
	Wild    bool   // Pat.HasWild(), computed once
	Prim    string // non-empty: the piece is a $&prim term
	PrimIdx int
}

// Word is one compiled word: segments joined pairwise by concatenation
// (the ^ operator and part adjacency).
type Word struct {
	Segs []Seg

	// Pos is the source position of the word, carried for diagnostics
	// (the evaluator anchors word-shape errors to it).
	Pos syntax.Pos

	// Static, when non-nil, holds the pieces the word always evaluates
	// to; StaticSet distinguishes a static empty word from a dynamic one.
	Static    []StaticPiece
	StaticSet bool

	// LitName is the word's value when used as a single name (variable
	// or binding target): set when the word is static with exactly one
	// non-prim piece.
	LitName    string
	LitNameSet bool

	// LoneVar marks the common $name word: a single plain variable
	// segment whose value splices directly into a term list with no
	// piece conversion at all.
	LoneVar bool
}

// Seg is one word segment.
type Seg struct {
	Kind SegKind

	// Pos anchors segment-level diagnostics (bad subscripts) to source.
	Pos syntax.Pos

	Pat glob.Pattern // SegLit

	// SegVar: the (usually static) name plus modifiers.
	Name    *Word  // nil when NameLit is set
	NameLit string // static variable name
	Count   bool   // $#name
	Double  bool   // $$name
	Flat    bool   // $^name
	Index   []*Word

	Prim    string // SegPrim
	PrimIdx int

	Lambda *syntax.Lambda // SegLambda (closure creation needs the AST)
	Block  *syntax.Block  // SegCmdSub / SegRetSub body

	Words []*Word // SegList
}

// Registrar receives the compiled unit (nil if compilation failed) for
// every nested block — lambda bodies, substitution bodies — encountered
// while compiling a parent, so closure application later starts on
// compiled code without recompiling.
type Registrar func(b *syntax.Block, u *Unit)

// ErrUnsupported reports a node the compiler cannot lower; the evaluator
// falls back to the tree walker for that block.
var ErrUnsupported = errors.New("compile: unsupported construct")

// Compile lowers a rewritten block.  reg may be nil.
func Compile(b *syntax.Block, reg Registrar) (u *Unit, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileErr); ok {
				u, err = nil, ce.err
				return
			}
			panic(r)
		}
	}()
	c := &compiler{reg: reg}
	return c.block(b), nil
}

type compileErr struct{ err error }

type compiler struct {
	reg Registrar
}

func (c *compiler) fail() {
	panic(compileErr{ErrUnsupported})
}

func (c *compiler) block(b *syntax.Block) *Unit {
	u := &Unit{Block: b}
	if b == nil {
		return u
	}
	u.Seq = make(Seq, len(b.Cmds))
	for k, cmd := range b.Cmds {
		u.Seq[k] = c.cmd(cmd)
	}
	return u
}

// subBlock compiles a nested block that may later be evaluated on its
// own (a lambda or substitution body) and registers the result.  A
// failure inside the sub-block does not fail the parent: the evaluator
// will tree-walk just that block.
func (c *compiler) subBlock(b *syntax.Block) {
	if b == nil {
		return
	}
	sub, err := Compile(b, c.reg)
	if c.reg != nil {
		if err != nil {
			c.reg(b, nil)
		} else {
			c.reg(b, sub)
		}
	}
}

func (c *compiler) cmd(cmd syntax.Cmd) Instr {
	switch cmd := cmd.(type) {
	case nil:
		return Instr{Op: OpNop}
	case *syntax.Block:
		return Instr{Op: OpSeq, Seq: c.block(cmd).Seq}
	case *syntax.Simple:
		return c.simple(cmd)
	case *syntax.Assign:
		return Instr{
			Op:     OpAssign,
			Name:   c.word(cmd.Name),
			Values: c.words(cmd.Values),
		}
	case *syntax.Let:
		return Instr{Op: OpLet, Bindings: c.bindings(cmd.Bindings), Body: c.body(cmd.Body)}
	case *syntax.Local:
		return Instr{Op: OpLocal, Bindings: c.bindings(cmd.Bindings), Body: c.body(cmd.Body)}
	case *syntax.For:
		return Instr{Op: OpFor, Bindings: c.bindings(cmd.Bindings), Body: c.body(cmd.Body)}
	case *syntax.Match:
		return Instr{Op: OpMatch, Subject: c.word(cmd.Subject), Pats: c.pats(cmd.Pats)}
	case *syntax.MatchExtract:
		return Instr{Op: OpMatchExtract, Subject: c.word(cmd.Subject), Pats: c.pats(cmd.Pats)}
	case *syntax.Not:
		return Instr{Op: OpNot, Body: c.body(cmd.Body)}
	default:
		// A surface node leaked through without Rewrite; lower it the
		// way the tree walker does, on the fly.
		rw := syntax.Rewrite(cmd)
		switch rw.(type) {
		case *syntax.Pipe, *syntax.AndOr, *syntax.Bg, *syntax.RedirCmd, *syntax.Fn:
			c.fail() // Rewrite did not eliminate it; don't recurse forever
		}
		return c.cmd(rw)
	}
}

// body compiles a command in body position.
func (c *compiler) body(cmd syntax.Cmd) Body {
	if cmd == nil {
		return Body{}
	}
	if b, ok := cmd.(*syntax.Block); ok {
		return Body{Seq: c.block(b).Seq, IsBlock: true}
	}
	return Body{Seq: Seq{c.cmd(cmd)}}
}

func (c *compiler) bindings(bs []syntax.Binding) []Binding {
	out := make([]Binding, len(bs))
	for k, b := range bs {
		out[k] = Binding{Name: c.word(b.Name), Values: c.words(b.Values)}
	}
	return out
}

func (c *compiler) simple(s *syntax.Simple) Instr {
	if len(s.Redirs) > 0 {
		// Surface-only shape; Rewrite eliminates it.
		c.fail()
	}
	// A bare brace block in command position is grouping, not a call.
	if len(s.Words) == 1 && len(s.Words[0].Parts) == 1 {
		if lp, ok := s.Words[0].Parts[0].(*syntax.LambdaPart); ok && !lp.Lambda.HasParams {
			return Instr{Op: OpGroup, Seq: c.block(lp.Lambda.Body).Seq}
		}
	}
	in := Instr{Op: OpSimple, Words: c.words(s.Words), HeadPrim: -1}
	if len(in.Words.Const) > 0 && in.Words.Const[0].Prim != "" {
		in.HeadPrim = in.Words.Const[0].PrimIdx
	}
	return in
}

func (c *compiler) words(ws []*syntax.Word) WordList {
	wl := WordList{Words: make([]*Word, len(ws))}
	constOK := true
	var consts []ConstTerm
	for k, w := range ws {
		cw := c.word(w)
		wl.Words[k] = cw
		if !constOK || !cw.StaticSet {
			constOK = false
			continue
		}
		for _, sp := range cw.Static {
			switch {
			case sp.Prim != "":
				consts = append(consts, ConstTerm{Prim: sp.Prim, PrimIdx: sp.PrimIdx})
			case sp.Wild:
				// Filename expansion depends on the filesystem.
				constOK = false
			default:
				consts = append(consts, ConstTerm{Str: sp.Pat.String()})
			}
			if !constOK {
				break
			}
		}
	}
	if constOK {
		if consts == nil {
			consts = []ConstTerm{}
		}
		wl.Const = consts
	}
	return wl
}

func (c *compiler) pats(ws []*syntax.Word) Pats {
	p := Pats{Words: make([]*Word, len(ws))}
	staticOK := true
	var static []glob.Pattern
	for k, w := range ws {
		cw := c.word(w)
		p.Words[k] = cw
		if !staticOK || !cw.StaticSet {
			staticOK = false
			continue
		}
		for _, sp := range cw.Static {
			static = append(static, sp.toPattern())
		}
	}
	if staticOK {
		if static == nil {
			static = []glob.Pattern{}
		}
		p.Static = static
	}
	return p
}

func (sp StaticPiece) toPattern() glob.Pattern {
	if sp.Prim != "" {
		return glob.NewLiteral("$&" + sp.Prim)
	}
	return sp.Pat
}

func (c *compiler) word(w *syntax.Word) *Word {
	cw := &Word{}
	if w == nil {
		cw.Static = []StaticPiece{}
		cw.StaticSet = true
		return cw
	}
	cw.Pos = w.Pos
	cw.Segs = make([]Seg, len(w.Parts))
	for k, part := range w.Parts {
		cw.Segs[k] = c.part(part)
	}
	c.fold(cw)
	return cw
}

// fold computes the word's static pieces (mirroring the evaluator's
// incremental concatenation over parts) and its fast-path summaries.
func (c *compiler) fold(cw *Word) {
	if len(cw.Segs) == 0 {
		cw.Static = []StaticPiece{}
		cw.StaticSet = true
		return
	}
	if len(cw.Segs) == 1 {
		s := &cw.Segs[0]
		if s.Kind == SegVar && s.Name == nil && !s.Count && !s.Double && !s.Flat && len(s.Index) == 0 {
			cw.LoneVar = true
			return
		}
	}
	acc, ok := segStatic(cw.Segs[0:1])
	if !ok {
		return
	}
	for k := 1; k < len(cw.Segs); k++ {
		next, nok := segStatic(cw.Segs[k : k+1])
		if !nok {
			return
		}
		acc, ok = staticConcat(acc, next)
		if !ok {
			// The concatenation would fail at runtime (length
			// mismatch); keep the dynamic path so the evaluator
			// reproduces the exact error.
			return
		}
	}
	cw.Static = acc
	cw.StaticSet = true
	// Names are never glob-expanded, so a wildcard piece is still a
	// legal single name (a variable really can be called a*b).
	if len(acc) == 1 && acc[0].Prim == "" {
		cw.LitName = acc[0].Pat.String()
		cw.LitNameSet = true
	}
}

// segStatic returns the pieces a segment always evaluates to, if any.
func segStatic(segs []Seg) ([]StaticPiece, bool) {
	s := &segs[0]
	switch s.Kind {
	case SegLit:
		return []StaticPiece{{Pat: s.Pat, Wild: s.Pat.HasWild()}}, true
	case SegPrim:
		return []StaticPiece{{Prim: s.Prim, PrimIdx: s.PrimIdx}}, true
	case SegList:
		var out []StaticPiece
		for _, w := range s.Words {
			if !w.StaticSet {
				return nil, false
			}
			out = append(out, w.Static...)
		}
		if out == nil {
			out = []StaticPiece{}
		}
		return out, true
	default:
		return nil, false
	}
}

// staticConcat mirrors the evaluator's concatPieces over static pieces.
func staticConcat(a, b []StaticPiece) ([]StaticPiece, bool) {
	join := func(x, y StaticPiece) StaticPiece {
		p := glob.Concat(x.toPattern(), y.toPattern())
		return StaticPiece{Pat: p, Wild: p.HasWild()}
	}
	switch {
	case len(a) == 0 || len(b) == 0:
		return nil, false
	case len(a) == 1:
		out := make([]StaticPiece, len(b))
		for i := range b {
			out[i] = join(a[0], b[i])
		}
		return out, true
	case len(b) == 1:
		out := make([]StaticPiece, len(a))
		for i := range a {
			out[i] = join(a[i], b[0])
		}
		return out, true
	case len(a) == len(b):
		out := make([]StaticPiece, len(a))
		for i := range a {
			out[i] = join(a[i], b[i])
		}
		return out, true
	default:
		return nil, false
	}
}

func (c *compiler) part(part syntax.Part) Seg {
	switch part := part.(type) {
	case *syntax.Lit:
		if part.Quoted {
			return Seg{Kind: SegLit, Pat: glob.NewLiteral(part.Text)}
		}
		return Seg{Kind: SegLit, Pat: glob.New(part.Text)}
	case *syntax.Var:
		s := Seg{Kind: SegVar, Count: part.Count, Double: part.Double, Flat: part.Flat, Pos: part.Pos}
		name := c.word(part.Name)
		if name.LitNameSet {
			s.NameLit = name.LitName
		} else {
			s.Name = name
		}
		if len(part.Index) > 0 {
			s.Index = make([]*Word, len(part.Index))
			for k, iw := range part.Index {
				s.Index[k] = c.word(iw)
			}
		}
		return s
	case *syntax.Prim:
		return Seg{Kind: SegPrim, Prim: part.Name, PrimIdx: InternPrim(part.Name)}
	case *syntax.LambdaPart:
		c.subBlock(part.Lambda.Body)
		return Seg{Kind: SegLambda, Lambda: part.Lambda}
	case *syntax.CmdSub:
		c.subBlock(part.Body)
		return Seg{Kind: SegCmdSub, Block: part.Body}
	case *syntax.RetSub:
		c.subBlock(part.Body)
		return Seg{Kind: SegRetSub, Block: part.Body}
	case *syntax.ListPart:
		words := make([]*Word, len(part.Words))
		for k, w := range part.Words {
			words[k] = c.word(w)
		}
		return Seg{Kind: SegList, Words: words}
	default:
		c.fail()
		panic("unreachable")
	}
}

// ---- primitive interning ----

// Primitive names are interned process-wide to dense indices, so compiled
// code can dispatch $&primitives through a flat per-interpreter table (one
// bounds check) instead of a map lookup.  The table only grows; indices
// are stable for the life of the process.
var primIntern = struct {
	mu    sync.RWMutex
	index map[string]int
	names []string
}{index: make(map[string]int)}

// InternPrim returns the stable dense index for a primitive name,
// assigning one on first use.
func InternPrim(name string) int {
	primIntern.mu.RLock()
	idx, ok := primIntern.index[name]
	primIntern.mu.RUnlock()
	if ok {
		return idx
	}
	primIntern.mu.Lock()
	defer primIntern.mu.Unlock()
	if idx, ok := primIntern.index[name]; ok {
		return idx
	}
	idx = len(primIntern.names)
	primIntern.names = append(primIntern.names, name)
	primIntern.index[name] = idx
	return idx
}

// PrimName returns the name interned at idx ("" if out of range).
func PrimName(idx int) string {
	primIntern.mu.RLock()
	defer primIntern.mu.RUnlock()
	if idx < 0 || idx >= len(primIntern.names) {
		return ""
	}
	return primIntern.names[idx]
}

// NumPrims returns the number of interned primitive names.
func NumPrims() int {
	primIntern.mu.RLock()
	defer primIntern.mu.RUnlock()
	return len(primIntern.names)
}
