package compile

import (
	"testing"

	"es/internal/syntax"
)

func parseRewrite(t *testing.T, src string) *syntax.Block {
	t.Helper()
	b, err := syntax.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return syntax.Rewrite(b).(*syntax.Block)
}

func mustCompile(t *testing.T, src string) *Unit {
	t.Helper()
	u, err := Compile(parseRewrite(t, src), nil)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return u
}

func TestCompileConstantCommandWords(t *testing.T) {
	u := mustCompile(t, "result a b c")
	if len(u.Seq) != 1 || u.Seq[0].Op != OpSimple {
		t.Fatalf("want one OpSimple, got %+v", u.Seq)
	}
	in := u.Seq[0]
	if in.Words.Const == nil {
		t.Fatalf("fully static word list not constant-folded: %+v", in.Words)
	}
	want := []string{"result", "a", "b", "c"}
	if len(in.Words.Const) != len(want) {
		t.Fatalf("Const = %+v, want %v", in.Words.Const, want)
	}
	for k, w := range want {
		if ct := in.Words.Const[k]; ct.Str != w || ct.Prim != "" {
			t.Errorf("Const[%d] = %+v, want plain %q", k, ct, w)
		}
	}
	if in.HeadPrim != -1 {
		t.Errorf("HeadPrim = %d for a non-primitive head, want -1", in.HeadPrim)
	}
}

func TestCompilePrimHeadInterned(t *testing.T) {
	u := mustCompile(t, "$&result a")
	in := u.Seq[0]
	if in.Op != OpSimple {
		t.Fatalf("op = %v, want OpSimple", in.Op)
	}
	if in.Words.Const == nil || in.Words.Const[0].Prim != "result" {
		t.Fatalf("head not a constant prim term: %+v", in.Words.Const)
	}
	if want := InternPrim("result"); in.HeadPrim != want {
		t.Errorf("HeadPrim = %d, want interned index %d", in.HeadPrim, want)
	}
}

func TestCompileWildcardBlocksConstPool(t *testing.T) {
	u := mustCompile(t, "result *.c")
	in := u.Seq[0]
	if in.Words.Const != nil {
		t.Fatalf("word list with an unquoted wildcard must not be pooled: %+v", in.Words.Const)
	}
	// The wildcard word itself is still static — only the pool is off,
	// because expansion depends on the filesystem at run time.
	w := in.Words.Words[1]
	if !w.StaticSet || len(w.Static) != 1 || !w.Static[0].Wild {
		t.Errorf("wildcard word = %+v, want one static wild piece", w)
	}
}

func TestCompileQuotedWildcardStaysConstant(t *testing.T) {
	u := mustCompile(t, "result '*.c'")
	in := u.Seq[0]
	if in.Words.Const == nil {
		t.Fatalf("quoted wildcard defeated the constant pool: %+v", in.Words)
	}
	if got := in.Words.Const[1].Str; got != "*.c" {
		t.Errorf("Const[1] = %q, want %q", got, "*.c")
	}
}

func TestCompileMatchPatterns(t *testing.T) {
	u := mustCompile(t, "~ $x *.[ch] foo")
	in := u.Seq[0]
	if in.Op != OpMatch {
		t.Fatalf("op = %v, want OpMatch", in.Op)
	}
	if len(in.Pats.Static) != 2 {
		t.Fatalf("static patterns not pre-compiled: %+v", in.Pats)
	}

	u = mustCompile(t, "~ $x $y")
	if in := u.Seq[0]; in.Pats.Static != nil {
		t.Errorf("dynamic pattern list must not pre-compile: %+v", in.Pats)
	}
}

func TestCompileBareBlockIsGrouping(t *testing.T) {
	u := mustCompile(t, "{result a}")
	if len(u.Seq) != 1 || u.Seq[0].Op != OpGroup {
		t.Fatalf("bare block lowered to %+v, want OpGroup", u.Seq)
	}
}

func TestCompileRewritesLeakedSurfaceNodes(t *testing.T) {
	// Compile a parse-only tree (no Rewrite pass): the compiler lowers
	// surface nodes on the fly the same way the tree walker does.
	b, err := syntax.Parse("echo a | echo b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(b, nil); err != nil {
		t.Fatalf("Compile(unrewritten pipe): %v", err)
	}
}

func TestCompileRegistersLambdaBodies(t *testing.T) {
	got := 0
	b := parseRewrite(t, "f = @ x {result $x}")
	_, err := Compile(b, func(blk *syntax.Block, u *Unit) {
		if blk == nil || u == nil {
			t.Errorf("registrar got blk=%v u=%v", blk, u)
		}
		got++
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Error("lambda body was not registered for compiled application")
	}
}

func TestInternPrimStable(t *testing.T) {
	a := InternPrim("compile-test-prim-a")
	b := InternPrim("compile-test-prim-b")
	if a == b {
		t.Fatalf("distinct names share index %d", a)
	}
	if again := InternPrim("compile-test-prim-a"); again != a {
		t.Errorf("re-interning moved index %d -> %d", a, again)
	}
	if got := PrimName(a); got != "compile-test-prim-a" {
		t.Errorf("PrimName(%d) = %q", a, got)
	}
	if got := PrimName(-1); got != "" {
		t.Errorf("PrimName(-1) = %q, want empty", got)
	}
	if n := NumPrims(); n <= b {
		t.Errorf("NumPrims() = %d, want > %d", n, b)
	}
}
