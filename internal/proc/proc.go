// Package proc is the external-process substrate: it runs real programs
// with an arbitrary shell descriptor table, translating exit statuses into
// the strings es uses, and measures child resource usage for the time
// builtin.
package proc

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"syscall"
	"time"
)

// Files maps shell descriptors to open files for a child process.
type Files map[int]*os.File

// Run executes path with argv (argv[0] included), working directory dir,
// environment env, and the given descriptor table.  It returns the es
// status string: "0" for success, the decimal exit code for failures, or
// sig<name> when the child died from a signal.
func Run(path string, argv []string, dir string, env []string, files Files) (string, error) {
	cmd := &exec.Cmd{Path: path, Args: argv, Dir: dir, Env: env}
	cmd.Stdin = files[0]
	cmd.Stdout = files[1]
	cmd.Stderr = files[2]

	// Descriptors above 2 are passed via ExtraFiles, which assigns them
	// contiguously from 3; fill gaps with the null device.
	var extra []int
	for fd := range files {
		if fd > 2 {
			extra = append(extra, fd)
		}
	}
	var nulls []*os.File
	if len(extra) > 0 {
		sort.Ints(extra)
		max := extra[len(extra)-1]
		cmd.ExtraFiles = make([]*os.File, max-2)
		for fd := 3; fd <= max; fd++ {
			f := files[fd]
			if f == nil {
				null, err := os.OpenFile(os.DevNull, os.O_RDWR, 0)
				if err != nil {
					return "", err
				}
				nulls = append(nulls, null)
				f = null
			}
			cmd.ExtraFiles[fd-3] = f
		}
	}
	err := cmd.Run()
	for _, n := range nulls {
		n.Close()
	}
	return Status(err)
}

// Status converts an exec error into an es status string.
func Status(err error) (string, error) {
	if err == nil {
		return "0", nil
	}
	var exit *exec.ExitError
	if errors.As(err, &exit) {
		ws, ok := exit.Sys().(syscall.WaitStatus)
		if ok && ws.Signaled() {
			return "sig" + ws.Signal().String(), nil
		}
		return fmt.Sprintf("%d", exit.ExitCode()), nil
	}
	return "", err
}

// Usage is a resource-usage snapshot for the time builtin.
type Usage struct {
	Real time.Time
	User time.Duration
	Sys  time.Duration
}

// Snapshot captures current self+children resource usage.
func Snapshot() Usage {
	var self, kids syscall.Rusage
	syscall.Getrusage(syscall.RUSAGE_SELF, &self)
	syscall.Getrusage(syscall.RUSAGE_CHILDREN, &kids)
	return Usage{
		Real: time.Now(),
		User: tv(self.Utime) + tv(kids.Utime),
		Sys:  tv(self.Stime) + tv(kids.Stime),
	}
}

func tv(t syscall.Timeval) time.Duration {
	return time.Duration(t.Sec)*time.Second + time.Duration(t.Usec)*time.Microsecond
}

// Since reports elapsed real/user/sys time since the snapshot.
func (u Usage) Since() (real, user, sys time.Duration) {
	now := Snapshot()
	return now.Real.Sub(u.Real), now.User - u.User, now.Sys - u.Sys
}

// Lookup searches the directory list for an executable named name,
// returning the full path of the first match.
func Lookup(name string, dirs []string) (string, bool) {
	for _, dir := range dirs {
		if dir == "" {
			dir = "."
		}
		cand := dir + "/" + name
		if Executable(cand) {
			return cand, true
		}
	}
	return "", false
}

// Executable reports whether path names an executable non-directory; the
// pathsearch cache uses it to re-verify memoized lookups.
func Executable(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || fi.IsDir() {
		return false
	}
	return fi.Mode()&0o111 != 0
}
