package proc

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// shPath returns a usable /bin/sh, skipping when the host has none.
func shPath(t *testing.T) string {
	t.Helper()
	for _, p := range []string{"/bin/sh", "/usr/bin/sh"} {
		if fi, err := os.Stat(p); err == nil && fi.Mode()&0o111 != 0 {
			return p
		}
	}
	t.Skip("no /bin/sh on this host")
	return ""
}

func TestRunCapturesOutput(t *testing.T) {
	sh := shPath(t)
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	status, err := Run(sh, []string{"sh", "-c", "echo hello"}, "/", nil, Files{1: w})
	w.Close()
	if err != nil || status != "0" {
		t.Fatalf("Run: %v %q", err, status)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r)
	r.Close()
	if buf.String() != "hello\n" {
		t.Errorf("output = %q", buf.String())
	}
}

func TestRunExitStatus(t *testing.T) {
	sh := shPath(t)
	status, err := Run(sh, []string{"sh", "-c", "exit 42"}, "/", nil, nil)
	if err != nil || status != "42" {
		t.Errorf("status = %q, err %v", status, err)
	}
}

func TestRunDir(t *testing.T) {
	sh := shPath(t)
	dir := t.TempDir()
	r, w, _ := os.Pipe()
	status, err := Run(sh, []string{"sh", "-c", "pwd"}, dir, nil, Files{1: w})
	w.Close()
	if err != nil || status != "0" {
		t.Fatalf("Run: %v %q", err, status)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r)
	r.Close()
	got := buf.String()
	if got != dir+"\n" {
		// Allow symlinked temp dirs.
		if resolved, _ := filepath.EvalSymlinks(dir); got != resolved+"\n" {
			t.Errorf("pwd = %q, want %q", got, dir)
		}
	}
}

func TestRunEnv(t *testing.T) {
	sh := shPath(t)
	r, w, _ := os.Pipe()
	status, err := Run(sh, []string{"sh", "-c", "echo $MARKER"}, "/",
		[]string{"MARKER=from-test", "PATH=/bin:/usr/bin"}, Files{1: w})
	w.Close()
	if err != nil || status != "0" {
		t.Fatalf("Run: %v %q", err, status)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r)
	r.Close()
	if buf.String() != "from-test\n" {
		t.Errorf("env passing = %q", buf.String())
	}
}

func TestRunHighDescriptors(t *testing.T) {
	sh := shPath(t)
	r, w, _ := os.Pipe()
	// fd 4 is passed via ExtraFiles; fd 3 is filled with the null device.
	status, err := Run(sh, []string{"sh", "-c", "echo on-four >&4"}, "/",
		nil, Files{4: w})
	w.Close()
	if err != nil || status != "0" {
		t.Fatalf("Run: %v %q", err, status)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r)
	r.Close()
	if buf.String() != "on-four\n" {
		t.Errorf("fd 4 = %q", buf.String())
	}
}

func TestRunStdin(t *testing.T) {
	sh := shPath(t)
	pr, pw, _ := os.Pipe()
	pw.WriteString("from stdin\n")
	pw.Close()
	or, ow, _ := os.Pipe()
	status, err := Run(sh, []string{"sh", "-c", "cat"}, "/", nil, Files{0: pr, 1: ow})
	ow.Close()
	pr.Close()
	if err != nil || status != "0" {
		t.Fatalf("Run: %v %q", err, status)
	}
	var buf bytes.Buffer
	buf.ReadFrom(or)
	or.Close()
	if buf.String() != "from stdin\n" {
		t.Errorf("stdin round trip = %q", buf.String())
	}
}

func TestStatusSignal(t *testing.T) {
	sh := shPath(t)
	status, err := Run(sh, []string{"sh", "-c", "kill -TERM $$"}, "/", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != "sigterminated" {
		t.Errorf("signal status = %q", status)
	}
}

func TestStatusConversion(t *testing.T) {
	if s, err := Status(nil); s != "0" || err != nil {
		t.Errorf("nil = %q %v", s, err)
	}
	// A non-exit error passes through.
	if _, err := Status(os.ErrNotExist); err == nil {
		t.Error("plain error should propagate")
	}
	// Real exit error.
	sh := shPath(t)
	cmd := exec.Command(sh, "-c", "exit 3")
	runErr := cmd.Run()
	if s, err := Status(runErr); s != "3" || err != nil {
		t.Errorf("exit 3 = %q %v", s, err)
	}
}

func TestLookup(t *testing.T) {
	dir := t.TempDir()
	sub1 := filepath.Join(dir, "empty")
	sub2 := filepath.Join(dir, "full")
	os.MkdirAll(sub1, 0o755)
	os.MkdirAll(sub2, 0o755)
	tool := filepath.Join(sub2, "tool")
	os.WriteFile(tool, []byte("#!/bin/sh\n"), 0o755)
	os.WriteFile(filepath.Join(sub2, "notexec"), []byte("x"), 0o644)
	os.MkdirAll(filepath.Join(sub2, "adir"), 0o755)

	if got, ok := Lookup("tool", []string{sub1, sub2}); !ok || got != tool {
		t.Errorf("Lookup tool = %q, %v", got, ok)
	}
	if _, ok := Lookup("notexec", []string{sub2}); ok {
		t.Error("non-executable found")
	}
	if _, ok := Lookup("adir", []string{sub2}); ok {
		t.Error("directory found as executable")
	}
	if _, ok := Lookup("missing", []string{sub1, sub2}); ok {
		t.Error("phantom executable")
	}
	if _, ok := Lookup("tool", nil); ok {
		t.Error("found with empty path")
	}
}

func TestUsageSince(t *testing.T) {
	u := Snapshot()
	time.Sleep(10 * time.Millisecond)
	real, user, sys := u.Since()
	if real < 5*time.Millisecond {
		t.Errorf("real = %v, want >= 5ms", real)
	}
	if user < 0 || sys < 0 {
		t.Errorf("negative cpu times: %v %v", user, sys)
	}
}
