package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write lays out a tiny package directory for CheckPrims to lint.
func write(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestCheckPrimsFindings(t *testing.T) {
	dir := write(t, map[string]string{
		"p.go": `package p

const prelude = "fn-%documented = $&documented\n"

// primDocumented has a doc comment and a prelude binding: clean.
func primDocumented() {}

func primBare() {}

func register(i reg) {
	i.RegisterPrim("documented", primDocumented)
	i.RegisterPrim("bare", primBare)
	i.RegisterPrim("anon", func() {})
	i.RegisterPrim("optout", primDocumented) // esvet:ok deliberately unbound
}

type reg interface{ RegisterPrim(string, any) }
`,
	})
	probs, err := CheckPrims(dir)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, p := range probs {
		msgs = append(msgs, p.Msg)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"handler primBare has no doc comment",
		"$&bare has no binding in the embedded prelude",
		"$&anon is registered with a function literal",
		"$&anon has no binding in the embedded prelude",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding %q in:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "$&documented") || strings.Contains(joined, "$&optout") {
		t.Errorf("false positive in:\n%s", joined)
	}
	if len(probs) != 4 {
		t.Errorf("got %d problems, want 4:\n%s", len(probs), joined)
	}
}

// TestRealRegistryClean is the live gate: the actual primitive registry
// must stay lint-clean.
func TestRealRegistryClean(t *testing.T) {
	probs, err := CheckPrims("../prim")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		t.Errorf("%s", p)
	}
}
