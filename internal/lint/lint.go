// Package lint is the Go-side counterpart of internal/analysis: a small
// vet-style pass over the interpreter's own sources.  Where escheck keeps
// es scripts honest against the primitive registry, this pass keeps the
// registry itself honest: every $&primitive registered with RegisterPrim
// must have a documented handler and a binding in the embedded prelude
// (initial.es), so the registry, the docs, and the prelude cannot drift
// apart silently.
//
// A registration that is intentionally unbound (for example the fallback
// interactive loop, which is reached only when %interactive-loop is
// undefined) opts out with a trailing comment on the RegisterPrim line:
//
//	i.RegisterPrim("interactive-loop", primFallbackLoop) // esvet:ok reason...
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Problem is one lint finding, formatted file:line: message.
type Problem struct {
	File string
	Line int
	Msg  string
}

func (p Problem) String() string {
	return fmt.Sprintf("%s:%d: %s", p.File, p.Line, p.Msg)
}

// CheckPrims lints one Go package directory for primitive-registration
// hygiene.  It returns the problems found, sorted by file and line.
func CheckPrims(dir string) ([]Problem, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	// One combined view of the package: function docs, string constants
	// (the embedded prelude lives in one), and every RegisterPrim call.
	funcDoc := map[string]bool{}
	var constText strings.Builder
	type reg struct {
		name    string // the primitive name being registered
		handler string // the handler identifier ("" for a func literal)
		pos     token.Position
		optOut  bool
	}
	var regs []reg

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			// Lines carrying an esvet:ok opt-out comment.
			okLines := map[int]bool{}
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, "esvet:ok") {
						okLines[fset.Position(c.Pos()).Line] = true
					}
				}
			}
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					funcDoc[fd.Name.Name] = fd.Doc != nil && len(strings.TrimSpace(fd.Doc.Text())) > 0
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BasicLit:
					if n.Kind == token.STRING {
						if s, err := strconv.Unquote(n.Value); err == nil {
							constText.WriteString(s)
							constText.WriteString("\n")
						}
					}
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "RegisterPrim" || len(n.Args) != 2 {
						return true
					}
					lit, ok := n.Args[0].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						return true
					}
					name, err := strconv.Unquote(lit.Value)
					if err != nil {
						return true
					}
					handler := ""
					if id, ok := n.Args[1].(*ast.Ident); ok {
						handler = id.Name
					}
					pos := fset.Position(n.Pos())
					regs = append(regs, reg{
						name:    name,
						handler: handler,
						pos:     pos,
						optOut:  okLines[pos.Line],
					})
				}
				return true
			})
		}
	}

	prelude := constText.String()
	var probs []Problem
	add := func(pos token.Position, format string, args ...any) {
		probs = append(probs, Problem{
			File: filepath.ToSlash(pos.Filename),
			Line: pos.Line,
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	for _, r := range regs {
		if r.handler == "" {
			if !r.optOut {
				add(r.pos, "primitive $&%s is registered with a function literal; use a named, documented handler (or mark the call esvet:ok)", r.name)
			}
		} else if hasDoc, known := funcDoc[r.handler]; known && !hasDoc {
			add(r.pos, "primitive $&%s: handler %s has no doc comment", r.name, r.handler)
		}
		if !r.optOut && !strings.Contains(prelude, "$&"+r.name) {
			add(r.pos, "primitive $&%s has no binding in the embedded prelude (initial.es); bind it or mark the call esvet:ok", r.name)
		}
	}
	sort.Slice(probs, func(i, j int) bool {
		if probs[i].File != probs[j].File {
			return probs[i].File < probs[j].File
		}
		return probs[i].Line < probs[j].Line
	})
	return probs, nil
}
