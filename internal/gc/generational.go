package gc

// The road not taken.  The paper: "While a generational garbage collector
// might have made sense for the same reasons that we picked a copying
// collector, we decided to avoid the added complexity implied by
// switching to the generational model."
//
// GenHeap implements that generational model so the trade-off can be
// measured instead of argued: a nursery collected by copying with en-
// masse promotion into a tenured space, a write barrier maintaining the
// remembered set for old→young pointers, and a full collection when the
// tenured space fills.  The benchmarks replay identical shell workloads
// through both collectors; see EXPERIMENTS.md (E8).

import (
	"fmt"
	"time"
)

// Arena is the allocation interface shared by the two collectors, so the
// workload replayer drives either.
type Arena interface {
	String(s string) Ref
	Cons(car, cdr Ref) Ref
	Closure(source string, env Ref) Ref
	Binding(name string, value, next Ref) Ref
	AddRoot(slot *Ref)
	RemoveRoot(slot *Ref)
	KindOf(r Ref) Kind
	Car(r Ref) Ref
	Cdr(r Ref) Ref
	SetCar(r, v Ref)
	SetCdr(r, v Ref)
	Stats() Stats
}

var (
	_ Arena = (*Heap)(nil)
	_ Arena = (*GenHeap)(nil)
)

// genSpace tags the two generations inside a Ref.  The tag lives in the
// top bit; the generation counter below it detects stale references into
// collected spaces, as in the plain Heap.
const oldBit = uint32(1 << 31)

// GenStats extends Stats with generational behaviour.
type GenStats struct {
	Stats
	Minor       int   // nursery collections
	Major       int   // full collections
	Promoted    int64 // objects tenured
	BarrierHits int64 // old→young pointers remembered
}

// GenHeap is a two-generation copying collector.
type GenHeap struct {
	nursery  []object
	old      []object
	youngGen uint32 // bumped by minor collections
	oldGen   uint32 // bumped by major collections
	roots    []*Ref
	// remembered holds indices of old objects that may point into the
	// nursery (maintained by the write barrier).
	remembered map[int]struct{}

	stats GenStats
}

// NewGenHeap creates a generational heap: nursery objects per minor
// cycle, tenured capacity before a major collection.
func NewGenHeap(nursery, tenured int) *GenHeap {
	if nursery < MinHeap {
		nursery = MinHeap
	}
	if tenured < 4*nursery {
		tenured = 4 * nursery
	}
	return &GenHeap{
		nursery:    make([]object, 0, nursery),
		old:        make([]object, 0, tenured),
		youngGen:   1,
		oldGen:     1,
		remembered: make(map[int]struct{}),
	}
}

// Stats returns the base collector statistics (total collections etc.).
func (h *GenHeap) Stats() Stats { return h.stats.Stats }

// GenStats returns the full generational statistics.
func (h *GenHeap) GenStats() GenStats { return h.stats }

// AddRoot / RemoveRoot mirror Heap's rootset registration.
func (h *GenHeap) AddRoot(slot *Ref) { h.roots = append(h.roots, slot) }

func (h *GenHeap) RemoveRoot(slot *Ref) {
	for k, r := range h.roots {
		if r == slot {
			h.roots[k] = h.roots[len(h.roots)-1]
			h.roots = h.roots[:len(h.roots)-1]
			return
		}
	}
}

func (h *GenHeap) isOld(r Ref) bool { return r.gen()&oldBit != 0 }

func (h *GenHeap) get(r Ref) *object {
	if r.IsNil() {
		panic("gc: nil dereference")
	}
	g := r.gen()
	if g&oldBit != 0 {
		if g&^oldBit != h.oldGen {
			panic(fmt.Sprintf("gc: stale tenured reference (gen %d, heap %d)", g&^oldBit, h.oldGen))
		}
		return &h.old[r.index()]
	}
	if g != h.youngGen {
		panic(fmt.Sprintf("gc: stale nursery reference (gen %d, heap %d): unregistered root?", g, h.youngGen))
	}
	return &h.nursery[r.index()]
}

// alloc places a new object in the nursery, running a minor collection
// (and possibly a major one) when it is full.
func (h *GenHeap) alloc(o object) Ref {
	h.stats.Allocated++
	h.stats.StrBytes += int64(len(o.str))
	if len(h.nursery) == cap(h.nursery) {
		h.minor()
	}
	h.nursery = append(h.nursery, o)
	return makeRef(h.youngGen, len(h.nursery)-1)
}

func (h *GenHeap) allocWithRefs(kind Kind, str string, a, b Ref) Ref {
	h.AddRoot(&a)
	h.AddRoot(&b)
	r := h.alloc(object{kind: kind, str: str})
	h.RemoveRoot(&b)
	h.RemoveRoot(&a)
	o := h.get(r)
	o.a, o.b = a, b
	return r
}

// String, Cons, Closure, Binding mirror Heap's constructors.
func (h *GenHeap) String(s string) Ref { return h.alloc(object{kind: KString, str: s}) }

func (h *GenHeap) Cons(car, cdr Ref) Ref { return h.allocWithRefs(KCons, "", car, cdr) }

func (h *GenHeap) Closure(source string, env Ref) Ref {
	return h.allocWithRefs(KClosure, source, env, Nil)
}

func (h *GenHeap) Binding(name string, value, next Ref) Ref {
	return h.allocWithRefs(KBinding, name, value, next)
}

// Accessors with the write barrier on mutation: storing a young pointer
// into an old object adds the object to the remembered set — this is the
// "added complexity" the paper avoided.
func (h *GenHeap) KindOf(r Ref) Kind { return h.get(r).kind }
func (h *GenHeap) Str(r Ref) string  { return h.get(r).str }
func (h *GenHeap) Car(r Ref) Ref     { return h.get(r).a }
func (h *GenHeap) Cdr(r Ref) Ref     { return h.get(r).b }

func (h *GenHeap) SetCar(r, v Ref) {
	h.barrier(r, v)
	h.get(r).a = v
}

func (h *GenHeap) SetCdr(r, v Ref) {
	h.barrier(r, v)
	h.get(r).b = v
}

func (h *GenHeap) barrier(container, value Ref) {
	if h.isOld(container) && !value.IsNil() && !h.isOld(value) {
		h.remembered[container.index()] = struct{}{}
		h.stats.BarrierHits++
	}
}

// minor copies the live nursery into the tenured space (en-masse
// promotion), guided by the rootset and the remembered set.
func (h *GenHeap) minor() {
	start := time.Now()
	oldYoung := h.youngGen
	h.youngGen++

	var forward func(r Ref) Ref
	forward = func(r Ref) Ref {
		if r.IsNil() || r.gen()&oldBit != 0 {
			return r // old refs are stable across a minor collection
		}
		if r.gen() != oldYoung {
			panic("gc: cross-generation confusion in minor collection")
		}
		o := &h.nursery[r.index()]
		if !o.fwd.IsNil() {
			return o.fwd
		}
		if len(h.old) == cap(h.old) {
			// Tenured space exhausted mid-promotion: grow it (the
			// major collection will shrink later if possible).
			grown := make([]object, len(h.old), cap(h.old)*2)
			copy(grown, h.old)
			h.old = grown
		}
		h.old = append(h.old, object{kind: o.kind, a: o.a, b: o.b, str: o.str})
		nr := makeRef(h.oldGen|oldBit, len(h.old)-1)
		o.fwd = nr
		h.stats.Copied++
		h.stats.Promoted++
		return nr
	}

	scanStart := len(h.old)
	for _, slot := range h.roots {
		*slot = forward(*slot)
	}
	for idx := range h.remembered {
		h.old[idx].a = forward(h.old[idx].a)
		h.old[idx].b = forward(h.old[idx].b)
	}
	// Cheney scan of the promotion frontier: everything promoted this
	// cycle sits past scanStart, and scanning may promote more.
	for scan := scanStart; scan < len(h.old); scan++ {
		h.old[scan].a = forward(h.old[scan].a)
		h.old[scan].b = forward(h.old[scan].b)
	}

	h.nursery = h.nursery[:0]
	h.remembered = make(map[int]struct{})
	h.stats.Minor++
	h.stats.Collections++
	h.stats.GCTime += time.Since(start)

	// Tenured space nearly full: do a full collection.
	if len(h.old) > cap(h.old)*3/4 {
		h.major()
	}
	h.stats.LiveAfterGC = len(h.old) + len(h.nursery)
}

// major performs a full collection over both generations.
func (h *GenHeap) major() {
	start := time.Now()
	oldOld, oldYoung := h.oldGen, h.youngGen
	h.oldGen++
	h.youngGen++
	to := make([]object, 0, cap(h.old))

	var forward func(r Ref) Ref
	forward = func(r Ref) Ref {
		if r.IsNil() {
			return Nil
		}
		var o *object
		switch {
		case r.gen()&oldBit != 0:
			if r.gen()&^oldBit != oldOld {
				panic("gc: stale tenured ref in major collection")
			}
			o = &h.old[r.index()]
		default:
			if r.gen() != oldYoung {
				panic("gc: stale nursery ref in major collection")
			}
			o = &h.nursery[r.index()]
		}
		if !o.fwd.IsNil() {
			return o.fwd
		}
		if len(to) == cap(to) {
			grown := make([]object, len(to), cap(to)*2)
			copy(grown, to)
			to = grown
		}
		to = append(to, object{kind: o.kind, a: o.a, b: o.b, str: o.str})
		nr := makeRef(h.oldGen|oldBit, len(to)-1)
		o.fwd = nr
		h.stats.Copied++
		return nr
	}

	for _, slot := range h.roots {
		*slot = forward(*slot)
	}
	for scan := 0; scan < len(to); scan++ {
		to[scan].a = forward(to[scan].a)
		to[scan].b = forward(to[scan].b)
	}

	h.old = to
	h.nursery = h.nursery[:0]
	h.remembered = make(map[int]struct{})
	h.stats.Major++
	h.stats.Collections++
	h.stats.GCTime += time.Since(start)
	h.stats.LiveAfterGC = len(h.old)
}

// Collect forces a full collection (interface parity with Heap).
func (h *GenHeap) Collect() { h.major() }
