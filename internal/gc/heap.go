// Package gc reimplements the copying garbage collector described in the
// paper's implementation section: a semispace heap with Cheney scanning,
// an explicit rootset, allocation windows during which collection is
// disabled (the C implementation needed this while the yacc parser driver
// ran), growth with collection redo when a request still cannot be
// satisfied, and a debugging mode that collects at every allocation and
// invalidates the old semispace so stale references fault immediately.
//
// The Go interpreter itself does not need this collector to stay alive —
// Go is garbage collected — so this package is the paper's algorithm as a
// standalone substrate.  The interpreter records its allocation behaviour
// (core.AllocStats) and the benchmarks replay those profiles here, which
// is how the paper's "roughly 4% of the running time" measurement is
// reproduced; see EXPERIMENTS.md.
package gc

import (
	"fmt"
	"time"
)

// Kind tags a heap object.  The object shapes mirror the structures the
// C implementation allocated from collector space: strings, list cells,
// closures, and environment bindings.
type Kind uint8

const (
	KDead    Kind = iota // poisoned (debug mode, old semispace)
	KString              // Str
	KCons                // A = car (any), B = cdr (cons or nil)
	KClosure             // Str = source, A = captured binding chain
	KBinding             // Str = name, A = value, B = next binding
)

func (k Kind) String() string {
	switch k {
	case KDead:
		return "dead"
	case KString:
		return "string"
	case KCons:
		return "cons"
	case KClosure:
		return "closure"
	case KBinding:
		return "binding"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Ref is a heap reference: generation in the high bits, index+1 in the
// low bits.  The zero Ref is nil.  The generation is the space that the
// object lived in when the reference was created; after a collection,
// surviving references are rewritten with the new generation, so a stale
// reference — one missed by the rootset — is detectable, which is the
// memory-safe analogue of the paper's "access to all the memory from the
// old region is disabled" debugging technique.
type Ref uint64

// Nil is the null reference.
const Nil Ref = 0

func makeRef(gen uint32, index int) Ref {
	return Ref(uint64(gen)<<32 | uint64(index+1))
}

func (r Ref) gen() uint32 { return uint32(r >> 32) }
func (r Ref) index() int  { return int(uint32(r)) - 1 }

// IsNil reports whether the reference is null.
func (r Ref) IsNil() bool { return r == Nil }

// object is one heap cell.
type object struct {
	kind Kind
	a, b Ref
	str  string
	fwd  Ref // forwarding pointer during collection
}

// Stats reports collector behaviour.
type Stats struct {
	Collections int           // completed collections
	Grows       int           // collections redone with a larger block
	Allocated   int64         // objects allocated over the heap's lifetime
	Copied      int64         // objects copied by collections (live traffic)
	LiveAfterGC int           // survivors of the most recent collection
	GCTime      time.Duration // total stop-the-world time
	StrBytes    int64         // string payload bytes allocated
}

// Heap is a semispace copying collector.
type Heap struct {
	space    []object
	free     int
	gen      uint32
	roots    []*Ref
	disabled int
	overflow int // objects allocated past capacity while disabled

	// Debug enables the paper's GC-debugging mode: "a collection is
	// initiated at every allocation when the collector is not disabled,
	// and after a collection finishes, access to all the memory from
	// the old region is disabled."
	Debug bool

	stats Stats
}

// MinHeap is the smallest usable capacity.
const MinHeap = 64

// NewHeap creates a heap with room for capacity objects per semispace.
func NewHeap(capacity int) *Heap {
	if capacity < MinHeap {
		capacity = MinHeap
	}
	return &Heap{space: make([]object, 0, capacity), gen: 1}
}

// Stats returns a snapshot of the collector statistics.
func (h *Heap) Stats() Stats { return h.stats }

// Len reports the number of objects in the current space (live + not yet
// collected garbage).
func (h *Heap) Len() int { return len(h.space) }

// Cap reports the semispace capacity.
func (h *Heap) Cap() int { return cap(h.space) }

// Disable suspends collection: allocations that do not fit grab more
// memory instead, as the C implementation did while the parser ran and
// the rootset could not be fully identified.  Calls nest.
func (h *Heap) Disable() { h.disabled++ }

// Enable re-enables collection.
func (h *Heap) Enable() {
	if h.disabled == 0 {
		panic("gc: Enable without Disable")
	}
	h.disabled--
}

// Disabled reports whether collection is currently suspended.
func (h *Heap) Disabled() bool { return h.disabled > 0 }

// AddRoot registers a rootset slot.  The collector reads the slot's
// current reference and updates it after moving the object.  "The most
// common form of GC bug is failing to identify all elements of the
// rootset" — the Debug mode exists to find exactly these.
func (h *Heap) AddRoot(slot *Ref) {
	h.roots = append(h.roots, slot)
}

// RemoveRoot unregisters a rootset slot.  Root registration follows a
// stack discipline — allocWithRefs pushes two roots and pops them
// immediately, and callers root temporaries around single allocations —
// so the slot is searched from the tail.  A forward scan here made every
// allocation O(live roots), which turned alloc-heavy workloads quadratic
// (see BenchmarkAllocUnderLiveRoots).
func (h *Heap) RemoveRoot(slot *Ref) {
	for k := len(h.roots) - 1; k >= 0; k-- {
		if h.roots[k] == slot {
			h.roots[k] = h.roots[len(h.roots)-1]
			h.roots = h.roots[:len(h.roots)-1]
			return
		}
	}
}

// get validates and fetches an object, faulting on references into a
// collected space.
func (h *Heap) get(r Ref) *object {
	if r.IsNil() {
		panic("gc: nil dereference")
	}
	if r.gen() != h.gen {
		panic(fmt.Sprintf("gc: stale reference into collected space (ref gen %d, heap gen %d): unregistered root?", r.gen(), h.gen))
	}
	o := &h.space[r.index()]
	if o.kind == KDead {
		panic("gc: dereference of dead object")
	}
	return o
}

// alloc reserves one cell, collecting or growing as needed.
func (h *Heap) alloc(o object) Ref {
	h.stats.Allocated++
	h.stats.StrBytes += int64(len(o.str))
	if h.Debug && h.disabled == 0 {
		h.Collect()
	}
	if len(h.space) == cap(h.space) {
		if h.disabled > 0 {
			// "a new chunk of memory is grabbed so that allocation
			// can continue."
			h.overflow++
			grown := make([]object, len(h.space), cap(h.space)*2)
			copy(grown, h.space)
			h.space = grown
		} else {
			h.Collect()
			if len(h.space) == cap(h.space) {
				// "If not, a larger block is allocated and the
				// collection is redone."
				h.growAndRecollect()
			}
		}
	}
	h.space = append(h.space, o)
	return makeRef(h.gen, len(h.space)-1)
}

// String allocates a string object.
func (h *Heap) String(s string) Ref {
	return h.alloc(object{kind: KString, str: s})
}

// allocWithRefs allocates a cell whose reference slots are argument
// values.  The arguments are temporarily rooted so that a collection
// triggered by this very allocation forwards them — the classic copying-
// collector trap the paper's debug mode exists to catch.
func (h *Heap) allocWithRefs(kind Kind, str string, a, b Ref) Ref {
	h.AddRoot(&a)
	h.AddRoot(&b)
	r := h.alloc(object{kind: kind, str: str})
	h.RemoveRoot(&b)
	h.RemoveRoot(&a)
	o := &h.space[r.index()]
	o.a, o.b = a, b
	return r
}

// Cons allocates a list cell.
func (h *Heap) Cons(car, cdr Ref) Ref {
	return h.allocWithRefs(KCons, "", car, cdr)
}

// Closure allocates a closure with unparsed source and a captured
// binding chain.
func (h *Heap) Closure(source string, env Ref) Ref {
	return h.allocWithRefs(KClosure, source, env, Nil)
}

// Binding allocates an environment binding.
func (h *Heap) Binding(name string, value, next Ref) Ref {
	return h.allocWithRefs(KBinding, name, value, next)
}

// Accessors.

// KindOf returns the object's kind.
func (h *Heap) KindOf(r Ref) Kind { return h.get(r).kind }

// Str returns the string payload (string/closure/binding objects).
func (h *Heap) Str(r Ref) string { return h.get(r).str }

// Car returns the first reference slot.
func (h *Heap) Car(r Ref) Ref { return h.get(r).a }

// Cdr returns the second reference slot.
func (h *Heap) Cdr(r Ref) Ref { return h.get(r).b }

// SetCar mutates the first reference slot.
func (h *Heap) SetCar(r, v Ref) { h.get(r).a = v }

// SetCdr mutates the second reference slot.
func (h *Heap) SetCdr(r, v Ref) { h.get(r).b = v }

// Collect performs one copying collection: "all live pointers from
// outside of garbage collector memory, the rootset, are examined, and any
// structure that they point to is copied to a new block.  When the
// rootset has been scanned, all the freshly copied data is scanned
// similarly, and the process is repeated until all reachable data has
// been copied to the new block."
func (h *Heap) Collect() {
	start := time.Now()
	h.collectInto(cap(h.space))
	h.stats.Collections++
	h.stats.GCTime += time.Since(start)
}

// growAndRecollect doubles the space and redoes the collection.
func (h *Heap) growAndRecollect() {
	start := time.Now()
	h.collectInto(cap(h.space) * 2)
	h.stats.Collections++
	h.stats.Grows++
	h.stats.GCTime += time.Since(start)
}

// collectInto is the Cheney two-finger copy into a new space of the given
// capacity.
func (h *Heap) collectInto(capacity int) {
	old := h.space
	oldGen := h.gen
	h.gen++
	to := make([]object, 0, capacity)

	// forward copies one object to to-space, returning its new ref.
	var forward func(r Ref) Ref
	forward = func(r Ref) Ref {
		if r.IsNil() {
			return Nil
		}
		if r.gen() != oldGen {
			panic(fmt.Sprintf("gc: reference from wrong space reached the collector (ref gen %d, collecting gen %d)", r.gen(), oldGen))
		}
		o := &old[r.index()]
		if !o.fwd.IsNil() {
			return o.fwd
		}
		to = append(to, object{kind: o.kind, a: o.a, b: o.b, str: o.str})
		nr := makeRef(h.gen, len(to)-1)
		o.fwd = nr
		h.stats.Copied++
		return nr
	}

	// Scan the rootset.
	for _, slot := range h.roots {
		*slot = forward(*slot)
	}
	// Cheney scan of the freshly copied data.
	for scan := 0; scan < len(to); scan++ {
		to[scan].a = forward(to[scan].a)
		to[scan].b = forward(to[scan].b)
	}

	if h.Debug {
		// Poison the old space so any surviving reference to it is a
		// loud failure rather than silent corruption (the memory-
		// protection trick, made memory-safe).
		for k := range old {
			old[k] = object{kind: KDead}
		}
	}
	h.space = to
	h.stats.LiveAfterGC = len(to)
}

// Check validates the reachable object graph: every reference reachable
// from the rootset must point into the current space at a live object.
// It returns the number of reachable objects.  This is the debugging aid
// the paper's authors wished for: "the most common form of GC bug is
// failing to identify all elements of the rootset".
func (h *Heap) Check() (reachable int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("gc.Check: %v", r)
		}
	}()
	seen := make(map[Ref]bool)
	var walk func(r Ref)
	walk = func(r Ref) {
		if r.IsNil() || seen[r] {
			return
		}
		seen[r] = true
		o := h.get(r) // faults on stale references
		walk(o.a)
		walk(o.b)
	}
	for _, slot := range h.roots {
		walk(*slot)
	}
	return len(seen), nil
}
