package gc

import (
	"fmt"
	"testing"
)

func BenchmarkAllocString(b *testing.B) {
	h := NewHeap(1 << 14)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		h.String("benchmark-payload")
	}
}

func BenchmarkAllocConsChain(b *testing.B) {
	h := NewHeap(1 << 14)
	list := Nil
	h.AddRoot(&list)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		list = h.Cons(Nil, list)
		if n%1024 == 0 {
			list = Nil // let the chain die periodically
		}
	}
}

// BenchmarkAllocUnderLiveRoots guards the rootset against regressing to
// O(live roots) per allocation: allocWithRefs pushes and pops two
// temporary roots around every cons, and RemoveRoot must find them at the
// tail regardless of how many long-lived roots sit below.  With the old
// head-first scan this benchmark degraded linearly in the live count.
func BenchmarkAllocUnderLiveRoots(b *testing.B) {
	for _, live := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("roots=%d", live), func(b *testing.B) {
			h := NewHeap(1 << 16)
			h.Disable() // isolate rootset bookkeeping from collection cost
			defer h.Enable()
			slots := make([]Ref, live)
			for k := range slots {
				slots[k] = h.String("pinned")
				h.AddRoot(&slots[k])
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				h.Cons(Nil, Nil)
			}
		})
	}
}

// Collection cost as a function of live-set size: pause time should be
// proportional to live data, not heap size — the property that justifies
// a copying collector for mostly-dead shell heaps.
func BenchmarkCollectByLiveSize(b *testing.B) {
	for _, live := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("live=%d", live), func(b *testing.B) {
			h := NewHeap(live * 8)
			env := Nil
			h.AddRoot(&env)
			for k := 0; k < live/2; k++ {
				v := h.String("x")
				h.AddRoot(&v)
				env = h.Binding("n", v, env)
				h.RemoveRoot(&v)
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				h.Collect()
			}
			b.ReportMetric(float64(h.Stats().LiveAfterGC), "live")
		})
	}
}

// Heap-size sweep: a roomier semispace trades memory for fewer
// collections ("we picked a strategy where we traded ... being somewhat
// wasteful in the amount of memory used").
func BenchmarkReplayByHeapSize(b *testing.B) {
	for _, size := range []int{MinHeap, 1024, 8192, 65536} {
		b.Run(fmt.Sprintf("heap=%d", size), func(b *testing.B) {
			h := NewHeap(size)
			b.ResetTimer()
			stats := Replay(h, DefaultProfile, b.N)
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(stats.Collections)/float64(b.N)*1000, "gcs/1000cmd")
			}
		})
	}
}

// Loop-burst sweep (the paper's observation 2: loops allocate heavily
// but transiently).
func BenchmarkReplayByLoopDepth(b *testing.B) {
	for _, depth := range []int{0, 4, 16} {
		b.Run(fmt.Sprintf("loop=%d", depth), func(b *testing.B) {
			p := DefaultProfile
			p.LoopDepth = depth
			h := NewHeap(4096)
			b.ResetTimer()
			Replay(h, p, b.N)
		})
	}
}

// BenchmarkCopyingVsGenerational is the E8 ablation: the paper chose a
// plain copying collector over a generational one to avoid "the added
// complexity implied by switching to the generational model".  Both
// replay the same shell allocation profile.
func BenchmarkCopyingVsGenerational(b *testing.B) {
	profiles := map[string]CommandProfile{
		"interactive": DefaultProfile,
		"loop-heavy": func() CommandProfile {
			p := DefaultProfile
			p.LoopDepth = 16
			return p
		}(),
	}
	for name, p := range profiles {
		b.Run("copying/"+name, func(b *testing.B) {
			h := NewHeap(4096)
			b.ResetTimer()
			stats := Replay(h, p, b.N)
			b.StopTimer()
			report(b, stats)
		})
		b.Run("generational/"+name, func(b *testing.B) {
			h := NewGenHeap(4096, 32768)
			b.ResetTimer()
			stats := Replay(h, p, b.N)
			b.StopTimer()
			report(b, stats)
			gs := h.GenStats()
			if b.N > 0 {
				b.ReportMetric(float64(gs.Promoted)/float64(b.N), "promoted/cmd")
				b.ReportMetric(float64(gs.BarrierHits)/float64(b.N), "barrier/cmd")
			}
		})
	}
}

func report(b *testing.B, stats Stats) {
	if b.N > 0 {
		b.ReportMetric(float64(stats.Collections)/float64(b.N)*1000, "gcs/1000cmd")
		b.ReportMetric(float64(stats.GCTime.Nanoseconds())/float64(b.N), "gc-ns/cmd")
	}
}
