package gc

import (
	"fmt"
	"strings"
	"testing"
)

func genList(h Arena, n int) *Ref {
	list := new(Ref)
	h.AddRoot(list)
	for k := n - 1; k >= 0; k-- {
		s := h.String(fmt.Sprint(k))
		h.AddRoot(&s)
		*list = h.Cons(s, *list)
		h.RemoveRoot(&s)
	}
	return list
}

func genStrings(h *GenHeap, r Ref) []string {
	var out []string
	for !r.IsNil() {
		out = append(out, h.Str(h.Car(r)))
		r = h.Cdr(r)
	}
	return out
}

func TestGenBasicAllocAccess(t *testing.T) {
	h := NewGenHeap(128, 1024)
	s := h.String("hello")
	c := h.Cons(s, Nil)
	b := h.Binding("x", c, Nil)
	cl := h.Closure("@ * {}", b)
	if h.Str(s) != "hello" || h.Car(c) != s || h.Str(b) != "x" || h.Car(cl) != b {
		t.Fatal("object graph broken")
	}
}

func TestGenMinorPromotesLiveData(t *testing.T) {
	h := NewGenHeap(MinHeap, 4096)
	list := genList(h, 10)
	defer h.RemoveRoot(list)
	want := strings.Join(genStrings(h, *list), ",")
	// Force several nursery cycles.
	for k := 0; k < 5000; k++ {
		h.String("transient")
	}
	gs := h.GenStats()
	if gs.Minor == 0 {
		t.Fatal("no minor collections")
	}
	if got := strings.Join(genStrings(h, *list), ","); got != want {
		t.Fatalf("list corrupted: %s -> %s", want, got)
	}
	if !h.isOld(*list) {
		t.Error("survivor not promoted")
	}
}

func TestGenWriteBarrier(t *testing.T) {
	h := NewGenHeap(MinHeap, 4096)
	anchor := h.Cons(Nil, Nil)
	h.AddRoot(&anchor)
	defer h.RemoveRoot(&anchor)
	// Promote the anchor.
	for k := 0; k < 2*MinHeap; k++ {
		h.String("x")
	}
	if !h.isOld(anchor) {
		t.Fatal("anchor not promoted")
	}
	// Store a fresh nursery object into the old anchor: the barrier must
	// remember it, or the next minor collection loses it.
	young := h.String("kept-via-barrier")
	h.SetCar(anchor, young)
	if h.GenStats().BarrierHits == 0 {
		t.Fatal("write barrier did not fire")
	}
	for k := 0; k < 2*MinHeap; k++ {
		h.String("y")
	}
	if got := h.Str(h.Car(anchor)); got != "kept-via-barrier" {
		t.Fatalf("barrier-protected object lost: %q", got)
	}
}

func TestGenMajorReclaims(t *testing.T) {
	h := NewGenHeap(MinHeap, 256)
	keep := genList(h, 4)
	defer h.RemoveRoot(keep)
	// Churn enough retained-then-dropped data to trigger major GCs.
	hold := new(Ref)
	h.AddRoot(hold)
	for k := 0; k < 10000; k++ {
		*hold = h.Cons(h.String("churn"), *hold)
		if k%64 == 0 {
			*hold = Nil
		}
	}
	h.RemoveRoot(hold)
	gs := h.GenStats()
	if gs.Major == 0 {
		t.Fatal("no major collections")
	}
	h.Collect()
	if live := h.GenStats().LiveAfterGC; live != 8 {
		t.Errorf("live after major = %d, want 8", live)
	}
	if got := strings.Join(genStrings(h, *keep), ","); got != "0,1,2,3" {
		t.Errorf("keep list = %s", got)
	}
}

func TestGenStaleRefCaught(t *testing.T) {
	h := NewGenHeap(MinHeap, 1024)
	leaked := h.String("unrooted")
	for k := 0; k < 2*MinHeap; k++ {
		h.String("pressure")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("stale nursery ref not caught")
		}
	}()
	_ = h.Str(leaked)
}

func TestGenReplayMatchesCopying(t *testing.T) {
	// Both collectors survive the same shell workload with bounded live
	// data; this is the E8 ablation's correctness side.
	gen := NewGenHeap(1024, 16384)
	stats := Replay(gen, DefaultProfile, 300)
	if stats.Collections == 0 {
		t.Fatal("no collections")
	}
	gs := gen.GenStats()
	if gs.Minor == 0 {
		t.Error("expected minor collections")
	}
	bound := DefaultProfile.EnvSize*2 + 8*DefaultProfile.Retained + 2048
	if stats.LiveAfterGC > bound {
		t.Errorf("live = %d, bound %d", stats.LiveAfterGC, bound)
	}
}
