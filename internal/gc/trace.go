package gc

// Shell-workload replay.  The paper motivates the copying collector with
// three observations about shell allocation behaviour:
//
//  (1) "between two separate commands little memory is preserved (it
//      roughly corresponds to the storage for environment variables)";
//  (2) "command execution can consume large amounts of memory for a
//      short time, especially when loops are involved";
//  (3) "however much memory is used, the working set of the shell will
//      typically be much smaller than the physical memory available."
//
// CommandProfile captures per-command allocation counts; the interpreter
// records real ones (core.AllocStats averaged over commands), and Replay
// drives the collector with the same mixture: a long-lived environment, a
// burst of short-lived cells per command, and a tiny surviving residue.

// CommandProfile describes the allocation behaviour of one command.
type CommandProfile struct {
	Terms     int // transient string cells allocated per command
	Conses    int // transient list cells per command
	Closures  int // closures built per command
	Bindings  int // parameter/let bindings per command
	Retained  int // cells that survive the command (assignments)
	StrLen    int // payload size of string cells
	EnvSize   int // long-lived environment bindings (the rootset residue)
	LoopDepth int // extra burst factor for loop-heavy commands (obs. 2)
}

// DefaultProfile approximates an interactive shell session; the values
// are in the range the instrumented interpreter reports for the paper's
// transcripts (see the root benchmark harness, which derives a profile
// from live core.AllocStats instead of using this default).
var DefaultProfile = CommandProfile{
	Terms:    24,
	Conses:   12,
	Closures: 3,
	Bindings: 6,
	Retained: 2,
	StrLen:   8,
	EnvSize:  64,
	// LoopDepth 0: plain commands.
}

// Replay runs n command cycles of the profile against an arena (either
// the paper's copying collector or the generational comparison) and
// returns the final collector statistics.  The environment chain is the
// only registered long-lived root; everything else becomes garbage at the
// next command boundary, per observation (1).
func Replay(h Arena, p CommandProfile, n int) Stats {
	payload := make([]byte, p.StrLen)
	for k := range payload {
		payload[k] = byte('a' + k%26)
	}
	str := string(payload)

	// Long-lived environment (observation 1's residue).
	env := Nil
	h.AddRoot(&env)
	defer h.RemoveRoot(&env)
	for k := 0; k < p.EnvSize; k++ {
		v := h.String(str)
		h.AddRoot(&v)
		env = h.Binding("var", v, env)
		h.RemoveRoot(&v)
	}

	// Retained values survive across commands (a bounded window, like a
	// shell's $result and recent assignments).
	retained := Nil
	h.AddRoot(&retained)
	defer h.RemoveRoot(&retained)

	burst := 1 + p.LoopDepth
	for cmd := 0; cmd < n; cmd++ {
		// Transient command-evaluation garbage (observation 2).
		var scratch Ref
		h.AddRoot(&scratch)
		for b := 0; b < burst; b++ {
			scratch = Nil
			for k := 0; k < p.Terms; k++ {
				s := h.String(str)
				h.AddRoot(&s)
				scratch = h.Cons(s, scratch)
				h.RemoveRoot(&s)
			}
			for k := 0; k < p.Conses; k++ {
				scratch = h.Cons(Nil, scratch)
			}
			for k := 0; k < p.Closures; k++ {
				c := h.Closure("@ * {echo $*}", env)
				h.AddRoot(&c)
				scratch = h.Cons(c, scratch)
				h.RemoveRoot(&c)
			}
			for k := 0; k < p.Bindings; k++ {
				env2 := h.Binding("param", scratch, env)
				_ = env2 // dropped at command end, like call frames
			}
		}
		// A little survives each command (assignments to globals).
		keep := retained
		h.AddRoot(&keep)
		for k := 0; k < p.Retained; k++ {
			s := h.String(str)
			h.AddRoot(&s)
			keep = h.Cons(s, keep)
			h.RemoveRoot(&s)
		}
		// Bound the retained window so the working set stays small
		// (observation 3).
		retained = trim(h, keep, 4*p.Retained)
		h.RemoveRoot(&keep)
		h.RemoveRoot(&scratch)
	}
	return h.Stats()
}

// trim truncates a cons chain to at most n cells.
func trim(h Arena, list Ref, n int) Ref {
	r := list
	for k := 0; k < n && !r.IsNil(); k++ {
		if h.KindOf(r) != KCons {
			return list
		}
		if k == n-1 {
			h.SetCdr(r, Nil)
			return list
		}
		r = h.Cdr(r)
	}
	return list
}
