package gc

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestAllocAndAccess(t *testing.T) {
	h := NewHeap(128)
	s := h.String("hello")
	if h.KindOf(s) != KString || h.Str(s) != "hello" {
		t.Fatalf("string object broken")
	}
	c := h.Cons(s, Nil)
	if h.KindOf(c) != KCons || h.Car(c) != s || !h.Cdr(c).IsNil() {
		t.Fatalf("cons object broken")
	}
	b := h.Binding("x", c, Nil)
	if h.Str(b) != "x" || h.Car(b) != c {
		t.Fatalf("binding object broken")
	}
	cl := h.Closure("@ * {}", b)
	if h.Str(cl) != "@ * {}" || h.Car(cl) != b {
		t.Fatalf("closure object broken")
	}
	if h.Stats().Allocated != 4 {
		t.Errorf("allocated = %d, want 4", h.Stats().Allocated)
	}
}

// buildList makes a rooted list of n strings "0".."n-1"; the caller must
// RemoveRoot the returned slot.
func buildList(h *Heap, n int) *Ref {
	list := new(Ref)
	h.AddRoot(list)
	for k := n - 1; k >= 0; k-- {
		s := h.String(fmt.Sprint(k))
		h.AddRoot(&s)
		*list = h.Cons(s, *list)
		h.RemoveRoot(&s)
	}
	return list
}

func listStrings(h *Heap, r Ref) []string {
	var out []string
	for !r.IsNil() {
		out = append(out, h.Str(h.Car(r)))
		r = h.Cdr(r)
	}
	return out
}

// RemoveRoot searches from the tail (LIFO discipline); removal from any
// position must still work, and a collection afterwards must forward
// exactly the remaining roots.
func TestRemoveRootFromAnyPosition(t *testing.T) {
	h := NewHeap(MinHeap)
	slots := make([]Ref, 5)
	for k := range slots {
		slots[k] = h.String("s")
		h.AddRoot(&slots[k])
	}
	h.RemoveRoot(&slots[2]) // middle
	h.RemoveRoot(&slots[0]) // head
	h.RemoveRoot(&slots[4]) // tail
	h.Collect()
	for _, k := range []int{1, 3} {
		if got := h.Str(slots[k]); got != "s" {
			t.Errorf("surviving root %d = %q", k, got)
		}
	}
	if live := h.Stats().LiveAfterGC; live != 2 {
		t.Errorf("live after gc = %d, want 2", live)
	}
}

func TestCollectPreservesReachable(t *testing.T) {
	h := NewHeap(128)
	list := buildList(h, 10)
	defer h.RemoveRoot(list)
	before := listStrings(h, *list)
	h.Collect()
	after := listStrings(h, *list)
	if strings.Join(before, ",") != strings.Join(after, ",") {
		t.Fatalf("collection corrupted list: %v → %v", before, after)
	}
	if h.Stats().LiveAfterGC != 20 { // 10 conses + 10 strings
		t.Errorf("live = %d, want 20", h.Stats().LiveAfterGC)
	}
}

func TestCollectReclaimsGarbage(t *testing.T) {
	h := NewHeap(1024)
	keep := buildList(h, 5)
	defer h.RemoveRoot(keep)
	// Unrooted garbage.
	for k := 0; k < 100; k++ {
		g := h.String("garbage")
		h.Cons(g, Nil)
	}
	h.Collect()
	if live := h.Stats().LiveAfterGC; live != 10 {
		t.Errorf("live after GC = %d, want 10 (garbage must be reclaimed)", live)
	}
	if h.Len() != 10 {
		t.Errorf("space length = %d, want 10", h.Len())
	}
}

// Allocation pressure triggers collection automatically; live data
// survives arbitrarily many collections.
func TestAutomaticCollection(t *testing.T) {
	h := NewHeap(MinHeap)
	list := buildList(h, 8)
	defer h.RemoveRoot(list)
	want := strings.Join(listStrings(h, *list), ",")
	for k := 0; k < 10000; k++ {
		h.String("transient")
	}
	if h.Stats().Collections == 0 {
		t.Fatal("no collections under pressure")
	}
	if got := strings.Join(listStrings(h, *list), ","); got != want {
		t.Fatalf("list corrupted: %s → %s", want, got)
	}
}

// When live data exceeds the space, "a larger block is allocated and the
// collection is redone."
func TestGrowth(t *testing.T) {
	h := NewHeap(MinHeap)
	list := buildList(h, 500)
	defer h.RemoveRoot(list)
	if h.Stats().Grows == 0 {
		t.Errorf("expected grow-and-recollect, stats: %+v", h.Stats())
	}
	if got := len(listStrings(h, *list)); got != 500 {
		t.Errorf("list length after growth = %d", got)
	}
}

// While collection is disabled (the yacc-parser window), allocation
// grabs more memory instead of collecting.
func TestDisabledWindow(t *testing.T) {
	h := NewHeap(MinHeap)
	h.Disable()
	before := h.Stats().Collections
	// Unrooted garbage: would normally be collected, must not be now.
	refs := make([]Ref, 0, 1000)
	for k := 0; k < 1000; k++ {
		refs = append(refs, h.String("kept-while-disabled"))
	}
	if h.Stats().Collections != before {
		t.Fatal("collected while disabled")
	}
	// Everything is still accessible even though nothing was rooted.
	for _, r := range refs {
		if h.Str(r) != "kept-while-disabled" {
			t.Fatal("object lost while disabled")
		}
	}
	h.Enable()
	h.Collect()
	if h.Stats().LiveAfterGC != 0 {
		t.Errorf("live = %d after enabling and collecting", h.Stats().LiveAfterGC)
	}
}

func TestEnableWithoutDisablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHeap(0).Enable()
}

// The debug collector catches a deliberately unregistered root — the
// paper: "any reference to a pointer in garbage collector space which
// could be invalidated by a collection immediately causes a memory
// protection fault.  We strongly recommend this technique."
func TestDebugModeCatchesMissingRoot(t *testing.T) {
	h := NewHeap(128)
	h.Debug = true
	leaked := h.String("not rooted") // BUG under test: never registered
	rooted := buildList(h, 1)
	defer h.RemoveRoot(rooted)
	// In debug mode the very next allocation collects, so the stale
	// reference faults immediately.
	h.String("trigger")
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("stale reference not caught")
		} else if !strings.Contains(fmt.Sprint(r), "stale reference") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_ = h.Str(leaked)
}

// Debug mode does not disturb correct code.
func TestDebugModeTransparent(t *testing.T) {
	h := NewHeap(128)
	h.Debug = true
	list := buildList(h, 20)
	defer h.RemoveRoot(list)
	got := listStrings(h, *list)
	if len(got) != 20 || got[0] != "0" || got[19] != "19" {
		t.Fatalf("debug heap corrupted list: %v", got)
	}
	if h.Stats().Collections < 20 {
		t.Errorf("debug mode should collect at every allocation; collections = %d", h.Stats().Collections)
	}
}

// Shared structure stays shared across collection (no duplication).
func TestCollectPreservesSharing(t *testing.T) {
	h := NewHeap(128)
	shared := h.String("shared")
	h.AddRoot(&shared)
	defer h.RemoveRoot(&shared)
	a := h.Cons(shared, Nil)
	h.AddRoot(&a)
	defer h.RemoveRoot(&a)
	b := h.Cons(shared, Nil)
	h.AddRoot(&b)
	defer h.RemoveRoot(&b)
	h.Collect()
	if h.Car(a) != h.Car(b) {
		t.Fatal("shared object duplicated by collection")
	}
	if h.Stats().LiveAfterGC != 3 {
		t.Errorf("live = %d, want 3", h.Stats().LiveAfterGC)
	}
}

// Cyclic structures (es "includes the ability to create true recursive
// structures") are collected without looping.
func TestCollectHandlesCycles(t *testing.T) {
	h := NewHeap(128)
	a := h.Cons(Nil, Nil)
	h.AddRoot(&a)
	defer h.RemoveRoot(&a)
	b := h.Cons(a, Nil)
	h.AddRoot(&b)
	defer h.RemoveRoot(&b)
	h.SetCdr(a, b) // a ↔ b cycle
	h.Collect()
	if h.Car(h.Cdr(a)) != a {
		t.Fatal("cycle broken by collection")
	}
	if h.Stats().LiveAfterGC != 2 {
		t.Errorf("live = %d, want 2", h.Stats().LiveAfterGC)
	}
}

// Property: any reachable structure survives collection with identical
// contents; garbage never survives.
func TestCollectProperty(t *testing.T) {
	f := func(values []uint16, garbage []uint16) bool {
		if len(values) > 200 {
			values = values[:200]
		}
		if len(garbage) > 200 {
			garbage = garbage[:200]
		}
		h := NewHeap(128)
		list := new(Ref)
		h.AddRoot(list)
		var want []string
		for _, v := range values {
			s := h.String(fmt.Sprint(v))
			h.AddRoot(&s)
			*list = h.Cons(s, *list)
			h.RemoveRoot(&s)
			want = append(want, fmt.Sprint(v))
		}
		for _, g := range garbage {
			h.String(fmt.Sprint(g))
		}
		h.Collect()
		got := listStrings(h, *list)
		if len(got) != len(want) {
			return false
		}
		for k := range got {
			// The list is reversed relative to insertion.
			if got[k] != want[len(want)-1-k] {
				return false
			}
		}
		return h.Stats().LiveAfterGC == 2*len(values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Replay exercises the full shell profile without faulting and with
// bounded live data (the paper's observation 3).
func TestReplayBoundedWorkingSet(t *testing.T) {
	h := NewHeap(4096)
	stats := Replay(h, DefaultProfile, 500)
	if stats.Collections == 0 {
		t.Fatal("replay triggered no collections")
	}
	bound := DefaultProfile.EnvSize*2 + 8*DefaultProfile.Retained + 64
	if stats.LiveAfterGC > bound {
		t.Errorf("working set grew: live = %d, bound %d", stats.LiveAfterGC, bound)
	}
}

// Loop-heavy workloads allocate much more but stay bounded too
// (observation 2: bursts are short-lived).
func TestReplayLoopBurst(t *testing.T) {
	h := NewHeap(4096)
	p := DefaultProfile
	p.LoopDepth = 16
	stats := Replay(h, p, 100)
	if stats.Allocated < 10000 {
		t.Errorf("loop profile allocated only %d", stats.Allocated)
	}
	bound := p.EnvSize*2 + 8*p.Retained + 64
	if stats.LiveAfterGC > bound {
		t.Errorf("live = %d, bound %d", stats.LiveAfterGC, bound)
	}
}

func TestStaleRefAlwaysCaught(t *testing.T) {
	h := NewHeap(128)
	old := h.String("x")
	h.Collect() // old not rooted: collected
	defer func() {
		if recover() == nil {
			t.Fatal("stale reference not caught")
		}
	}()
	_ = h.Str(old)
}

func TestNilDerefPanics(t *testing.T) {
	h := NewHeap(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on nil deref")
		}
	}()
	h.Str(Nil)
}

func TestCheckValidGraph(t *testing.T) {
	h := NewHeap(128)
	list := buildList(h, 6)
	defer h.RemoveRoot(list)
	n, err := h.Check()
	if err != nil || n != 12 {
		t.Errorf("Check = %d, %v; want 12, nil", n, err)
	}
	h.Collect()
	if n, err := h.Check(); err != nil || n != 12 {
		t.Errorf("Check after GC = %d, %v", n, err)
	}
}

func TestCheckDetectsStaleRoot(t *testing.T) {
	h := NewHeap(128)
	stale := h.String("old")
	h.Collect() // stale not rooted: collected
	h.AddRoot(&stale)
	defer h.RemoveRoot(&stale)
	if _, err := h.Check(); err == nil {
		t.Fatal("Check accepted a stale root")
	}
}

// Check holds across random mutation + collection sequences.
func TestCheckProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		h := NewHeap(MinHeap)
		anchor := Nil
		h.AddRoot(&anchor)
		defer h.RemoveRoot(&anchor)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				anchor = h.Cons(h.String("s"), anchor)
			case 1:
				h.String("garbage")
			case 2:
				h.Collect()
			case 3:
				if !anchor.IsNil() && h.KindOf(anchor) == KCons {
					h.SetCar(anchor, Nil)
				}
			}
			if _, err := h.Check(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
