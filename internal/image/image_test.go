package image

import (
	"bytes"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"es/internal/core"
)

var update = flag.Bool("update", false, "regenerate testdata/golden.esimg")

// richInterp builds an interpreter exercising every kind of definable
// state an image must carry: plain and multi-word variables, noexport
// marks, phantom marks, the null/empty-string distinction, functions
// with (nested) captures, a settor, and a spoofed % hook.
func richInterp(t *testing.T) *core.Interp {
	t.Helper()
	i := core.New()
	i.SetDir("/tmp")
	i.SetVarRaw("greeting", core.StrList("hello", "wor ld"))
	i.SetVarRaw("secret", core.StrList("hunter2"))
	i.SetNoExport("secret")
	i.SetNoExport("phantom-mark")
	i.SetVarRaw("null", core.List{})
	i.SetVarRaw("empty", core.StrList(""))
	mustSet := func(name, src string) {
		val := i.DecodeValue(name, src)
		if len(val) != 1 || val[0].Closure == nil {
			t.Fatalf("decode %q failed: %v", src, val)
		}
		i.SetVarRaw(name, val)
	}
	mustSet("fn-greet", "@ who {echo hi $who}")
	mustSet("fn-outer", "%closure(inner=%closure(n=5)@ * {echo $n})@ * {$inner}")
	mustSet("set-watched", "@ {result $*}")
	mustSet("fn-%pathsearch", "@ name {result /spoofed/$name}")
	return i
}

// The differential battery: snapshot -> restore -> re-snapshot must be
// byte-identical, both while the restored slots are still lazy and after
// every value has been force-decoded (encode(decode(x)) == x).
func TestImageRoundTripBattery(t *testing.T) {
	a := richInterp(t)
	first := Capture(a, nil).Encode()

	img, err := Decode(first)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b := core.New()
	img.Restore(b)
	if got := Capture(b, nil).Encode(); !bytes.Equal(first, got) {
		t.Errorf("lazy re-snapshot differs:\n%s\n----\n%s", first, got)
	}
	for _, name := range b.VarNames() {
		b.Var(name)
	}
	if got := Capture(b, nil).Encode(); !bytes.Equal(first, got) {
		t.Errorf("decoded re-snapshot differs:\n%s\n----\n%s", first, got)
	}

	// Restored state behaves: dir, marks, and the null distinction.
	if b.Dir() != "/tmp" {
		t.Errorf("dir = %q", b.Dir())
	}
	env := strings.Join(b.ExportEnv(), "\n")
	if strings.Contains(env, "secret") {
		t.Errorf("noexport mark lost: %v", env)
	}
	if !strings.Contains(env, "greeting=hello\x01wor ld") {
		t.Errorf("greeting missing from export: %v", env)
	}
	if got := b.Var("null"); len(got) != 0 {
		t.Errorf("null became %v", got)
	}
	if got := b.Var("empty"); len(got) != 1 || got[0].Str != "" {
		t.Errorf("empty string became %v", got)
	}
}

func TestImageMetaHeaders(t *testing.T) {
	a := core.New()
	a.SetVarRaw("x", core.StrList("1"))
	EsVersion = "es-test 0.0"
	defer func() { EsVersion = "" }()
	img := Capture(a, map[string]string{"origin": "sess-7", "multi": "two\nlines"})
	got, err := Decode(img.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Es != "es-test 0.0" {
		t.Errorf("es header = %q", got.Es)
	}
	if got.Meta["origin"] != "sess-7" || got.Meta["multi"] != "two\nlines" {
		t.Errorf("meta = %v", got.Meta)
	}
	// Meta ordering is canonical: two captures encode identically.
	if !bytes.Equal(img.Encode(), Capture(a, map[string]string{"multi": "two\nlines", "origin": "sess-7"}).Encode()) {
		t.Errorf("meta encoding not deterministic")
	}
}

// $pid is re-stamped on restore: process identity does not migrate.
func TestImagePidRestamp(t *testing.T) {
	img := &Image{Vars: []core.VarRecord{{Name: "pid", Value: "99999", NoExport: true}}}
	b := core.New()
	img.Restore(b)
	if got := b.Var("pid").Flatten(" "); got != strconv.Itoa(os.Getpid()) {
		t.Errorf("pid = %q, want current process", got)
	}
	if strings.Contains(strings.Join(b.ExportEnv(), "\n"), "pid=") {
		t.Errorf("pid noexport mark lost in re-stamp")
	}
}

func TestImageRejectsCorruption(t *testing.T) {
	enc := Capture(richInterp(t), nil).Encode()
	if _, err := Decode(enc); err != nil {
		t.Fatalf("control decode failed: %v", err)
	}
	// Flip one payload byte: the checksum must catch it.
	bad := bytes.Replace(enc, []byte("hunter2"), []byte("hunter3"), 1)
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted image accepted (err = %v)", err)
	}
	// Every truncation point must be rejected, never misread.
	for n := 0; n < len(enc); n += 7 {
		if _, err := Decode(enc[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
	// Trailing bytes after the trailer are rejected too.
	if _, err := Decode(append(append([]byte{}, enc...), "junk\n"...)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing garbage accepted (err = %v)", err)
	}
	if _, err := Decode([]byte("not an image\n")); err == nil {
		t.Errorf("arbitrary bytes accepted")
	}
}

func TestImageRejectsNewerFormat(t *testing.T) {
	enc := Capture(core.New(), nil).Encode()
	bumped := bytes.Replace(enc, []byte("%esimg 1\n"), []byte("%esimg 2\n"), 1)
	_, err := Decode(bumped)
	if err == nil || !strings.Contains(err.Error(), "too new") {
		t.Errorf("newer format accepted (err = %v)", err)
	}
}

// A same-version image from a future writer may carry sections this
// reader has never heard of; they are skipped, not fatal.
func TestImageSkipsUnknownSection(t *testing.T) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%%esimg 1\n")
	fmt.Fprintf(&b, "s vars 1\nr %d\n%s\n", len("- 1 x1"), "- 1 x1")
	fmt.Fprintf(&b, "s jobs 2\nr 5\nj1 %%1\nr 10\nj2 \x00binary\n")
	fmt.Fprintf(&b, "t crc32 %08x\n", crc32.ChecksumIEEE(b.Bytes()))
	img, err := Decode(b.Bytes())
	if err != nil {
		t.Fatalf("unknown section rejected: %v", err)
	}
	if len(img.Vars) != 1 || img.Vars[0].Name != "x" || img.Vars[0].Value != "1" {
		t.Errorf("vars = %+v", img.Vars)
	}
	// Unknown var flags are likewise additive.
	var c bytes.Buffer
	fmt.Fprintf(&c, "%%esimg 1\n")
	fmt.Fprintf(&c, "s vars 1\nr %d\n%s\n", len("nZ 1 x1"), "nZ 1 x1")
	fmt.Fprintf(&c, "t crc32 %08x\n", crc32.ChecksumIEEE(c.Bytes()))
	img, err = Decode(c.Bytes())
	if err != nil {
		t.Fatalf("unknown flag rejected: %v", err)
	}
	if !img.Vars[0].NoExport || img.Vars[0].Value != "1" {
		t.Errorf("known flags lost next to unknown one: %+v", img.Vars[0])
	}
}

func TestImageFileHelpers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sess.esimg")
	img := Capture(richInterp(t), nil)
	if err := WriteFile(path, img); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Encode(), img.Encode()) {
		t.Errorf("file round trip changed the image")
	}
	if fi, _ := os.Stat(path); fi.Mode().Perm() != 0o600 {
		t.Errorf("image mode = %v, want 0600", fi.Mode().Perm())
	}
}

// goldenImage is a fixed literal, independent of process state, so the
// golden file pins the wire format itself: any byte-level drift in the
// encoder fails here.  Regenerate deliberately with -update.
func goldenImage() *Image {
	return &Image{
		Format: FormatVersion,
		Es:     "es-golden 1.0",
		Meta:   map[string]string{"note": "fixture"},
		Dir:    "/tmp",
		Vars: []core.VarRecord{
			{Name: "empty", Value: ""},
			{Name: "fn-f", Value: "%closure(n=5)@ * {echo $n}", NoExport: true},
			{Name: "mark", Phantom: true, NoExport: true},
			{Name: "null", Empty: true},
			{Name: "words", Value: "a\x01b c\x01don't"},
		},
	}
}

func TestImageGolden(t *testing.T) {
	path := filepath.Join("testdata", "golden.esimg")
	want := goldenImage().Encode()
	if *update {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture missing (run: go test ./internal/image -update): %v", err)
	}
	if !bytes.Equal(onDisk, want) {
		t.Errorf("image format drifted from golden fixture:\n--- testdata/golden.esimg\n%s--- encoder output\n%s", onDisk, want)
	}
	img, err := Decode(onDisk)
	if err != nil {
		t.Fatalf("golden fixture no longer decodes: %v", err)
	}
	if !bytes.Equal(img.Encode(), want) {
		t.Errorf("golden fixture decode/re-encode not the identity")
	}
}
