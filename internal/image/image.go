// Package image implements the es session image: a versioned,
// checksummed, single-file serialization of one interpreter's definable
// state.
//
// The paper's environment trick — closures unparse to %closure(...)
// strings, so "nearly all shell state can now be encoded in the
// environment" — means a session already has a textual serialization;
// this package frames it into a durable artifact.  An image captures the
// variable table (which holds everything the user can define: plain
// variables, fn- functions, set- settors, and the spoofable fn-%hooks),
// the export/noexport marks the environment cannot carry, and the
// virtual working directory.  It does NOT capture process state:
// background jobs, open descriptors, and the interpreter's caches stay
// behind, and $pid is re-stamped on restore.
//
// # Wire format
//
// An image is a byte stream of newline-framed, length-prefixed records —
// readable with a pager, safe for any payload bytes:
//
//	%esimg 1                    magic and format version
//	h <key> <len>\n<value>      header: creation metadata ("es" = version)
//	s <name> <count>            section holding <count> records
//	r <len>\n<payload>          one record (payload bytes, then newline)
//	t crc32 <8 hex digits>      trailer: checksum of every preceding byte
//
// A vars-section payload is "<flags> <namelen> <name><value>" with flags
// a subset of {n,p,e} (noexport, phantom mark, null value) or "-".  A
// cwd-section payload is the working directory.
//
// # Forward compatibility
//
// Extensions are additive: new header keys, new sections, and new var
// flags may appear in images written by newer implementations of the
// SAME format version, and readers skip what they do not understand
// (record framing makes every section skippable without parsing its
// payloads).  The version in the magic line only changes when the
// framing itself changes, and a reader rejects versions newer than it
// knows — there is nothing safe it could do with them.
package image

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"
	"strings"

	"es/internal/core"
)

// FormatVersion is the image format this package writes and the newest
// it reads.
const FormatVersion = 1

const magic = "%esimg"

// EsVersion identifies the creating implementation in image headers.
// The prim package sets it to its $&version string at init; it is left
// empty by bare-core users and tests.
var EsVersion string

// Image is one decoded (or to-be-encoded) session image.
type Image struct {
	Format int               // format version (FormatVersion when captured)
	Es     string            // creating implementation, from the "es" header
	Meta   map[string]string // other header metadata, free-form
	Vars   []core.VarRecord  // the definable state, sorted by name
	Dir    string            // virtual working directory ("" = not recorded)
}

// Capture snapshots an interpreter's definable state.  meta may be nil;
// identical state and meta always capture to identical bytes, so
// snapshot → restore → re-snapshot is the identity.
func Capture(i *core.Interp, meta map[string]string) *Image {
	img := &Image{
		Format: FormatVersion,
		Es:     EsVersion,
		Vars:   i.SnapshotVars(),
		Dir:    i.Dir(),
	}
	if len(meta) > 0 {
		img.Meta = make(map[string]string, len(meta))
		for k, v := range meta {
			img.Meta[k] = v
		}
	}
	return img
}

// Restore installs the image's state onto an interpreter, replacing its
// entire definable state (the interpreter's registered primitives and
// builtins are code, not state, and are untouched).  Values install
// lazily through the environment-decode machinery; noexport marks, null
// values, and the working directory are reinstated exactly.  $pid is
// re-stamped with the current process id when the image carried one:
// process identity does not migrate.
func (img *Image) Restore(i *core.Interp) {
	i.RestoreVars(img.Vars)
	if img.Dir != "" {
		i.SetDir(img.Dir)
	}
	for _, r := range img.Vars {
		if r.Name == "pid" && !r.Phantom {
			// SetVarRaw mutates the restored slot in place, so the
			// captured noexport mark survives the re-stamp.
			i.SetVarRaw("pid", core.StrList(strconv.Itoa(os.Getpid())))
			break
		}
	}
}

// Encode renders the image in the wire format.  Output is deterministic:
// vars arrive sorted from SnapshotVars and meta keys are sorted here.
func (img *Image) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %d\n", magic, FormatVersion)
	header := func(key, val string) {
		fmt.Fprintf(&b, "h %s %d\n%s\n", key, len(val), val)
	}
	if img.Es != "" {
		header("es", img.Es)
	}
	keys := make([]string, 0, len(img.Meta))
	for k := range img.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		header(k, img.Meta[k])
	}
	fmt.Fprintf(&b, "s vars %d\n", len(img.Vars))
	for _, r := range img.Vars {
		p := varPayload(r)
		fmt.Fprintf(&b, "r %d\n", len(p))
		b.Write(p)
		b.WriteByte('\n')
	}
	if img.Dir != "" {
		fmt.Fprintf(&b, "s cwd 1\nr %d\n%s\n", len(img.Dir), img.Dir)
	}
	fmt.Fprintf(&b, "t crc32 %08x\n", crc32.ChecksumIEEE(b.Bytes()))
	return b.Bytes()
}

func varPayload(r core.VarRecord) []byte {
	var flags strings.Builder
	if r.NoExport {
		flags.WriteByte('n')
	}
	if r.Phantom {
		flags.WriteByte('p')
	}
	if r.Empty {
		flags.WriteByte('e')
	}
	if flags.Len() == 0 {
		flags.WriteByte('-')
	}
	return []byte(flags.String() + " " + strconv.Itoa(len(r.Name)) + " " + r.Name + r.Value)
}

func parseVarPayload(p []byte) (core.VarRecord, error) {
	s := string(p)
	sp1 := strings.IndexByte(s, ' ')
	if sp1 <= 0 {
		return core.VarRecord{}, fmt.Errorf("image: malformed var record")
	}
	sp2 := strings.IndexByte(s[sp1+1:], ' ')
	if sp2 < 0 {
		return core.VarRecord{}, fmt.Errorf("image: malformed var record")
	}
	sp2 += sp1 + 1
	nameLen, err := strconv.Atoi(s[sp1+1 : sp2])
	if err != nil || nameLen < 0 || nameLen > len(s)-sp2-1 {
		return core.VarRecord{}, fmt.Errorf("image: bad name length in var record")
	}
	rest := s[sp2+1:]
	rec := core.VarRecord{Name: rest[:nameLen], Value: rest[nameLen:]}
	for _, c := range s[:sp1] {
		switch c {
		case 'n':
			rec.NoExport = true
		case 'p':
			rec.Phantom = true
		case 'e':
			rec.Empty = true
			// Unknown flags are additive extensions: ignored, per the
			// forward-compatibility rules above.
		}
	}
	return rec, nil
}

// decoder walks the byte stream with newline-framed reads.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) line() (string, error) {
	nl := bytes.IndexByte(d.data[d.pos:], '\n')
	if nl < 0 {
		return "", fmt.Errorf("image: truncated (no newline at byte %d)", d.pos)
	}
	ln := string(d.data[d.pos : d.pos+nl])
	d.pos += nl + 1
	return ln, nil
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || d.pos+n+1 > len(d.data) {
		return nil, fmt.Errorf("image: truncated (record of %d bytes at byte %d)", n, d.pos)
	}
	p := d.data[d.pos : d.pos+n]
	if d.data[d.pos+n] != '\n' {
		return nil, fmt.Errorf("image: bad record framing at byte %d", d.pos+n)
	}
	d.pos += n + 1
	return p, nil
}

// field2 splits "k a b" lines into their two operands.
func field2(ln string) (string, string, error) {
	rest := ln[2:]
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		return "", "", fmt.Errorf("image: malformed line %q", ln)
	}
	return rest[:sp], rest[sp+1:], nil
}

// Decode parses and verifies an encoded image.  It rejects images with a
// newer format version, a wrong checksum, truncation, or trailing bytes;
// unknown sections, header keys, and var flags are skipped.
func Decode(data []byte) (*Image, error) {
	d := &decoder{data: data}
	first, err := d.line()
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(first, magic+" ") {
		return nil, fmt.Errorf("image: not an es session image (no %s magic)", magic)
	}
	version, err := strconv.Atoi(first[len(magic)+1:])
	if err != nil || version < 1 {
		return nil, fmt.Errorf("image: bad format version %q", first[len(magic)+1:])
	}
	if version > FormatVersion {
		return nil, fmt.Errorf("image: format %d too new (this es reads <= %d)", version, FormatVersion)
	}
	img := &Image{Format: version}
	for {
		trailerStart := d.pos
		ln, err := d.line()
		if err != nil {
			return nil, fmt.Errorf("image: truncated (missing checksum trailer)")
		}
		switch {
		case strings.HasPrefix(ln, "h "):
			key, lenStr, err := field2(ln)
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(lenStr)
			if err != nil {
				return nil, fmt.Errorf("image: bad header length %q", lenStr)
			}
			val, err := d.take(n)
			if err != nil {
				return nil, err
			}
			if key == "es" {
				img.Es = string(val)
			} else {
				if img.Meta == nil {
					img.Meta = make(map[string]string)
				}
				img.Meta[key] = string(val)
			}
		case strings.HasPrefix(ln, "s "):
			name, countStr, err := field2(ln)
			if err != nil {
				return nil, err
			}
			count, err := strconv.Atoi(countStr)
			if err != nil || count < 0 {
				return nil, fmt.Errorf("image: bad section count %q", countStr)
			}
			for k := 0; k < count; k++ {
				rl, err := d.line()
				if err != nil {
					return nil, err
				}
				if !strings.HasPrefix(rl, "r ") {
					return nil, fmt.Errorf("image: expected record, got %q", rl)
				}
				n, err := strconv.Atoi(rl[2:])
				if err != nil {
					return nil, fmt.Errorf("image: bad record length %q", rl[2:])
				}
				payload, err := d.take(n)
				if err != nil {
					return nil, err
				}
				switch name {
				case "vars":
					rec, err := parseVarPayload(payload)
					if err != nil {
						return nil, err
					}
					img.Vars = append(img.Vars, rec)
				case "cwd":
					img.Dir = string(payload)
				default:
					// Unknown section: skipped record by record.
				}
			}
		case strings.HasPrefix(ln, "t "):
			algo, sumStr, err := field2(ln)
			if err != nil {
				return nil, err
			}
			if algo != "crc32" {
				return nil, fmt.Errorf("image: unknown checksum %q", algo)
			}
			want, err := strconv.ParseUint(sumStr, 16, 32)
			if err != nil {
				return nil, fmt.Errorf("image: bad checksum %q", sumStr)
			}
			if got := crc32.ChecksumIEEE(data[:trailerStart]); got != uint32(want) {
				return nil, fmt.Errorf("image: checksum mismatch (have %08x, trailer says %08x): corrupted image", got, want)
			}
			if d.pos != len(data) {
				return nil, fmt.Errorf("image: %d trailing bytes after checksum", len(data)-d.pos)
			}
			return img, nil
		default:
			return nil, fmt.Errorf("image: unknown line %q", ln)
		}
	}
}

// WriteFile encodes the image to path (0600: images can hold secrets —
// that is what noexport marks are for).
func WriteFile(path string, img *Image) error {
	return os.WriteFile(path, img.Encode(), 0o600)
}

// ReadFile decodes the image at path.
func ReadFile(path string) (*Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
