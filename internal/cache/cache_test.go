package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHitMissCounters(t *testing.T) {
	m := NewMap[int]("t", 8)
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	m.Put("a", 1)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	s := m.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Invalidations != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestDeleteAndFlushCountInvalidations(t *testing.T) {
	m := NewMap[int]("t", 8)
	m.Put("a", 1)
	m.Put("b", 2)
	m.Delete("a")
	m.Delete("missing") // not present: no invalidation
	m.Flush()
	s := m.Stats()
	if s.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", s.Invalidations)
	}
	if m.Len() != 0 {
		t.Fatalf("len = %d after flush", m.Len())
	}
}

func TestEvictionBoundsSize(t *testing.T) {
	m := NewMap[int]("t", 16)
	for k := 0; k < 1000; k++ {
		m.Put(fmt.Sprintf("k%d", k), k)
	}
	if n := m.Len(); n > 16 {
		t.Fatalf("cache grew past its bound: %d entries", n)
	}
}

func TestOverwriteDoesNotEvict(t *testing.T) {
	m := NewMap[int]("t", 2)
	m.Put("a", 1)
	m.Put("b", 2)
	m.Put("a", 3) // overwrite at capacity must not evict
	if v, ok := m.Get("a"); !ok || v != 3 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := NewMap[int]("t", 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				key := fmt.Sprintf("k%d", k%32)
				m.Put(key, g)
				m.Get(key)
				if k%50 == 0 {
					m.Flush()
				}
			}
		}(g)
	}
	wg.Wait()
	s := m.Stats()
	if s.Hits+s.Misses != 8*200 {
		t.Fatalf("lookup count = %d, want %d", s.Hits+s.Misses, 8*200)
	}
}
