// Package cache provides the interpreter's native memoization substrate:
// small bounded maps with observable hit/miss/invalidation counters.
//
// The paper's Figure 2 shows users speeding up command dispatch by spoofing
// %pathsearch with a caching version written in es; this package makes the
// same idea a first-class, measured part of the runtime.  Each cache keeps
// counters so the effect of caching on the hot dispatch paths is visible
// (via $&cachestats and the es -cachestats flag) rather than assumed.
//
// Caches are safe for concurrent use: subshells and background jobs share
// the process-wide parse, decode, and glob caches.
package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Counters tracks cache effectiveness.  All methods are safe for
// concurrent use.
type Counters struct {
	name          string
	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	Name          string
	Entries       int
	Hits          int64
	Misses        int64
	Invalidations int64
}

// HitRate returns the fraction of lookups served from the cache, in
// [0, 1]; it is 0 when no lookups have happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the snapshot in the form printed by es -cachestats.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d entries, %d hits, %d misses, %d invalidated (%.1f%% hit rate)",
		s.Name, s.Entries, s.Hits, s.Misses, s.Invalidations, s.HitRate()*100)
}

// KeyMap is a bounded cache over any comparable key.  When the map
// reaches its capacity a batch of arbitrary entries is evicted; the
// workloads these caches serve (command names, command sources, glob
// patterns, parsed blocks) are heavily skewed, so hot entries repopulate
// immediately and precise LRU bookkeeping would cost more than it saves.
type KeyMap[K comparable, V any] struct {
	Counters
	mu      sync.Mutex
	max     int
	entries map[K]V
}

// Map is the common string-keyed cache.
type Map[V any] = KeyMap[string, V]

// NewMap creates a string-keyed cache holding at most max entries.
func NewMap[V any](name string, max int) *Map[V] {
	return NewKeyMap[string, V](name, max)
}

// NewKeyMap creates a cache over an arbitrary comparable key type (the
// compile cache keys by AST pointer) holding at most max entries.
func NewKeyMap[K comparable, V any](name string, max int) *KeyMap[K, V] {
	if max < 1 {
		max = 1
	}
	m := &KeyMap[K, V]{max: max, entries: make(map[K]V)}
	m.name = name
	return m
}

// Get looks up key, counting a hit or a miss.
func (m *KeyMap[K, V]) Get(key K) (V, bool) {
	m.mu.Lock()
	v, ok := m.entries[key]
	m.mu.Unlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return v, ok
}

// Put stores key → v, evicting arbitrary entries if the cache is full.
func (m *KeyMap[K, V]) Put(key K, v V) {
	m.mu.Lock()
	if _, exists := m.entries[key]; !exists && len(m.entries) >= m.max {
		// Evict an eighth of the cache (at least one entry) so a burst
		// of one-off keys cannot thrash every insertion.
		drop := m.max / 8
		if drop < 1 {
			drop = 1
		}
		for k := range m.entries {
			delete(m.entries, k)
			drop--
			if drop == 0 {
				break
			}
		}
	}
	m.entries[key] = v
	m.mu.Unlock()
}

// Delete removes one entry, counting an invalidation if it was present.
func (m *KeyMap[K, V]) Delete(key K) {
	m.mu.Lock()
	_, ok := m.entries[key]
	if ok {
		delete(m.entries, key)
	}
	m.mu.Unlock()
	if ok {
		m.invalidations.Add(1)
	}
}

// Flush drops every entry, counting each as an invalidation.
func (m *KeyMap[K, V]) Flush() {
	m.mu.Lock()
	n := len(m.entries)
	m.entries = make(map[K]V)
	m.mu.Unlock()
	m.invalidations.Add(int64(n))
}

// Len reports the number of cached entries.
func (m *KeyMap[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Stats snapshots the cache's counters.
func (m *KeyMap[K, V]) Stats() Stats {
	return Stats{
		Name:          m.name,
		Entries:       m.Len(),
		Hits:          m.hits.Load(),
		Misses:        m.misses.Load(),
		Invalidations: m.invalidations.Load(),
	}
}
