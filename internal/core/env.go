package core

import (
	"sort"
	"strings"

	"es/internal/cache"
	"es/internal/syntax"
)

// Environment encoding.  "A fair amount of es must be devoted to
// 'unparsing' function definitions so that they may be passed as
// environment strings.  This is complicated a bit more because the lexical
// environment of a function definition must be preserved at unparsing":
//
//	es> let (a=b) fn foo {echo $a}
//	es> whatis foo
//	%closure(a=b)@ * {echo $a}
//
// Lists are joined with \001 (the traditional es separator); closures
// carry their captured free variables in the %closure(...) prefix.

const listSep = "\001"

// EncodeValue renders a variable value as a single environment string.
func EncodeValue(l List) string {
	parts := make([]string, len(l))
	for k, t := range l {
		parts[k] = EncodeTerm(t)
	}
	return strings.Join(parts, listSep)
}

// EncodeTerm renders one term: closures get the %closure form.
func EncodeTerm(t Term) string {
	if t.Closure != nil {
		return EncodeClosure(t.Closure)
	}
	if t.Prim != "" {
		return "$&" + t.Prim
	}
	return t.Str
}

// EncodeClosure unparses a closure, making its captured lexical bindings
// explicit.  Functions with no named parameters use "*" for binding
// arguments, "for cultural compatibility with other shells".
func EncodeClosure(c *Closure) string {
	var b strings.Builder
	caps := captures(c)
	if len(caps) > 0 {
		b.WriteString("%closure(")
		for k, bind := range caps {
			if k > 0 {
				b.WriteByte(';')
			}
			b.WriteString(bind.Name)
			b.WriteByte('=')
			for j, t := range bind.Value {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(encodeBindingTerm(t))
			}
		}
		b.WriteString(")")
	}
	if c.HasParams {
		b.WriteString("@ ")
		for _, p := range c.Params {
			b.WriteString(p)
			b.WriteByte(' ')
		}
	} else {
		b.WriteString("@ * ")
	}
	b.WriteByte('{')
	b.WriteString(syntax.UnparseBody(c.Body))
	b.WriteByte('}')
	return b.String()
}

// encodeBindingTerm renders a captured value so it re-parses as one word.
func encodeBindingTerm(t Term) string {
	if t.Closure != nil {
		return EncodeClosure(t.Closure)
	}
	if t.Prim != "" {
		return "$&" + t.Prim
	}
	return syntax.QuoteString(t.Str)
}

// captures returns the bindings of the closure's environment that its
// body actually references, innermost first, deduplicated by name.
func captures(c *Closure) []*Binding {
	if c.Env == nil {
		return nil
	}
	free := make(map[string]bool)
	all := freeVars(c.Body, paramSet(c), free)
	var out []*Binding
	seen := make(map[string]bool)
	for b := c.Env; b != nil; b = b.Next {
		if seen[b.Name] {
			continue
		}
		if all || free[b.Name] {
			seen[b.Name] = true
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func paramSet(c *Closure) map[string]bool {
	bound := map[string]bool{"*": true} // $* is always application-bound
	if c.HasParams {
		for _, p := range c.Params {
			bound[p] = true
		}
	}
	return bound
}

// freeVars walks a block collecting free variable references into free.
// It returns true if a computed name ($(...) or a non-literal assignment
// target) makes the free set unknowable, in which case everything must be
// captured.
func freeVars(b *syntax.Block, bound map[string]bool, free map[string]bool) bool {
	if b == nil {
		return false
	}
	all := false
	for _, c := range b.Cmds {
		if freeVarsCmd(c, bound, free) {
			all = true
		}
	}
	return all
}

func freeVarsCmd(c syntax.Cmd, bound, free map[string]bool) bool {
	switch c := c.(type) {
	case nil:
		return false
	case *syntax.Block:
		return freeVars(c, bound, free)
	case *syntax.Simple:
		return freeVarsWords(c.Words, bound, free)
	case *syntax.Assign:
		all := freeVarsWords(c.Values, bound, free)
		if name, ok := c.Name.LitText(); ok {
			if !bound[name] {
				free[name] = true
			}
		} else {
			all = true
		}
		return all
	case *syntax.Let:
		return freeVarsBindingForm(c.Bindings, c.Body, true, bound, free)
	case *syntax.For:
		return freeVarsBindingForm(c.Bindings, c.Body, true, bound, free)
	case *syntax.Local:
		return freeVarsBindingForm(c.Bindings, c.Body, false, bound, free)
	case *syntax.Match:
		all := freeVarsWords([]*syntax.Word{c.Subject}, bound, free)
		if freeVarsWords(c.Pats, bound, free) {
			all = true
		}
		return all
	case *syntax.MatchExtract:
		all := freeVarsWords([]*syntax.Word{c.Subject}, bound, free)
		if freeVarsWords(c.Pats, bound, free) {
			all = true
		}
		return all
	case *syntax.Not:
		return freeVarsCmd(c.Body, bound, free)
	default:
		// Surface nodes (pre-Rewrite): be conservative.
		return true
	}
}

// freeVarsBindingForm handles let/for (which bind lexically) and local
// (which does not shadow lexical references).
func freeVarsBindingForm(bindings []syntax.Binding, body syntax.Cmd, lexical bool, bound, free map[string]bool) bool {
	all := false
	inner := bound
	if lexical {
		inner = make(map[string]bool, len(bound)+len(bindings))
		for k := range bound {
			inner[k] = true
		}
	}
	for _, b := range bindings {
		if freeVarsWords(b.Values, bound, free) {
			all = true
		}
		if name, ok := b.Name.LitText(); ok {
			if lexical {
				inner[name] = true
			}
		} else {
			all = true
		}
	}
	if freeVarsCmd(body, inner, free) {
		all = true
	}
	return all
}

func freeVarsWords(words []*syntax.Word, bound, free map[string]bool) bool {
	all := false
	for _, w := range words {
		if w == nil {
			continue
		}
		for _, part := range w.Parts {
			if freeVarsPart(part, bound, free) {
				all = true
			}
		}
	}
	return all
}

func freeVarsPart(part syntax.Part, bound, free map[string]bool) bool {
	switch part := part.(type) {
	case *syntax.Var:
		name, ok := part.Name.LitText()
		if !ok {
			return true // computed name: capture everything
		}
		if !bound[name] {
			free[name] = true
		}
		if part.Double {
			return true // indirection can reach any binding
		}
		all := false
		for _, iw := range part.Index {
			if freeVarsWords([]*syntax.Word{iw}, bound, free) {
				all = true
			}
		}
		return all
	case *syntax.LambdaPart:
		inner := make(map[string]bool, len(bound)+len(part.Lambda.Params))
		for k := range bound {
			inner[k] = true
		}
		if part.Lambda.HasParams {
			for _, p := range part.Lambda.Params {
				inner[p] = true
			}
		} else {
			inner["*"] = true
		}
		return freeVars(part.Lambda.Body, inner, free)
	case *syntax.CmdSub:
		return freeVars(part.Body, bound, free)
	case *syntax.RetSub:
		return freeVars(part.Body, bound, free)
	case *syntax.ListPart:
		return freeVarsWords(part.Words, bound, free)
	}
	return false
}

// ExportEnv renders the exportable variables as environment strings.
// "Since nearly all shell state can now be encoded in the environment, it
// becomes superfluous for a new instance of es ... to run a configuration
// file."
func (i *Interp) ExportEnv() []string {
	out := make([]string, 0, len(i.vars))
	for name, slot := range i.vars {
		if slot.noexport || (slot.value == nil && !slot.lazy) {
			continue
		}
		if strings.ContainsAny(name, "=\000") {
			continue
		}
		if slot.lazy {
			// Never decoded: re-export the inherited string as-is.
			out = append(out, name+"="+slot.raw)
			continue
		}
		out = append(out, name+"="+EncodeValue(slot.value))
	}
	sort.Strings(out)
	return out
}

// ImportEnv loads environment strings into the variable table.  Values of
// fn- and set- variables (and any value in %closure/lambda form) are
// parsed back into closures; everything else imports as string lists.
func (i *Interp) ImportEnv(environ []string) {
	for _, kv := range environ {
		eq := strings.IndexByte(kv, '=')
		if eq <= 0 {
			continue
		}
		name, val := kv[:eq], kv[eq+1:]
		i.vars[name] = &varSlot{raw: val, lazy: true}
	}
}

// DecodeValue parses an environment string into a value list.
func (i *Interp) DecodeValue(name, val string) List {
	segs := strings.Split(val, listSep)
	out := make(List, 0, len(segs))
	code := strings.HasPrefix(name, "fn-") || strings.HasPrefix(name, "set-")
	for _, seg := range segs {
		if code || strings.HasPrefix(seg, "%closure(") {
			if t, ok := i.decodeTerm(seg); ok {
				out = append(out, t)
				continue
			}
		}
		out = append(out, Term{Str: seg})
	}
	return out
}

// decodedTerm is one memoized decode attempt (failures are deterministic
// and worth remembering too: they cost a parse attempt).
type decodedTerm struct {
	term Term
	ok   bool
}

// decodeCache memoizes decodeTerm by encoded segment.  Keys are
// content-addressed, so entries never go stale; the cache is process-wide
// because its payoff is across shells (every New with the same inherited
// environment re-decodes the same strings — the startup path the paper
// made lazy, now also made shared).
var decodeCache = cache.NewMap[decodedTerm]("decode", 1024)

// FlushDecodeCache drops every memoized environment decode.
func FlushDecodeCache() { decodeCache.Flush() }

// decodeTerm re-parses one encoded term, memoizing the result.  Closures
// with captured bindings are deep-copied both into and out of the cache:
// bindings are mutable (assignment to a captured variable updates them in
// place), so the cache's pristine copy is never handed to a caller and no
// two variables — or two shells — ever alias a cached *Binding chain.
func (i *Interp) decodeTerm(seg string) (Term, bool) {
	if d, ok := decodeCache.Get(seg); ok {
		return copyDecoded(d.term), d.ok
	}
	t, ok := i.decodeTermUncached(seg)
	decodeCache.Put(seg, decodedTerm{term: copyDecoded(t), ok: ok})
	return t, ok
}

// copyDecoded detaches a decoded term from shared mutable state.  Bodies
// are immutable ASTs and stay shared; only the captured binding chain is
// duplicated.
func copyDecoded(t Term) Term {
	if t.Closure != nil && t.Closure.Env != nil {
		memo := &forkMemo{
			bindings: make(map[*Binding]*Binding),
			closures: make(map[*Closure]*Closure),
		}
		t.Closure = copyClosure(t.Closure, memo)
	}
	return t
}

// decodeTermUncached does the actual re-parse of one encoded term.
func (i *Interp) decodeTermUncached(seg string) (Term, bool) {
	var env *Binding
	rest := seg
	if strings.HasPrefix(seg, "%closure(") {
		inner, tail, ok := scanClosureHeader(seg[len("%closure("):])
		if !ok {
			return Term{}, false
		}
		env = i.decodeBindings(inner)
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "@") && !strings.HasPrefix(rest, "{") {
		if strings.HasPrefix(rest, "$&") {
			return Term{Prim: rest[2:]}, true
		}
		return Term{}, false
	}
	blk, err := ParseCommand(rest)
	if err != nil || len(blk.Cmds) != 1 {
		return Term{}, false
	}
	s, ok := blk.Cmds[0].(*syntax.Simple)
	if !ok || len(s.Words) != 1 || len(s.Words[0].Parts) != 1 {
		return Term{}, false
	}
	lp, ok := s.Words[0].Parts[0].(*syntax.LambdaPart)
	if !ok {
		return Term{}, false
	}
	cl := &Closure{
		Params:    lp.Lambda.Params,
		HasParams: lp.Lambda.HasParams,
		Body:      lp.Lambda.Body,
		Env:       env,
	}
	return Term{Closure: cl}, true
}

// scanClosureHeader splits "a=b;c=d)rest" at the parenthesis matching the
// %closure(, respecting quotes and nested parens/braces.
func scanClosureHeader(s string) (inner, rest string, ok bool) {
	depth := 1
	for k := 0; k < len(s); k++ {
		switch s[k] {
		case '\'':
			// skip quoted text ('' is an escaped quote)
			for k++; k < len(s); k++ {
				if s[k] == '\'' {
					if k+1 < len(s) && s[k+1] == '\'' {
						k++
						continue
					}
					break
				}
			}
		case '(', '{':
			depth++
		case '}':
			depth--
		case ')':
			depth--
			if depth == 0 {
				return s[:k], s[k+1:], true
			}
		}
	}
	return "", "", false
}

// decodeBindings parses the %closure binding list "a=b;c=d" into an
// environment chain.  The grammar is exactly what EncodeClosure emits —
// names, '=', and space-separated terms that are quoted strings, $&
// primitives, or (possibly %closure-prefixed) lambdas — so it is scanned
// by hand rather than through the surface parser: %closure(...) is an
// encoding form, not shell syntax, and routing the list through a
// synthetic `let` silently dropped the whole environment whenever a
// captured value was itself a closure with captures.
func (i *Interp) decodeBindings(inner string) *Binding {
	var env *Binding
	for _, bind := range splitOutside(inner, ';') {
		eq := strings.IndexByte(bind, '=')
		if eq <= 0 {
			continue
		}
		name := bind[:eq]
		var value List
		rest := bind[eq+1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if rest == "" {
				break
			}
			if rest[0] == '@' || strings.HasPrefix(rest, "%closure(") {
				if span, tail, ok := scanClosureTerm(rest); ok {
					if t, tok := i.decodeTerm(span); tok {
						value = append(value, t)
						rest = tail
						continue
					}
				}
			}
			var word string
			word, rest = scanWord(rest)
			if strings.HasPrefix(word, "$&") {
				value = append(value, Term{Prim: word[2:]})
				continue
			}
			value = append(value, Term{Str: unquoteWord(word)})
		}
		env = &Binding{Name: name, Value: value, Next: env}
	}
	return env
}

// splitOutside splits s at sep, ignoring separators inside quotes,
// parens, and braces.
func splitOutside(s string, sep byte) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth, start := 0, 0
	for k := 0; k < len(s); k++ {
		switch s[k] {
		case '\'':
			k = skipQuoted(s, k)
		case '(', '{':
			depth++
		case ')', '}':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:k])
				start = k + 1
			}
		}
	}
	return append(out, s[start:])
}

// skipQuoted advances k from an opening quote at s[k] to its closing
// quote ('' is an escaped quote), returning the index of the close.
func skipQuoted(s string, k int) int {
	for k++; k < len(s); k++ {
		if s[k] == '\'' {
			if k+1 < len(s) && s[k+1] == '\'' {
				k++
				continue
			}
			break
		}
	}
	return k
}

// scanClosureTerm splits off one encoded closure term — an optional
// %closure(...) header followed by an @-lambda — from the front of s.
func scanClosureTerm(s string) (term, rest string, ok bool) {
	k := 0
	if strings.HasPrefix(s, "%closure(") {
		_, tail, hok := scanClosureHeader(s[len("%closure("):])
		if !hok {
			return "", "", false
		}
		k = len(s) - len(tail)
	}
	// After the header: "@ params... {body}"; the term ends at the brace
	// matching the body's opening one.
	depth, seenBrace := 0, false
	for ; k < len(s); k++ {
		switch s[k] {
		case '\'':
			k = skipQuoted(s, k)
		case '{', '(':
			depth++
			if s[k] == '{' {
				seenBrace = true
			}
		case '}', ')':
			depth--
			if depth == 0 && seenBrace && s[k] == '}' {
				return s[:k+1], s[k+1:], true
			}
		}
	}
	return "", "", false
}

// scanWord returns one space-delimited word (quote-aware) and the rest.
func scanWord(s string) (word, rest string) {
	for k := 0; k < len(s); k++ {
		switch s[k] {
		case '\'':
			k = skipQuoted(s, k)
		case ' ':
			return s[:k], s[k+1:]
		}
	}
	return s, ""
}

// unquoteWord reverses QuoteString: quoted segments lose their quotes,
// and a doubled quote inside one becomes a single quote.
func unquoteWord(w string) string {
	if !strings.ContainsRune(w, '\'') {
		return w
	}
	var b strings.Builder
	for k := 0; k < len(w); k++ {
		if w[k] != '\'' {
			b.WriteByte(w[k])
			continue
		}
		for k++; k < len(w); k++ {
			if w[k] == '\'' {
				if k+1 < len(w) && w[k+1] == '\'' {
					b.WriteByte('\'')
					k++
					continue
				}
				break
			}
			b.WriteByte(w[k])
		}
	}
	return b.String()
}
