package core

import "strings"

// Exception is the es exception value: a list whose first term names the
// exception.  Six names are known to the interpreter — error, signal, eof,
// break, return, retry — but "any set of arguments can be passed to
// throw".
//
// Exceptions travel as Go errors through evaluation; $&catch implements
// the handler protocol, loops intercept break, and closure application
// intercepts return.
type Exception struct {
	Args List
}

func (e *Exception) Error() string {
	if len(e.Args) == 0 {
		return "exception"
	}
	return strings.Join(e.Args.Strings(), " ")
}

// Name returns the exception's first term as a string ("" if empty).
func (e *Exception) Name() string {
	if len(e.Args) == 0 {
		return ""
	}
	return e.Args[0].String()
}

// Throw builds an exception error from a list.
func Throw(args List) error {
	return &Exception{Args: args}
}

// ErrorExc builds the common `error msg...` exception.
func ErrorExc(msg ...string) error {
	return &Exception{Args: append(StrList("error"), StrList(msg...)...)}
}

// AsException extracts an *Exception from err, or nil.
func AsException(err error) *Exception {
	if e, ok := err.(*Exception); ok {
		return e
	}
	return nil
}

// ExcNamed reports whether err is an exception with the given name.
func ExcNamed(err error, name string) bool {
	e := AsException(err)
	return e != nil && e.Name() == name
}

// ReturnValue extracts the value carried by a return exception; ok
// reports whether err was one.
func ReturnValue(err error) (List, bool) {
	e := AsException(err)
	if e == nil || e.Name() != "return" {
		return nil, false
	}
	return e.Args[1:], true
}

// tailCall is the trampoline token: a closure application about to happen
// in tail position.  It unwinds the Go stack to the nearest apply loop,
// which continues with the new closure and arguments.  It is not an
// exception — contexts that must regain control (catch, local, loops,
// substitutions) simply never evaluate their bodies in tail position.
type tailCall struct {
	cl   *Closure
	args List
}

func (t *tailCall) Error() string { return "internal: unhandled tail call" }
