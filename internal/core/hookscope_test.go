package core_test

import (
	"strings"
	"testing"
)

// These tests pin the hook scoping rule (MANUAL.md §9): a typed command
// name resolves fn-name through the lexical environment, but when the
// interpreter itself fires a %hook it consults only the global
// variable, matching the C implementation's varlookup(name, NULL).

// A let-bound fn-%hook spoofs direct calls of the hook name inside the
// let body — the lexical half of the rule.
func TestHookScopeLexicalBindingSpoofsDirectCalls(t *testing.T) {
	i, ctx, out := harness(t)
	eval(t, i, ctx,
		"let (fn-%mungehook = @ {result let-bound}) {echo <={%mungehook}}")
	if got := out.String(); !strings.Contains(got, "let-bound") {
		t.Errorf("direct call ignored lexical fn- binding: %q", got)
	}
}

// The same let-bound hook is invisible to interpreter dispatch:
// CallHook inside the lexical extent still resolves globally, so path
// search for an unknown command uses the global %pathsearch even while
// a lexical one is in scope.
func TestHookScopeInterpreterDispatchIgnoresLexical(t *testing.T) {
	i, ctx, out := harness(t)
	eval(t, i, ctx, `
		fn %pathsearch n { throw error %pathsearch global-hook $n }
		let (fn-%pathsearch = @ n { throw error %pathsearch lexical-hook $n }) {
			catch @ e from msg {echo dispatched-by $msg} {no-such-command-xyz}
		}
	`)
	got := out.String()
	if !strings.Contains(got, "dispatched-by global-hook") {
		t.Errorf("interpreter dispatch did not use the global hook: %q", got)
	}
	if strings.Contains(got, "lexical-hook") {
		t.Errorf("interpreter dispatch leaked the lexical binding: %q", got)
	}
}

// local() assigns the global, so it is the supported way to spoof a
// hook for a dynamic extent — and the spoof must be gone afterwards.
func TestHookScopeLocalSpoofsDispatchAndRestores(t *testing.T) {
	i, ctx, out := harness(t)
	eval(t, i, ctx, `
		fn %pathsearch n { throw error %pathsearch original $n }
		local (fn-%pathsearch = @ n { throw error %pathsearch local-spoof $n }) {
			catch @ e from msg {echo inside $msg} {cmd-one}
		}
		catch @ e from msg {echo outside $msg} {cmd-two}
	`)
	got := out.String()
	if !strings.Contains(got, "inside local-spoof") {
		t.Errorf("local spoof did not reach interpreter dispatch: %q", got)
	}
	if !strings.Contains(got, "outside original") {
		t.Errorf("local spoof was not restored: %q", got)
	}
}

// CallHook from Go embedding follows the same globals-only rule.
func TestCallHookGlobalsOnly(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, "fn %scopeprobe {result global}")
	res, err := i.CallHook(ctx, "%scopeprobe", nil)
	if err != nil || res.Flatten("") != "global" {
		t.Fatalf("CallHook = %v, %v", res, err)
	}
}
