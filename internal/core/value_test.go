package core

import (
	"strings"
	"testing"
	"testing/quick"

	"es/internal/syntax"
)

func TestListTruth(t *testing.T) {
	cl := &Closure{Body: &syntax.Block{}}
	tests := []struct {
		l    List
		want bool
	}{
		{List{}, true},
		{StrList("0"), true},
		{StrList(""), true},
		{StrList("0", "0", ""), true},
		{StrList("1"), false},
		{StrList("0", "1"), false},
		{StrList("hello"), false},
		{StrList("sigint"), false},
		{List{Term{Closure: cl}}, false},
		{List{Term{Prim: "echo"}}, false},
	}
	for _, tt := range tests {
		if got := tt.l.True(); got != tt.want {
			t.Errorf("True(%v) = %v, want %v", tt.l, got, tt.want)
		}
	}
}

func TestBoolRoundTrip(t *testing.T) {
	if !Bool(true).True() || Bool(false).True() {
		t.Fatal("Bool is inconsistent with True")
	}
	if !True().True() || False().True() {
		t.Fatal("True/False constants broken")
	}
}

func TestConcatSemantics(t *testing.T) {
	tests := []struct {
		a, b []string
		want []string
		err  bool
	}{
		{[]string{"a"}, []string{"b"}, []string{"ab"}, false},
		{[]string{"a"}, []string{"1", "2", "3"}, []string{"a1", "a2", "a3"}, false},
		{[]string{"1", "2"}, []string{"x"}, []string{"1x", "2x"}, false},
		{[]string{"1", "2"}, []string{"a", "b"}, []string{"1a", "2b"}, false},
		{[]string{"1", "2"}, []string{"a", "b", "c"}, nil, true},
		{nil, []string{"a"}, nil, true},
		{[]string{"a"}, nil, nil, true},
	}
	for _, tt := range tests {
		got, err := Concat(StrList(tt.a...), StrList(tt.b...))
		if (err != nil) != tt.err {
			t.Errorf("Concat(%v,%v) err = %v", tt.a, tt.b, err)
			continue
		}
		if err != nil {
			if !ExcNamed(err, "error") {
				t.Errorf("Concat error is not an es error exception: %v", err)
			}
			continue
		}
		if got.Flatten(",") != strings.Join(tt.want, ",") {
			t.Errorf("Concat(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// Concat length law: |a ^ b| = max(|a|, |b|) whenever both non-empty and
// compatible.
func TestConcatLengthProperty(t *testing.T) {
	f := func(a, b []string) bool {
		la, lb := len(a), len(b)
		got, err := Concat(StrList(a...), StrList(b...))
		compatible := la > 0 && lb > 0 && (la == 1 || lb == 1 || la == lb)
		if !compatible {
			return err != nil
		}
		want := la
		if lb > want {
			want = lb
		}
		return err == nil && len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTermString(t *testing.T) {
	if got := StrTerm("plain").String(); got != "plain" {
		t.Errorf("string term = %q", got)
	}
	if got := (Term{Prim: "create"}).String(); got != "$&create" {
		t.Errorf("prim term = %q", got)
	}
	blk, err := ParseCommand("echo hi")
	if err != nil {
		t.Fatal(err)
	}
	cl := &Closure{Body: blk}
	if got := (Term{Closure: cl}).String(); got != "{echo hi}" {
		t.Errorf("closure term = %q", got)
	}
	cl2 := &Closure{Params: []string{"a", "b"}, HasParams: true, Body: blk}
	if got := (Term{Closure: cl2}).String(); got != "@ a b {echo hi}" {
		t.Errorf("lambda term = %q", got)
	}
}

func TestFlattenAndStrings(t *testing.T) {
	l := StrList("a", "b", "c")
	if l.Flatten(":") != "a:b:c" {
		t.Errorf("Flatten = %q", l.Flatten(":"))
	}
	if strings.Join(l.Strings(), "") != "abc" {
		t.Errorf("Strings = %v", l.Strings())
	}
	if (List{}).Flatten(":") != "" {
		t.Error("empty flatten")
	}
}

func TestListEqual(t *testing.T) {
	cl := &Closure{Body: &syntax.Block{}}
	a := List{StrTerm("x"), {Closure: cl}}
	b := List{StrTerm("x"), {Closure: cl}}
	if !a.Equal(b) {
		t.Error("identical lists unequal")
	}
	c := List{StrTerm("x"), {Closure: &Closure{Body: &syntax.Block{}}}}
	if a.Equal(c) {
		t.Error("different closures equal")
	}
	if a.Equal(a[:1]) {
		t.Error("different lengths equal")
	}
}

func TestBindingLookup(t *testing.T) {
	inner := &Binding{Name: "x", Value: StrList("inner"),
		Next: &Binding{Name: "y", Value: StrList("why"),
			Next: &Binding{Name: "x", Value: StrList("outer")}}}
	if b := inner.Lookup("x"); b == nil || b.Value.Flatten("") != "inner" {
		t.Error("innermost binding not found first")
	}
	if b := inner.Lookup("y"); b == nil || b.Value.Flatten("") != "why" {
		t.Error("y not found")
	}
	if inner.Lookup("z") != nil {
		t.Error("phantom binding")
	}
	var nilChain *Binding
	if nilChain.Lookup("x") != nil {
		t.Error("nil chain lookup should be nil")
	}
}

func TestExceptionAccessors(t *testing.T) {
	err := ErrorExc("something", "bad")
	e := AsException(err)
	if e == nil || e.Name() != "error" {
		t.Fatalf("AsException: %v", e)
	}
	if e.Error() != "error something bad" {
		t.Errorf("Error() = %q", e.Error())
	}
	if !ExcNamed(err, "error") || ExcNamed(err, "eof") {
		t.Error("ExcNamed broken")
	}
	if _, ok := ReturnValue(err); ok {
		t.Error("error exception mistaken for return")
	}
	ret := Throw(append(StrList("return"), StrList("a", "b")...))
	v, ok := ReturnValue(ret)
	if !ok || v.Flatten(",") != "a,b" {
		t.Errorf("ReturnValue = %v, %v", v, ok)
	}
	if AsException(errPlain{}) != nil {
		t.Error("non-exception treated as exception")
	}
}

type errPlain struct{}

func (errPlain) Error() string { return "plain" }
