package core

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"es/internal/proc"
)

// runBuiltin executes one of the hermetic utility commands with flattened
// arguments; its exit status becomes the result list.
func (i *Interp) runBuiltin(ctx *Ctx, fn BuiltinFunc, name string, args List) (List, error) {
	argv := append([]string{name}, args.Strings()...)
	status := fn(i, ctx, argv)
	return StrList(strconv.Itoa(status)), nil
}

// runExternal resolves name — through the (spoofable) %pathsearch hook
// when it is not already a path — and executes it as a real process.
func (i *Interp) runExternal(ctx *Ctx, env *Binding, name string, args List) (List, error) {
	if i.NoExternals {
		return nil, ErrorExc(name + ": externals disabled")
	}
	file := name
	if !strings.ContainsRune(name, '/') {
		found, err := i.CallHook(ctx.NonTail(), "%pathsearch", StrList(name))
		if err != nil {
			return nil, err
		}
		if len(found) == 0 {
			return nil, ErrorExc(name + ": not found")
		}
		// A pathsearch hook may return a closure (e.g. an autoloader).
		if found[0].Closure != nil || found[0].Prim != "" {
			rest := append(append(List{}, found[1:]...), args...)
			return i.applyTerm(ctx.NonTail(), env, found[0], rest)
		}
		file = found[0].Str
	}
	return i.ExecFile(ctx, file, name, args)
}

// ExecFile runs the program at file with argv[0] = name.
func (i *Interp) ExecFile(ctx *Ctx, file, name string, args List) (List, error) {
	if !filepath.IsAbs(file) {
		file = filepath.Join(i.dir, file)
	}
	files := make(proc.Files)
	var cleanups []func()
	// Descriptors sharing one stream entry (e.g. stdout and stderr both
	// bound to the same buffer) share one bridge: bridging them twice
	// would write the same sink from two goroutines.
	bridged := make(map[interface{}]*os.File)
	for _, fd := range ctx.IO.Fds() {
		entry := ctx.IO.Get(fd)
		if f, ok := bridged[entry]; ok && fd != 0 {
			files[fd] = f
			continue
		}
		f, done, err := ctx.IO.File(fd, fd == 0)
		if err != nil {
			for _, c := range cleanups {
				c()
			}
			return nil, ErrorExc(err.Error())
		}
		if done != nil {
			cleanups = append(cleanups, done)
		}
		if fd != 0 && entry != nil {
			bridged[entry] = f
		}
		files[fd] = f
	}
	argv := append([]string{name}, args.Strings()...)
	status, err := proc.Run(file, argv, i.dir, i.ExportEnv(), files)
	for _, c := range cleanups {
		c()
	}
	if err != nil {
		return nil, ErrorExc(name + ": " + err.Error())
	}
	return StrList(status), nil
}
