package core

import (
	"strings"
	"testing"
)

// SetNoExport on a name that was never assigned used to create a real
// varSlot, so Defined reported true and VarNames listed a variable no
// assignment ever created.  The mark must be remembered without making
// the variable visible.
func TestSetNoExportUnsetNameIsNotDefined(t *testing.T) {
	i := New()
	i.SetNoExport("ghost")
	if i.Defined("ghost") {
		t.Error("SetNoExport on an unset name made Defined report true")
	}
	for _, n := range i.VarNames() {
		if n == "ghost" {
			t.Error("SetNoExport on an unset name made VarNames list it")
		}
	}
	if v := i.Var("ghost"); v != nil {
		t.Errorf("Var on a noexport-marked unset name = %v, want nil", v)
	}
	// The mark itself must survive: a later assignment defines the
	// variable normally but keeps it out of the environment.
	i.SetVarRaw("ghost", StrList("now set"))
	if !i.Defined("ghost") {
		t.Error("assignment after SetNoExport did not define the variable")
	}
	found := false
	for _, n := range i.VarNames() {
		if n == "ghost" {
			found = true
		}
	}
	if !found {
		t.Error("assigned noexport variable missing from VarNames")
	}
	for _, kv := range i.ExportEnv() {
		if strings.HasPrefix(kv, "ghost=") {
			t.Errorf("noexport variable exported: %q", kv)
		}
	}
}

// The noexport mark (phantom or not) must survive Fork, and a phantom
// slot must stay invisible in the child too.
func TestSetNoExportSurvivesFork(t *testing.T) {
	i := New()
	i.SetNoExport("ghost")
	i.SetVarRaw("vis", StrList("v"))
	i.SetNoExport("vis")
	child := i.Fork()
	if child.Defined("ghost") {
		t.Error("phantom noexport slot became Defined in fork")
	}
	child.SetVarRaw("ghost", StrList("x"))
	for _, kv := range child.ExportEnv() {
		if strings.HasPrefix(kv, "ghost=") || strings.HasPrefix(kv, "vis=") {
			t.Errorf("noexport variable exported from fork: %q", kv)
		}
	}
}
