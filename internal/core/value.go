// Package core implements the es interpreter: values, variables with
// settors, lexical and dynamic binding, exceptions, rich return values, and
// the evaluator with tail-call elimination.
//
// This is the paper's primary contribution: a shell in which program
// fragments are first-class values and every shell service is an ordinary
// function call.
package core

import (
	"strings"

	"es/internal/syntax"
)

// Term is one element of an es list: a plain string, a closure (a program
// fragment with its captured lexical environment), or a reference to an
// unoverridable $&primitive.
type Term struct {
	Str     string
	Closure *Closure
	Prim    string // non-empty for $&name terms
}

// List is an es value: a flat list of terms.  "Lists are not hierarchical;
// that is, lists may not contain lists as elements."
type List []Term

// Closure is a procedure "waiting to happen": a lambda body plus the
// lexical environment captured at the point the lambda was evaluated.
//
// HasParams distinguishes "@ {body}" (explicitly zero parameters) from a
// bare "{body}" fragment, whose arguments bind to *.
type Closure struct {
	Params    []string
	HasParams bool
	Body      *syntax.Block
	Env       *Binding
}

// Binding is one link in a lexical environment chain.  Bindings are
// mutable: assignment to a lexically bound name updates the binding in
// place, which is how two closures over the same let share state.
type Binding struct {
	Name  string
	Value List
	Next  *Binding
}

// Lookup finds the innermost binding of name, or nil.
func (b *Binding) Lookup(name string) *Binding {
	for ; b != nil; b = b.Next {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// StrTerm makes a plain string term.
func StrTerm(s string) Term { return Term{Str: s} }

// StrList makes a list of plain string terms.
func StrList(ss ...string) List {
	l := make(List, len(ss))
	for i, s := range ss {
		l[i] = Term{Str: s}
	}
	return l
}

// IsClosure reports whether the term is a program fragment.
func (t Term) IsClosure() bool { return t.Closure != nil }

// String renders a term for output or for passing to an external program:
// closures unparse to their source form.
func (t Term) String() string {
	switch {
	case t.Closure != nil:
		return syntax.UnparseLambda(t.Closure.lambda())
	case t.Prim != "":
		return "$&" + t.Prim
	default:
		return t.Str
	}
}

func (c *Closure) lambda() *syntax.Lambda {
	return &syntax.Lambda{Params: c.Params, HasParams: c.HasParams, Body: c.Body}
}

// Strings flattens the list to plain strings (closures unparse).
func (l List) Strings() []string {
	out := make([]string, len(l))
	for i, t := range l {
		out[i] = t.String()
	}
	return out
}

// Flatten joins the list into a single string with sep, as %flatten does.
func (l List) Flatten(sep string) string {
	return strings.Join(l.Strings(), sep)
}

// True reports the es truth of a result: every term must be "" or "0".
// The empty list is true.  ("UNIX programs exit with a single number ...
// es supplants the notion of an exit status with rich return values";
// a status list is successful when all components report success.)
func (l List) True() bool {
	for _, t := range l {
		if t.Closure != nil || t.Prim != "" {
			return false
		}
		if t.Str != "" && t.Str != "0" {
			return false
		}
	}
	return true
}

// Bool converts a Go truth to the conventional es status list.
func Bool(ok bool) List {
	if ok {
		return True()
	}
	return False()
}

// True is the canonical success result: the list (0).
func True() List { return List{Term{Str: "0"}} }

// False is the canonical failure result: the list (1).
func False() List { return List{Term{Str: "1"}} }

// Equal reports deep equality of two lists (closures compare by pointer).
func (l List) Equal(m List) bool {
	if len(l) != len(m) {
		return false
	}
	for i := range l {
		if l[i].Str != m[i].Str || l[i].Closure != m[i].Closure || l[i].Prim != m[i].Prim {
			return false
		}
	}
	return true
}

// Concat implements es list concatenation (the ^ operator and word
// adjacency): pairwise when lengths match, distributing when either side
// is a singleton.
func Concat(a, b List) (List, error) {
	switch {
	case len(a) == 0 || len(b) == 0:
		return nil, ErrorExc("bad concatenation")
	case len(a) == 1:
		out := make(List, len(b))
		for i, t := range b {
			out[i] = Term{Str: a[0].String() + t.String()}
		}
		return out, nil
	case len(b) == 1:
		out := make(List, len(a))
		for i, t := range a {
			out[i] = Term{Str: t.String() + b[0].String()}
		}
		return out, nil
	case len(a) == len(b):
		out := make(List, len(a))
		for i := range a {
			out[i] = Term{Str: a[i].String() + b[i].String()}
		}
		return out, nil
	default:
		return nil, ErrorExc("bad concatenation")
	}
}
