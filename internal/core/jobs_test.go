package core

// Regression tests for the background-job table: WaitAny must reap the
// first job to finish (not block behind the lowest id), ties break
// deterministically on the lowest id, and concurrent waiters on the
// shared fork/parent table are well-defined under -race.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// jobDone returns the done channel of a live (unreaped) job.
func jobDone(t *testing.T, i *Interp, id int) chan struct{} {
	t.Helper()
	i.jobs.mu.Lock()
	defer i.jobs.mu.Unlock()
	j := i.jobs.jobs[id]
	if j == nil {
		t.Fatalf("job %d not in table", id)
	}
	return j.done
}

func TestWaitAnyFirstFinisher(t *testing.T) {
	i := New()
	slow := make(chan struct{})
	idSlow := i.StartJob(func() List { <-slow; return StrList("slow") })
	fast := make(chan struct{})
	idFast := i.StartJob(func() List { <-fast; return StrList("fast") })

	close(fast)
	<-jobDone(t, i, idFast)

	type res struct {
		id  int
		val List
		ok  bool
	}
	got := make(chan res, 1)
	go func() {
		id, val, ok := i.WaitAny()
		got <- res{id, val, ok}
	}()
	select {
	case r := <-got:
		if !r.ok || r.id != idFast || r.val.Flatten(" ") != "fast" {
			t.Fatalf("WaitAny = %d %v %v, want %d fast true", r.id, r.val, r.ok, idFast)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitAny blocked behind the unfinished low-id job")
	}

	close(slow)
	id, val, ok := i.WaitAny()
	if !ok || id != idSlow || val.Flatten(" ") != "slow" {
		t.Fatalf("second WaitAny = %d %v %v, want %d slow true", id, val, ok, idSlow)
	}
	if _, _, ok := i.WaitAny(); ok {
		t.Error("WaitAny with an empty table should report none")
	}
}

func TestWaitAnyTieBreaksOnLowestID(t *testing.T) {
	i := New()
	ids := make([]int, 3)
	for k := range ids {
		ids[k] = i.StartJob(func() List { return StrList("x") })
	}
	for _, id := range ids {
		<-jobDone(t, i, id)
	}
	id, _, ok := i.WaitAny()
	if !ok || id != ids[0] {
		t.Fatalf("WaitAny with several finished jobs = %d, want lowest id %d", id, ids[0])
	}
}

func TestWaitJobConcurrentWaiters(t *testing.T) {
	i := New()
	gate := make(chan struct{})
	id := i.StartJob(func() List { <-gate; return StrList("r") })

	var okCount atomic.Int32
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if val, ok := i.WaitJob(id); ok {
				if val.Flatten(" ") != "r" {
					t.Errorf("winning waiter got %v", val)
				}
				okCount.Add(1)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if okCount.Load() != 1 {
		t.Fatalf("%d waiters claimed job %d, want exactly 1", okCount.Load(), id)
	}
}

func TestWaitAnyConcurrentWaitersSharedForkTable(t *testing.T) {
	i := New()
	child := i.Fork() // shares the job table, like a subshell
	const jobs = 24
	gate := make(chan struct{})
	for k := 0; k < jobs; k++ {
		i.StartJob(func() List { <-gate; return StrList("x") })
	}
	var reaped atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		p := i
		if w%2 == 1 {
			p = child
		}
		wg.Add(1)
		go func(p *Interp) {
			defer wg.Done()
			for {
				if _, _, ok := p.WaitAny(); !ok {
					return
				}
				reaped.Add(1)
			}
		}(p)
	}
	close(gate)
	wg.Wait()
	if reaped.Load() != jobs {
		t.Fatalf("reaped %d jobs, want %d", reaped.Load(), jobs)
	}
}
