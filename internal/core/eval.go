package core

import (
	"strconv"
	"strings"
	"sync/atomic"

	"es/internal/glob"
	"es/internal/syntax"
)

// Interrupt requests that this interpreter raise a signal exception at
// its next command boundary.  "Exceptions ... provide a way for user code
// to interact with UNIX signals."  The pending flag is per-interpreter
// (shared with its forks, like a process group): interrupting one embedded
// Interp does not abort commands running in an unrelated one.
func (i *Interp) Interrupt() { i.intr.Store(true) }

// ClearInterrupt drops a pending interrupt that no command boundary
// consumed.  The REPL calls this when it returns to the prompt (%parse),
// so a SIGINT delivered in the dead time after one command finishes does
// not stay latched and abort the next, unrelated command.  It touches
// only the interrupt line: a server-side deadline armed with SetCancel
// stays armed — a user pressing ^C at an embedded prompt must not grant
// a request more time.
func (i *Interp) ClearInterrupt() { i.intr.Store(false) }

// cancelState is one armed cooperative cancellation: once done is closed,
// the next command boundary anywhere in the interpreter's fork group
// raises `signal <reason>`.  Delivery is one-shot, like a Unix signal: the
// first boundary to observe the closed channel wins the CAS and throws;
// a handler that catches the exception then runs normally instead of
// being re-aborted at its own first command.
type cancelState struct {
	done   <-chan struct{}
	reason string
	fired  atomic.Bool
}

// SetCancel arms cooperative cancellation for this interpreter and its
// forks: when done is closed, evaluation raises the catchable exception
// `signal <reason>` at the next command boundary.  This is how a serving
// layer imposes a per-request deadline on an eval without killing its
// goroutine — the timeout unwinds through the script like any signal
// (`throw signal deadline`), scripts may catch it, and the interpreter
// stays usable for the next request.  Arming replaces any previous token.
func (i *Interp) SetCancel(done <-chan struct{}, reason string) {
	i.cancel.Store(&cancelState{done: done, reason: reason})
}

// ClearCancel disarms SetCancel.  It does not touch a latched interrupt;
// the interrupt line and the cancel slot are independent (ClearInterrupt
// likewise leaves the cancel token armed).
func (i *Interp) ClearCancel() { i.cancel.Store(nil) }

// checkPending is the boundary poll for asynchronous aborts, run at every
// command boundary and every closure application (the latter so that
// loops over empty thunks — `while {} {}` — still observe aborts).  A
// fired cancel token outranks a latched interrupt, and consumes it: an
// eval that is both interrupted and past its deadline is aborting for one
// cause and raises exactly one exception.  The common no-abort path costs
// two atomic loads, no read-modify-write.
func (i *Interp) checkPending() error {
	if c := i.cancel.Load(); c != nil && !c.fired.Load() {
		select {
		case <-c.done:
			if c.fired.CompareAndSwap(false, true) {
				i.intr.Store(false)
				return Throw(StrList("signal", c.reason))
			}
		default:
		}
	}
	if i.intr.Load() && i.intr.CompareAndSwap(true, false) {
		return Throw(StrList("signal", "sigint"))
	}
	return nil
}

// EvalBlock evaluates a command sequence; the result is the last
// command's result (the empty list — true — for an empty block).  When
// ctx is a tail context the final command is evaluated in tail position.
func (i *Interp) EvalBlock(ctx *Ctx, b *syntax.Block, env *Binding) (List, error) {
	if b == nil || len(b.Cmds) == 0 {
		return List{}, nil
	}
	// The compiled engine is the default; blocks the compiler cannot
	// lower (and every block under -nocompile) take the tree walker.
	if !i.NoCompile {
		if u := unitFor(b); u != nil {
			return i.execSeq(ctx, u.Seq, env)
		}
	}
	inner := ctx.NonTail()
	for _, c := range b.Cmds[:len(b.Cmds)-1] {
		i.Alloc.command()
		if _, err := i.evalCmd(inner, c, env); err != nil {
			return nil, err
		}
	}
	i.Alloc.command()
	return i.evalCmd(ctx, b.Cmds[len(b.Cmds)-1], env)
}

func (i *Interp) evalCmd(ctx *Ctx, c syntax.Cmd, env *Binding) (List, error) {
	if err := i.checkPending(); err != nil {
		return nil, err
	}
	switch c := c.(type) {
	case *syntax.Block:
		return i.EvalBlock(ctx, c, env)
	case *syntax.Simple:
		return i.evalSimple(ctx, c, env)
	case *syntax.Assign:
		return i.evalAssign(ctx, c, env)
	case *syntax.Let:
		return i.evalLet(ctx, c, env)
	case *syntax.Local:
		return i.evalLocal(ctx, c, env)
	case *syntax.For:
		return i.evalFor(ctx, c, env)
	case *syntax.Match:
		return i.evalMatch(ctx, c, env)
	case *syntax.MatchExtract:
		return i.evalMatchExtract(ctx, c, env)
	case *syntax.Not:
		res, err := i.evalCmd(ctx.NonTail(), c.Body, env)
		if err != nil {
			return nil, err
		}
		return Bool(!res.True()), nil
	case nil:
		return List{}, nil
	default:
		// A surface node leaked through without Rewrite.
		return i.evalCmd(ctx, syntax.Rewrite(c), env)
	}
}

func (i *Interp) evalSimple(ctx *Ctx, s *syntax.Simple, env *Binding) (List, error) {
	// A bare brace block in command position is grouping, not a function
	// call: it runs in the enclosing environment, keeps the enclosing $*,
	// and is transparent to return.  ({cmd} with arguments, or a block
	// reached through a variable, is a closure application as usual.)
	if len(s.Words) == 1 && len(s.Words[0].Parts) == 1 {
		if lp, ok := s.Words[0].Parts[0].(*syntax.LambdaPart); ok && !lp.Lambda.HasParams {
			return i.EvalBlock(ctx, lp.Lambda.Body, env)
		}
	}
	terms, err := i.EvalWords(ctx, s.Words, env)
	if err != nil {
		return nil, err
	}
	if len(terms) == 0 {
		return List{}, nil
	}
	return i.applyTerm(ctx, env, terms[0], terms[1:])
}

// applyTerm dispatches a command head: closures are applied, primitives
// invoked, and plain strings resolved through fn- lookup, then the builtin
// table, then %pathsearch and external execution.
func (i *Interp) applyTerm(ctx *Ctx, env *Binding, head Term, args List) (List, error) {
	switch {
	case head.Closure != nil:
		if ctx.Tail && !i.NoTailCalls {
			return nil, &tailCall{cl: head.Closure, args: args}
		}
		return i.Apply(ctx, head.Closure, args)
	case head.Prim != "":
		fn := i.prims[head.Prim]
		if fn == nil {
			return nil, ErrorExc("$&" + head.Prim + ": unknown primitive")
		}
		return fn(i, ctx, args)
	}
	name := head.Str
	// "when a name like apply is seen by es, it first looks in its
	// symbol table for a variable by the name fn-apply."
	if fnval := lookupVar(i, env, "fn-"+name); len(fnval) > 0 {
		newArgs := args
		if len(fnval) > 1 {
			newArgs = append(append(List{}, fnval[1:]...), args...)
		}
		h := fnval[0]
		if h.Closure != nil || h.Prim != "" {
			return i.applyTerm(ctx, env, h, newArgs)
		}
		// A string-valued fn- definition (e.g. the path cache's
		// fn-$prog = /full/path) names a file to run directly.
		return i.runExternal(ctx, env, h.Str, newArgs)
	}
	if fn := i.builtins[name]; fn != nil {
		return i.runBuiltin(ctx, fn, name, args)
	}
	return i.runExternal(ctx, env, name, args)
}

// ApplyTerm applies a head term — closure, primitive reference or command
// name — to arguments, exactly as command dispatch does: a closure
// application is a function-call boundary that intercepts the return
// exception.
func (i *Interp) ApplyTerm(ctx *Ctx, head Term, args List) (List, error) {
	return i.applyTerm(ctx, nil, head, args)
}

// Call applies a head term WITHOUT establishing a return boundary.  This
// is how primitives run their thunk arguments: `return` inside an if
// branch, a catch handler, or a redirection body must unwind past the
// primitive to the enclosing function invocation, exactly as the C
// implementation's internal eval() does.
func (i *Interp) Call(ctx *Ctx, head Term, args List) (List, error) {
	if head.Closure != nil {
		if ctx.Tail && !i.NoTailCalls {
			return nil, &tailCall{cl: head.Closure, args: args}
		}
		return i.applyClosure(ctx, head.Closure, args, false)
	}
	return i.applyTerm(ctx, nil, head, args)
}

// Apply applies a closure to arguments as a function call: it trampolines
// tail calls so that properly tail-recursive functions run in constant Go
// stack — the paper's stated future work ("tail calls consume stack
// space, something they could be optimized not to do") — and it catches
// the return exception.
func (i *Interp) Apply(ctx *Ctx, cl *Closure, args List) (List, error) {
	return i.applyClosure(ctx, cl, args, true)
}

func (i *Interp) applyClosure(ctx *Ctx, cl *Closure, args List, boundary bool) (List, error) {
	i.depth++
	defer func() { i.depth-- }()
	if i.depth > i.maxDepth {
		return nil, ErrorExc("too much recursion")
	}
	body := ctx
	if !i.NoTailCalls {
		body = ctx.InTail()
	}
	for {
		if err := i.checkPending(); err != nil {
			return nil, err
		}
		env := bindParams(i, cl, args)
		res, err := i.EvalBlock(body, cl.Body, env)
		if err == nil {
			return res, nil
		}
		if tc, ok := err.(*tailCall); ok {
			cl, args = tc.cl, tc.args
			continue
		}
		if boundary {
			if ret, ok := ReturnValue(err); ok {
				return ret, nil
			}
		}
		return nil, err
	}
}

// bindParams binds arguments to parameters: "es assigns arguments to
// parameters one-to-one, and any leftovers are assigned to the last
// parameter"; missing parameters are left null.  A lambda without a
// declared parameter list binds everything to *.
func bindParams(i *Interp, cl *Closure, args List) *Binding {
	// $* always holds the full argument list, named parameters or not
	// (the paper's watch settor is "@ { ... return $* }").
	env := &Binding{Name: "*", Value: args, Next: cl.Env}
	if !cl.HasParams {
		i.Alloc.binding(1)
		return env
	}
	n := len(cl.Params)
	i.Alloc.binding(n + 1)
	for k, p := range cl.Params {
		var v List
		switch {
		case k == n-1 && len(args) > k:
			v = args[k:]
		case k < len(args):
			v = args[k : k+1]
		}
		env = &Binding{Name: p, Value: v, Next: env}
	}
	return env
}

// CallHook invokes a %-hook by name: the fn-%name variable if defined
// (and thus spoofable), else the underlying primitive.
func (i *Interp) CallHook(ctx *Ctx, hook string, args List) (List, error) {
	if fnval := i.Var("fn-" + hook); len(fnval) > 0 {
		h := fnval[0]
		rest := append(append(List{}, fnval[1:]...), args...)
		return i.applyTerm(ctx, nil, h, rest)
	}
	prim := strings.TrimPrefix(hook, "%")
	if fn := i.prims[prim]; fn != nil {
		return fn(i, ctx, args)
	}
	return nil, ErrorExc(hook + ": hook not defined")
}

func (i *Interp) evalAssign(ctx *Ctx, a *syntax.Assign, env *Binding) (List, error) {
	name, err := i.evalWordString(ctx, a.Name, env)
	if err != nil {
		return nil, err
	}
	values, err := i.EvalWords(ctx, a.Values, env)
	if err != nil {
		return nil, err
	}
	if values == nil {
		values = List{}
	}
	if err := i.assignVar(ctx.NonTail(), env, name, values); err != nil {
		return nil, err
	}
	return True(), nil
}

func (i *Interp) evalLet(ctx *Ctx, l *syntax.Let, env *Binding) (List, error) {
	inner := env
	for _, b := range l.Bindings {
		name, err := i.evalWordString(ctx, b.Name, env)
		if err != nil {
			return nil, err
		}
		values, err := i.EvalWords(ctx.NonTail(), b.Values, inner)
		if err != nil {
			return nil, err
		}
		i.Alloc.binding(1)
		inner = &Binding{Name: name, Value: values, Next: inner}
	}
	return i.evalCmd(ctx, l.Body, inner)
}

func (i *Interp) evalLocal(ctx *Ctx, l *syntax.Local, env *Binding) (List, error) {
	type saved struct {
		name    string
		value   List
		defined bool
	}
	nt := ctx.NonTail()
	var saves []saved
	restore := func() {
		// Restore in reverse; settors run so aliased pairs (path/PATH)
		// stay consistent after the dynamic extent ends.
		for k := len(saves) - 1; k >= 0; k-- {
			s := saves[k]
			if !s.defined {
				i.SetVarRaw(s.name, nil)
				continue
			}
			if err := i.SetVar(nt, s.name, s.value); err != nil {
				i.SetVarRaw(s.name, s.value)
			}
		}
	}
	for _, b := range l.Bindings {
		name, err := i.evalWordString(ctx, b.Name, env)
		if err != nil {
			restore()
			return nil, err
		}
		values, err := i.EvalWords(nt, b.Values, env)
		if err != nil {
			restore()
			return nil, err
		}
		if values == nil {
			values = List{}
		}
		oldVal := i.Var(name) // forces lazy decode so the restore is faithful
		_, defined := i.vars[name]
		saves = append(saves, saved{name: name, value: oldVal, defined: defined})
		if err := i.SetVar(nt, name, values); err != nil {
			restore()
			return nil, err
		}
	}
	res, err := i.evalCmd(nt, l.Body, env)
	restore()
	return res, err
}

func (i *Interp) evalFor(ctx *Ctx, f *syntax.For, env *Binding) (List, error) {
	nt := ctx.NonTail()
	names := make([]string, len(f.Bindings))
	values := make([]List, len(f.Bindings))
	n := 0
	for k, b := range f.Bindings {
		name, err := i.evalWordString(ctx, b.Name, env)
		if err != nil {
			return nil, err
		}
		v, err := i.EvalWords(nt, b.Values, env)
		if err != nil {
			return nil, err
		}
		names[k], values[k] = name, v
		if len(v) > n {
			n = len(v)
		}
	}
	result := True()
	for iter := 0; iter < n; iter++ {
		inner := env
		for k := range names {
			var v List
			if iter < len(values[k]) {
				v = values[k][iter : iter+1]
			}
			i.Alloc.binding(1)
			inner = &Binding{Name: names[k], Value: v, Next: inner}
		}
		res, err := i.evalCmd(nt, f.Body, inner)
		if err != nil {
			if e := AsException(err); e != nil && e.Name() == "break" {
				if len(e.Args) > 1 {
					return e.Args[1:], nil
				}
				return result, nil
			}
			return nil, err
		}
		result = res
	}
	return result, nil
}

func (i *Interp) evalMatch(ctx *Ctx, m *syntax.Match, env *Binding) (List, error) {
	subj, err := i.EvalWords(ctx, []*syntax.Word{m.Subject}, env)
	if err != nil {
		return nil, err
	}
	pats := make([]glob.Pattern, 0, len(m.Pats))
	for _, pw := range m.Pats {
		ps, err := i.evalPatterns(ctx, pw, env)
		if err != nil {
			return nil, err
		}
		pats = append(pats, ps...)
	}
	// ~ () () is true; a null subject matches only a null pattern list?
	// Following es: with no patterns, match succeeds only for an empty
	// subject.
	if len(pats) == 0 {
		return Bool(len(subj) == 0), nil
	}
	for _, s := range subj {
		str := s.String()
		for _, p := range pats {
			if p.Match(str) {
				return True(), nil
			}
		}
	}
	return False(), nil
}

// evalMatchExtract implements ~~ subject patterns...: the result is what
// the wildcards of the first matching pattern extracted from the first
// matching subject element; no match is false.
func (i *Interp) evalMatchExtract(ctx *Ctx, m *syntax.MatchExtract, env *Binding) (List, error) {
	subj, err := i.EvalWords(ctx, []*syntax.Word{m.Subject}, env)
	if err != nil {
		return nil, err
	}
	var pats []glob.Pattern
	for _, pw := range m.Pats {
		ps, err := i.evalPatterns(ctx, pw, env)
		if err != nil {
			return nil, err
		}
		pats = append(pats, ps...)
	}
	for _, s := range subj {
		str := s.String()
		for _, p := range pats {
			if caps, ok := p.MatchCapture(str); ok {
				return StrList(caps...), nil
			}
		}
	}
	return False(), nil
}

// ---- word evaluation ----

// errAt raises an error exception with the message anchored to a known
// source position ("line:col: msg"); with an unknown position the message
// is unchanged.  Both engines use it, with positions taken from the same
// rewritten tree, so the walker and the bytecode engine stay
// byte-identical on error shapes.
func errAt(pos syntax.Pos, msg string) error {
	if pos.Known() {
		return ErrorExc(pos.String() + ": " + msg)
	}
	return ErrorExc(msg)
}

// piece is an intermediate word value: either a pattern (string with
// literal mask, pre-glob) or a non-string term (closure or primitive).
type piece struct {
	pat  glob.Pattern
	term *Term
}

func strPiece(p glob.Pattern) piece { return piece{pat: p} }

func (p piece) toPattern() glob.Pattern {
	if p.term != nil {
		return glob.NewLiteral(p.term.String())
	}
	return p.pat
}

// EvalWords evaluates words to a term list, splicing list values and
// performing filename expansion on unquoted wildcards.
func (i *Interp) EvalWords(ctx *Ctx, words []*syntax.Word, env *Binding) (List, error) {
	var out List
	i.Alloc.list()
	for _, w := range words {
		pieces, err := i.evalWordPieces(ctx, w, env)
		if err != nil {
			return nil, err
		}
		for _, p := range pieces {
			if p.term != nil {
				out = append(out, *p.term)
				i.Alloc.term(1)
				continue
			}
			if p.pat.HasWild() {
				if matches := glob.Expand(p.pat, i.dir); matches != nil {
					for _, m := range matches {
						out = append(out, Term{Str: m})
					}
					i.Alloc.term(len(out))
					continue
				}
			}
			i.Alloc.term(1)
			i.Alloc.str(len(p.pat.String()))
			out = append(out, Term{Str: p.pat.String()})
		}
	}
	return out, nil
}

// evalPatterns evaluates a word for use as a match pattern: no filename
// expansion; quoting data is preserved so quoted wildcards stay literal.
func (i *Interp) evalPatterns(ctx *Ctx, w *syntax.Word, env *Binding) ([]glob.Pattern, error) {
	pieces, err := i.evalWordPieces(ctx, w, env)
	if err != nil {
		return nil, err
	}
	out := make([]glob.Pattern, len(pieces))
	for k, p := range pieces {
		out[k] = p.toPattern()
	}
	return out, nil
}

// evalWordString evaluates a word that must produce exactly one string
// (variable names, file names for redirection).
func (i *Interp) evalWordString(ctx *Ctx, w *syntax.Word, env *Binding) (string, error) {
	pieces, err := i.evalWordPieces(ctx, w, env)
	if err != nil {
		return "", err
	}
	if len(pieces) != 1 || pieces[0].term != nil {
		return "", errAt(w.Pos, "expected a single name")
	}
	return pieces[0].pat.String(), nil
}

func (i *Interp) evalWordPieces(ctx *Ctx, w *syntax.Word, env *Binding) ([]piece, error) {
	if w == nil {
		return nil, nil
	}
	var acc []piece
	for k, part := range w.Parts {
		ps, err := i.evalPart(ctx, part, env)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			acc = ps
			continue
		}
		acc, err = concatPieces(w.Pos, acc, ps)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// concatPieces implements list concatenation over pieces: pairwise for
// equal lengths, distributing for singletons.  pos anchors the error to
// the word being concatenated when the source position is known.
func concatPieces(pos syntax.Pos, a, b []piece) ([]piece, error) {
	join := func(x, y piece) piece {
		return strPiece(glob.Concat(x.toPattern(), y.toPattern()))
	}
	switch {
	case len(a) == 0 || len(b) == 0:
		return nil, errAt(pos, "bad concatenation")
	case len(a) == 1:
		out := make([]piece, len(b))
		for i := range b {
			out[i] = join(a[0], b[i])
		}
		return out, nil
	case len(b) == 1:
		out := make([]piece, len(a))
		for i := range a {
			out[i] = join(a[i], b[0])
		}
		return out, nil
	case len(a) == len(b):
		out := make([]piece, len(a))
		for i := range a {
			out[i] = join(a[i], b[i])
		}
		return out, nil
	default:
		return nil, errAt(pos, "bad concatenation")
	}
}

func termsToPieces(l List, quotedStrings bool) []piece {
	out := make([]piece, len(l))
	for k := range l {
		t := l[k]
		if t.Closure != nil || t.Prim != "" {
			out[k] = piece{term: &t}
		} else if quotedStrings {
			out[k] = strPiece(glob.NewLiteral(t.Str))
		} else {
			out[k] = strPiece(glob.New(t.Str))
		}
	}
	return out
}

func (i *Interp) evalPart(ctx *Ctx, part syntax.Part, env *Binding) ([]piece, error) {
	switch part := part.(type) {
	case *syntax.Lit:
		if part.Quoted {
			return []piece{strPiece(glob.NewLiteral(part.Text))}, nil
		}
		return []piece{strPiece(glob.New(part.Text))}, nil
	case *syntax.Var:
		return i.evalVarPart(ctx, part, env)
	case *syntax.Prim:
		return []piece{{term: &Term{Prim: part.Name}}}, nil
	case *syntax.LambdaPart:
		i.Alloc.closure()
		cl := &Closure{
			Params:    part.Lambda.Params,
			HasParams: part.Lambda.HasParams,
			Body:      part.Lambda.Body,
			Env:       env,
		}
		return []piece{{term: &Term{Closure: cl}}}, nil
	case *syntax.CmdSub:
		i.Alloc.closure()
		cl := &Closure{Body: part.Body, Env: env}
		res, err := i.CallHook(ctx.NonTail(), "%backquote", List{Term{Closure: cl}})
		if err != nil {
			return nil, err
		}
		// Substituted command output is not re-globbed (rc semantics).
		return termsToPieces(res, true), nil
	case *syntax.RetSub:
		res, err := i.EvalBlock(ctx.NonTail(), part.Body, env)
		if err != nil {
			return nil, err
		}
		return termsToPieces(res, true), nil
	case *syntax.ListPart:
		var out []piece
		for _, w := range part.Words {
			ps, err := i.evalWordPieces(ctx, w, env)
			if err != nil {
				return nil, err
			}
			out = append(out, ps...)
		}
		return out, nil
	default:
		return nil, ErrorExc("unknown word part")
	}
}

func (i *Interp) evalVarPart(ctx *Ctx, v *syntax.Var, env *Binding) ([]piece, error) {
	name, err := i.evalWordString(ctx, v.Name, env)
	if err != nil {
		return nil, err
	}
	value := lookupVar(i, env, name)
	if v.Double {
		// $$x: the value of the variable(s) named by $x.
		var indirect List
		for _, t := range value {
			indirect = append(indirect, lookupVar(i, env, t.String())...)
		}
		value = indirect
	}
	if v.Count {
		return []piece{strPiece(glob.NewLiteral(strconv.Itoa(len(value))))}, nil
	}
	if len(v.Index) > 0 {
		var sel List
		for _, iw := range v.Index {
			idxs, err := i.EvalWords(ctx, []*syntax.Word{iw}, env)
			if err != nil {
				return nil, err
			}
			for _, it := range idxs {
				n, err := strconv.Atoi(it.String())
				if err != nil {
					return nil, errAt(v.Pos, "bad subscript: "+it.String())
				}
				if n >= 1 && n <= len(value) {
					sel = append(sel, value[n-1])
				}
			}
		}
		value = sel
	}
	if v.Flat && len(value) > 0 {
		// $^name: the whole value as one space-joined word.
		value = List{Term{Str: value.Flatten(" ")}}
	}
	// Variable values are not re-globbed (the rc rule: substitution does
	// not re-scan for metacharacters).
	return termsToPieces(value, true), nil
}
