package core

import (
	"strings"
	"testing"

	"es/internal/syntax"
)

// The regression the snapshot work surfaced: a captured binding whose
// value is itself a closure WITH captures encodes as a nested
// %closure(...) form, which the old decodeBindings pushed through the
// surface parser inside a synthetic `let` — a parse error, silently
// returning a nil environment and losing every captured variable.
func TestDecodeNestedClosureCaptures(t *testing.T) {
	i := New()
	inner := &Closure{
		Body: mustParseBody(t, i, "{echo $x}"),
		Env:  &Binding{Name: "x", Value: StrList("1")},
	}
	outer := &Closure{
		Body: mustParseBody(t, i, "{$f}"),
		Env:  &Binding{Name: "f", Value: List{{Closure: inner}}},
	}
	enc := EncodeClosure(outer)
	want := "%closure(f=%closure(x=1)@ * {echo $x})@ * {$f}"
	if enc != want {
		t.Fatalf("encoded = %q, want %q", enc, want)
	}
	dec := i.DecodeValue("fn-t", enc)
	if len(dec) != 1 || dec[0].Closure == nil {
		t.Fatalf("decode failed: %v", dec)
	}
	if re := EncodeClosure(dec[0].Closure); re != enc {
		t.Errorf("round trip changed: %q -> %q", enc, re)
	}
	// The nested closure must come back as a closure with ITS captures.
	fb := dec[0].Closure.Env.Lookup("f")
	if fb == nil || len(fb.Value) != 1 || fb.Value[0].Closure == nil {
		t.Fatalf("nested closure lost: %+v", fb)
	}
	xb := fb.Value[0].Closure.Env.Lookup("x")
	if xb == nil || len(xb.Value) != 1 || xb.Value[0].Str != "1" {
		t.Fatalf("nested captures lost: %+v", xb)
	}
}

// Deeper nesting and mixed values keep round-tripping.
func TestDecodeNestedClosureDepth(t *testing.T) {
	i := New()
	l3 := &Closure{Body: mustParseBody(t, i, "{echo $z deep}"),
		Env: &Binding{Name: "z", Value: StrList("3", "z z")}}
	l2 := &Closure{Body: mustParseBody(t, i, "{$g}"),
		Env: &Binding{Name: "g", Value: List{{Closure: l3}, {Str: "lit"}, {Prim: "echo"}}}}
	l1 := &Closure{Body: mustParseBody(t, i, "{$h}"),
		Env: &Binding{Name: "h", Value: List{{Closure: l2}}}}
	enc := EncodeClosure(l1)
	dec := i.DecodeValue("fn-t", enc)
	if len(dec) != 1 || dec[0].Closure == nil {
		t.Fatalf("decode failed: %q -> %v", enc, dec)
	}
	if re := EncodeClosure(dec[0].Closure); re != enc {
		t.Errorf("round trip changed:\n  %q\n  %q", enc, re)
	}
}

func mustParseBody(t *testing.T, i *Interp, src string) *syntax.Block {
	t.Helper()
	val := i.DecodeValue("fn-x", src)
	if len(val) != 1 || val[0].Closure == nil {
		t.Fatalf("parse %q failed: %v", src, val)
	}
	return val[0].Closure.Body
}

// Snapshot -> restore preserves export status exactly: noexport marks on
// set variables, on function definitions whose closures captured
// variables, and sticky marks on names that have no value yet.
func TestSnapshotRestoreNoExport(t *testing.T) {
	a := New()
	a.SetVarRaw("secret", StrList("hunter2"))
	a.SetNoExport("secret")
	a.SetVarRaw("public", StrList("42"))
	// A function whose closure captured a lexical binding, itself marked
	// noexport: the round trip must keep both the capture and the mark.
	fn := &Closure{Body: mustParseBody(t, a, "{echo $cap $secret}"),
		Env: &Binding{Name: "cap", Value: StrList("held")}}
	a.SetVarRaw("fn-f", List{{Closure: fn}})
	a.SetNoExport("fn-f")
	// A sticky mark on a name never assigned (the phantom slot).
	a.SetNoExport("future")

	b := New()
	b.RestoreVars(a.SnapshotVars())

	if got := b.Var("secret").Flatten(" "); got != "hunter2" {
		t.Errorf("secret = %q", got)
	}
	fv := b.Var("fn-f")
	if len(fv) != 1 || fv[0].Closure == nil {
		t.Fatalf("fn-f lost: %v", fv)
	}
	if cb := fv[0].Closure.Env.Lookup("cap"); cb == nil || cb.Value.Flatten(" ") != "held" {
		t.Errorf("captured binding lost: %+v", cb)
	}
	env := strings.Join(b.ExportEnv(), "\n")
	if !strings.Contains(env, "public=42") {
		t.Errorf("public missing from export: %v", env)
	}
	if strings.Contains(env, "secret") || strings.Contains(env, "fn-f") {
		t.Errorf("noexport mark lost across restore: %v", env)
	}
	// The phantom mark stays sticky: assigning the name after restore
	// must still keep it out of the environment.
	b.SetVarRaw("future", StrList("now"))
	if strings.Contains(strings.Join(b.ExportEnv(), "\n"), "future") {
		t.Errorf("phantom noexport mark lost across restore")
	}
	if b.Defined("future2") {
		t.Errorf("stray variable appeared")
	}
}

// The null/empty-string distinction the environment cannot carry is
// carried by the snapshot records.
func TestSnapshotRestoreNullVsEmptyString(t *testing.T) {
	a := New()
	a.SetVarRaw("null", List{})
	a.SetVarRaw("empty", StrList(""))
	b := New()
	b.RestoreVars(a.SnapshotVars())
	if got := b.Var("null"); len(got) != 0 {
		t.Errorf("null list became %v", got)
	}
	if got := b.Var("empty"); len(got) != 1 || got[0].Str != "" {
		t.Errorf("empty string became %v", got)
	}
	if !b.Defined("null") || !b.Defined("empty") {
		t.Errorf("definedness lost: null=%v empty=%v", b.Defined("null"), b.Defined("empty"))
	}
}

// Snapshot of a lazily imported environment does no decode work and
// round-trips the raw strings unchanged.
func TestSnapshotLazySlots(t *testing.T) {
	a := New()
	a.ImportEnv([]string{"fn-g=%closure(a=b)@ * {echo $a}", "plain=x\x01y"})
	recs := a.SnapshotVars()
	byName := map[string]VarRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["fn-g"].Value != "%closure(a=b)@ * {echo $a}" {
		t.Errorf("lazy fn raw changed: %q", byName["fn-g"].Value)
	}
	if byName["plain"].Value != "x\x01y" {
		t.Errorf("lazy plain raw changed: %q", byName["plain"].Value)
	}
	b := New()
	b.RestoreVars(recs)
	if got := b.Var("plain").Flatten(","); got != "x,y" {
		t.Errorf("plain = %q", got)
	}
	if fv := b.Var("fn-g"); len(fv) != 1 || fv[0].Closure == nil {
		t.Errorf("fn-g did not decode after restore: %v", fv)
	}
}

// Snapshot -> restore -> re-snapshot is the identity on the records,
// including after every value has been force-decoded in the restored
// interpreter — the strong form, exercising encode(decode(x)) == x for
// the whole table.
func TestSnapshotRoundTripStable(t *testing.T) {
	a := New()
	a.SetVarRaw("words", StrList("a", "b c", "don't", ""))
	a.SetVarRaw("fn-id", List{{Closure: &Closure{
		Body: mustParseBody(t, a, "@ x {result $x}"), Params: []string{"x"}, HasParams: true}}})
	inner := &Closure{Body: mustParseBody(t, a, "{echo $n}"),
		Env: &Binding{Name: "n", Value: StrList("5")}}
	a.SetVarRaw("fn-outer", List{{Closure: &Closure{
		Body: mustParseBody(t, a, "{$inner}"),
		Env:  &Binding{Name: "inner", Value: List{{Closure: inner}}}}}})
	a.SetNoExport("words")
	a.SetVarRaw("set-watched", List{{Closure: &Closure{
		Body: mustParseBody(t, a, "{result $*}")}}})

	first := a.SnapshotVars()
	b := New()
	b.RestoreVars(first)
	second := b.SnapshotVars()
	compareRecords(t, "lazy re-snapshot", first, second)

	// Force-decode everything, then snapshot again.
	for _, name := range b.VarNames() {
		b.Var(name)
	}
	third := b.SnapshotVars()
	compareRecords(t, "decoded re-snapshot", first, third)
}

func compareRecords(t *testing.T, label string, want, got []VarRecord) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for k := range want {
		if want[k] != got[k] {
			t.Errorf("%s: record %d changed:\n  %+v\n  %+v", label, k, want[k], got[k])
		}
	}
}
