package core

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func TestIOTableBasics(t *testing.T) {
	in := strings.NewReader("input")
	var out, errw bytes.Buffer
	tbl := NewIOTable(in, &out, &errw)

	if tbl.Reader(0) != in {
		t.Error("fd 0")
	}
	if tbl.Writer(1) != &out || tbl.Writer(2) != &errw {
		t.Error("fd 1/2")
	}
	// Unbound descriptors read EOF and discard writes.
	buf := make([]byte, 4)
	if n, err := tbl.Reader(5).Read(buf); n != 0 || err != io.EOF {
		t.Error("unbound read should be EOF")
	}
	if _, err := tbl.Writer(5).Write([]byte("x")); err != nil {
		t.Error("unbound write should discard")
	}
	fds := tbl.Fds()
	if len(fds) != 3 {
		t.Errorf("fds = %v", fds)
	}
}

func TestIOTablePersistence(t *testing.T) {
	var a, b bytes.Buffer
	tbl := NewIOTable(nil, &a, io.Discard)
	tbl2 := tbl.WithFD(1, &b)
	tbl.Writer(1).Write([]byte("one"))
	tbl2.Writer(1).Write([]byte("two"))
	if a.String() != "one" || b.String() != "two" {
		t.Errorf("tables shared state: a=%q b=%q", a.String(), b.String())
	}
	// Closing removes the descriptor from the copy only.
	tbl3 := tbl.WithFD(1, nil)
	if tbl3.Get(1) != nil {
		t.Error("WithFD(nil) did not close")
	}
	if tbl.Get(1) == nil {
		t.Error("close leaked to original")
	}
}

func TestIOTableFileMaterialization(t *testing.T) {
	// An os.File entry is returned directly.
	f, err := os.CreateTemp(t.TempDir(), "io")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tbl := NewIOTable(nil, f, nil)
	got, done, err := tbl.File(1, false)
	if err != nil || got != f || done != nil {
		t.Errorf("File on *os.File: got=%v hasDone=%v err=%v", got, done != nil, err)
	}

	// A plain writer is bridged through a pipe + copier.
	var buf bytes.Buffer
	tbl2 := NewIOTable(nil, &buf, nil)
	w, done2, err := tbl2.File(1, false)
	if err != nil {
		t.Fatal(err)
	}
	w.WriteString("bridged")
	done2()
	if buf.String() != "bridged" {
		t.Errorf("bridge = %q", buf.String())
	}

	// A plain reader bridges the other way.
	tbl3 := NewIOTable(strings.NewReader("data in"), nil, nil)
	r, done3, err := tbl3.File(0, true)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := io.ReadAll(r)
	done3()
	if string(all) != "data in" {
		t.Errorf("input bridge = %q", all)
	}

	// An unbound descriptor materializes as the null device.
	null, done4, err := tbl3.File(7, false)
	if err != nil || null == nil {
		t.Fatalf("null device: %v", err)
	}
	null.WriteString("gone")
	done4()
}

func TestCtxTailTransitions(t *testing.T) {
	tbl := NewIOTable(nil, io.Discard, io.Discard)
	ctx := &Ctx{IO: tbl}
	if ctx.Tail {
		t.Error("fresh ctx should be non-tail")
	}
	tail := ctx.InTail()
	if !tail.Tail || tail.IO != tbl {
		t.Error("InTail broken")
	}
	if tail.InTail() != tail {
		t.Error("InTail should be idempotent")
	}
	nt := tail.NonTail()
	if nt.Tail {
		t.Error("NonTail broken")
	}
	if ctx.NonTail() != ctx {
		t.Error("NonTail on non-tail should return self")
	}
	var buf bytes.Buffer
	w := ctx.WithIO(tbl.WithFD(1, &buf))
	w.Stdout().Write([]byte("hi"))
	if buf.String() != "hi" {
		t.Error("WithIO broken")
	}
}

func TestForkDeepCopySharing(t *testing.T) {
	// Two closures over one binding must still share after the fork —
	// with each other, but not with the parent's pair.
	i := New()
	shared := &Binding{Name: "s", Value: StrList("orig")}
	blk, err := ParseCommand("echo $s")
	if err != nil {
		t.Fatal(err)
	}
	c1 := &Closure{Body: blk, Env: shared}
	c2 := &Closure{Body: blk, Env: shared}
	i.SetVarRaw("f1", List{{Closure: c1}})
	i.SetVarRaw("f2", List{{Closure: c2}})

	child := i.Fork()
	g1 := child.Var("f1")[0].Closure
	g2 := child.Var("f2")[0].Closure
	if g1 == c1 || g2 == c2 {
		t.Fatal("fork did not copy closures")
	}
	if g1.Env != g2.Env {
		t.Error("fork broke sharing between sibling closures")
	}
	if g1.Env == shared {
		t.Error("fork shares bindings with parent")
	}
	// The body AST is immutable and may be shared.
	if g1.Body != blk {
		t.Error("fork needlessly copied the AST")
	}
	// Mutation in the child is invisible to the parent.
	g1.Env.Value = StrList("child")
	if shared.Value.Flatten("") != "orig" {
		t.Error("child mutation leaked")
	}
}

func TestForkCyclicEnv(t *testing.T) {
	// A binding whose value contains a closure over that same binding
	// (the recursive-structure case) must fork without looping.
	i := New()
	blk, _ := ParseCommand("echo self")
	b := &Binding{Name: "self"}
	cl := &Closure{Body: blk, Env: b}
	b.Value = List{{Closure: cl}}
	i.SetVarRaw("rec", List{{Closure: cl}})
	child := i.Fork()
	got := child.Var("rec")[0].Closure
	if got == cl {
		t.Fatal("not copied")
	}
	if got.Env.Value[0].Closure != got {
		t.Error("cycle not preserved through fork")
	}
}

func TestJobsTable(t *testing.T) {
	i := New()
	done := make(chan struct{})
	id1 := i.StartJob(func() List { <-done; return StrList("one") })
	id2 := i.StartJob(func() List { return StrList("two") })
	if ids := i.JobIDs(); len(ids) != 2 || ids[0] != id1 || ids[1] != id2 {
		t.Errorf("JobIDs = %v", ids)
	}
	close(done)
	res, ok := i.WaitJob(id1)
	if !ok || res.Flatten("") != "one" {
		t.Errorf("WaitJob = %v %v", res, ok)
	}
	// Reaped.
	if _, ok := i.WaitJob(id1); ok {
		t.Error("job not reaped")
	}
	_, res2, ok := i.WaitAny()
	if !ok || res2.Flatten("") != "two" {
		t.Errorf("WaitAny = %v %v", res2, ok)
	}
	if _, _, ok := i.WaitAny(); ok {
		t.Error("WaitAny with no jobs should report none")
	}
}

func TestJobsSharedWithFork(t *testing.T) {
	i := New()
	id := i.StartJob(func() List { return StrList("r") })
	child := i.Fork()
	res, ok := child.WaitJob(id)
	if !ok || res.Flatten("") != "r" {
		t.Error("fork cannot wait for parent jobs")
	}
}
