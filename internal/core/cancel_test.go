package core_test

// Tests for cooperative cancellation (SetCancel) and its interaction with
// the interrupt latch: a fired deadline surfaces as the catchable
// exception `signal <reason>`, delivery is one-shot, an eval that is both
// interrupted and past its deadline raises exactly one exception, and
// ClearInterrupt at a prompt does not disarm a server-side deadline.

import (
	"testing"
	"time"

	"es/internal/core"
)

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

func wantSignal(t *testing.T, err error, reason string) {
	t.Helper()
	exc := core.AsException(err)
	if exc == nil {
		t.Fatalf("got %v, want exception signal %s", err, reason)
	}
	if got := exc.Args.Flatten(" "); got != "signal "+reason {
		t.Fatalf("got exception %q, want %q", got, "signal "+reason)
	}
}

func TestCancelRaisesSignalExceptionOnce(t *testing.T) {
	i, ctx, out := harness(t)
	i.SetCancel(closedChan(), "deadline")
	_, err := i.RunString(ctx, "echo never")
	wantSignal(t, err, "deadline")
	if out.String() != "" {
		t.Errorf("cancelled command produced output %q", out.String())
	}
	// Delivery is one-shot, like a signal: the fired token does not abort
	// the next eval on this interpreter.
	res, err := i.RunString(ctx, "result ok")
	if err != nil || res.Flatten(" ") != "ok" {
		t.Fatalf("after one-shot delivery: %v %v", res, err)
	}
	i.ClearCancel()
}

func TestCancelAbortsInfiniteLoop(t *testing.T) {
	i, ctx, _ := harness(t)
	done := make(chan struct{})
	timer := time.AfterFunc(30*time.Millisecond, func() { close(done) })
	defer timer.Stop()
	i.SetCancel(done, "deadline")
	defer i.ClearCancel()
	start := time.Now()
	_, err := i.RunString(ctx, "while {} {}")
	wantSignal(t, err, "deadline")
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("deadline took %v to fire", el)
	}
}

func TestCancelIsCatchableInScript(t *testing.T) {
	i, ctx, _ := harness(t)
	done := make(chan struct{})
	timer := time.AfterFunc(20*time.Millisecond, func() { close(done) })
	defer timer.Stop()
	i.SetCancel(done, "deadline")
	defer i.ClearCancel()
	// The handler must observe `signal deadline` and — because delivery is
	// one-shot — run its own commands without being re-aborted.
	res, err := i.RunString(ctx, "catch @ e {result caught $e} {while {} {}}")
	if err != nil {
		t.Fatalf("catch did not intercept the deadline: %v", err)
	}
	if got := res.Flatten(" "); got != "caught signal deadline" {
		t.Fatalf("handler result = %q, want %q", got, "caught signal deadline")
	}
}

func TestCancelAndInterruptRaiseExactlyOneException(t *testing.T) {
	i, ctx, _ := harness(t)
	i.SetCancel(closedChan(), "deadline")
	i.Interrupt()
	// Both pending: the fired deadline wins and consumes the interrupt —
	// the request is aborting for one cause, one exception.
	_, err := i.RunString(ctx, "echo x")
	wantSignal(t, err, "deadline")
	// Neither a second deadline nor a stale sigint hits the next eval.
	res, err := i.RunString(ctx, "result ok")
	if err != nil || res.Flatten(" ") != "ok" {
		t.Fatalf("second exception leaked into the next eval: %v %v", res, err)
	}
	i.ClearCancel()
}

func TestClearInterruptKeepsCancelArmed(t *testing.T) {
	i, ctx, _ := harness(t)
	done := make(chan struct{})
	i.SetCancel(done, "deadline")
	defer i.ClearCancel()
	i.Interrupt()
	i.ClearInterrupt() // the prompt idiom (%parse) — must not disarm the deadline
	close(done)
	_, err := i.RunString(ctx, "echo x")
	wantSignal(t, err, "deadline")
}

func TestSpawnDetachesSignalStateAndJobs(t *testing.T) {
	i, ctx, _ := harness(t)
	child := i.Spawn()
	cctx := ctx.NonTail()

	// An interrupt aimed at the parent must not abort the spawned child.
	i.Interrupt()
	if res, err := child.RunString(cctx, "result ok"); err != nil || res.Flatten(" ") != "ok" {
		t.Fatalf("parent interrupt leaked into spawned child: %v %v", res, err)
	}
	_, err := i.RunString(ctx, "echo x")
	wantSignal(t, err, "sigint")

	// A deadline armed on the child must not abort the parent.
	child.SetCancel(closedChan(), "deadline")
	if res, err := i.RunString(ctx, "result ok"); err != nil || res.Flatten(" ") != "ok" {
		t.Fatalf("child deadline leaked into parent: %v %v", res, err)
	}
	_, err = child.RunString(cctx, "echo x")
	wantSignal(t, err, "deadline")

	// Job tables are separate: the parent cannot reap the child's jobs.
	child.StartJob(func() core.List { return core.StrList("x") })
	if _, _, ok := i.WaitAny(); ok {
		t.Error("parent reaped a job started by a spawned child")
	}
	if id, res, ok := child.WaitAny(); !ok || res.Flatten(" ") != "x" {
		t.Errorf("child WaitAny = %d %v %v", id, res, ok)
	}
}
