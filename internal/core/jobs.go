package core

// Background job bookkeeping for %background, wait and apids.  The table
// is shared with forked children so a subshell can wait for jobs started
// by its parent frame, mirroring the process-group behaviour of the C
// implementation.

// StartJob runs fn in a new goroutine and returns the job id (the es
// analogue of the child pid printed by &).
func (i *Interp) StartJob(fn func() List) int {
	i.jobs.mu.Lock()
	i.jobs.next++
	j := &job{id: i.jobs.next, done: make(chan struct{})}
	i.jobs.jobs[j.id] = j
	i.jobs.mu.Unlock()
	go func() {
		j.res = fn()
		close(j.done)
	}()
	return j.id
}

// WaitJob blocks until job id finishes and returns its result; ok is
// false for an unknown id.  The job is reaped.
func (i *Interp) WaitJob(id int) (List, bool) {
	i.jobs.mu.Lock()
	j, ok := i.jobs.jobs[id]
	if ok {
		delete(i.jobs.jobs, id)
	}
	i.jobs.mu.Unlock()
	if !ok {
		return nil, false
	}
	<-j.done
	return j.res, true
}

// WaitAny blocks until some job finishes; it returns the job's id and
// result, or ok=false when no jobs exist.
func (i *Interp) WaitAny() (int, List, bool) {
	i.jobs.mu.Lock()
	var ids []int
	for id := range i.jobs.jobs {
		ids = append(ids, id)
	}
	i.jobs.mu.Unlock()
	if len(ids) == 0 {
		return 0, nil, false
	}
	// Wait for the lowest id for determinism.
	min := ids[0]
	for _, id := range ids {
		if id < min {
			min = id
		}
	}
	res, _ := i.WaitJob(min)
	return min, res, true
}

// JobIDs returns the live background job ids (unwaited), sorted ascending.
func (i *Interp) JobIDs() []int {
	i.jobs.mu.Lock()
	defer i.jobs.mu.Unlock()
	out := make([]int, 0, len(i.jobs.jobs))
	for id := range i.jobs.jobs {
		out = append(out, id)
	}
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && out[b] < out[b-1]; b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out
}
