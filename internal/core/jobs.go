package core

// Background job bookkeeping for %background, wait and apids.  The table
// is shared with forked children so a subshell can wait for jobs started
// by its parent frame, mirroring the process-group behaviour of the C
// implementation.

import (
	"reflect"
	"sort"
)

// StartJob runs fn in a new goroutine and returns the job id (the es
// analogue of the child pid printed by &).
func (i *Interp) StartJob(fn func() List) int {
	i.jobs.mu.Lock()
	i.jobs.next++
	j := &job{id: i.jobs.next, done: make(chan struct{})}
	i.jobs.jobs[j.id] = j
	i.jobs.mu.Unlock()
	go func() {
		j.res = fn()
		close(j.done)
	}()
	return j.id
}

// WaitJob blocks until job id finishes and returns its result; ok is
// false for an unknown id.  The job is reaped under the table lock before
// this waiter blocks, so concurrent WaitJob calls on the same id are
// well-defined: exactly one caller claims the job and gets its result,
// every other caller sees ok=false immediately.
func (i *Interp) WaitJob(id int) (List, bool) {
	i.jobs.mu.Lock()
	j, ok := i.jobs.jobs[id]
	if ok {
		delete(i.jobs.jobs, id)
	}
	i.jobs.mu.Unlock()
	if !ok {
		return nil, false
	}
	<-j.done
	return j.res, true
}

// WaitAny blocks until some job finishes; it returns the job's id and
// result, or ok=false when no jobs exist.  It reaps whichever job
// finishes first — not the lowest id, which would hang `wait` behind a
// long-running early job while later jobs sit finished — breaking ties on
// the lowest id so the result is deterministic when several are already
// done.
func (i *Interp) WaitAny() (int, List, bool) {
	for {
		i.jobs.mu.Lock()
		ids := make([]int, 0, len(i.jobs.jobs))
		for id := range i.jobs.jobs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		chans := make([]chan struct{}, len(ids))
		for k, id := range ids {
			chans[k] = i.jobs.jobs[id].done
		}
		i.jobs.mu.Unlock()
		if len(ids) == 0 {
			return 0, nil, false
		}
		// Fast path: claim the lowest-id job that has already finished.
		raced := false
		for k, id := range ids {
			select {
			case <-chans[k]:
				if res, ok := i.WaitJob(id); ok {
					return id, res, true
				}
				// A concurrent waiter claimed it between our snapshot and
				// the reap; take a fresh snapshot.
				raced = true
			default:
			}
			if raced {
				break
			}
		}
		if raced {
			continue
		}
		// Nothing finished yet: block until any of the snapshot's jobs
		// closes its done channel, then re-scan from the top (the re-scan
		// applies the lowest-id tie-break and tolerates concurrent
		// waiters reaping the job first).
		cases := make([]reflect.SelectCase, len(chans))
		for k, ch := range chans {
			cases[k] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(ch)}
		}
		reflect.Select(cases)
	}
}

// JobIDs returns the live background job ids (unwaited), sorted ascending.
func (i *Interp) JobIDs() []int {
	i.jobs.mu.Lock()
	defer i.jobs.mu.Unlock()
	out := make([]int, 0, len(i.jobs.jobs))
	for id := range i.jobs.jobs {
		out = append(out, id)
	}
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && out[b] < out[b-1]; b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out
}
