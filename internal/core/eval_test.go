package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"es/internal/core"
	"es/internal/prim"
)

// syncBuffer is a concurrency-safe bytes.Buffer: subshells (pipeline
// elements, background jobs) write output concurrently.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (s *syncBuffer) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b.Reset()
}

// harness builds a bare interpreter with primitives and initial.es but no
// coreutils — pure language-level testing.
func harness(t *testing.T) (*core.Interp, *core.Ctx, *syncBuffer) {
	t.Helper()
	i := core.New()
	prim.Register(i)
	out := &syncBuffer{}
	ctx := &core.Ctx{IO: core.NewIOTable(strings.NewReader(""), out, out)}
	if err := prim.RunInitial(i, ctx); err != nil {
		t.Fatalf("initial.es: %v", err)
	}
	return i, ctx, out
}

func eval(t *testing.T, i *core.Interp, ctx *core.Ctx, src string) core.List {
	t.Helper()
	res, err := i.RunString(ctx, src)
	if err != nil {
		t.Fatalf("RunString(%q): %v", src, err)
	}
	return res
}

func TestEvalWordForms(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, "x = a b c; one = solo; empty =")
	tests := []struct{ src, want string }{
		{"result $x", "a b c"},
		{"result $#x", "3"},
		{"result $#one", "1"},
		{"result $#empty", "0"},
		{"result $#nonexistent", "0"},
		{"result $x(2)", "b"},
		{"result $x(3 1)", "c a"},
		{"result $x(9)", ""},
		{"result pre^$one", "presolo"},
		{"result $x^-suf", "a-suf b-suf c-suf"},
		{"result $x^$x", "aa bb cc"},
		{"result (l1 l2)^end", "l1end l2end"},
		{"result a(1 2)b", "a1b a2b"},
		{"result ''", ""},
		{"result a b^''", "a b"},
		{"y = x; result $$y", "a b c"},
		{"result <>{result r1 r2}", "r1 r2"},
		{"result `{echo s1 s2}", "s1 s2"},
		{"n = 2; result $x($n)", "b"},
	}
	for _, tt := range tests {
		got := eval(t, i, ctx, tt.src)
		if got.Flatten(" ") != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got.Flatten(" "), tt.want)
		}
	}
}

func TestEvalBadConcat(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, "two = a b; three = x y z")
	_, err := i.RunString(ctx, "result $two^$three")
	if err == nil || !strings.Contains(err.Error(), "bad concatenation") {
		t.Errorf("err = %v", err)
	}
	_, err = i.RunString(ctx, "result $empty-undefined^x")
	if err == nil {
		t.Errorf("concat with null should error, got nil")
	}
}

func TestEvalGlobbing(t *testing.T) {
	i, ctx, _ := harness(t)
	dir := t.TempDir()
	for _, f := range []string{"Ex1", "Ex2", "other"} {
		if err := os.WriteFile(filepath.Join(dir, f), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	i.SetDir(dir)
	if got := eval(t, i, ctx, "result Ex*").Flatten(" "); got != "Ex1 Ex2" {
		t.Errorf("glob = %q", got)
	}
	// Quoted stars do not glob.
	if got := eval(t, i, ctx, "result 'Ex*'").Flatten(" "); got != "Ex*" {
		t.Errorf("quoted glob = %q", got)
	}
	// Unmatched patterns stay literal (rc behaviour).
	if got := eval(t, i, ctx, "result zz*").Flatten(" "); got != "zz*" {
		t.Errorf("unmatched glob = %q", got)
	}
	// Assignment values glob like arguments do...
	eval(t, i, ctx, "globbed = Ex*")
	if got := eval(t, i, ctx, "result $#globbed").Flatten(" "); got != "2" {
		t.Errorf("assignment did not glob: %q", got)
	}
	// ... but variable values are never re-globbed on substitution.
	eval(t, i, ctx, "pat = 'Ex*'")
	if got := eval(t, i, ctx, "result $pat").Flatten(" "); got != "Ex*" {
		t.Errorf("variable re-globbed: %q", got)
	}
}

func TestEvalLeftoverArgsBinding(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, "fn f a b {result $a / $b / $*}")
	tests := []struct{ src, want string }{
		{"f", "/ /"},
		{"f 1", "1 / / 1"},
		{"f 1 2", "1 / 2 / 1 2"},
		{"f 1 2 3 4", "1 / 2 3 4 / 1 2 3 4"},
	}
	for _, tt := range tests {
		if got := eval(t, i, ctx, tt.src).Flatten(" "); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestEvalForParallel(t *testing.T) {
	i, ctx, _ := harness(t)
	// The third iteration binds b to null, which vanishes from the word
	// list.
	got := eval(t, i, ctx, "acc = ''; for (a = 1 2 3; b = x y) {acc = $acc $a $b}; result $acc").Flatten(" ")
	if got != " 1 x 2 y 3" {
		t.Errorf("parallel for = %q", got)
	}
}

func TestEvalForBreak(t *testing.T) {
	i, ctx, _ := harness(t)
	got := eval(t, i, ctx, "acc = ''; for (x = a b c d) {if {~ $x c} {break}; acc = $acc $x}; result $acc").Flatten(" ")
	if got != " a b" {
		t.Errorf("for-break = %q", got)
	}
	// break carries a value out.
	got = eval(t, i, ctx, "result <>{for (x = a b) {break val}}").Flatten(" ")
	if got != "val" {
		t.Errorf("break value = %q", got)
	}
}

func TestEvalWhile(t *testing.T) {
	i, ctx, _ := harness(t)
	got := eval(t, i, ctx, `
n = ''
while {!~ $#n 5} {n = $n x}
result $#n`).Flatten(" ")
	if got != "5" {
		t.Errorf("while = %q", got)
	}
	got = eval(t, i, ctx, "while {result 0} {break done}").Flatten(" ")
	if got != "done" {
		t.Errorf("while break = %q", got)
	}
}

func TestEvalLocalRestoresOnException(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, "g = original")
	_, err := i.RunString(ctx, "local (g = changed) {throw error boom}")
	if err == nil {
		t.Fatal("exception lost")
	}
	if got := i.Var("g").Flatten(" "); got != "original" {
		t.Errorf("g after exception = %q", got)
	}
}

func TestEvalLocalUndefinedRestore(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, "local (fresh = x) {result $fresh}")
	if i.Defined("fresh") {
		t.Error("fresh should be undefined after local")
	}
}

func TestEvalLexicalAssignmentSharing(t *testing.T) {
	// "Two functions ... defined in the same lexical scope.  If one of
	// them modifies a lexically scoped variable, that change will affect
	// the variable as seen by the other function."
	i, ctx, _ := harness(t)
	eval(t, i, ctx, `
let (shared = init) {
	fn get {result $shared}
	fn set v {shared = $v}
}`)
	if got := eval(t, i, ctx, "get").Flatten(" "); got != "init" {
		t.Errorf("initial = %q", got)
	}
	eval(t, i, ctx, "set changed")
	if got := eval(t, i, ctx, "get").Flatten(" "); got != "changed" {
		t.Errorf("after set = %q", got)
	}
	// The global namespace is untouched.
	if i.Defined("shared") {
		t.Error("lexical assignment leaked to globals")
	}
}

// ... but if the functions are forked, the connection is lost (the
// paper's subshell lament, reproduced by Fork's deep copy).
func TestForkSeversLexicalSharing(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, `
let (shared = init) {
	fn get {result $shared}
	fn set v {shared = $v}
}`)
	child := i.Fork()
	if _, err := child.RunString(ctx, "set child-value"); err != nil {
		t.Fatal(err)
	}
	if got := eval(t, child, ctx, "get").Flatten(" "); got != "child-value" {
		t.Errorf("child get = %q", got)
	}
	// Parent unaffected.
	if got := eval(t, i, ctx, "get").Flatten(" "); got != "init" {
		t.Errorf("parent get = %q", got)
	}
}

func TestForkIsolatesGlobalsAndDir(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, "g = parent")
	dir := t.TempDir()
	child := i.Fork()
	child.SetDir(dir)
	eval(t, child, ctx, "g = child; h = new")
	if i.Var("g").Flatten("") != "parent" || i.Defined("h") {
		t.Error("fork leaked variables to parent")
	}
	if i.Dir() == dir {
		t.Error("fork leaked directory")
	}
}

// bigList installs a variable with n elements without quadratic shell
// list building.
func bigList(i *core.Interp, name string, n int) {
	vals := make([]string, n)
	for k := range vals {
		vals[k] = "x"
	}
	i.SetVarRaw(name, core.StrList(vals...))
}

func TestTailCallElimination(t *testing.T) {
	i, ctx, _ := harness(t)
	i.SetMaxDepth(100)
	bigList(i, "big", 10000)
	// 10000 tail-recursive iterations cannot fit in 100 apply frames
	// unless tail calls are eliminated.  The paper's echo-nl shape: the
	// leftover parameter consumes the list.
	got := eval(t, i, ctx, `
fn drain head tail {
	if {~ $#head 0} {
		result done
	} {
		drain $tail
	}
}
drain $big`).Flatten(" ")
	if got != "done" {
		t.Errorf("drain = %q", got)
	}
}

func TestNoTailCallsAblation(t *testing.T) {
	i, ctx, _ := harness(t)
	i.NoTailCalls = true
	i.SetMaxDepth(100)
	bigList(i, "big", 1000)
	_, err := i.RunString(ctx, `
fn drain head tail {
	if {~ $#head 0} {result done} {drain $tail}
}
drain $big`)
	if err == nil || !strings.Contains(err.Error(), "too much recursion") {
		t.Errorf("expected recursion failure without TCO, got %v", err)
	}
}

// Tail calls must NOT escape a catch frame: exceptions thrown later are
// still caught.
func TestTailCallRespectsCatch(t *testing.T) {
	i, ctx, _ := harness(t)
	got := eval(t, i, ctx, `
fn thrower {throw error inner}
fn guarded {
	catch @ e msg {result caught $msg} {thrower}
}
guarded`).Flatten(" ")
	if got != "caught inner" {
		t.Errorf("guarded = %q", got)
	}
}

func TestSettorReceivesAndTransformsValue(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, "set-v = @ {result ($* $*)}") // settor doubles the value
	eval(t, i, ctx, "v = a b")
	if got := i.Var("v").Flatten(" "); got != "a b a b" {
		t.Errorf("v = %q", got)
	}
}

func TestSettorNotTriggeredByLexical(t *testing.T) {
	i, ctx, out := harness(t)
	eval(t, i, ctx, "set-w = @ {echo settor; return $*}")
	out.Reset()
	eval(t, i, ctx, "let (w = lexical) {w = changed}")
	if out.String() != "" {
		t.Errorf("settor ran on lexical assignment: %q", out.String())
	}
	eval(t, i, ctx, "w = global")
	if out.String() != "settor\n" {
		t.Errorf("settor did not run on global assignment: %q", out.String())
	}
}

func TestInterruptBecomesSignalException(t *testing.T) {
	i, ctx, _ := harness(t)
	i.Interrupt()
	_, err := i.RunString(ctx, "echo hi")
	if !core.ExcNamed(err, "signal") {
		t.Errorf("err = %v, want signal exception", err)
	}
	// Flag is consumed: next command runs.
	eval(t, i, ctx, "result ok")
}

func TestMatchListSubject(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, "xs = foo bar baz")
	if !eval(t, i, ctx, "~ $xs ba*").True() {
		t.Error("list subject should match")
	}
	if eval(t, i, ctx, "~ $xs qux").True() {
		t.Error("no element matches qux")
	}
	// Empty subject matches nothing... except the empty pattern list.
	if !eval(t, i, ctx, "~ $undefined-xyz").True() {
		t.Error("~ with null subject and no patterns should be true")
	}
	if eval(t, i, ctx, "~ $undefined-xyz a").True() {
		t.Error("~ null subject with patterns should be false")
	}
}

func TestAllocStatsRecording(t *testing.T) {
	i, ctx, _ := harness(t)
	i.Alloc.Trace = true
	eval(t, i, ctx, "fn f x {result $x $x}; for (k = 1 2 3) {f $k}")
	a := i.Alloc
	if a.Terms == 0 || a.Bindings == 0 || a.Closures == 0 || a.Commands == 0 {
		t.Errorf("alloc stats not recorded: %+v", a)
	}
}

func TestDollarStarInsideNestedLambda(t *testing.T) {
	i, ctx, _ := harness(t)
	// The inner lambda's $* shadows the outer's.
	got := eval(t, i, ctx, "fn outer {result <>{<>{result @ {result $*}} inner-args}}; outer outer-args").Flatten(" ")
	if got != "inner-args" {
		t.Errorf("nested $* = %q", got)
	}
}

func TestRunExternalAndBuiltin(t *testing.T) {
	i, ctx, out := harness(t)
	// Builtins resolve after fn- definitions, before PATH.
	i.RegisterBuiltin("probe-tool", func(in *core.Interp, c *core.Ctx, argv []string) int {
		c.Stdout().Write([]byte("builtin " + argv[1] + "\n"))
		return 0
	})
	eval(t, i, ctx, "probe-tool arg1")
	if out.String() != "builtin arg1\n" {
		t.Errorf("builtin dispatch = %q", out.String())
	}
	if i.Builtin("probe-tool") == nil || i.Builtin("nothere") != nil {
		t.Error("Builtin accessor broken")
	}
	if i.Prim("if") == nil {
		t.Error("Prim accessor broken")
	}
	if len(i.PrimNames()) < 10 {
		t.Error("PrimNames too small")
	}

	// An external that does not exist on an empty path throws.
	i.SetVarRaw("path", core.List{})
	if _, err := i.RunString(ctx, "no-such-program-zz"); err == nil {
		t.Error("missing external should throw")
	}
	// Direct path to a missing file throws too.
	if _, err := i.RunString(ctx, "/no/such/file/zz"); err == nil {
		t.Error("missing file should throw")
	}
}

func TestRunExternalRealProcess(t *testing.T) {
	if _, err := os.Stat("/bin/sh"); err != nil {
		t.Skip("no /bin/sh")
	}
	i, ctx, out := harness(t)
	i.SetVarRaw("path", core.StrList("/bin", "/usr/bin"))
	eval(t, i, ctx, "sh -c 'echo external ran'")
	if out.String() != "external ran\n" {
		t.Errorf("external = %q", out.String())
	}
	// Non-zero exit becomes a false status, not an exception.
	res := eval(t, i, ctx, "sh -c 'exit 3'")
	if res.Flatten("") != "3" {
		t.Errorf("status = %v", res)
	}
	// The environment travels: functions are visible to child processes
	// as encoded strings.
	envBin := "/usr/bin/env"
	if _, err := os.Stat(envBin); err != nil {
		t.Skip("no env binary")
	}
	eval(t, i, ctx, "fn marked {}")
	out.Reset()
	eval(t, i, ctx, envBin+" | /bin/grep -c '^fn-marked='")
	if out.String() != "1\n" {
		t.Errorf("fn- not in child env: %q", out.String())
	}
}

func TestIfsVariable(t *testing.T) {
	i, ctx, _ := harness(t)
	// Default ifs splits on whitespace.
	got := eval(t, i, ctx, "result `{echo 'a b:c'}").Flatten(",")
	if got != "a,b:c" {
		t.Errorf("default ifs = %q", got)
	}
	got = eval(t, i, ctx, "local (ifs = :) {result `{echo -n 'a b:c'}}").Flatten(",")
	if got != "a b,c" {
		t.Errorf("colon ifs = %q", got)
	}
}

func TestVarNamesAndIsClosure(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, "zz1 = 1; zz2 = {frag}")
	names := i.VarNames()
	found := 0
	for _, n := range names {
		if n == "zz1" || n == "zz2" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("VarNames missing entries: %v", names)
	}
	v := i.Var("zz2")
	if len(v) != 1 || !v[0].IsClosure() {
		t.Error("IsClosure")
	}
	if i.Var("zz1")[0].IsClosure() {
		t.Error("string term reported as closure")
	}
}

func TestCallHookFallbacks(t *testing.T) {
	i, ctx, _ := harness(t)
	// Hook defined: used.
	eval(t, i, ctx, "fn %probe-hook {result via-hook}")
	got, err := i.CallHook(ctx, "%probe-hook", nil)
	if err != nil || got.Flatten("") != "via-hook" {
		t.Errorf("hook = %v %v", got, err)
	}
	// Hook missing but primitive present: falls back.
	got, err = i.CallHook(ctx, "%flatten", core.StrList(":", "a", "b"))
	if err != nil || got.Flatten("") != "a:b" {
		t.Errorf("prim fallback = %v %v", got, err)
	}
	// Neither: error.
	if _, err := i.CallHook(ctx, "%truly-missing", nil); err == nil {
		t.Error("missing hook should error")
	}
}

func TestTailCallErrorMessage(t *testing.T) {
	// The internal tailCall sentinel's Error() exists for debugging; it
	// must never escape to users, but keep it meaningful.
	i, ctx, _ := harness(t)
	res, err := i.RunString(ctx, "fn f {result tailed}; f")
	if err != nil || res.Flatten("") != "tailed" {
		t.Fatalf("TCO smoke: %v %v", res, err)
	}
}

func TestEvalErrorPaths(t *testing.T) {
	i, ctx, _ := harness(t)
	cases := []struct{ src, wantSub string }{
		{"x = a b; result $y($x)", "bad subscript"},
		{"(a b) = v", "single name"},
		{"echo > (two names) {x}", "single name"},
		{"result $#nonexistent^suffix", ""}, // count of missing is "0": fine
	}
	for _, c := range cases {
		_, err := i.RunString(ctx, c.src)
		if c.wantSub == "" {
			if err != nil {
				t.Errorf("%q: unexpected error %v", c.src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: err = %v, want containing %q", c.src, err, c.wantSub)
		}
	}
}

func TestRunStringParseError(t *testing.T) {
	i, ctx, _ := harness(t)
	_, err := i.RunString(ctx, "{unclosed")
	if !core.ExcNamed(err, "error") {
		t.Errorf("parse error = %v", err)
	}
}

// %backquote is a hook: deleting it falls back to the primitive, and
// spoofing it changes `{...} substitution.
func TestBackquoteHookSpoof(t *testing.T) {
	i, ctx, _ := harness(t)
	eval(t, i, ctx, "fn %backquote cmd {result intercepted}")
	got := eval(t, i, ctx, "result `{echo real output}").Flatten(" ")
	if got != "intercepted" {
		t.Errorf("spoofed backquote = %q", got)
	}
	eval(t, i, ctx, "fn-%backquote =")
	got = eval(t, i, ctx, "result `{echo real output}").Flatten(" ")
	if got != "real output" {
		t.Errorf("fallback backquote = %q", got)
	}
}
