package core

import "sort"

// varSlot holds one global (dynamic) variable.  Values imported from the
// environment stay as raw strings until first use: parsing every
// inherited function definition at startup would defeat the paper's
// "shell startup becomes very quick", so — like the C implementation —
// decoding is lazy.
type varSlot struct {
	value    List
	raw      string // undecoded environment string (valid while lazy)
	lazy     bool
	noexport bool
}

// phantom reports a slot that only records noexport status for a name
// that has never been assigned.  Every assignment path stores a non-nil
// value (evalAssign normalizes empty to List{}, SetVarRaw deletes on
// nil, lazy decode always yields a list), so a nil-value non-lazy slot
// can only come from SetNoExport on an unset name and must not make the
// variable visible.
func (s *varSlot) phantom() bool {
	return s.value == nil && !s.lazy
}

// Var returns the value of the global variable name (nil if unset).
func (i *Interp) Var(name string) List {
	s, ok := i.vars[name]
	if !ok {
		return nil
	}
	if s.lazy {
		s.value = i.DecodeValue(name, s.raw)
		s.lazy = false
	}
	return s.value
}

// Defined reports whether a global variable exists.  Slots that merely
// record a noexport mark for a never-assigned name do not count: before
// this check, SetNoExport on an unset name made Defined report a
// variable that no assignment ever created.
func (i *Interp) Defined(name string) bool {
	s, ok := i.vars[name]
	return ok && !s.phantom()
}

// VarNames returns the defined global variable names, sorted.  Phantom
// noexport-only slots are omitted, matching Defined.
func (i *Interp) VarNames() []string {
	names := make([]string, 0, len(i.vars))
	for n, s := range i.vars {
		if s.phantom() {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetVarRaw sets a global variable without running settors (used for
// settor re-entry, environment import, and dynamic-binding restores when
// the caller wants raw behaviour).
func (i *Interp) SetVarRaw(name string, value List) {
	i.invalidateForAssign(name)
	if value == nil {
		delete(i.vars, name)
		return
	}
	if s, ok := i.vars[name]; ok {
		s.value, s.lazy, s.raw = value, false, ""
		return
	}
	i.vars[name] = &varSlot{value: value}
}

// invalidateForAssign keeps the native caches honest across assignments:
// any write to path or PATH — through the settor round-trip, a raw
// restore, or an unset — drops the pathsearch memo, exactly as the
// set-path settor invalidates Figure 2's spoofed cache.
func (i *Interp) invalidateForAssign(name string) {
	if name == "path" || name == "PATH" {
		i.pathCache.Flush()
	}
}

// SetNoExport marks a variable as excluded from the environment.
func (i *Interp) SetNoExport(name string) {
	if s, ok := i.vars[name]; ok {
		s.noexport = true
	} else {
		i.vars[name] = &varSlot{noexport: true}
	}
}

// SetVar assigns a global variable, running its settor if one is defined:
// "A settor variable set-foo is a variable which gets evaluated every time
// the variable foo changes value", and the value it returns is what is
// stored.
func (i *Interp) SetVar(ctx *Ctx, name string, value List) error {
	if settor := i.settorFor(name); settor != nil {
		res, err := i.Apply(ctx.NonTail(), settor, value)
		if err != nil {
			return err
		}
		value = res
	}
	i.invalidateForAssign(name)
	// Assigning the empty list removes the variable; assigning () keeps
	// an empty variable.  We follow the simpler rc rule: x = (no values)
	// leaves x defined but null; only explicit unset (SetVarRaw nil)
	// deletes.  Null and undefined are indistinguishable to $#.
	if s, ok := i.vars[name]; ok {
		s.value, s.lazy, s.raw = value, false, ""
	} else {
		i.vars[name] = &varSlot{value: value}
	}
	return nil
}

// settorFor returns the closure to run when assigning name, or nil.
// A settor must itself be a single closure; empty or string-valued
// set-vars are ignored (the paper's recursion guard works by dynamically
// binding the cousin settor to the empty list).
func (i *Interp) settorFor(name string) *Closure {
	v := i.Var("set-" + name)
	if len(v) != 1 || v[0].Closure == nil {
		return nil
	}
	return v[0].Closure
}

// lookupVar resolves $name: lexical environment first, then globals.
func lookupVar(i *Interp, env *Binding, name string) List {
	if b := env.Lookup(name); b != nil {
		return b.Value
	}
	return i.Var(name)
}

// assignVar implements name = value: if name is lexically bound the
// binding mutates in place (and no settor runs); otherwise the global is
// assigned through SetVar.
func (i *Interp) assignVar(ctx *Ctx, env *Binding, name string, value List) error {
	if b := env.Lookup(name); b != nil {
		b.Value = value
		return nil
	}
	return i.SetVar(ctx, name, value)
}

// ifs returns the field separator characters used by backquote splitting.
func (i *Interp) ifs(env *Binding) string {
	v := lookupVar(i, env, "ifs")
	if v == nil {
		return " \t\n"
	}
	return v.Flatten("")
}
