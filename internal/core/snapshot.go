package core

import "sort"

// Session snapshot support.  The paper's environment trick — every
// definable value, closures included, unparses to a string — means an
// interpreter's entire definable state already has a textual
// serialization.  SnapshotVars and RestoreVars are that trick productized:
// they capture and re-install the variable table (which holds everything
// the user can define: variables, fn- functions, set- settors, and the
// spoofable fn-%hooks) through the same encode/decode machinery the
// environment uses, plus the two bits the environment cannot carry — the
// noexport mark and the null/empty-string distinction.

// VarRecord describes one variable slot for snapshotting.  Value is the
// environment encoding of the slot (EncodeValue), except when Phantom or
// Empty is set.
type VarRecord struct {
	Name     string
	Value    string
	NoExport bool // excluded from ExportEnv
	Phantom  bool // a sticky noexport mark on a name that has no value
	Empty    bool // defined but null: the empty list, not the empty string
}

// SnapshotVars captures every variable slot, sorted by name so snapshots
// are deterministic.  Slots still lazy from an environment import are
// captured as their undecoded raw string — no decode work happens, and
// the encoding is the same either way.
func (i *Interp) SnapshotVars() []VarRecord {
	out := make([]VarRecord, 0, len(i.vars))
	for name, slot := range i.vars {
		rec := VarRecord{Name: name, NoExport: slot.noexport}
		switch {
		case slot.phantom():
			rec.Phantom = true
		case slot.lazy:
			rec.Value = slot.raw
		case len(slot.value) == 0:
			rec.Empty = true
		default:
			rec.Value = EncodeValue(slot.value)
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// RestoreVars replaces the entire variable table with the captured
// records.  Values are installed lazily, exactly like an environment
// import — decoding every function definition up front would defeat the
// fast startup the lazy path buys — but unlike an import the noexport
// marks, phantom marks, and null values are restored exactly.  Settors do
// not run: a restore reinstates state, it does not re-assign it.
func (i *Interp) RestoreVars(recs []VarRecord) {
	i.vars = make(map[string]*varSlot, len(recs))
	for _, r := range recs {
		switch {
		case r.Phantom:
			i.vars[r.Name] = &varSlot{noexport: r.NoExport}
		case r.Empty:
			i.vars[r.Name] = &varSlot{value: List{}, noexport: r.NoExport}
		default:
			i.vars[r.Name] = &varSlot{raw: r.Value, lazy: true, noexport: r.NoExport}
		}
	}
	// $path may have changed wholesale; cached lookups are for the old one.
	i.pathCache.Flush()
}
