package core_test

import (
	"strings"
	"testing"

	"es/internal/core"
)

// These tests pin `local` restore behaviour when things go wrong during
// or after the body: a settor that raises during restore must not lose
// the saved value (the SetVarRaw fallback), a deadline that aborts the
// body must not skip the restore, and a path/PATH restore must flush
// the path cache like any other assignment.  Each scenario runs on both
// engines: restore is duplicated in the walker and the bytecode loop.

func onBothEngines(t *testing.T, f func(t *testing.T, i *core.Interp, ctx *core.Ctx, out *syncBuffer)) {
	t.Helper()
	for _, mode := range []struct {
		name      string
		nocompile bool
	}{{"compiled", false}, {"walker", true}} {
		t.Run(mode.name, func(t *testing.T) {
			i, ctx, out := harness(t)
			i.NoCompile = mode.nocompile
			f(t, i, ctx, out)
		})
	}
}

// A settor that raises while the dynamic extent is being unwound: the
// restore falls back to SetVarRaw, so the pre-local value survives even
// though the settor refused to run.
func TestLocalRestoreSettorRaisesFallsBackRaw(t *testing.T) {
	onBothEngines(t, func(t *testing.T, i *core.Interp, ctx *core.Ctx, out *syncBuffer) {
		res, err := i.RunString(ctx, `
			set-v = @ { if {~ $restorefail yes} {throw error set-v refused}; result $* }
			v = initial
			local (v = temporary) { restorefail = yes; result body-done }
		`)
		if err != nil {
			t.Fatalf("local body failed: %v", err)
		}
		if res.Flatten("") != "body-done" {
			t.Errorf("body result lost across failing restore: %v", res)
		}
		if got := i.Var("v").Flatten(""); got != "initial" {
			t.Errorf("v after failing restore = %q, want raw-restored %q", got, "initial")
		}
	})
}

// A deadline firing mid-body aborts the body with the signal exception,
// but the restore still runs; the cancel token is one-shot, so the
// settor participates in the restore normally and the caller sees the
// deadline, not a settor error.
func TestLocalRestoreRunsAfterDeadline(t *testing.T) {
	onBothEngines(t, func(t *testing.T, i *core.Interp, ctx *core.Ctx, out *syncBuffer) {
		done := make(chan struct{})
		i.SetCancel(done, "test-deadline")
		i.RegisterPrim("trip", func(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
			close(done)
			return core.StrList("tripped"), nil
		})
		settorRan := 0
		i.RegisterPrim("notesettor", func(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
			settorRan++
			return args, nil
		})
		_, err := i.RunString(ctx, `
			set-v = @ { $&notesettor $* }
			v = initial
			local (v = temporary) { $&trip; result unreached }
		`)
		if err == nil || !strings.Contains(err.Error(), "test-deadline") {
			t.Fatalf("want the deadline exception, got %v", err)
		}
		if got := i.Var("v").Flatten(""); got != "initial" {
			t.Errorf("v after deadline = %q, want %q", got, "initial")
		}
		// Initial assignment, local entry, then restore: the restore run
		// happened because the consumed cancel token no longer aborts
		// closure applies.
		if settorRan != 3 {
			t.Errorf("settor ran %d times, want 3 (assign + entry + restore)", settorRan)
		}
	})
}

// Restoring path (or PATH) at the end of the extent is an assignment
// like any other: the path cache entries seeded during the body must be
// flushed, exactly as on entry.
func TestLocalRestoreInvalidatesPathCache(t *testing.T) {
	onBothEngines(t, func(t *testing.T, i *core.Interp, ctx *core.Ctx, out *syncBuffer) {
		i.RegisterPrim("seedpath", func(i *core.Interp, ctx *core.Ctx, args core.List) (core.List, error) {
			i.PathCache().Put("probe-cmd", "/probe/bin/probe-cmd")
			return core.List{}, nil
		})
		before := i.PathCache().Stats().Invalidations
		if _, err := i.RunString(ctx, "local (path = /tmp) { $&seedpath }"); err != nil {
			t.Fatalf("local: %v", err)
		}
		if n := i.PathCache().Len(); n != 0 {
			t.Errorf("path cache has %d entries after restore, want 0", n)
		}
		if after := i.PathCache().Stats().Invalidations; after <= before {
			t.Errorf("restore flushed nothing: invalidations %d -> %d", before, after)
		}
	})
}
