package core

import (
	"io"
	"os"
)

// IOTable maps shell file descriptors to Go streams.  Entries are
// io.Reader or io.Writer values; *os.File entries can be handed to
// external processes directly, anything else goes through a pipe.
//
// Tables are persistent: WithFD returns a copy, so redirections scope to
// the command they wrap, exactly like the nested %create/%open calls the
// rewriter produces.
type IOTable struct {
	m map[int]interface{}
}

// NewIOTable builds a table with the standard descriptors.
func NewIOTable(stdin io.Reader, stdout, stderr io.Writer) *IOTable {
	return &IOTable{m: map[int]interface{}{0: stdin, 1: stdout, 2: stderr}}
}

// WithFD returns a copy of the table with fd bound to stream (nil closes
// the descriptor).
func (t *IOTable) WithFD(fd int, stream interface{}) *IOTable {
	m := make(map[int]interface{}, len(t.m)+1)
	for k, v := range t.m {
		m[k] = v
	}
	if stream == nil {
		delete(m, fd)
	} else {
		m[fd] = stream
	}
	return &IOTable{m: m}
}

// Get returns the raw entry for fd.
func (t *IOTable) Get(fd int) interface{} { return t.m[fd] }

// Fds returns the bound descriptor numbers.
func (t *IOTable) Fds() []int {
	out := make([]int, 0, len(t.m))
	for fd := range t.m {
		out = append(out, fd)
	}
	return out
}

// Reader returns the input stream on fd (a reader of nothing if unbound).
func (t *IOTable) Reader(fd int) io.Reader {
	if r, ok := t.m[fd].(io.Reader); ok {
		return r
	}
	return emptyReader{}
}

// Writer returns the output stream on fd (a discarding writer if unbound).
func (t *IOTable) Writer(fd int) io.Writer {
	if w, ok := t.m[fd].(io.Writer); ok {
		return w
	}
	return io.Discard
}

// File materializes fd as an *os.File for handing to an external process.
// If the entry is already a file it is returned with done == nil.
// Otherwise a pipe is created and a copier goroutine bridges it; call
// done() after the process exits to flush and reap the copier.
func (t *IOTable) File(fd int, input bool) (f *os.File, done func(), err error) {
	entry := t.m[fd]
	if file, ok := entry.(*os.File); ok {
		return file, nil, nil
	}
	if entry == nil {
		// Unbound: give the process the null device.
		null, err := os.OpenFile(os.DevNull, os.O_RDWR, 0)
		if err != nil {
			return nil, nil, err
		}
		return null, func() { null.Close() }, nil
	}
	pr, pw, err := os.Pipe()
	if err != nil {
		return nil, nil, err
	}
	ch := make(chan struct{})
	if input {
		r := entry.(io.Reader)
		go func() {
			defer close(ch)
			defer pw.Close()
			io.Copy(pw, r)
		}()
		return pr, func() { pr.Close(); <-ch }, nil
	}
	w := entry.(io.Writer)
	go func() {
		defer close(ch)
		io.Copy(w, pr)
		pr.Close()
	}()
	return pw, func() { pw.Close(); <-ch }, nil
}

type emptyReader struct{}

func (emptyReader) Read([]byte) (int, error) { return 0, io.EOF }

// Ctx carries the per-command evaluation context: the descriptor table and
// the tail-position flag used by the trampoline.
type Ctx struct {
	IO   *IOTable
	Tail bool
}

// NonTail returns a context with tail-calling disabled; any frame that
// must regain control after a sub-evaluation (catch, loops, substitutions,
// dynamic binding) evaluates through it.
func (c *Ctx) NonTail() *Ctx {
	if !c.Tail {
		return c
	}
	return &Ctx{IO: c.IO}
}

// InTail returns a context marked as tail position.
func (c *Ctx) InTail() *Ctx {
	if c.Tail {
		return c
	}
	return &Ctx{IO: c.IO, Tail: true}
}

// WithIO returns a context using a different descriptor table.
func (c *Ctx) WithIO(t *IOTable) *Ctx {
	return &Ctx{IO: t, Tail: c.Tail}
}

// Stdin, Stdout and Stderr are convenience accessors.
func (c *Ctx) Stdin() io.Reader  { return c.IO.Reader(0) }
func (c *Ctx) Stdout() io.Writer { return c.IO.Writer(1) }
func (c *Ctx) Stderr() io.Writer { return c.IO.Writer(2) }
