package core

import (
	"os"
	"path/filepath"
	"sync"

	"es/internal/syntax"
)

// PrimFunc is the signature of a $& primitive.
type PrimFunc func(i *Interp, ctx *Ctx, args List) (List, error)

// BuiltinFunc is the signature of a hermetic utility command (the
// coreutils substrate).  Builtins behave like external programs: they see
// flattened string arguments and the context's streams, and report an exit
// status.
type BuiltinFunc func(i *Interp, ctx *Ctx, args []string) int

// Interp is one es interpreter.  It is not safe for concurrent use; Fork
// produces an isolated copy for subshell semantics.
type Interp struct {
	vars     map[string]*varSlot
	prims    map[string]PrimFunc
	builtins map[string]BuiltinFunc

	dir string // virtual working directory (fork-isolated, unlike os.Chdir)

	// interactive input source for %parse, set by the REPL driver.
	Reader CommandReader

	// background job bookkeeping.
	jobs   *jobTable
	parent *Interp

	// TCO can be disabled to measure the paper's "tail calls consume
	// stack space" deficiency (the E7 ablation).
	NoTailCalls bool

	// ExitFunc, when set, makes $&exit terminate the process like the C
	// implementation's exit(2) call.  It is deliberately not inherited
	// by forks: exit in a subshell ends only the subshell.  When nil
	// (the embedded default), $&exit raises the exit exception instead.
	ExitFunc func(status int)

	// Alloc records the interpreter's allocation behaviour for the GC
	// experiments when Trace is enabled.
	Alloc AllocStats

	// Depth guards runaway recursion when TCO is off.
	depth    int
	maxDepth int
}

// CommandReader supplies input lines to %parse, which prints prompts and
// assembles multi-line commands itself.  ReadLine returns one line without
// its trailing newline, and io.EOF at end of input.
type CommandReader interface {
	ReadLine() (string, error)
}

// AllocStats counts value allocations, mirroring the C implementation's
// collector traffic so the gc package can replay realistic shell
// workloads.
type AllocStats struct {
	Trace    bool
	Terms    int64
	Lists    int64
	Closures int64
	Bindings int64
	StrBytes int64
	Commands int64 // command boundaries ("between two separate commands little memory is preserved")
}

func (a *AllocStats) term(n int) {
	if a.Trace {
		a.Terms += int64(n)
	}
}

func (a *AllocStats) list() {
	if a.Trace {
		a.Lists++
	}
}

func (a *AllocStats) closure() {
	if a.Trace {
		a.Closures++
	}
}

func (a *AllocStats) binding(n int) {
	if a.Trace {
		a.Bindings += int64(n)
	}
}

func (a *AllocStats) str(n int) {
	if a.Trace {
		a.StrBytes += int64(n)
	}
}

func (a *AllocStats) command() {
	if a.Trace {
		a.Commands++
	}
}

// jobTable tracks %background jobs; it is shared between an interpreter
// and its forks so wait works from subshells of the spawning shell.
type jobTable struct {
	mu   sync.Mutex
	next int
	jobs map[int]*job
}

type job struct {
	id   int
	done chan struct{}
	res  List
}

// New creates an interpreter with no variables and no primitives
// registered.  Callers normally use the public es package, which registers
// the standard primitive set and runs initial.es.
func New() *Interp {
	dir, err := os.Getwd()
	if err != nil {
		dir = "/"
	}
	return &Interp{
		vars:     make(map[string]*varSlot),
		prims:    make(map[string]PrimFunc),
		builtins: make(map[string]BuiltinFunc),
		dir:      dir,
		jobs:     &jobTable{jobs: make(map[int]*job)},
		maxDepth: 10000,
	}
}

// RegisterPrim registers a $&name primitive.  Primitives cannot be
// redefined from the shell: "it is always possible to access the
// underlying shell service, even when its hook has been reassigned."
func (i *Interp) RegisterPrim(name string, fn PrimFunc) {
	i.prims[name] = fn
}

// RegisterBuiltin registers a hermetic utility command, found after fn-
// definitions but before $PATH.
func (i *Interp) RegisterBuiltin(name string, fn BuiltinFunc) {
	i.builtins[name] = fn
}

// Prim returns the registered primitive (nil if unknown).
func (i *Interp) Prim(name string) PrimFunc { return i.prims[name] }

// Builtin returns the registered builtin (nil if unknown).
func (i *Interp) Builtin(name string) BuiltinFunc { return i.builtins[name] }

// PrimNames returns the registered primitive names (unsorted).
func (i *Interp) PrimNames() []string {
	out := make([]string, 0, len(i.prims))
	for n := range i.prims {
		out = append(out, n)
	}
	return out
}

// SetMaxDepth bounds closure-application nesting; the tail-call
// trampoline keeps properly tail-recursive functions within one frame.
func (i *Interp) SetMaxDepth(n int) { i.maxDepth = n }

// Dir returns the interpreter's working directory.
func (i *Interp) Dir() string { return i.dir }

// SetDir sets the working directory (no validation; $&cd validates).
func (i *Interp) SetDir(dir string) { i.dir = dir }

// Fork deep-copies the interpreter for subshell execution: variable
// bindings — including the lexical environments captured inside closures —
// are copied so that mutations in the child are invisible to the parent,
// matching the process-fork semantics of the C implementation.
func (i *Interp) Fork() *Interp {
	child := &Interp{
		vars:        make(map[string]*varSlot, len(i.vars)),
		prims:       i.prims,
		builtins:    i.builtins,
		dir:         i.dir,
		jobs:        i.jobs,
		parent:      i,
		NoTailCalls: i.NoTailCalls,
		maxDepth:    i.maxDepth,
		Reader:      i.Reader,
	}
	memo := &forkMemo{
		bindings: make(map[*Binding]*Binding),
		closures: make(map[*Closure]*Closure),
	}
	for name, slot := range i.vars {
		if slot.lazy {
			child.vars[name] = &varSlot{raw: slot.raw, lazy: true, noexport: slot.noexport}
			continue
		}
		child.vars[name] = &varSlot{value: copyList(slot.value, memo), noexport: slot.noexport}
	}
	return child
}

// forkMemo preserves object identity — including cycles, which es values
// can form ("the ability to create true recursive structures") — across
// the deep copy.
type forkMemo struct {
	bindings map[*Binding]*Binding
	closures map[*Closure]*Closure
}

func copyList(l List, memo *forkMemo) List {
	needs := false
	for _, t := range l {
		if t.Closure != nil {
			needs = true
			break
		}
	}
	if !needs {
		return l
	}
	out := make(List, len(l))
	for idx, t := range l {
		if t.Closure != nil {
			t.Closure = copyClosure(t.Closure, memo)
		}
		out[idx] = t
	}
	return out
}

func copyClosure(c *Closure, memo *forkMemo) *Closure {
	if c.Env == nil {
		return c // nothing mutable is shared
	}
	if dup, ok := memo.closures[c]; ok {
		return dup
	}
	dup := &Closure{Params: c.Params, HasParams: c.HasParams, Body: c.Body}
	memo.closures[c] = dup
	dup.Env = copyBindings(c.Env, memo)
	return dup
}

func copyBindings(b *Binding, memo *forkMemo) *Binding {
	if b == nil {
		return nil
	}
	if dup, ok := memo.bindings[b]; ok {
		return dup
	}
	dup := &Binding{Name: b.Name}
	memo.bindings[b] = dup
	dup.Value = copyList(b.Value, memo)
	dup.Next = copyBindings(b.Next, memo)
	return dup
}

// ParseCommand parses source into the core representation ready for
// evaluation.
func ParseCommand(src string) (*syntax.Block, error) {
	b, err := syntax.Parse(src)
	if err != nil {
		return nil, err
	}
	return syntax.Rewrite(b).(*syntax.Block), nil
}

// RunString parses and evaluates src, returning its rich result.
func (i *Interp) RunString(ctx *Ctx, src string) (List, error) {
	b, err := ParseCommand(src)
	if err != nil {
		return nil, ErrorExc(err.Error())
	}
	return i.EvalBlock(ctx.NonTail(), b, nil)
}

// RunFile sources the script at path with $* bound to args.
func (i *Interp) RunFile(ctx *Ctx, path string, args List) (List, error) {
	if !filepath.IsAbs(path) {
		path = filepath.Join(i.dir, path)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, ErrorExc(err.Error())
	}
	b, perr := ParseCommand(string(src))
	if perr != nil {
		return nil, ErrorExc(path + ": " + perr.Error())
	}
	// $0 names the script for its dynamic extent, $* holds the args.
	cl := &Closure{Body: b, Env: &Binding{Name: "0", Value: StrList(path)}}
	return i.Apply(ctx.NonTail(), cl, args)
}
