package core

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"es/internal/cache"
	"es/internal/compile"
	"es/internal/glob"
	"es/internal/syntax"
)

// PrimFunc is the signature of a $& primitive.
type PrimFunc func(i *Interp, ctx *Ctx, args List) (List, error)

// BuiltinFunc is the signature of a hermetic utility command (the
// coreutils substrate).  Builtins behave like external programs: they see
// flattened string arguments and the context's streams, and report an exit
// status.
type BuiltinFunc func(i *Interp, ctx *Ctx, args []string) int

// Interp is one es interpreter.  It is not safe for concurrent use; Fork
// produces an isolated copy for subshell semantics.
type Interp struct {
	vars     map[string]*varSlot
	prims    map[string]PrimFunc
	builtins map[string]BuiltinFunc

	dir string // virtual working directory (fork-isolated, unlike os.Chdir)

	// interactive input source for %parse, set by the REPL driver.
	Reader CommandReader

	// background job bookkeeping.
	jobs   *jobTable
	parent *Interp

	// TCO can be disabled to measure the paper's "tail calls consume
	// stack space" deficiency (the E7 ablation).
	NoTailCalls bool

	// NoCompile keeps this interpreter on the tree walker (es -nocompile,
	// ES_NOCOMPILE=1): the escape hatch for the bytecode engine and the
	// reference half of the differential tests.
	NoCompile bool

	// NoExternals makes command dispatch fail with a deterministic error
	// instead of executing real processes — for hermetic harnesses like
	// the differential fuzzer, where arbitrary generated input must not
	// launch programs.
	NoExternals bool

	// primTab is the flat primitive dispatch table indexed by
	// compile.InternPrim indices.  It is shared by reference with forks,
	// like the prims map it mirrors.
	primTab *[]PrimFunc

	// ExitFunc, when set, makes $&exit terminate the process like the C
	// implementation's exit(2) call.  It is deliberately not inherited
	// by forks: exit in a subshell ends only the subshell.  When nil
	// (the embedded default), $&exit raises the exit exception instead.
	ExitFunc func(status int)

	// Alloc records the interpreter's allocation behaviour for the GC
	// experiments when Trace is enabled.
	Alloc AllocStats

	// pathCache memoizes successful $path lookups made by $&pathsearch.
	// It is per-interpreter (a fork may change $path independently) and
	// invalidated whenever path/PATH is assigned; see CacheStats.
	pathCache *cache.Map[string]

	// intr is the pending-interrupt line, shared with forks (a subshell
	// belongs to the same "process group" as its parent) but private to
	// each independently created interpreter.
	intr *atomic.Bool

	// cancel is the cooperative-cancellation slot, shared with forks the
	// same way the interrupt line is: a serving layer arms it per request
	// (SetCancel) and every command boundary in the group polls it.
	cancel *atomic.Pointer[cancelState]

	// Depth guards runaway recursion when TCO is off.
	depth    int
	maxDepth int
}

// CommandReader supplies input lines to %parse, which prints prompts and
// assembles multi-line commands itself.  ReadLine returns one line without
// its trailing newline, and io.EOF at end of input.
type CommandReader interface {
	ReadLine() (string, error)
}

// AllocStats counts value allocations, mirroring the C implementation's
// collector traffic so the gc package can replay realistic shell
// workloads.
type AllocStats struct {
	Trace    bool
	Terms    int64
	Lists    int64
	Closures int64
	Bindings int64
	StrBytes int64
	Commands int64 // command boundaries ("between two separate commands little memory is preserved")
}

func (a *AllocStats) term(n int) {
	if a.Trace {
		a.Terms += int64(n)
	}
}

func (a *AllocStats) list() {
	if a.Trace {
		a.Lists++
	}
}

func (a *AllocStats) closure() {
	if a.Trace {
		a.Closures++
	}
}

func (a *AllocStats) binding(n int) {
	if a.Trace {
		a.Bindings += int64(n)
	}
}

func (a *AllocStats) str(n int) {
	if a.Trace {
		a.StrBytes += int64(n)
	}
}

func (a *AllocStats) command() {
	if a.Trace {
		a.Commands++
	}
}

// jobTable tracks %background jobs; it is shared between an interpreter
// and its forks so wait works from subshells of the spawning shell.
type jobTable struct {
	mu   sync.Mutex
	next int
	jobs map[int]*job
}

type job struct {
	id   int
	done chan struct{}
	res  List
}

// New creates an interpreter with no variables and no primitives
// registered.  Callers normally use the public es package, which registers
// the standard primitive set and runs initial.es.
func New() *Interp {
	dir, err := os.Getwd()
	if err != nil {
		dir = "/"
	}
	return &Interp{
		vars:      make(map[string]*varSlot),
		prims:     make(map[string]PrimFunc),
		builtins:  make(map[string]BuiltinFunc),
		dir:       dir,
		jobs:      &jobTable{jobs: make(map[int]*job)},
		pathCache: cache.NewMap[string]("path", 512),
		intr:      new(atomic.Bool),
		cancel:    new(atomic.Pointer[cancelState]),
		maxDepth:  10000,
		NoCompile: os.Getenv("ES_NOCOMPILE") != "",
		primTab:   new([]PrimFunc),
	}
}

// RegisterPrim registers a $&name primitive.  Primitives cannot be
// redefined from the shell: "it is always possible to access the
// underlying shell service, even when its hook has been reassigned."
func (i *Interp) RegisterPrim(name string, fn PrimFunc) {
	i.prims[name] = fn
	// Mirror the registration into the flat table compiled code
	// dispatches through.
	idx := compile.InternPrim(name)
	t := *i.primTab
	for idx >= len(t) {
		t = append(t, nil)
	}
	t[idx] = fn
	*i.primTab = t
}

// RegisterBuiltin registers a hermetic utility command, found after fn-
// definitions but before $PATH.
func (i *Interp) RegisterBuiltin(name string, fn BuiltinFunc) {
	i.builtins[name] = fn
}

// Prim returns the registered primitive (nil if unknown).
func (i *Interp) Prim(name string) PrimFunc { return i.prims[name] }

// Builtin returns the registered builtin (nil if unknown).
func (i *Interp) Builtin(name string) BuiltinFunc { return i.builtins[name] }

// PrimNames returns the registered primitive names (unsorted).
func (i *Interp) PrimNames() []string {
	out := make([]string, 0, len(i.prims))
	for n := range i.prims {
		out = append(out, n)
	}
	return out
}

// BuiltinNames returns the registered builtin command names (unsorted),
// completing the registry enumeration triple with PrimNames and VarNames
// that static tooling (internal/analysis) resolves references against.
func (i *Interp) BuiltinNames() []string {
	out := make([]string, 0, len(i.builtins))
	for n := range i.builtins {
		out = append(out, n)
	}
	return out
}

// SetMaxDepth bounds closure-application nesting; the tail-call
// trampoline keeps properly tail-recursive functions within one frame.
func (i *Interp) SetMaxDepth(n int) { i.maxDepth = n }

// Dir returns the interpreter's working directory.
func (i *Interp) Dir() string { return i.dir }

// SetDir sets the working directory (no validation; $&cd validates).
func (i *Interp) SetDir(dir string) { i.dir = dir }

// Fork deep-copies the interpreter for subshell execution: variable
// bindings — including the lexical environments captured inside closures —
// are copied so that mutations in the child are invisible to the parent,
// matching the process-fork semantics of the C implementation.
func (i *Interp) Fork() *Interp {
	child := &Interp{
		vars:        make(map[string]*varSlot, len(i.vars)),
		prims:       i.prims,
		builtins:    i.builtins,
		dir:         i.dir,
		jobs:        i.jobs,
		parent:      i,
		NoTailCalls: i.NoTailCalls,
		NoCompile:   i.NoCompile,
		NoExternals: i.NoExternals,
		primTab:     i.primTab,
		maxDepth:    i.maxDepth,
		Reader:      i.Reader,
		// A fork may assign $path without the parent seeing the settor
		// run, so it starts with its own empty path cache; sharing the
		// parent's would serve answers computed against the wrong $path.
		pathCache: cache.NewMap[string]("path", 512),
		// The interrupt line IS shared: a SIGINT aimed at the shell
		// interrupts its subshells too, like a Unix process group.  So is
		// the cancel slot: a request deadline aborts the subshells and
		// background jobs the request spawned, not just its main line.
		intr:   i.intr,
		cancel: i.cancel,
	}
	memo := &forkMemo{
		bindings: make(map[*Binding]*Binding),
		closures: make(map[*Closure]*Closure),
	}
	for name, slot := range i.vars {
		if slot.lazy {
			child.vars[name] = &varSlot{raw: slot.raw, lazy: true, noexport: slot.noexport}
			continue
		}
		child.vars[name] = &varSlot{value: copyList(slot.value, memo), noexport: slot.noexport}
	}
	return child
}

// Spawn forks the interpreter and detaches the copy from the parent's
// process-group state: the child gets its own interrupt line, cancel
// slot, and background-job table.  Fork models a subshell; Spawn models a
// fresh top-level interpreter stamped out of a warm template — the esd
// session-pool idiom — so interrupting or deadlining one session can
// never abort another, and `wait` in one session cannot reap another's
// jobs.
func (i *Interp) Spawn() *Interp {
	child := i.Fork()
	child.parent = nil
	child.intr = new(atomic.Bool)
	child.cancel = new(atomic.Pointer[cancelState])
	child.jobs = &jobTable{jobs: make(map[int]*job)}
	return child
}

// forkMemo preserves object identity — including cycles, which es values
// can form ("the ability to create true recursive structures") — across
// the deep copy.
type forkMemo struct {
	bindings map[*Binding]*Binding
	closures map[*Closure]*Closure
}

func copyList(l List, memo *forkMemo) List {
	needs := false
	for _, t := range l {
		if t.Closure != nil {
			needs = true
			break
		}
	}
	if !needs {
		return l
	}
	out := make(List, len(l))
	for idx, t := range l {
		if t.Closure != nil {
			t.Closure = copyClosure(t.Closure, memo)
		}
		out[idx] = t
	}
	return out
}

func copyClosure(c *Closure, memo *forkMemo) *Closure {
	if c.Env == nil {
		return c // nothing mutable is shared
	}
	if dup, ok := memo.closures[c]; ok {
		return dup
	}
	dup := &Closure{Params: c.Params, HasParams: c.HasParams, Body: c.Body}
	memo.closures[c] = dup
	dup.Env = copyBindings(c.Env, memo)
	return dup
}

func copyBindings(b *Binding, memo *forkMemo) *Binding {
	if b == nil {
		return nil
	}
	if dup, ok := memo.bindings[b]; ok {
		return dup
	}
	dup := &Binding{Name: b.Name}
	memo.bindings[b] = dup
	dup.Value = copyList(b.Value, memo)
	dup.Next = copyBindings(b.Next, memo)
	return dup
}

// parseCache memoizes ParseCommand results by source text.  The rewritten
// AST is immutable — Rewrite builds fresh nodes and evaluation only reads
// them — so one Block is safely shared by every evaluation and every
// interpreter in the process.  Repeated eval/%parse of the same source
// (and every startup's initial.es) skips the lexer entirely.
var parseCache = cache.NewMap[*syntax.Block]("parse", 512)

// maxCachedSrc bounds the source size the parse cache will retain; huge
// one-off scripts would otherwise pin memory for no repeat benefit.
const maxCachedSrc = 1 << 14

// ParseCommand parses source into the core representation ready for
// evaluation.  Successful parses of modest sources are memoized.
func ParseCommand(src string) (*syntax.Block, error) {
	cacheable := len(src) <= maxCachedSrc
	if cacheable {
		if b, ok := parseCache.Get(src); ok {
			return b, nil
		}
	}
	b, err := syntax.Parse(src)
	if err != nil {
		return nil, err
	}
	rw := syntax.Rewrite(b).(*syntax.Block)
	if cacheable {
		parseCache.Put(src, rw)
	}
	return rw, nil
}

// FlushParseCache drops every memoized parse (the $&recache escape hatch
// and the cold-start lever for benchmarks).
func FlushParseCache() { parseCache.Flush() }

// PathCache exposes the interpreter's pathsearch memo so the pathsearch
// primitive (package prim) can consult it and tests can observe it.
func (i *Interp) PathCache() *cache.Map[string] { return i.pathCache }

// FlushCaches drops this interpreter's path cache and the process-wide
// parse, decode, and glob caches: the native analogue of Figure 2's
// recache function, bound to $&recache.
func (i *Interp) FlushCaches() {
	i.pathCache.Flush()
	FlushParseCache()
	FlushCompileCache()
	FlushDecodeCache()
	glob.FlushCache()
}

// CacheStats snapshots every native cache visible to this interpreter, in
// a fixed order (path, parse, compile, decode, glob).  It is the
// AllocStats-style observability surface for the dispatch caches, reported
// by $&cachestats and the es -cachestats flag.
func (i *Interp) CacheStats() []cache.Stats {
	return []cache.Stats{
		i.pathCache.Stats(),
		parseCache.Stats(),
		compileCache.Stats(),
		decodeCache.Stats(),
		glob.CacheStats(),
	}
}

// RunString parses and evaluates src, returning its rich result.
func (i *Interp) RunString(ctx *Ctx, src string) (List, error) {
	b, err := ParseCommand(src)
	if err != nil {
		return nil, ErrorExc(err.Error())
	}
	return i.EvalBlock(ctx.NonTail(), b, nil)
}

// RunFile sources the script at path with $* bound to args.
func (i *Interp) RunFile(ctx *Ctx, path string, args List) (List, error) {
	if !filepath.IsAbs(path) {
		path = filepath.Join(i.dir, path)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, ErrorExc(err.Error())
	}
	b, perr := ParseCommand(string(src))
	if perr != nil {
		return nil, ErrorExc(path + ": " + perr.Error())
	}
	// $0 names the script for its dynamic extent, $* holds the args.
	cl := &Closure{Body: b, Env: &Binding{Name: "0", Value: StrList(path)}}
	return i.Apply(ctx.NonTail(), cl, args)
}
