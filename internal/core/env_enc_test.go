package core

import (
	"strings"
	"testing"
	"testing/quick"
)

// mkClosure parses a lambda word into a Closure with the given env.
func mkClosure(t *testing.T, src string, env *Binding) *Closure {
	t.Helper()
	i := New()
	val := i.DecodeValue("fn-x", src)
	if len(val) != 1 || val[0].Closure == nil {
		t.Fatalf("mkClosure(%q) = %v", src, val)
	}
	cl := val[0].Closure
	cl.Env = env
	return cl
}

func TestEncodeValuePlain(t *testing.T) {
	if got := EncodeValue(StrList("one")); got != "one" {
		t.Errorf("single = %q", got)
	}
	if got := EncodeValue(StrList("a", "b c", "d")); got != "a\x01b c\x01d" {
		t.Errorf("list = %q", got)
	}
	if got := EncodeValue(List{{Prim: "create"}}); got != "$&create" {
		t.Errorf("prim = %q", got)
	}
}

func TestEncodeClosureNoCaptures(t *testing.T) {
	cl := mkClosure(t, "@ args {echo -n $args}", nil)
	if got := EncodeClosure(cl); got != "@ args {echo -n $args}" {
		t.Errorf("encoded = %q", got)
	}
	// A parameterless fragment uses * per the paper's convention.
	cl2 := mkClosure(t, "{date}", nil)
	if got := EncodeClosure(cl2); got != "@ * {date}" {
		t.Errorf("fragment = %q", got)
	}
}

func TestEncodeClosureCaptures(t *testing.T) {
	env := &Binding{Name: "a", Value: StrList("b")}
	cl := mkClosure(t, "{echo $a}", env)
	if got := EncodeClosure(cl); got != "%closure(a=b)@ * {echo $a}" {
		t.Errorf("encoded = %q", got)
	}
}

// Only referenced bindings are captured.
func TestEncodeClosureMinimalCaptures(t *testing.T) {
	env := &Binding{Name: "used", Value: StrList("u"),
		Next: &Binding{Name: "unused", Value: StrList("x")}}
	cl := mkClosure(t, "{echo $used}", env)
	enc := EncodeClosure(cl)
	if strings.Contains(enc, "unused") {
		t.Errorf("unused binding captured: %q", enc)
	}
	if !strings.Contains(enc, "used=u") {
		t.Errorf("used binding missing: %q", enc)
	}
}

// A computed variable name forces capturing the whole environment.
func TestEncodeClosureComputedName(t *testing.T) {
	env := &Binding{Name: "zeta", Value: StrList("z"),
		Next: &Binding{Name: "alpha", Value: StrList("a")}}
	cl := mkClosure(t, "{echo $(prefix-$x)}", env)
	enc := EncodeClosure(cl)
	if !strings.Contains(enc, "zeta=z") || !strings.Contains(enc, "alpha=a") {
		t.Errorf("conservative capture missing: %q", enc)
	}
}

// Parameters shadow: a closure does not capture bindings its own
// parameters hide.
func TestEncodeClosureShadowing(t *testing.T) {
	env := &Binding{Name: "x", Value: StrList("outer")}
	cl := mkClosure(t, "@ x {echo $x}", env)
	if got := EncodeClosure(cl); strings.Contains(got, "%closure") {
		t.Errorf("shadowed binding captured: %q", got)
	}
	// let inside the body shadows too.
	cl2 := mkClosure(t, "{let (x = inner) echo $x}", env)
	if got := EncodeClosure(cl2); strings.Contains(got, "%closure") {
		t.Errorf("let-shadowed binding captured: %q", got)
	}
	// ... but a reference before/outside the let is captured.
	cl3 := mkClosure(t, "{echo $x; let (x = inner) echo $x}", env)
	if got := EncodeClosure(cl3); !strings.Contains(got, "x=outer") {
		t.Errorf("outer reference not captured: %q", got)
	}
}

// Multi-word and quoted captured values survive the round trip.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		env  *Binding
		body string
	}{
		{&Binding{Name: "a", Value: StrList("b")}, "{echo $a}"},
		{&Binding{Name: "words", Value: StrList("x", "y z", "'q'")}, "{echo $words}"},
		{&Binding{Name: "n", Value: StrList("")}, "{echo $n end}"},
		{nil, "@ a b {echo $b $a}"},
	}
	i := New()
	for _, c := range cases {
		cl := mkClosure(t, c.body, c.env)
		enc := EncodeClosure(cl)
		dec := i.DecodeValue("fn-t", enc)
		if len(dec) != 1 || dec[0].Closure == nil {
			t.Errorf("decode(%q) = %v", enc, dec)
			continue
		}
		re := EncodeClosure(dec[0].Closure)
		if re != enc {
			t.Errorf("round trip changed: %q → %q", enc, re)
		}
	}
}

// Nested closures in captured values survive one level.
func TestEncodeDecodeNestedClosure(t *testing.T) {
	i := New()
	inner := mkClosure(t, "{echo inner}", nil)
	env := &Binding{Name: "f", Value: List{{Closure: inner}}}
	cl := mkClosure(t, "{$f}", env)
	enc := EncodeClosure(cl)
	if !strings.Contains(enc, "f=@ * {echo inner}") {
		t.Errorf("nested encoding: %q", enc)
	}
	dec := i.DecodeValue("fn-t", enc)
	if len(dec) != 1 || dec[0].Closure == nil {
		t.Fatalf("decode failed: %v", dec)
	}
	fb := dec[0].Closure.Env.Lookup("f")
	if fb == nil || len(fb.Value) != 1 || fb.Value[0].Closure == nil {
		t.Fatalf("nested closure lost: %+v", fb)
	}
}

func TestDecodeValuePlainStrings(t *testing.T) {
	i := New()
	v := i.DecodeValue("anything", "a\x01b\x01c d")
	if len(v) != 3 || v[2].String() != "c d" {
		t.Errorf("decoded = %v", v)
	}
	// Non-code names do not get parsed even if they look like lambdas.
	v = i.DecodeValue("PS1", "@ x {rm -rf}")
	if len(v) != 1 || v[0].Closure != nil {
		t.Errorf("non-code name parsed as code: %v", v)
	}
	// Malformed closures fall back to strings.
	v = i.DecodeValue("fn-broken", "%closure(a=")
	if len(v) != 1 || v[0].Closure != nil {
		t.Errorf("malformed closure should import as string: %v", v)
	}
}

func TestScanClosureHeader(t *testing.T) {
	tests := []struct {
		in, inner, rest string
		ok              bool
	}{
		{"a=b)@ * {x}", "a=b", "@ * {x}", true},
		{"a=b;c=d)@ * {x}", "a=b;c=d", "@ * {x}", true},
		{"a='q)q')@ * {x}", "a='q)q'", "@ * {x}", true},
		{"a={(nested)})rest", "a={(nested)}", "rest", true},
		{"a=b", "", "", false},
	}
	for _, tt := range tests {
		inner, rest, ok := scanClosureHeader(tt.in)
		if ok != tt.ok || inner != tt.inner || rest != tt.rest {
			t.Errorf("scan(%q) = %q,%q,%v want %q,%q,%v", tt.in, inner, rest, ok, tt.inner, tt.rest, tt.ok)
		}
	}
}

func TestExportEnvFiltering(t *testing.T) {
	i := New()
	i.SetVarRaw("visible", StrList("1"))
	i.SetVarRaw("hidden", StrList("2"))
	i.SetNoExport("hidden")
	i.SetVarRaw("bad=name", StrList("3"))
	env := i.ExportEnv()
	joined := strings.Join(env, "\n")
	if !strings.Contains(joined, "visible=1") {
		t.Errorf("visible missing: %v", env)
	}
	if strings.Contains(joined, "hidden") || strings.Contains(joined, "bad=name=") {
		t.Errorf("filtering failed: %v", env)
	}
}

// Export → import is the identity on plain string lists.
func TestEnvRoundTripProperty(t *testing.T) {
	f := func(vals []string) bool {
		for _, v := range vals {
			if strings.ContainsAny(v, "\x01") {
				return true // separator collision excluded by design
			}
		}
		if len(vals) == 0 {
			return true
		}
		a := New()
		a.SetVarRaw("v", StrList(vals...))
		b := New()
		b.ImportEnv(a.ExportEnv())
		got := b.Var("v")
		if len(got) != len(vals) {
			return false
		}
		for k := range vals {
			if got[k].Str != vals[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
