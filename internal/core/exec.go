package core

// The bytecode execution loop.  EvalBlock routes every block through
// unitFor, which lowers the (shared, immutable) rewritten AST to the flat
// instruction form of internal/compile exactly once, process-wide, and
// caches it alongside the parse results.  Execution here shares all of
// the tree walker's machinery — Ctx tail marking, Binding chains, the
// tail-call trampoline, checkPending cancellation polls, exceptions as
// errors — so results, exception shapes, deadlines, and interrupts are
// identical between the two engines.  `es -nocompile` (or ES_NOCOMPILE=1
// in the environment) keeps the walker as an escape hatch and as the
// differential-testing reference.

import (
	"strconv"

	"es/internal/cache"
	"es/internal/compile"
	"es/internal/glob"
	"es/internal/syntax"
)

// compileCache memoizes compiled units by block identity, alongside the
// parse cache (which guarantees one shared *syntax.Block per source).  A
// nil unit is a negative entry: the block uses the tree walker.
var compileCache = cache.NewKeyMap[*syntax.Block, *compile.Unit]("compile", 1024)

// FlushCompileCache drops every compiled unit (the $&recache escape
// hatch and the cold-start lever for benchmarks).
func FlushCompileCache() { compileCache.Flush() }

// unitFor returns the compiled unit for b, lowering and caching it on
// first use; nil means the block is tree-walked.  Nested lambda and
// substitution bodies are registered as they are compiled, so closure
// application starts on compiled code.
func unitFor(b *syntax.Block) *compile.Unit {
	if u, ok := compileCache.Get(b); ok {
		return u
	}
	u, err := compile.Compile(b, func(sb *syntax.Block, su *compile.Unit) {
		compileCache.Put(sb, su)
	})
	if err != nil {
		compileCache.Put(b, nil)
		return nil
	}
	compileCache.Put(b, u)
	return u
}

// execSeq evaluates a compiled command sequence; the result is the last
// command's result (the empty list — true — for an empty sequence).
// When ctx is a tail context the final command runs in tail position,
// exactly as EvalBlock does.
func (i *Interp) execSeq(ctx *Ctx, seq compile.Seq, env *Binding) (List, error) {
	if len(seq) == 0 {
		return List{}, nil
	}
	inner := ctx.NonTail()
	for k := range seq[:len(seq)-1] {
		i.Alloc.command()
		if _, err := i.execInstr(inner, &seq[k], env); err != nil {
			return nil, err
		}
	}
	i.Alloc.command()
	return i.execInstr(ctx, &seq[len(seq)-1], env)
}

// execBody evaluates a compiled body-position command (the body of let,
// local, for, !), mirroring evalCmd's boundary: one cancellation poll,
// then block bodies count their member command boundaries.
func (i *Interp) execBody(ctx *Ctx, b *compile.Body, env *Binding) (List, error) {
	if err := i.checkPending(); err != nil {
		return nil, err
	}
	if len(b.Seq) == 0 {
		return List{}, nil
	}
	if b.IsBlock {
		return i.execSeq(ctx, b.Seq, env)
	}
	return i.execInstr(ctx, &b.Seq[0], env)
}

func (i *Interp) execInstr(ctx *Ctx, in *compile.Instr, env *Binding) (List, error) {
	if err := i.checkPending(); err != nil {
		return nil, err
	}
	switch in.Op {
	case compile.OpNop:
		return List{}, nil
	case compile.OpSimple:
		return i.execSimple(ctx, in, env)
	case compile.OpGroup, compile.OpSeq:
		return i.execSeq(ctx, in.Seq, env)
	case compile.OpAssign:
		return i.execAssign(ctx, in, env)
	case compile.OpLet:
		return i.execLet(ctx, in, env)
	case compile.OpLocal:
		return i.execLocal(ctx, in, env)
	case compile.OpFor:
		return i.execFor(ctx, in, env)
	case compile.OpMatch:
		return i.execMatch(ctx, in, env)
	case compile.OpMatchExtract:
		return i.execMatchExtract(ctx, in, env)
	case compile.OpNot:
		res, err := i.execBody(ctx.NonTail(), &in.Body, env)
		if err != nil {
			return nil, err
		}
		return Bool(!res.True()), nil
	default:
		return nil, ErrorExc("internal: unknown opcode")
	}
}

func (i *Interp) execSimple(ctx *Ctx, in *compile.Instr, env *Binding) (List, error) {
	// Pre-resolved primitive head: $&name args… dispatches through the
	// flat primitive table without building the head term.
	if in.HeadPrim >= 0 {
		name := in.Words.Const[0].Prim
		fn := i.primByIdx(in.HeadPrim, name)
		if fn == nil {
			return nil, ErrorExc("$&" + name + ": unknown primitive")
		}
		return fn(i, ctx, i.constList(in.Words.Const)[1:])
	}
	terms, err := i.execWords(ctx, &in.Words, env)
	if err != nil {
		return nil, err
	}
	if len(terms) == 0 {
		return List{}, nil
	}
	return i.applyTerm(ctx, env, terms[0], terms[1:])
}

// primByIdx resolves an interned primitive index through the flat table,
// falling back to the name map for primitives registered after this
// interpreter's table was last grown.
func (i *Interp) primByIdx(idx int, name string) PrimFunc {
	if t := *i.primTab; idx < len(t) && t[idx] != nil {
		return t[idx]
	}
	return i.prims[name]
}

// constList materializes a constant word list.  The elements are exact
// (compile proved the list environment- and filesystem-independent); the
// list is freshly allocated with no spare capacity so callers that
// append never write into a shared backing array.
func (i *Interp) constList(consts []compile.ConstTerm) List {
	i.Alloc.list()
	i.Alloc.term(len(consts))
	out := make(List, len(consts))
	for k := range consts {
		c := &consts[k]
		if c.Prim != "" {
			out[k] = Term{Prim: c.Prim}
		} else {
			out[k] = Term{Str: c.Str}
		}
	}
	return out
}

func (i *Interp) execAssign(ctx *Ctx, in *compile.Instr, env *Binding) (List, error) {
	name, err := i.execWordString(ctx, in.Name, env)
	if err != nil {
		return nil, err
	}
	values, err := i.execWords(ctx, &in.Values, env)
	if err != nil {
		return nil, err
	}
	if values == nil {
		values = List{}
	}
	if err := i.assignVar(ctx.NonTail(), env, name, values); err != nil {
		return nil, err
	}
	return True(), nil
}

func (i *Interp) execLet(ctx *Ctx, in *compile.Instr, env *Binding) (List, error) {
	inner := env
	for k := range in.Bindings {
		b := &in.Bindings[k]
		name, err := i.execWordString(ctx, b.Name, env)
		if err != nil {
			return nil, err
		}
		values, err := i.execWordsCtx(ctx.NonTail(), &b.Values, inner)
		if err != nil {
			return nil, err
		}
		i.Alloc.binding(1)
		inner = &Binding{Name: name, Value: values, Next: inner}
	}
	return i.execBody(ctx, &in.Body, inner)
}

func (i *Interp) execLocal(ctx *Ctx, in *compile.Instr, env *Binding) (List, error) {
	type saved struct {
		name    string
		value   List
		defined bool
	}
	nt := ctx.NonTail()
	var saves []saved
	restore := func() {
		// Restore in reverse; settors run so aliased pairs (path/PATH)
		// stay consistent after the dynamic extent ends.
		for k := len(saves) - 1; k >= 0; k-- {
			s := saves[k]
			if !s.defined {
				i.SetVarRaw(s.name, nil)
				continue
			}
			if err := i.SetVar(nt, s.name, s.value); err != nil {
				i.SetVarRaw(s.name, s.value)
			}
		}
	}
	for k := range in.Bindings {
		b := &in.Bindings[k]
		name, err := i.execWordString(ctx, b.Name, env)
		if err != nil {
			restore()
			return nil, err
		}
		values, err := i.execWordsCtx(nt, &b.Values, env)
		if err != nil {
			restore()
			return nil, err
		}
		if values == nil {
			values = List{}
		}
		oldVal := i.Var(name) // forces lazy decode so the restore is faithful
		_, defined := i.vars[name]
		saves = append(saves, saved{name: name, value: oldVal, defined: defined})
		if err := i.SetVar(nt, name, values); err != nil {
			restore()
			return nil, err
		}
	}
	res, err := i.execBody(nt, &in.Body, env)
	restore()
	return res, err
}

func (i *Interp) execFor(ctx *Ctx, in *compile.Instr, env *Binding) (List, error) {
	nt := ctx.NonTail()
	names := make([]string, len(in.Bindings))
	values := make([]List, len(in.Bindings))
	n := 0
	for k := range in.Bindings {
		b := &in.Bindings[k]
		name, err := i.execWordString(ctx, b.Name, env)
		if err != nil {
			return nil, err
		}
		v, err := i.execWordsCtx(nt, &b.Values, env)
		if err != nil {
			return nil, err
		}
		names[k], values[k] = name, v
		if len(v) > n {
			n = len(v)
		}
	}
	result := True()
	for iter := 0; iter < n; iter++ {
		inner := env
		for k := range names {
			var v List
			if iter < len(values[k]) {
				v = values[k][iter : iter+1]
			}
			i.Alloc.binding(1)
			inner = &Binding{Name: names[k], Value: v, Next: inner}
		}
		res, err := i.execBody(nt, &in.Body, inner)
		if err != nil {
			if e := AsException(err); e != nil && e.Name() == "break" {
				if len(e.Args) > 1 {
					return e.Args[1:], nil
				}
				return result, nil
			}
			return nil, err
		}
		result = res
	}
	return result, nil
}

func (i *Interp) execMatch(ctx *Ctx, in *compile.Instr, env *Binding) (List, error) {
	subj, err := i.execWordTerms(ctx, in.Subject, env)
	if err != nil {
		return nil, err
	}
	pats, err := i.execPats(ctx, &in.Pats, env)
	if err != nil {
		return nil, err
	}
	// With no patterns, match succeeds only for an empty subject.
	if len(pats) == 0 {
		return Bool(len(subj) == 0), nil
	}
	for _, s := range subj {
		str := s.String()
		for _, p := range pats {
			if p.Match(str) {
				return True(), nil
			}
		}
	}
	return False(), nil
}

func (i *Interp) execMatchExtract(ctx *Ctx, in *compile.Instr, env *Binding) (List, error) {
	subj, err := i.execWordTerms(ctx, in.Subject, env)
	if err != nil {
		return nil, err
	}
	pats, err := i.execPats(ctx, &in.Pats, env)
	if err != nil {
		return nil, err
	}
	for _, s := range subj {
		str := s.String()
		for _, p := range pats {
			if caps, ok := p.MatchCapture(str); ok {
				return StrList(caps...), nil
			}
		}
	}
	return False(), nil
}

func (i *Interp) execPats(ctx *Ctx, cp *compile.Pats, env *Binding) ([]glob.Pattern, error) {
	if cp.Static != nil {
		return cp.Static, nil
	}
	var pats []glob.Pattern
	for _, pw := range cp.Words {
		ps, err := i.execPatterns(ctx, pw, env)
		if err != nil {
			return nil, err
		}
		pats = append(pats, ps...)
	}
	return pats, nil
}

// ---- word evaluation ----

// execWords evaluates a compiled word list to a term list, splicing list
// values and performing filename expansion on unquoted wildcards —
// EvalWords over the compiled form.
func (i *Interp) execWords(ctx *Ctx, wl *compile.WordList, env *Binding) (List, error) {
	if wl.Const != nil {
		return i.constList(wl.Const), nil
	}
	i.Alloc.list()
	var out List
	var err error
	for _, w := range wl.Words {
		out, err = i.appendWordTerms(ctx, out, w, env)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// execWordsCtx is execWords for binding values (already non-tail ctx).
func (i *Interp) execWordsCtx(ctx *Ctx, wl *compile.WordList, env *Binding) (List, error) {
	return i.execWords(ctx, wl, env)
}

// execWordTerms evaluates one compiled word to terms (EvalWords over a
// single word: match subjects, subscript words).
func (i *Interp) execWordTerms(ctx *Ctx, w *compile.Word, env *Binding) (List, error) {
	i.Alloc.list()
	return i.appendWordTerms(ctx, nil, w, env)
}

// appendWordTerms appends one word's terms to out, with the static and
// lone-$var fast paths.
func (i *Interp) appendWordTerms(ctx *Ctx, out List, w *compile.Word, env *Binding) (List, error) {
	if w.StaticSet {
		return i.appendStatic(out, w.Static), nil
	}
	if w.LoneVar {
		// $name alone in a word: the value splices in unchanged (string
		// terms stay literal — variable values are not re-globbed — and
		// closure/primitive terms are preserved), which is exactly what
		// piece conversion does, minus the pieces.
		value := lookupVar(i, env, w.Segs[0].NameLit)
		i.Alloc.term(len(value))
		return append(out, value...), nil
	}
	pieces, err := i.execWordPieces(ctx, w, env)
	if err != nil {
		return nil, err
	}
	for _, p := range pieces {
		if p.term != nil {
			out = append(out, *p.term)
			i.Alloc.term(1)
			continue
		}
		if p.pat.HasWild() {
			if matches := glob.Expand(p.pat, i.dir); matches != nil {
				for _, m := range matches {
					out = append(out, Term{Str: m})
					i.Alloc.term(1)
				}
				continue
			}
		}
		i.Alloc.term(1)
		i.Alloc.str(len(p.pat.String()))
		out = append(out, Term{Str: p.pat.String()})
	}
	return out, nil
}

// appendStatic appends pre-evaluated pieces, expanding wildcards against
// the interpreter's current directory.
func (i *Interp) appendStatic(out List, static []compile.StaticPiece) List {
	for k := range static {
		sp := &static[k]
		switch {
		case sp.Prim != "":
			i.Alloc.term(1)
			out = append(out, Term{Prim: sp.Prim})
		case sp.Wild:
			if matches := glob.Expand(sp.Pat, i.dir); matches != nil {
				for _, m := range matches {
					out = append(out, Term{Str: m})
					i.Alloc.term(1)
				}
				continue
			}
			i.Alloc.term(1)
			out = append(out, Term{Str: sp.Pat.String()})
		default:
			i.Alloc.term(1)
			i.Alloc.str(len(sp.Pat.String()))
			out = append(out, Term{Str: sp.Pat.String()})
		}
	}
	return out
}

// execPatterns evaluates a compiled word for use as a match pattern: no
// filename expansion; quoting data is preserved so quoted wildcards stay
// literal.
func (i *Interp) execPatterns(ctx *Ctx, w *compile.Word, env *Binding) ([]glob.Pattern, error) {
	if w.StaticSet {
		out := make([]glob.Pattern, len(w.Static))
		for k := range w.Static {
			out[k] = staticPiecePattern(&w.Static[k])
		}
		return out, nil
	}
	if w.LoneVar {
		value := lookupVar(i, env, w.Segs[0].NameLit)
		out := make([]glob.Pattern, len(value))
		for k := range value {
			// Variable values match literally (closures unparse).
			out[k] = glob.NewLiteral(value[k].String())
		}
		return out, nil
	}
	pieces, err := i.execWordPieces(ctx, w, env)
	if err != nil {
		return nil, err
	}
	out := make([]glob.Pattern, len(pieces))
	for k, p := range pieces {
		out[k] = p.toPattern()
	}
	return out, nil
}

func staticPiecePattern(sp *compile.StaticPiece) glob.Pattern {
	if sp.Prim != "" {
		return glob.NewLiteral("$&" + sp.Prim)
	}
	return sp.Pat
}

// execWordString evaluates a compiled word that must produce exactly one
// string (variable names, binding targets).
func (i *Interp) execWordString(ctx *Ctx, w *compile.Word, env *Binding) (string, error) {
	if w.LitNameSet {
		return w.LitName, nil
	}
	if w.StaticSet {
		// Static but not a single plain string: constant failure.
		return "", errAt(w.Pos, "expected a single name")
	}
	pieces, err := i.execWordPieces(ctx, w, env)
	if err != nil {
		return "", err
	}
	if len(pieces) != 1 || pieces[0].term != nil {
		return "", errAt(w.Pos, "expected a single name")
	}
	return pieces[0].pat.String(), nil
}

func (i *Interp) execWordPieces(ctx *Ctx, w *compile.Word, env *Binding) ([]piece, error) {
	if w.StaticSet {
		out := make([]piece, len(w.Static))
		for k := range w.Static {
			sp := &w.Static[k]
			if sp.Prim != "" {
				out[k] = piece{term: &Term{Prim: sp.Prim}}
			} else {
				out[k] = strPiece(sp.Pat)
			}
		}
		return out, nil
	}
	var acc []piece
	for k := range w.Segs {
		ps, err := i.execSeg(ctx, &w.Segs[k], env)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			acc = ps
			continue
		}
		acc, err = concatPieces(w.Pos, acc, ps)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func (i *Interp) execSeg(ctx *Ctx, s *compile.Seg, env *Binding) ([]piece, error) {
	switch s.Kind {
	case compile.SegLit:
		return []piece{strPiece(s.Pat)}, nil
	case compile.SegVar:
		return i.execVarSeg(ctx, s, env)
	case compile.SegPrim:
		return []piece{{term: &Term{Prim: s.Prim}}}, nil
	case compile.SegLambda:
		i.Alloc.closure()
		cl := &Closure{
			Params:    s.Lambda.Params,
			HasParams: s.Lambda.HasParams,
			Body:      s.Lambda.Body,
			Env:       env,
		}
		return []piece{{term: &Term{Closure: cl}}}, nil
	case compile.SegCmdSub:
		i.Alloc.closure()
		cl := &Closure{Body: s.Block, Env: env}
		res, err := i.CallHook(ctx.NonTail(), "%backquote", List{Term{Closure: cl}})
		if err != nil {
			return nil, err
		}
		// Substituted command output is not re-globbed (rc semantics).
		return termsToPieces(res, true), nil
	case compile.SegRetSub:
		res, err := i.EvalBlock(ctx.NonTail(), s.Block, env)
		if err != nil {
			return nil, err
		}
		return termsToPieces(res, true), nil
	case compile.SegList:
		var out []piece
		for _, w := range s.Words {
			ps, err := i.execWordPieces(ctx, w, env)
			if err != nil {
				return nil, err
			}
			out = append(out, ps...)
		}
		return out, nil
	default:
		return nil, ErrorExc("unknown word part")
	}
}

func (i *Interp) execVarSeg(ctx *Ctx, s *compile.Seg, env *Binding) ([]piece, error) {
	name := s.NameLit
	if s.Name != nil {
		var err error
		name, err = i.execWordString(ctx, s.Name, env)
		if err != nil {
			return nil, err
		}
	}
	value := lookupVar(i, env, name)
	if s.Double {
		// $$x: the value of the variable(s) named by $x.
		var indirect List
		for _, t := range value {
			indirect = append(indirect, lookupVar(i, env, t.String())...)
		}
		value = indirect
	}
	if s.Count {
		return []piece{strPiece(glob.NewLiteral(strconv.Itoa(len(value))))}, nil
	}
	if len(s.Index) > 0 {
		var sel List
		for _, iw := range s.Index {
			idxs, err := i.execWordTerms(ctx, iw, env)
			if err != nil {
				return nil, err
			}
			for _, it := range idxs {
				n, err := strconv.Atoi(it.String())
				if err != nil {
					return nil, errAt(s.Pos, "bad subscript: "+it.String())
				}
				if n >= 1 && n <= len(value) {
					sel = append(sel, value[n-1])
				}
			}
		}
		value = sel
	}
	if s.Flat && len(value) > 0 {
		// $^name: the whole value as one space-joined word.
		value = List{Term{Str: value.Flatten(" ")}}
	}
	// Variable values are not re-globbed (the rc rule: substitution does
	// not re-scan for metacharacters).
	return termsToPieces(value, true), nil
}
