package glob

import "testing"

// FuzzMatch: matching terminates without panics on arbitrary patterns,
// and a literal pattern matches exactly itself.
func FuzzMatch(f *testing.F) {
	f.Add("a*b?c[d-f]", "axbycd")
	f.Add("[", "[")
	f.Add("[~]]", "]")
	f.Add("***", "")
	f.Fuzz(func(t *testing.T, pat, s string) {
		p := New(pat)
		got := p.Match(s)
		if p.HasWild() {
			if want := matchHere(p, 0, s, 0); got != want {
				t.Fatalf("compiled Match(%q, %q) = %v, reference = %v", pat, s, got, want)
			}
		}
		lit := NewLiteral(pat)
		if !lit.Match(pat) {
			t.Fatalf("literal %q does not match itself", pat)
		}
		if pat != s && lit.Match(s) && pat != s {
			t.Fatalf("literal %q matched %q", pat, s)
		}
	})
}
