// Package glob implements es wildcard patterns: '*' matches any sequence,
// '?' matches one character, and '[...]' matches a character class ('~' or
// '^' directly after '[' negates; ']' first in a class is literal; 'a-z'
// ranges are supported).
//
// The same machinery backs both the ~ match command and filename
// expansion.  Because quoting protects characters from wildcard meaning, a
// Pattern carries a per-byte literal mask: 'a*' is a literal star, a* is a
// wildcard.
package glob

import (
	"os"
	"path/filepath"
	"sort"
	"strings"

	"es/internal/cache"
)

// Pattern is a wildcard pattern with a per-byte literal mask.
type Pattern struct {
	text string
	lit  []bool // lit[i] → text[i] has no wildcard meaning; nil → all magic
}

// New returns a pattern in which every character may be magic.
func New(text string) Pattern {
	return Pattern{text: text}
}

// NewLiteral returns a pattern that matches text exactly.
func NewLiteral(text string) Pattern {
	lit := make([]bool, len(text))
	for i := range lit {
		lit[i] = true
	}
	return Pattern{text: text, lit: lit}
}

// Concat joins two patterns (used for word concatenation: a^'*').
func Concat(a, b Pattern) Pattern {
	if a.lit == nil && b.lit == nil {
		return Pattern{text: a.text + b.text}
	}
	lit := make([]bool, 0, len(a.text)+len(b.text))
	lit = append(lit, a.mask()...)
	lit = append(lit, b.mask()...)
	return Pattern{text: a.text + b.text, lit: lit}
}

func (p Pattern) mask() []bool {
	if p.lit != nil {
		return p.lit
	}
	return make([]bool, len(p.text)) // all magic
}

// String returns the pattern text (losing the literal mask).
func (p Pattern) String() string { return p.text }

func (p Pattern) isMagic(i int) bool {
	return p.lit == nil || !p.lit[i]
}

// HasWild reports whether the pattern contains any unquoted wildcard.
func (p Pattern) HasWild() bool {
	for i := 0; i < len(p.text); i++ {
		if !p.isMagic(i) {
			continue
		}
		switch p.text[i] {
		case '*', '?', '[':
			return true
		}
	}
	return false
}

// Match reports whether s matches the entire pattern.  Wildcard patterns
// are compiled once and memoized (see compiledFor): patterns re-evaluated
// in loops — the common shape of ~ matches and filename expansion — skip
// re-scanning their classes and literal runs on every subject.
func (p Pattern) Match(s string) bool {
	if !p.HasWild() {
		// No unquoted wildcard: every byte must match literally.
		return p.text == s
	}
	return compiledFor(p).match(0, s, 0)
}

// matchHere matches p[pi:] against s[si:] with backtracking on '*'.  It is
// the reference implementation: Match runs the compiled form, and the
// tests check the two agree.
func matchHere(p Pattern, pi int, s string, si int) bool {
	for pi < len(p.text) {
		c := p.text[pi]
		magic := p.isMagic(pi)
		switch {
		case magic && c == '*':
			// Collapse consecutive stars, then try all splits.
			for pi < len(p.text) && p.isMagic(pi) && p.text[pi] == '*' {
				pi++
			}
			if pi == len(p.text) {
				return true
			}
			for k := si; k <= len(s); k++ {
				if matchHere(p, pi, s, k) {
					return true
				}
			}
			return false
		case magic && c == '?':
			if si >= len(s) {
				return false
			}
			si++
			pi++
		case magic && c == '[':
			ok, next := matchClass(p, pi, s, si)
			if !ok {
				return false
			}
			si++
			pi = next
		default:
			if si >= len(s) || s[si] != c {
				return false
			}
			si++
			pi++
		}
	}
	return si == len(s)
}

// matchClass matches the class starting at p.text[pi] == '[' against
// s[si]; it returns whether it matched and the index just past ']'.
// A malformed class (no closing bracket) matches a literal '['.
func matchClass(p Pattern, pi int, s string, si int) (bool, int) {
	end := classEnd(p, pi)
	if end < 0 {
		// No closing bracket: treat '[' literally.
		if si < len(s) && s[si] == '[' {
			return true, pi + 1
		}
		return false, pi + 1
	}
	if si >= len(s) {
		return false, end + 1
	}
	c := s[si]
	i := pi + 1
	negate := false
	if i < end && (p.text[i] == '~' || p.text[i] == '^') {
		negate = true
		i++
	}
	matched := false
	first := true
	for i < end {
		lo := p.text[i]
		if lo == ']' && !first {
			break
		}
		first = false
		if i+2 < end && p.text[i+1] == '-' {
			hi := p.text[i+2]
			if c >= lo && c <= hi {
				matched = true
			}
			i += 3
			continue
		}
		if c == lo {
			matched = true
		}
		i++
	}
	return matched != negate, end + 1
}

// classEnd finds the index of the ']' closing the class that starts at
// p.text[pi] == '['; -1 if unterminated.  A ']' immediately after '[' (or
// after the negation marker) is a literal member.
func classEnd(p Pattern, pi int) int {
	i := pi + 1
	if i < len(p.text) && (p.text[i] == '~' || p.text[i] == '^') {
		i++
	}
	if i < len(p.text) && p.text[i] == ']' {
		i++
	}
	for i < len(p.text) {
		if p.text[i] == ']' {
			return i
		}
		i++
	}
	return -1
}

// Expand performs filename expansion of a (possibly /-separated) pattern
// relative to dir (dir is used for relative patterns; "" means the process
// working directory).  Wildcards never match '/', and '*' and '?' do not
// match a leading dot, per shell convention.  The result is sorted; if
// nothing matches, Expand returns nil.
func Expand(p Pattern, dir string) []string {
	if !p.HasWild() {
		return nil
	}
	segs, masks := splitPath(p)
	var prefix string
	var roots []string
	if strings.HasPrefix(p.text, "/") {
		prefix = "/"
		roots = []string{"/"}
	} else {
		if dir == "" {
			dir = "."
		}
		roots = []string{dir}
	}
	results := roots
	names := make([]string, 0)
	for i, seg := range segs {
		if seg == "" {
			continue
		}
		segPat := Pattern{text: seg, lit: masks[i]}
		names = names[:0]
		if !segPat.HasWild() {
			// Fixed component: append and keep only existing paths.
			for _, r := range results {
				cand := joinPath(r, seg)
				if _, err := os.Lstat(cand); err == nil {
					names = append(names, cand)
				}
			}
		} else {
			for _, r := range results {
				entries, err := os.ReadDir(r)
				if err != nil {
					continue
				}
				for _, e := range entries {
					name := e.Name()
					if strings.HasPrefix(name, ".") && !strings.HasPrefix(segPat.text, ".") {
						continue
					}
					if segPat.Match(name) {
						names = append(names, joinPath(r, name))
					}
				}
			}
		}
		results = append([]string(nil), names...)
		if len(results) == 0 {
			return nil
		}
	}
	// Strip the artificial "./" or dir prefix for relative patterns.
	out := make([]string, 0, len(results))
	for _, r := range results {
		if prefix == "" {
			r = strings.TrimPrefix(r, roots[0]+string(filepath.Separator))
		}
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + string(filepath.Separator) + name
}

// splitPath splits a pattern on literal or magic '/' into segments with
// their masks.
func splitPath(p Pattern) ([]string, [][]bool) {
	mask := p.mask()
	var segs []string
	var masks [][]bool
	start := 0
	for i := 0; i <= len(p.text); i++ {
		if i == len(p.text) || p.text[i] == '/' {
			segs = append(segs, p.text[start:i])
			masks = append(masks, mask[start:i])
			start = i + 1
		}
	}
	return segs, masks
}

// ---- compiled patterns ----
//
// A compiled pattern is a flat op sequence: literal runs are compared with
// one string comparison, character classes become 256-bit membership sets
// built once instead of being re-scanned per subject byte, and consecutive
// stars are collapsed at compile time.  Compilation results are memoized
// in a process-wide cache keyed by pattern text (plus the literal mask for
// the rare mixed patterns produced by concatenation), so a pattern matched
// in a loop compiles exactly once.

type opKind uint8

const (
	opLit   opKind = iota // compare a literal byte run
	opStar                // match any sequence
	opQuest               // match any single byte
	opClass               // match one byte against a class set
)

type globOp struct {
	kind  opKind
	lit   string
	class *classSet
}

// classSet is a 256-bit membership bitmap with optional negation.
type classSet struct {
	bits   [32]byte
	negate bool
}

func (c *classSet) add(b byte) { c.bits[b>>3] |= 1 << (b & 7) }

func (c *classSet) matches(b byte) bool {
	in := c.bits[b>>3]&(1<<(b&7)) != 0
	return in != c.negate
}

type compiled struct {
	ops []globOp
}

// globCache memoizes compiled wildcard patterns.  Compiled forms are pure
// functions of the pattern, so entries never go stale; the cache is
// bounded and shared by every interpreter in the process.
var globCache = cache.NewMap[*compiled]("glob", 512)

// CacheStats snapshots the compiled-pattern cache counters.
func CacheStats() cache.Stats { return globCache.Stats() }

// FlushCache drops every compiled pattern (the $&recache escape hatch).
func FlushCache() { globCache.Flush() }

// compiledFor returns the compiled form of p, consulting the cache.
// Fully-magic patterns (the overwhelmingly common case: any unquoted
// wildcard word) are keyed by their text alone; patterns with a mixed
// literal mask — produced only by concatenation like $x^'*' — are
// compiled uncached, since a collision-proof key would cost more than the
// compile.
func compiledFor(p Pattern) *compiled {
	if !p.allMagic() {
		return compilePattern(p)
	}
	if c, ok := globCache.Get(p.text); ok {
		return c
	}
	c := compilePattern(p)
	globCache.Put(p.text, c)
	return c
}

// allMagic reports whether no byte of the pattern is mask-protected.
func (p Pattern) allMagic() bool {
	if p.lit == nil {
		return true
	}
	for _, l := range p.lit {
		if l {
			return false
		}
	}
	return true
}

// compilePattern translates a pattern into ops, mirroring matchHere's
// semantics exactly (including the malformed-class rule: an unterminated
// '[' is a literal).
func compilePattern(p Pattern) *compiled {
	var ops []globOp
	var lit []byte
	flushLit := func() {
		if len(lit) > 0 {
			ops = append(ops, globOp{kind: opLit, lit: string(lit)})
			lit = lit[:0]
		}
	}
	for pi := 0; pi < len(p.text); pi++ {
		c := p.text[pi]
		if !p.isMagic(pi) {
			lit = append(lit, c)
			continue
		}
		switch c {
		case '*':
			flushLit()
			if len(ops) == 0 || ops[len(ops)-1].kind != opStar {
				ops = append(ops, globOp{kind: opStar})
			}
		case '?':
			flushLit()
			ops = append(ops, globOp{kind: opQuest})
		case '[':
			end := classEnd(p, pi)
			if end < 0 {
				lit = append(lit, '[')
				continue
			}
			flushLit()
			ops = append(ops, globOp{kind: opClass, class: buildClass(p, pi, end)})
			pi = end
		default:
			lit = append(lit, c)
		}
	}
	flushLit()
	return &compiled{ops: ops}
}

// buildClass materializes the class starting at p.text[pi] == '[' (closing
// at end) as a bitmap, with the same member scan as matchClass.
func buildClass(p Pattern, pi, end int) *classSet {
	cs := &classSet{}
	i := pi + 1
	if i < end && (p.text[i] == '~' || p.text[i] == '^') {
		cs.negate = true
		i++
	}
	first := true
	for i < end {
		lo := p.text[i]
		if lo == ']' && !first {
			break
		}
		first = false
		if i+2 < end && p.text[i+1] == '-' {
			for b := int(lo); b <= int(p.text[i+2]); b++ {
				cs.add(byte(b))
			}
			i += 3
			continue
		}
		cs.add(lo)
		i++
	}
	return cs
}

// match runs ops[oi:] against s[si:], backtracking on stars.
func (cp *compiled) match(oi int, s string, si int) bool {
	ops := cp.ops
	for oi < len(ops) {
		op := &ops[oi]
		switch op.kind {
		case opLit:
			if len(s)-si < len(op.lit) || s[si:si+len(op.lit)] != op.lit {
				return false
			}
			si += len(op.lit)
		case opQuest:
			if si >= len(s) {
				return false
			}
			si++
		case opClass:
			if si >= len(s) || !op.class.matches(s[si]) {
				return false
			}
			si++
		case opStar:
			if oi == len(ops)-1 {
				return true
			}
			for k := si; k <= len(s); k++ {
				if cp.match(oi+1, s, k) {
					return true
				}
			}
			return false
		}
		oi++
	}
	return si == len(s)
}

// MatchCapture matches s against the entire pattern and returns the text
// each unquoted wildcard consumed, in pattern order ('*' greedy).  ok is
// false if s does not match.  This backs the ~~ extraction command.
func (p Pattern) MatchCapture(s string) (captures []string, ok bool) {
	return captureHere(p, 0, s, 0)
}

func captureHere(p Pattern, pi int, s string, si int) ([]string, bool) {
	if pi >= len(p.text) {
		if si == len(s) {
			return nil, true
		}
		return nil, false
	}
	c := p.text[pi]
	magic := p.isMagic(pi)
	switch {
	case magic && c == '*':
		// Greedy: prefer the longest capture.
		for k := len(s); k >= si; k-- {
			if rest, ok := captureHere(p, pi+1, s, k); ok {
				return append([]string{s[si:k]}, rest...), true
			}
		}
		return nil, false
	case magic && c == '?':
		if si >= len(s) {
			return nil, false
		}
		if rest, ok := captureHere(p, pi+1, s, si+1); ok {
			return append([]string{s[si : si+1]}, rest...), true
		}
		return nil, false
	case magic && c == '[':
		matched, next := matchClass(p, pi, s, si)
		if !matched {
			return nil, false
		}
		if rest, ok := captureHere(p, next, s, si+1); ok {
			return append([]string{s[si : si+1]}, rest...), true
		}
		return nil, false
	default:
		if si >= len(s) || s[si] != c {
			return nil, false
		}
		return captureHere(p, pi+1, s, si+1)
	}
}
