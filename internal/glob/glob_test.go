package glob

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatch(t *testing.T) {
	tests := []struct {
		pat, s string
		want   bool
	}{
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"*", "", true},
		{"*", "anything", true},
		{"a*", "a", true},
		{"a*", "abc", true},
		{"a*", "ba", false},
		{"*c", "abc", true},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abd", false},
		{"a**b", "ab", true},
		{"?", "x", true},
		{"?", "", false},
		{"?", "xy", false},
		{"a?c", "abc", true},
		{"Ex*", "Ex123", true},
		{"Ex*", "ex123", false},
		{"[abc]", "b", true},
		{"[abc]", "d", false},
		{"[a-z]", "q", true},
		{"[a-z]", "Q", false},
		{"[~a-z]", "Q", true},
		{"[~a-z]", "q", false},
		{"[^a-z]", "0", true},
		{"[]]", "]", true},
		{"[]]", "x", false},
		{"[~]]", "x", true},
		{"[~]]", "]", false},
		{"a[0-9]*", "a7xyz", true},
		{"a[0-9]*", "ax", false},
		{"*.go", "main.go", true},
		{"*.go", "main.c", false},
		{"/*", "/tmp", true},
		{"eof", "eof", true},
		{"[", "[", true},
		{"[", "x", false},
		{"foo[", "foo[", true},
	}
	for _, tt := range tests {
		if got := New(tt.pat).Match(tt.s); got != tt.want {
			t.Errorf("Match(%q, %q) = %v, want %v", tt.pat, tt.s, got, tt.want)
		}
	}
}

func TestLiteralPattern(t *testing.T) {
	// A quoted '*' matches only a literal star.
	p := NewLiteral("a*")
	if p.Match("abc") {
		t.Error("literal a* matched abc")
	}
	if !p.Match("a*") {
		t.Error("literal a* did not match a*")
	}
	if p.HasWild() {
		t.Error("literal pattern reports wildcards")
	}
}

func TestConcat(t *testing.T) {
	// a^'*'  → literal star after wild a
	p := Concat(New("?"), NewLiteral("*"))
	if !p.Match("x*") {
		t.Error("?'*' should match x*")
	}
	if p.Match("xy") {
		t.Error("?'*' should not match xy")
	}
	p2 := Concat(NewLiteral("x"), New("*"))
	if !p2.Match("xanything") || !p2.HasWild() {
		t.Error("x^* broken")
	}
}

func TestHasWild(t *testing.T) {
	for pat, want := range map[string]bool{
		"abc": false, "a*c": true, "a?": true, "a[b]": true, "plain/path": false,
	} {
		if got := New(pat).HasWild(); got != want {
			t.Errorf("HasWild(%q) = %v, want %v", pat, got, want)
		}
	}
}

// Compare against path.Match on the subset of syntax the two share.
func TestMatchAgainstReference(t *testing.T) {
	alphabet := []byte{'a', 'b', 'c', '*', '?'}
	f := func(patIdx, sIdx []uint8) bool {
		var pat, s strings.Builder
		for _, i := range patIdx {
			if pat.Len() > 6 {
				break
			}
			pat.WriteByte(alphabet[int(i)%len(alphabet)])
		}
		for _, i := range sIdx {
			if s.Len() > 8 {
				break
			}
			s.WriteByte(alphabet[int(i)%3]) // letters only
		}
		want, err := filepath.Match(pat.String(), s.String())
		if err != nil {
			return true
		}
		return New(pat.String()).Match(s.String()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Every string matches itself as a literal pattern.
func TestLiteralSelfMatchProperty(t *testing.T) {
	f := func(s string) bool {
		return NewLiteral(s).Match(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpand(t *testing.T) {
	dir := t.TempDir()
	mk := func(names ...string) {
		for _, n := range names {
			full := filepath.Join(dir, n)
			if strings.HasSuffix(n, "/") {
				if err := os.MkdirAll(full, 0o755); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(full, nil, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	mk("Ex1", "Ex2", "other", ".hidden", "sub/", "sub/a.go", "sub/b.go", "sub/c.txt")

	tests := []struct {
		pat  string
		want []string
	}{
		{"Ex*", []string{"Ex1", "Ex2"}},
		{"*", []string{"Ex1", "Ex2", "other", "sub"}},
		{".*", []string{".hidden"}},
		{"sub/*.go", []string{"sub/a.go", "sub/b.go"}},
		{"*/*.go", []string{"sub/a.go", "sub/b.go"}},
		{"nomatch*", nil},
		{"sub/?.txt", []string{"sub/c.txt"}},
	}
	for _, tt := range tests {
		got := Expand(New(tt.pat), dir)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Expand(%q) = %v, want %v", tt.pat, got, tt.want)
		}
	}
}

func TestExpandAbsolute(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "xyz.txt"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	got := Expand(New(dir+"/xyz.*"), "")
	want := []string{filepath.Join(dir, "xyz.txt")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Expand abs = %v, want %v", got, want)
	}
}

func TestExpandNoWild(t *testing.T) {
	if got := Expand(NewLiteral("plain"), ""); got != nil {
		t.Errorf("Expand of literal = %v, want nil", got)
	}
}

func TestMatchCapture(t *testing.T) {
	tests := []struct {
		pat, s string
		want   []string
		ok     bool
	}{
		{"*.c", "main.c", []string{"main"}, true},
		{"*-*", "left-right", []string{"left", "right"}, true},
		{"a?c", "abc", []string{"b"}, true},
		{"v[0-9]", "v7", []string{"7"}, true},
		{"*", "", []string{""}, true},
		{"plain", "plain", nil, true},
		{"*.c", "main.go", nil, false},
		{"*-*", "nodash", nil, false},
		{"a*b*c", "aXbYc", []string{"X", "Y"}, true},
		// Greedy: the first star takes as much as possible.
		{"*b*", "abab", []string{"aba", ""}, true},
	}
	for _, tt := range tests {
		got, ok := New(tt.pat).MatchCapture(tt.s)
		if ok != tt.ok {
			t.Errorf("MatchCapture(%q, %q) ok = %v, want %v", tt.pat, tt.s, ok, tt.ok)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("MatchCapture(%q, %q) = %v, want %v", tt.pat, tt.s, got, tt.want)
			continue
		}
		for k := range got {
			if got[k] != tt.want[k] {
				t.Errorf("MatchCapture(%q, %q)[%d] = %q, want %q", tt.pat, tt.s, k, got[k], tt.want[k])
			}
		}
	}
}

// Captures are consistent with Match, and rejoining captures with the
// literal parts reconstructs the subject.
func TestMatchCaptureConsistencyProperty(t *testing.T) {
	alphabet := []byte{'a', 'b', '*', '?'}
	f := func(patIdx, sIdx []uint8) bool {
		var pat, s strings.Builder
		for _, i := range patIdx {
			if pat.Len() > 5 {
				break
			}
			pat.WriteByte(alphabet[int(i)%len(alphabet)])
		}
		for _, i := range sIdx {
			if s.Len() > 7 {
				break
			}
			s.WriteByte(alphabet[int(i)%2])
		}
		p := New(pat.String())
		caps, ok := p.MatchCapture(s.String())
		if ok != p.Match(s.String()) {
			return false
		}
		if !ok {
			return true
		}
		// Reconstruct: literals from the pattern, captures for wildcards.
		var rebuilt strings.Builder
		ci := 0
		for k := 0; k < pat.Len(); k++ {
			switch pat.String()[k] {
			case '*', '?':
				if ci >= len(caps) {
					return false
				}
				rebuilt.WriteString(caps[ci])
				ci++
			default:
				rebuilt.WriteByte(pat.String()[k])
			}
		}
		return rebuilt.String() == s.String() && ci == len(caps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// The compiled matcher must agree with the recursive reference
// implementation on every pattern, including classes, negation, and the
// malformed-bracket corner cases.  Patterns are drawn from an alphabet
// rich in glob metacharacters so brackets, ranges, and trailing '[' all
// come up.
func TestCompiledAgainstReference(t *testing.T) {
	alphabet := []byte{'a', 'b', 'c', '*', '?', '[', ']', '~', '^', '-'}
	f := func(patIdx, sIdx []uint8) bool {
		var pat, s strings.Builder
		for _, i := range patIdx {
			if pat.Len() > 8 {
				break
			}
			pat.WriteByte(alphabet[int(i)%len(alphabet)])
		}
		for _, i := range sIdx {
			if s.Len() > 10 {
				break
			}
			s.WriteByte(alphabet[int(i)%3]) // letters only
		}
		p := New(pat.String())
		if !p.HasWild() {
			return true // Match short-circuits to string equality
		}
		got := compileFresh(p).match(0, s.String(), 0)
		want := matchHere(p, 0, s.String(), 0)
		if got != want {
			t.Logf("pattern %q vs %q: compiled=%v reference=%v", pat.String(), s.String(), got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// compileFresh bypasses the cache so the differential test exercises
// compilation itself every time.
func compileFresh(p Pattern) *compiled {
	return compilePattern(p)
}

// Concat-produced patterns carry a wildcard mask (literal text may
// contain metacharacters that must NOT be special); the compiled path
// must honor it.
func TestCompiledHonorsMask(t *testing.T) {
	tests := []struct {
		lit, wild, s string
		want         bool
	}{
		{"a*b", "*", "a*bXX", true},   // literal star, then real star
		{"a*b", "*", "aXbYY", false},  // literal star must not match X
		{"[x]", "?", "[x]q", true},    // literal brackets stay literal
		{"[x]", "?", "xq", false},     //
		{"", "[ab]", "a", true},       // class still compiles under Concat
		{"", "[ab]", "c", false},      //
	}
	for _, tc := range tests {
		p := Concat(NewLiteral(tc.lit), New(tc.wild))
		if got := p.Match(tc.s); got != tc.want {
			t.Errorf("Concat(lit %q, %q).Match(%q) = %v, want %v", tc.lit, tc.wild, tc.s, got, tc.want)
		}
	}
}

// Repeated matching of the same all-magic pattern reuses one compiled
// form; flushing drops it.
func TestCompiledCacheCounters(t *testing.T) {
	FlushCache()
	before := CacheStats()
	p := New("*.[ch]")
	p.Match("main.c")
	p.Match("main.h")
	p.Match("main.go")
	after := CacheStats()
	if after.Misses-before.Misses != 1 {
		t.Errorf("expected exactly 1 compile miss, got %d", after.Misses-before.Misses)
	}
	if after.Hits-before.Hits != 2 {
		t.Errorf("expected 2 cache hits, got %d", after.Hits-before.Hits)
	}
	FlushCache()
	if CacheStats().Entries != 0 {
		t.Errorf("flush left %d entries", CacheStats().Entries)
	}
}

// The compiled matcher is the fast path Match actually uses; guard the
// speedup over the recursive reference on a star-heavy pattern.
func BenchmarkMatchCompiled(b *testing.B) {
	p := New("*.[ch]")
	s := "internal/glob/glob_test.c"
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		p.Match(s)
	}
}

func BenchmarkMatchReference(b *testing.B) {
	p := New("*.[ch]")
	s := "internal/glob/glob_test.c"
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		matchHere(p, 0, s, 0)
	}
}
