package es

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestEsSelfTest runs the test suite that is written in es itself
// (testdata/selftest.es): the language checking the language.
func TestEsSelfTest(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sh, errNew := New(Options{Stdout: &out, Stderr: &out})
	if errNew != nil {
		t.Fatal(errNew)
	}
	// Scratch files are created relative to the shell's directory.
	if _, err := sh.Run("cd " + t.TempDir()); err != nil {
		t.Fatal(err)
	}
	res, err := sh.RunFile(filepath.Join(wd, "testdata", "selftest.es"))
	if err != nil {
		t.Fatalf("selftest failed: %v\noutput so far:\n%s", err, out.String())
	}
	if !res.True() {
		t.Fatalf("selftest result %v\n%s", res, out.String())
	}
	if !strings.Contains(out.String(), "checks passed") {
		t.Errorf("missing summary: %q", out.String())
	}
	t.Log(strings.TrimSpace(out.String()))
}

// And through the real binary, for good measure.
func TestEsSelfTestBinary(t *testing.T) {
	bin := buildEs(t)
	wd, _ := os.Getwd()
	out, err := runCommand(t, bin, filepath.Join(wd, "testdata", "selftest.es"))
	if err != nil {
		t.Fatalf("selftest via binary: %v\n%s", err, out)
	}
	if !strings.Contains(out, "checks passed") {
		t.Errorf("missing summary: %q", out)
	}
}

func runCommand(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = t.TempDir()
	b, err := cmd.CombinedOutput()
	return string(b), err
}
