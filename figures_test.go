package es

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// pipeSpoof is the paper's Figure 1 %pipe replacement, verbatim: it times
// each element of every pipeline.
const pipeSpoof = `
let (pipe = $fn-%pipe) {
	fn %pipe first out in rest {
		if {~ $#out 0} {
			time $first
		} {
			$pipe {time $first} $out $in {%pipe $rest}
		}
	}
}`

// wordFreqPipeline is the paper's Figure 1 workload over our corpus.
const wordFreqPipeline = `cat testdata/paper.txt | tr -cs a-zA-Z0-9 '\012' | sort | uniq -c | sort -nr | sed 6q`

// TestFigure1PipeProfile reproduces Figure 1: spoofing %pipe to time
// pipeline elements.  The word-frequency output appears on stdout and one
// timing line per pipeline element appears on stderr.
func TestFigure1PipeProfile(t *testing.T) {
	sh, out, errw := newTestShell(t)
	runOut(t, sh, out, pipeSpoof)
	got := runOut(t, sh, out, wordFreqPipeline)

	// The pipeline's own output: six "count word" rows, most frequent
	// first; in our corpus as in the paper's, "the" wins.
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d rows, want 6:\n%s", len(lines), got)
	}
	firstFields := strings.Fields(lines[0])
	if len(firstFields) != 2 || firstFields[1] != "the" {
		t.Errorf("top row = %q, want count + 'the'", lines[0])
	}
	prev := 1 << 30
	for _, l := range lines {
		var n int
		var w string
		if _, err := fmt.Sscanf(l, "%d %s", &n, &w); err != nil {
			t.Fatalf("bad row %q: %v", l, err)
		}
		if n > prev {
			t.Errorf("rows not sorted by frequency: %q", got)
		}
		prev = n
	}

	// The timing lines: one per element, in the paper's
	// "2r 0.3u 0.2s\tcmd" format.
	timing := regexp.MustCompile(`^\d+r \d+\.\d+u \d+\.\d+s\t`)
	tlines := strings.Split(strings.TrimRight(errw.String(), "\n"), "\n")
	if len(tlines) != 6 {
		t.Fatalf("got %d timing lines, want 6:\n%s", len(tlines), errw.String())
	}
	wantCmds := []string{
		"cat testdata/paper.txt",
		"tr -cs a-zA-Z0-9 '\\012'",
		"sort",
		"uniq -c",
		"sort -nr",
		"sed 6q",
	}
	var seen []string
	for _, l := range tlines {
		if !timing.MatchString(l) {
			t.Errorf("timing line %q does not match the paper's format", l)
		}
		parts := strings.SplitN(l, "\t", 2)
		if len(parts) == 2 {
			seen = append(seen, parts[1])
		}
	}
	// Elements run concurrently, so timing lines may interleave in any
	// order; every element must be present exactly once.
	for _, want := range wantCmds {
		n := 0
		for _, s := range seen {
			if s == want {
				n++
			}
		}
		if n != 1 {
			t.Errorf("element %q timed %d times (lines: %v)", want, n, seen)
		}
	}
}

// pathCacheSpoof is Figure 2 verbatim: %pathsearch caches successful
// lookups in fn- variables, and recache drops the cache.
const pathCacheSpoof = `
let (search = $fn-%pathsearch) {
	fn %pathsearch prog {
		let (file = <>{$search $prog}) {
			if {~ $#file 1 && ~ $file /*} {
				path-cache = $path-cache $prog
				fn-$prog = $file
			}
			return $file
		}
	}
}
fn recache {
	for (i = $path-cache)
		fn-$i =
	path-cache =
}`

// TestFigure2PathCache reproduces Figure 2: path caching by spoofing
// %pathsearch.
func TestFigure2PathCache(t *testing.T) {
	sh, out, _ := newTestShell(t)

	// A synthetic $path: several empty directories, the target in the
	// last one.
	root := t.TempDir()
	var dirs []string
	for k := 0; k < 8; k++ {
		d := filepath.Join(root, fmt.Sprintf("bin%d", k))
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, d)
	}
	target := filepath.Join(dirs[len(dirs)-1], "mytool")
	script := "#!" + selfExe(t) + "\n"
	if err := os.WriteFile(target, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := sh.Set("path", dirs...); err != nil {
		t.Fatal(err)
	}

	runOut(t, sh, out, pathCacheSpoof)

	// First lookup goes through the spoof and populates the cache.
	got := runOut(t, sh, out, "echo <>{%pathsearch mytool}")
	if strings.TrimSpace(got) != target {
		t.Fatalf("pathsearch = %q, want %q", got, target)
	}
	if cache := sh.Get("path-cache"); len(cache) != 1 || cache[0].String() != "mytool" {
		t.Errorf("path-cache = %v", cache)
	}
	// The cache is an ordinary fn- variable: invoking mytool now goes
	// straight to the file without searching.
	if fn := sh.Get("fn-mytool"); len(fn) != 1 || fn[0].String() != target {
		t.Errorf("fn-mytool = %v", fn)
	}

	// recache empties the cache.
	runOut(t, sh, out, "recache")
	if cache := sh.Get("path-cache"); len(cache) != 0 {
		t.Errorf("path-cache after recache = %v", cache)
	}
	if fn := sh.Get("fn-mytool"); len(fn) != 0 {
		t.Errorf("fn-mytool after recache = %v", fn)
	}
}

// selfExe returns an executable that exists on any test machine.
func selfExe(t *testing.T) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Skip("no executable path available")
	}
	return exe
}

// scriptReader feeds scripted lines to %parse.
type scriptReader struct {
	lines []string
	pos   int
}

func (r *scriptReader) ReadLine() (string, error) {
	if r.pos >= len(r.lines) {
		return "", io.EOF
	}
	l := r.lines[r.pos]
	r.pos++
	return l, nil
}

// TestFigure3InteractiveLoop drives the default interactive loop — which
// is written in es itself (Figure 3) — with a scripted session: prompts
// go to stderr, errors are reported and the loop retries, and eof returns
// the last result.
func TestFigure3InteractiveLoop(t *testing.T) {
	sh, out, errw := newTestShell(t)
	res, err := sh.Interactive(&scriptReader{lines: []string{
		"echo one",
		"fn f {",      // multi-line command: continuation prompt
		"  echo two",  //
		"}",           //
		"f",           //
		"nosuchcmd-q", // error exception: printed, loop continues
		"throw zork grue",
		"result 7 5", // the loop's last result
	}})
	if err != nil {
		t.Fatalf("Interactive: %v", err)
	}
	if got := out.String(); got != "one\ntwo\n" {
		t.Errorf("stdout = %q", got)
	}
	e := errw.String()
	if !strings.Contains(e, "; ") {
		t.Errorf("no prompt on stderr: %q", e)
	}
	if !strings.Contains(e, "nosuchcmd-q: not found") {
		t.Errorf("error not reported: %q", e)
	}
	if !strings.Contains(e, "uncaught exception: zork grue") {
		t.Errorf("uncaught exception not reported: %q", e)
	}
	if res.Flatten(" ") != "7 5" {
		t.Errorf("loop result = %v, want 7 5", res)
	}
}

// The loop itself is spoofable: redefining %interactive-loop changes the
// REPL.
func TestFigure3LoopSpoofable(t *testing.T) {
	sh, out, _ := newTestShell(t)
	runOut(t, sh, out, "fn %interactive-loop {echo my repl; result 42}")
	res, err := sh.Interactive(&scriptReader{})
	if err != nil {
		t.Fatalf("Interactive: %v", err)
	}
	if out.String() != "my repl\n" || res.Flatten(" ") != "42" {
		t.Errorf("spoofed loop: out=%q res=%v", out.String(), res)
	}
}

// The default prompt "; " pastes back as a null command + separator, so a
// cut-and-pasted line with its prompt re-executes.
func TestFigure3PromptPasteback(t *testing.T) {
	sh, out, _ := newTestShell(t)
	if got := runOut(t, sh, out, "; echo pasted"); got != "pasted\n" {
		t.Errorf("pasteback = %q", got)
	}
	prompt := sh.Get("prompt")
	if len(prompt) != 2 || prompt[0].String() != "; " || prompt[1].String() != "" {
		t.Errorf("default prompt = %v", prompt)
	}
}

// A timing sanity check used by the bench harness as well: spoofed pipes
// nest, so a doubly-spoofed %pipe still works (the paper recommends
// capturing the previous definition precisely to allow this).
func TestFigure1SpoofStacking(t *testing.T) {
	sh, out, errw := newTestShell(t)
	runOut(t, sh, out, pipeSpoof)
	// Second spoof on top: counts pipeline elements.
	runOut(t, sh, out, `
elements = 0
let (pipe = $fn-%pipe) {
	fn %pipe args {
		elements = $elements x
		$pipe $args
	}
}`)
	got := runOut(t, sh, out, "echo hello | tr a-z A-Z")
	if got != "HELLO\n" {
		t.Errorf("pipeline output = %q", got)
	}
	if !strings.Contains(errw.String(), "r ") {
		t.Errorf("inner spoof (timing) lost: %q", errw.String())
	}
}

var _ = bytes.MinRead
