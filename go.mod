module es

go 1.22
