module es

go 1.24
