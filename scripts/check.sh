#!/bin/sh
# check.sh - repository verification tiers.
#
#   tier 1 (default): go build + go test, the floor every change must hold
#   tier 2 (-race):   adds go vet, the race detector over the full suite
#                     (including the 100-session esd soak test), the
#                     tree-walker engine suite (ES_NOCOMPILE=1), the
#                     serving-layer bench gate against BENCH_server.json,
#                     and a binary-level server soak: concurrent esc
#                     clients against a race-enabled esd, asserting zero
#                     failed frames and a clean drain on SIGTERM
#
# Usage: scripts/check.sh [-race]
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go test ./..."
go test ./...
echo "== esvet (primitive registry hygiene)"
go run ./cmd/esvet ./internal/prim
echo "== escheck (zero errors over lib/ and the embedded prelude)"
go run ./cmd/escheck -prelude lib/*.es

if [ "${1:-}" = "-race" ]; then
	echo "== go vet ./..."
	go vet ./...
	echo "== go test -race ./..."
	go test -race ./...
	echo "== tree-walker engine suite (ES_NOCOMPILE=1)"
	ES_NOCOMPILE=1 go test . ./internal/core ./internal/image
	echo "== server bench gate (scripts/bench_server.sh -check)"
	sh scripts/bench_server.sh -check
	echo "== server soak (esd -race + concurrent esc, SIGTERM drain)"
	sh scripts/soak.sh
fi
echo "ok"
