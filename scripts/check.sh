#!/bin/sh
# check.sh - repository verification tiers.
#
#   tier 1 (default): go build + go test, the floor every change must hold
#   tier 2 (-race):   adds go vet and the race detector over the full suite
#
# Usage: scripts/check.sh [-race]
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go test ./..."
go test ./...

if [ "${1:-}" = "-race" ]; then
	echo "== go vet ./..."
	go vet ./...
	echo "== go test -race ./..."
	go test -race ./...
fi
echo "ok"
