#!/bin/sh
# bench_server.sh - the serving-layer performance baseline
# (BenchmarkServerEval sequential/parallel, BenchmarkServerEvalTCP
# serial/pipelined through the TCP front end, the session-spawn cost
# behind the warm pool, the pre-baked-from-image spawn path next to the
# restore-per-session cost it avoids, the static-analysis pass that
# esd -vet puts on the admission path, and two esload waves against a
# live daemon binary: unix serial and TCP pipelined).
#
# Usage: scripts/bench_server.sh [benchtime]          regenerate BENCH_server.json
#        scripts/bench_server.sh -check [benchtime]   compare against BENCH_server.json,
#                                                     failing on a >25% ns/op regression
set -eu
cd "$(dirname "$0")/.."

mode=write
if [ "${1:-}" = "-check" ]; then
	mode=check
	shift
fi
benchtime="${1:-300ms}"

# -count=3 with a min-of-counts scrape: single 300ms samples jitter more
# than the 25% gate tolerates, the per-name minimum is stable.
out=$(go test -run=NONE -bench='ServerEval|ServerSession|Analyze' \
	-benchtime="$benchtime" -count=3 .)
echo "$out"

# The esload waves drive a real esd binary: wave 1 is the serial
# unix-socket floor, wave 2 the pipelined TCP path (hello window 8).
# Their go-bench-shaped summary lines fold into the same baseline.
tmp=$(mktemp -d)
espid=""
cleanup() {
	[ -n "$espid" ] && kill "$espid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/esd" ./cmd/esd
go build -o "$tmp/esload" ./cmd/esload
sock="$tmp/esd.sock"
"$tmp/esd" -socket "$sock" -tcp 127.0.0.1:0 -addr-file "$tmp/addr" -quiet &
espid=$!
for i in $(seq 1 100); do
	[ -S "$sock" ] && [ -s "$tmp/addr" ] && break
	sleep 0.1
done
[ -S "$sock" ] || { echo "bench_server: esd did not come up" >&2; exit 1; }
addr=$(sed -n 's/^tcp=//p' "$tmp/addr")

# Each wave is best-of-3: esload reports wall-clock ns/op, and a single
# run jitters more than the 25% gate tolerates.
bestof() {
	best=""
	bestns=""
	for r in 1 2 3; do
		line=$("$tmp/esload" "$@" -quiet)
		ns=$(echo "$line" | awk '{print $3}')
		if [ -z "$bestns" ] || [ "$ns" -lt "$bestns" ]; then
			best=$line
			bestns=$ns
		fi
	done
	echo "$best"
}

loadout=$(bestof -socket "$sock" -sessions 16 -evals 200 -name unix_micro_w1)
loadout="$loadout
$(bestof -addr "$addr" -window 8 -sessions 16 -evals 200 -name tcp_micro_w8)"
echo "$loadout"
kill "$espid" 2>/dev/null || true
wait "$espid" 2>/dev/null || true
espid=""

out="$out
$loadout"

if [ "$mode" = "check" ]; then
	echo "$out" | awk -v basefile=BENCH_server.json '
	BEGIN {
		# The baseline file is the exact shape this script writes, so a
		# line-oriented scrape is reliable: one benchmark per line.
		while ((getline line < basefile) > 0) {
			if (match(line, /"name": "[^"]*"/)) {
				name = substr(line, RSTART + 9, RLENGTH - 10)
				if (match(line, /"ns_per_op": [0-9]+/)) {
					base[name] = substr(line, RSTART + 13, RLENGTH - 13) + 0
				}
			}
		}
		close(basefile)
	}
	/^Benchmark|^esload\// {
		name = $1
		if (name ~ /^Benchmark/) {
			sub(/-[0-9]+$/, "", name)
			sub(/^Benchmark/, "", name)
		}
		if (!(name in cur) || $3 + 0 < cur[name]) cur[name] = $3 + 0
	}
	END {
		if (length(base) == 0) {
			print "bench-check: no baseline in " basefile
			exit 1
		}
		status = 0
		for (name in base) {
			if (!(name in cur)) {
				printf "bench-check: %s missing from current run\n", name
				status = 1
				continue
			}
			limit = base[name] * 1.25
			verdict = "ok"
			if (cur[name] > limit) {
				verdict = "REGRESSION"
				status = 1
			}
			printf "bench-check: %-28s base %8d ns/op  now %8d ns/op  limit %8.0f  %s\n", \
				name, base[name], cur[name], limit, verdict
		}
		exit status
	}'
	echo "bench-check ok (within 25% of BENCH_server.json)"
	exit 0
fi

echo "$out" | awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark|^esload\// {
	name = $1
	if (name ~ /^Benchmark/) {
		sub(/-[0-9]+$/, "", name)
		sub(/^Benchmark/, "", name)
	}
	if (name in idx) {
		k = idx[name]
		if ($3 + 0 < ns[k] + 0) { iters[k] = $2; ns[k] = $3 }
		next
	}
	idx[name] = n
	iters[n] = $2
	ns[n] = $3
	names[n] = name
	n++
}
END {
	printf "{\n"
	printf "  \"suite\": \"server\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n"
	for (k = 0; k < n; k++) {
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s}%s\n", \
			names[k], iters[k], ns[k], (k < n - 1 ? "," : "")
	}
	printf "  ]\n"
	printf "}\n"
}' > BENCH_server.json
echo "wrote BENCH_server.json"
