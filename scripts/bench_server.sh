#!/bin/sh
# bench_server.sh - regenerate BENCH_server.json, the serving-layer
# performance baseline (BenchmarkServerEval sequential/parallel and the
# session-spawn cost behind the warm pool).
#
# Usage: scripts/bench_server.sh [benchtime]
set -eu
cd "$(dirname "$0")/.."
benchtime="${1:-300ms}"

out=$(go test -run=NONE -bench='ServerEval|ServerSessionSpawn' \
	-benchtime="$benchtime" -count=1 .)
echo "$out"

echo "$out" | awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	iters[n] = $2
	ns[n] = $3
	names[n] = name
	n++
}
END {
	printf "{\n"
	printf "  \"suite\": \"server\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n"
	for (k = 0; k < n; k++) {
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s}%s\n", \
			names[k], iters[k], ns[k], (k < n - 1 ? "," : "")
	}
	printf "  ]\n"
	printf "}\n"
}' > BENCH_server.json
echo "wrote BENCH_server.json"
