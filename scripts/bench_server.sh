#!/bin/sh
# bench_server.sh - the serving-layer performance baseline
# (BenchmarkServerEval sequential/parallel, the session-spawn cost behind
# the warm pool, the pre-baked-from-image spawn path next to the
# restore-per-session cost it avoids, and the static-analysis pass that
# esd -vet puts on the admission path).
#
# Usage: scripts/bench_server.sh [benchtime]          regenerate BENCH_server.json
#        scripts/bench_server.sh -check [benchtime]   compare against BENCH_server.json,
#                                                     failing on a >25% ns/op regression
set -eu
cd "$(dirname "$0")/.."

mode=write
if [ "${1:-}" = "-check" ]; then
	mode=check
	shift
fi
benchtime="${1:-300ms}"

out=$(go test -run=NONE -bench='ServerEval|ServerSession|Analyze' \
	-benchtime="$benchtime" -count=1 .)
echo "$out"

if [ "$mode" = "check" ]; then
	echo "$out" | awk -v basefile=BENCH_server.json '
	BEGIN {
		# The baseline file is the exact shape this script writes, so a
		# line-oriented scrape is reliable: one benchmark per line.
		while ((getline line < basefile) > 0) {
			if (match(line, /"name": "[^"]*"/)) {
				name = substr(line, RSTART + 9, RLENGTH - 10)
				if (match(line, /"ns_per_op": [0-9]+/)) {
					base[name] = substr(line, RSTART + 13, RLENGTH - 13) + 0
				}
			}
		}
		close(basefile)
	}
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		sub(/^Benchmark/, "", name)
		cur[name] = $3 + 0
	}
	END {
		if (length(base) == 0) {
			print "bench-check: no baseline in " basefile
			exit 1
		}
		status = 0
		for (name in base) {
			if (!(name in cur)) {
				printf "bench-check: %s missing from current run\n", name
				status = 1
				continue
			}
			limit = base[name] * 1.25
			verdict = "ok"
			if (cur[name] > limit) {
				verdict = "REGRESSION"
				status = 1
			}
			printf "bench-check: %-28s base %8d ns/op  now %8d ns/op  limit %8.0f  %s\n", \
				name, base[name], cur[name], limit, verdict
		}
		exit status
	}'
	echo "bench-check ok (within 25% of BENCH_server.json)"
	exit 0
fi

echo "$out" | awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	iters[n] = $2
	ns[n] = $3
	names[n] = name
	n++
}
END {
	printf "{\n"
	printf "  \"suite\": \"server\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchmarks\": [\n"
	for (k = 0; k < n; k++) {
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s}%s\n", \
			names[k], iters[k], ns[k], (k < n - 1 ? "," : "")
	}
	printf "  ]\n"
	printf "}\n"
}' > BENCH_server.json
echo "wrote BENCH_server.json"
