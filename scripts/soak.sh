#!/bin/sh
# soak.sh - binary-level serving soak: N concurrent esc clients against a
# race-enabled esd, asserting zero failed frames, a working per-request
# deadline, and a graceful drain — SIGTERM during load must complete every
# in-flight eval and exit 0.
#
# Usage: scripts/soak.sh [clients] [evals-per-client]
set -eu
cd "$(dirname "$0")/.."

clients="${1:-8}"
evals="${2:-5}"

tmp=$(mktemp -d)
espid=""
cleanup() {
	[ -n "$espid" ] && kill "$espid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -race -o "$tmp/esd" ./cmd/esd
go build -o "$tmp/esc" ./cmd/esc
go build -o "$tmp/esload" ./cmd/esload

sock="$tmp/esd.sock"
"$tmp/esd" -socket "$sock" -tcp 127.0.0.1:0 -addr-file "$tmp/addr" \
	-quiet -drain-timeout 30s &
espid=$!
for i in $(seq 1 100); do
	[ -S "$sock" ] && [ -s "$tmp/addr" ] && break
	sleep 0.1
done
[ -S "$sock" ] || { echo "soak: esd did not come up" >&2; exit 1; }
tcpaddr=$(sed -n 's/^tcp=//p' "$tmp/addr")

fail=0

# Wave 1: concurrent clients, several evals each; every frame must be a
# clean result with the expected output.
pids=""
for c in $(seq 1 "$clients"); do
	(
		for n in $(seq 1 "$evals"); do
			out=$("$tmp/esc" -socket "$sock" "echo c${c}n${n}") || exit 1
			[ "$out" = "c${c}n${n}" ] || exit 1
		done
	) &
	pids="$pids $!"
done
for p in $pids; do
	wait "$p" || fail=1
done
[ "$fail" -eq 0 ] || { echo "soak: failed frames in wave 1" >&2; exit 1; }

# A runaway script under a 50ms deadline must come back as an exception
# (nonzero esc status), quickly, and must not wedge the daemon.
if "$tmp/esc" -socket "$sock" -deadline 50 'while {} {}' 2>/dev/null; then
	echo "soak: deadline eval unexpectedly succeeded" >&2
	exit 1
fi
out=$("$tmp/esc" -socket "$sock" 'echo alive') || fail=1
[ "$out" = "alive" ] || fail=1
[ "$fail" -eq 0 ] || { echo "soak: daemon unusable after deadline" >&2; exit 1; }

# TCP wave: pipelined sessions over the TCP listener against the
# race-enabled daemon — the concurrency soak for the hello/window path.
# esload exits nonzero on any transport failure or unexpected error frame.
"$tmp/esload" -addr "$tcpaddr" -window 4 -sessions "$clients" \
	-evals "$evals" -mix mixed -quiet > /dev/null ||
	{ echo "soak: TCP pipelined wave failed" >&2; exit 1; }
out=$("$tmp/esc" -socket "$sock" 'echo alive-tcp') || fail=1
[ "$out" = "alive-tcp" ] || fail=1
[ "$fail" -eq 0 ] || { echo "soak: daemon unusable after TCP wave" >&2; exit 1; }

# Wave 2: SIGTERM while evals are in flight.  Every client must still get
# its result (then the drain goodbye), and esd must exit 0.
pids=""
for c in $(seq 1 4); do
	"$tmp/esc" -socket "$sock" 'sleep 0.5; echo drained' > "$tmp/drain$c.out" &
	pids="$pids $!"
done
sleep 0.2
kill -TERM "$espid"
for p in $pids; do
	wait "$p" || fail=1
done
for c in $(seq 1 4); do
	[ "$(cat "$tmp/drain$c.out")" = "drained" ] || fail=1
done
if wait "$espid"; then :; else
	echo "soak: esd exited nonzero after SIGTERM" >&2
	fail=1
fi
espid=""
[ "$fail" -eq 0 ] || { echo "soak: drain under load failed" >&2; exit 1; }
echo "soak ok ($clients clients x $evals evals, deadline, TCP pipelining, SIGTERM drain)"
