package es

// Integration tests for the native dispatch caches (path / parse /
// decode / glob) and the bugfix batch that shipped with them: the
// per-interpreter interrupt flag, the whatis exception fix, and cache
// invalidation through the settor and recache paths.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"es/internal/core"
	"es/internal/glob"
)

// twoDirShell builds a shell whose $path holds two directories that BOTH
// contain an executable called "tool", so reordering $path changes which
// one resolves.
func twoDirShell(t *testing.T) (sh *Shell, out *bytes.Buffer, dirA, dirB string) {
	t.Helper()
	sh, out, _ = newTestShell(t)
	root := t.TempDir()
	dirA = filepath.Join(root, "a")
	dirB = filepath.Join(root, "b")
	script := "#!" + selfExe(t) + "\n"
	for _, d := range []string{dirA, dirB} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(d, "tool"), []byte(script), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.Set("path", dirA, dirB); err != nil {
		t.Fatal(err)
	}
	return sh, out, dirA, dirB
}

// whatis returns what `whatis name` prints.
func whatis(t *testing.T, sh *Shell, out *bytes.Buffer, name string) string {
	t.Helper()
	return strings.TrimSpace(runOut(t, sh, out, "whatis "+name))
}

// Repeated lookups of the same name are served by the native path cache.
func TestPathCacheHits(t *testing.T) {
	sh, out, dirA, _ := twoDirShell(t)
	want := filepath.Join(dirA, "tool")

	before := sh.Interp().PathCache().Stats()
	for k := 0; k < 3; k++ {
		if got := whatis(t, sh, out, "tool"); got != want {
			t.Fatalf("lookup %d: whatis tool = %q, want %q", k, got, want)
		}
	}
	after := sh.Interp().PathCache().Stats()
	if hits := after.Hits - before.Hits; hits != 2 {
		t.Errorf("path cache hits = %d, want 2", hits)
	}
	if misses := after.Misses - before.Misses; misses != 1 {
		t.Errorf("path cache misses = %d, want 1", misses)
	}
}

// Assigning $path flushes the cache, so a reordered search path changes
// which copy of a cached name resolves.
func TestPathCacheInvalidatedByPathAssignment(t *testing.T) {
	sh, out, dirA, dirB := twoDirShell(t)

	if got, want := whatis(t, sh, out, "tool"), filepath.Join(dirA, "tool"); got != want {
		t.Fatalf("initial lookup = %q, want %q", got, want)
	}
	// Reorder through the shell itself so the settor path is exercised.
	if _, err := sh.Run(fmt.Sprintf("path = %s %s", dirB, dirA)); err != nil {
		t.Fatal(err)
	}
	if got, want := whatis(t, sh, out, "tool"), filepath.Join(dirB, "tool"); got != want {
		t.Errorf("after path reorder, whatis tool = %q, want %q", got, want)
	}
}

// The same round-trip through the colon-separated $PATH settor: es keeps
// path and PATH aliased, and either assignment must drop the cache.
func TestPathCacheInvalidatedByPATHAssignment(t *testing.T) {
	sh, out, dirA, dirB := twoDirShell(t)

	if got, want := whatis(t, sh, out, "tool"), filepath.Join(dirA, "tool"); got != want {
		t.Fatalf("initial lookup = %q, want %q", got, want)
	}
	if _, err := sh.Run(fmt.Sprintf("PATH = %s:%s", dirB, dirA)); err != nil {
		t.Fatal(err)
	}
	if got, want := whatis(t, sh, out, "tool"), filepath.Join(dirB, "tool"); got != want {
		t.Errorf("after PATH reorder, whatis tool = %q, want %q", got, want)
	}
}

// recache (the native primitive) flushes the path cache.
func TestRecacheFlushesPathCache(t *testing.T) {
	sh, out, _, _ := twoDirShell(t)
	whatis(t, sh, out, "tool")
	if n := sh.Interp().PathCache().Len(); n != 1 {
		t.Fatalf("cache entries after lookup = %d, want 1", n)
	}
	if _, err := sh.Run("recache"); err != nil {
		t.Fatal(err)
	}
	if n := sh.Interp().PathCache().Len(); n != 0 {
		t.Errorf("cache entries after recache = %d, want 0", n)
	}
}

// A cached entry whose binary has been deleted must not be served: the
// verify-on-hit stat notices and the search falls through to the other
// directory.
func TestPathCacheStaleBinaryFallsBack(t *testing.T) {
	sh, out, dirA, dirB := twoDirShell(t)
	if got, want := whatis(t, sh, out, "tool"), filepath.Join(dirA, "tool"); got != want {
		t.Fatalf("initial lookup = %q, want %q", got, want)
	}
	if err := os.Remove(filepath.Join(dirA, "tool")); err != nil {
		t.Fatal(err)
	}
	if got, want := whatis(t, sh, out, "tool"), filepath.Join(dirB, "tool"); got != want {
		t.Errorf("after deleting cached binary, whatis tool = %q, want %q", got, want)
	}
}

// Defining fn-tool takes precedence over a cached path entry: function
// dispatch is consulted before %pathsearch ever runs.
func TestFnDefinitionShadowsPathCache(t *testing.T) {
	sh, out, _, _ := twoDirShell(t)
	whatis(t, sh, out, "tool") // populate the cache
	if _, err := sh.Run("fn tool { result shadowed }"); err != nil {
		t.Fatal(err)
	}
	res, err := sh.Run("result <>{tool}")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(res.Flatten(" ")); got != "shadowed" {
		t.Errorf("tool = %q, want %q (fn- must win over the path cache)", got, "shadowed")
	}
}

// The es-level pathcache spoof (Figure 2) still takes precedence over
// the native cache: once fn-%pathsearch is defined, the native prim is
// reached only through the spoof's captured $fn-%pathsearch, and repeat
// lookups are served from the spoof's fn- variables.
func TestSpoofedPathsearchStillWins(t *testing.T) {
	sh, _, dirA, _ := twoDirShell(t)
	if _, err := sh.Run(pathCacheSpoof); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dirA, "tool")
	res, err := sh.Run("result <>{%pathsearch tool}")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(res.Flatten(" ")); got != want {
		t.Fatalf("spoofed %%pathsearch tool = %q, want %q", got, want)
	}
	// The spoof populated its own es-level cache...
	if fn := sh.Get("fn-tool"); len(fn) != 1 || fn[0].String() != want {
		t.Errorf("fn-tool = %v, want [%s]", fn, want)
	}
	// ...and its recache shadow (an es function) empties it, proving the
	// script-level protocol is untouched by the native layer.
	if _, err := sh.Run("recache"); err != nil {
		t.Fatal(err)
	}
	if fn := sh.Get("fn-tool"); len(fn) != 0 {
		t.Errorf("fn-tool after spoofed recache = %v, want empty", fn)
	}
}

// Running the same source twice parses it once.
func TestParseCacheReusesAST(t *testing.T) {
	sh, _, _ := newTestShell(t)
	src := "result parse-cache-probe-" + t.Name()
	core.FlushParseCache()
	for k := 0; k < 3; k++ {
		if _, err := sh.Run(src); err != nil {
			t.Fatal(err)
		}
	}
	var parse *int64
	for _, s := range sh.Interp().CacheStats() {
		if s.Name == "parse" {
			h := s.Hits
			parse = &h
		}
	}
	if parse == nil {
		t.Fatal("no parse cache in CacheStats")
	}
	if *parse < 2 {
		t.Errorf("parse cache hits = %d, want >= 2", *parse)
	}
}

// Two shells importing the same exported closure must not share mutable
// state through the decode cache: assignments to a captured variable in
// one shell stay invisible in the other.
func TestDecodeCacheIsolatesClosureState(t *testing.T) {
	parent, _, _ := newTestShell(t)
	// The counter appends to a captured variable, so its result length
	// counts how often THIS closure instance has run.
	if _, err := parent.Run("let (n = '') fn counter { n = $n^x; result $n }"); err != nil {
		t.Fatal(err)
	}
	env := parent.Interp().ExportEnv()

	shA, err := New(Options{Environ: env, Stdout: io.Discard, Stderr: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	shB, err := New(Options{Environ: env, Stdout: io.Discard, Stderr: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	// Advance the counter twice in shell A, then read the third value.
	if _, err := shA.Run("counter; counter"); err != nil {
		t.Fatal(err)
	}
	resA, err := shA.Run("counter")
	if err != nil {
		t.Fatal(err)
	}
	// Shell B must still see a fresh closure.
	resB, err := shB.Run("counter")
	if err != nil {
		t.Fatal(err)
	}
	a, b := resA.Flatten(""), resB.Flatten("")
	if a != "xxx" || b != "x" {
		t.Errorf("counter state leaked through decode cache: A=%q (want xxx), B=%q (want x)", a, b)
	}
}

// A glob pattern matched repeatedly in a shell loop reuses its compiled
// form.
func TestGlobCacheHitsFromShell(t *testing.T) {
	sh, _, _ := newTestShell(t)
	glob.FlushCache()
	before := glob.CacheStats()
	if _, err := sh.Run("for (f = main.c util.c doc.txt main.h) ~ $f *.[ch]"); err != nil {
		t.Fatal(err)
	}
	after := glob.CacheStats()
	if hits := after.Hits - before.Hits; hits < 3 {
		t.Errorf("glob cache hits = %d, want >= 3", hits)
	}
}

// Interrupting one interpreter must not interrupt an unrelated one: the
// flag is per-Interp now, not process-global.
func TestInterruptIsPerInterpreter(t *testing.T) {
	shA, _, _ := newTestShell(t)
	shB, _, _ := newTestShell(t)
	shA.Interp().Interrupt()
	if _, err := shB.Run("result ok"); err != nil {
		t.Errorf("shell B interrupted by shell A's flag: %v", err)
	}
	// Shell A itself does see the pending interrupt.
	if _, err := shA.Run("result ok"); err == nil {
		t.Error("shell A should have raised the pending interrupt")
	} else if !IsException(err, "signal") {
		t.Errorf("shell A raised %v, want signal exception", err)
	}
}

// Regression for the latched-interrupt bug: a SIGINT that arrives during
// one command but is never consumed (here, planted by the command itself
// just before it finishes) used to stay latched and spuriously abort the
// NEXT command typed at the prompt.  The prompt must discard it.
func TestInterruptClearedAtPrompt(t *testing.T) {
	sh, _, _ := newTestShell(t)
	sh.RegisterPrim("latchintr", func(i *core.Interp, ctx *core.Ctx, args List) (List, error) {
		i.Interrupt()
		return nil, nil
	})
	res, err := sh.Interactive(&scriptReader{lines: []string{
		"$&latchintr",
		"x = 42",
	}})
	if err != nil {
		t.Fatalf("Interactive: %v (res %v)", err, res)
	}
	if got := sh.Get("x"); len(got) != 1 || got[0].String() != "42" {
		t.Errorf("x = %v, want [42]: stale interrupt aborted the next command", got)
	}
}

// Regression for primWhatis swallowing real exceptions: a spoofed
// %pathsearch that throws a custom exception must propagate it, not be
// flattened into "whatis: not found".
func TestWhatisPropagatesHookException(t *testing.T) {
	sh, _, _ := newTestShell(t)
	if _, err := sh.Run("fn %pathsearch prog { throw customboom $prog }"); err != nil {
		t.Fatal(err)
	}
	_, err := sh.Run("whatis no-such-program-anywhere")
	if err == nil {
		t.Fatal("whatis succeeded; want the spoofed hook's exception")
	}
	if !IsException(err, "customboom") {
		t.Errorf("whatis raised %v, want customboom", err)
	}
}

// cachestats is scriptable: one colon-separated record per cache.
func TestCachestatsPrimitive(t *testing.T) {
	sh, _, _ := newTestShell(t)
	res, err := sh.Run("result <>{cachestats}")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, term := range res {
		fields := strings.Split(term.String(), ":")
		if len(fields) != 5 {
			t.Errorf("cachestats record %q: want name:hits:misses:invalidations:entries", term.String())
			continue
		}
		names[fields[0]] = true
	}
	for _, want := range []string{"path", "parse", "decode", "glob"} {
		if !names[want] {
			t.Errorf("cachestats missing %q cache (got %v)", want, names)
		}
	}
}
