// Package es is an embeddable implementation of the es shell — the
// "library version of es which could be used stand-alone as a shell or
// linked in other programs" that Haahr & Rakitzis describe as future work
// in "Es: A shell with higher-order functions" (Winter USENIX 1993).
//
// A Shell wraps a core interpreter with the standard primitives, the
// hermetic coreutils, and the embedded initial.es start-up script:
//
//	sh, err := es.New(es.Options{Stdout: os.Stdout, Stderr: os.Stderr})
//	result, err := sh.Run("fn greet who {echo hello, $who}; greet world")
//
// Program fragments are first-class: results are lists of terms that may
// contain closures, and Go code can register new $& primitives with
// RegisterPrim to extend the language.
package es

import (
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"es/internal/core"
	"es/internal/coreutils"
	"es/internal/prim"
)

// Re-exported value types: an es value is a List of Terms, where a Term
// is a string, a closure, or a primitive reference.
type (
	// List is an es value list.
	List = core.List
	// Term is one element of a List.
	Term = core.Term
	// Exception is the error type carrying es exceptions.
	Exception = core.Exception
	// Ctx is a per-command evaluation context (descriptor table).
	Ctx = core.Ctx
	// PrimFunc is the signature of a registered primitive.
	PrimFunc = core.PrimFunc
	// BuiltinFunc is the signature of a registered utility command.
	BuiltinFunc = core.BuiltinFunc
	// CommandReader feeds lines to the interactive %parse primitive.
	CommandReader = core.CommandReader
	// Interp is the underlying interpreter type, exposed so embedders
	// can write PrimFunc implementations without importing internals.
	Interp = core.Interp
)

// Options configures a new Shell.
type Options struct {
	Stdin  io.Reader // defaults to an empty reader
	Stdout io.Writer // defaults to io.Discard
	Stderr io.Writer // defaults to io.Discard

	// Environ is imported into the variable table (fn- and set- values
	// are parsed back into closures).  Leave nil to start clean; pass
	// os.Environ() for a login-like shell.
	Environ []string

	// NoCoreutils skips registration of the hermetic utility commands,
	// leaving only externals and primitives.
	NoCoreutils bool

	// NoTailCalls disables tail-call elimination (the paper notes the C
	// implementation's lack of it as a deficiency; this switch exists
	// for the ablation benchmark).
	NoTailCalls bool

	// NoCompile keeps evaluation on the tree walker instead of the
	// compiled bytecode engine (the es -nocompile escape hatch; also
	// settable process-wide with ES_NOCOMPILE=1).
	NoCompile bool

	// Dir is the shell's starting working directory; empty means the
	// process working directory.  The shell's directory is virtual
	// (fork-isolated) and never calls os.Chdir.
	Dir string
}

// Shell is one es interpreter instance.
type Shell struct {
	interp *core.Interp
	ctx    *core.Ctx
}

// New creates a Shell: it registers the primitives and builtins, runs the
// embedded initial.es (binding every %hook to its $&primitive, installing
// the path/PATH settors and the Figure 3 interactive loop), imports the
// environment, and synchronizes imported values through their settors.
func New(opts Options) (*Shell, error) {
	in := opts.Stdin
	if in == nil {
		in = strings.NewReader("")
	}
	out := opts.Stdout
	if out == nil {
		out = io.Discard
	}
	errw := opts.Stderr
	if errw == nil {
		errw = io.Discard
	}
	// Subshells (pipeline elements, background jobs, bridged externals)
	// write concurrently; serialize writes to user-supplied sinks that
	// are not already concurrency-safe files.  Stdout and Stderr bound
	// to the same sink share one lock.
	var mu sync.Mutex
	out = lockWriter(&mu, out)
	if opts.Stderr != nil && opts.Stderr == opts.Stdout {
		errw = out
	} else {
		errw = lockWriter(&mu, errw)
	}
	i := core.New()
	i.NoTailCalls = opts.NoTailCalls
	if opts.NoCompile {
		i.NoCompile = true
	}
	if opts.Dir != "" {
		i.SetDir(opts.Dir)
	}
	prim.Register(i)
	if !opts.NoCoreutils {
		coreutils.Register(i)
	}
	// $pid, as in the C implementation (used for temporary file names).
	i.SetVarRaw("pid", core.StrList(strconv.Itoa(os.Getpid())))
	i.SetNoExport("pid")
	ctx := &core.Ctx{IO: core.NewIOTable(in, out, errw)}
	if err := prim.RunInitial(i, ctx); err != nil {
		return nil, err
	}
	if opts.Environ != nil {
		i.ImportEnv(opts.Environ)
		if err := prim.RunSync(i, ctx); err != nil {
			return nil, err
		}
	}
	return &Shell{interp: i, ctx: ctx}, nil
}

// Run parses and evaluates src, returning its rich return value.  Errors
// of type *Exception carry uncaught es exceptions.
func (s *Shell) Run(src string) (List, error) {
	return s.interp.RunString(s.ctx, src)
}

// RunFile sources a script file with $* bound to args.
func (s *Shell) RunFile(path string, args ...string) (List, error) {
	return s.interp.RunFile(s.ctx, path, core.StrList(args...))
}

// Interactive drives the (spoofable) %interactive-loop hook, reading
// commands from r until eof.  It returns the loop's result — the result
// of the last command, per Figure 3.
func (s *Shell) Interactive(r CommandReader) (List, error) {
	s.interp.Reader = r
	defer func() { s.interp.Reader = nil }()
	return s.interp.CallHook(s.ctx, "%interactive-loop", nil)
}

// Get returns the value of a global variable (nil if unset).
func (s *Shell) Get(name string) List { return s.interp.Var(name) }

// Set assigns a global variable, running its settor like any assignment.
func (s *Shell) Set(name string, values ...string) error {
	return s.interp.SetVar(s.ctx, name, core.StrList(values...))
}

// RegisterPrim adds a $&name primitive callable from the shell.
func (s *Shell) RegisterPrim(name string, fn PrimFunc) {
	s.interp.RegisterPrim(name, fn)
}

// RegisterBuiltin adds a utility command resolved before $PATH.
func (s *Shell) RegisterBuiltin(name string, fn BuiltinFunc) {
	s.interp.RegisterBuiltin(name, fn)
}

// Interp exposes the underlying interpreter for advanced embedding.
func (s *Shell) Interp() *core.Interp { return s.interp }

// Context exposes the root evaluation context.
func (s *Shell) Context() *core.Ctx { return s.ctx }

// lockWriter serializes writes to w; *os.File writers pass through (the
// kernel already serializes them, and externals need the real file).
func lockWriter(mu *sync.Mutex, w io.Writer) io.Writer {
	if _, ok := w.(*os.File); ok {
		return w
	}
	if w == io.Discard {
		return w
	}
	return &syncWriter{mu: mu, w: w}
}

type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// StrList builds a list of plain string terms.
func StrList(ss ...string) List { return core.StrList(ss...) }

// IsException reports whether err is an es exception named name.
func IsException(err error, name string) bool { return core.ExcNamed(err, name) }
