# trace.es -- the paper's call tracer: redefine each named function to
# print its name and arguments, then call the previous definition, which
# is captured in the lexically bound variable old.
#
#	; . lib/trace.es
#	; trace echo-nl
#	; echo-nl a b c
#	calling echo-nl a b c
#	...
#
# "Moreover, for debugging purposes, one can use trace on hook functions."

fn trace functions {
	for (func = $functions)
		let (old = $(fn-$func))
			fn $func args {
				echo calling $func $args
				$old $args
			}
}
