# pathcache.es -- Figure 2 of the paper: cache the full pathnames of
# executables by spoofing %pathsearch.  Successful absolute lookups are
# stored in fn- variables (so command dispatch skips the search entirely)
# and recorded in $path-cache; recache drops the cache.

let (search = $fn-%pathsearch) {
	fn %pathsearch prog {
		let (file = <>{$search $prog}) {
			if {~ $#file 1 && ~ $file /*} {
				path-cache = $path-cache $prog
				fn-$prog = $file
			}
			return $file
		}
	}
}

fn recache {
	for (i = $path-cache)
		fn-$i =
	path-cache =
}
