# mkcd.es -- from the paper's list of suggested spoofs: "a version of cd
# which asks the user whether to create a directory if it does not
# already exist."  Set cd-create-silently to skip the question (used by
# scripts and tests).

let (cd = $fn-cd)
fn cd dir {
	catch @ e msg {
		if {!~ $e error || ~ $#dir 0} {
			throw $e $msg
		}
		if {~ $#cd-create-silently 0} {
			echo -n 'cd: ' $dir ' does not exist; create it? [y/n] ' >[1=2]
			if {!~ <>{read} y*} {
				throw $e $msg
			}
		}
		mkdir -p $dir
		$cd $dir
	} {
		$cd $dir
	}
}
