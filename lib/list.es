# list.es -- a functional list library, demonstrating the paper's thesis
# that higher-order functions turn the shell into a real programming
# language.  Every function here takes program fragments as arguments and
# returns rich values.
#
#	; . lib/list.es
#	; map @ x {result $x$x} a b c
#	(prints nothing; use <>{...} to splice results)
#	; echo <>{map @ x {result $x$x} a b c}
#	aa bb cc

# map f list...: apply f to each element, collecting the results.
fn map f list {
	let (out = ) {
		for (x = $list)
			out = $out <>{$f $x}
		result $out
	}
}

# filter pred list...: keep the elements for which pred is true.
fn filter pred list {
	let (out = ) {
		for (x = $list)
			if {$pred $x} {
				out = $out $x
			}
		result $out
	}
}

# foldl f acc list...: left fold; f takes (acc element) and returns the
# new accumulator.
fn foldl f acc list {
	for (x = $list)
		acc = <>{$f $acc $x}
	result $acc
}

# reverse list...
fn reverse list {
	let (out = ) {
		for (x = $list)
			out = $x $out
		result $out
	}
}

# member x list...: is x an element?
fn member x list {
	let (found = 1) {
		for (y = $list)
			if {~ $x $y} {
				found = 0
			}
		result $found
	}
}

# zip-with f as bs: pairwise combination of two fragments' results
# (fragments, because flat lists cannot carry two lists in one call —
# the same convention the paper's rich returns suggest).
fn zip-with f as bs {
	let (xs = <>{$as}; ys = <>{$bs}; out = ) {
		for (x = $xs; y = $ys)
			out = $out <>{$f $x $y}
		result $out
	}
}

# iota n: the list 1 2 ... n.
fn iota n {
	result `{seq $n}
}

# each f list...: apply f for side effects; result is the last call's.
fn each f list {
	for (x = $list)
		$f $x
}

# all pred list... / any pred list...
fn all pred list {
	let (ok = 0) {
		for (x = $list)
			if {! $pred $x} {
				ok = 1
			}
		result $ok
	}
}

fn any pred list {
	let (ok = 1) {
		for (x = $list)
			if {$pred $x} {
				ok = 0
			}
		result $ok
	}
}
