# autoload.es -- "automatic loading of shell functions", from the paper's
# list of spoofs in active use.  When a command is not found on $path,
# look for $autolib/<name>.es; if it exists, source it and return the
# function it defined.  Stack this under pathcache.es and loaded
# functions get cached too.

let (search = $fn-%pathsearch) {
	fn %pathsearch prog {
		catch @ e msg {
			if {!~ $e error || ~ $#autolib 0} {
				throw $e $msg
			}
			let (file = $autolib/$prog.es) {
				if {test -f $file} {
					. $file
					if {!~ $#(fn-$prog) 0} {
						return $(fn-$prog)
					}
				}
			}
			throw $e $msg
		} {
			$search $prog
		}
	}
}
