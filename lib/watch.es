# watch.es -- the paper's settor-variable demonstration: watch installs a
# set- function for each named variable that reports old and new values
# on every assignment.
#
#	; watch x
#	; x=foo bar
#	old x =
#	new x = foo bar

fn watch vars {
	for (var = $vars) {
		set-$var = @ {
			echo old $var '=' $$var
			echo new $var '=' $*
			return $*
		}
	}
}

fn unwatch vars {
	for (var = $vars)
		set-$var =
}
