# noclobber.es -- the paper's %create spoof: refuse to overwrite an
# existing file with >, "similar to the C-shell's 'noclobber' option".
# The previous definition is captured lexically, so this stacks with
# other redirection spoofs.

let (create = $fn-%create)
fn %create fd file cmd {
	if {test -f $file} {
		throw error $file exists
	} {
		$create $fd $file $cmd
	}
}
