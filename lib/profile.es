# profile.es -- Figure 1 of the paper: time each element of every
# pipeline by spoofing %pipe, "along the lines of the pipeline profiler
# suggested by Jon Bentley".  Timing lines appear on standard error in
# the form `2r 0.3u 0.2s cmd`.

let (pipe = $fn-%pipe) {
	fn %pipe first out in rest {
		if {~ $#out 0} {
			time $first
		} {
			$pipe {time $first} $out $in {%pipe $rest}
		}
	}
}
